//! Fault-injection recovery suite for the durable storage layer
//! (DESIGN.md §12): a kill-point matrix over every vulnerable spot in the
//! commit protocol, plus targeted on-disk corruption — each followed by a
//! full recovery and a differential check against a shadow model, for all
//! nine encrypted dictionary kinds plus PLAIN, on one- and four-shard
//! tables.
//!
//! The invariants, everywhere:
//!
//! * **No committed row is lost.** Every operation that returned `Ok`
//!   before the crash is visible after recovery.
//! * **No aborted row resurrects.** An operation that returned `Err` at a
//!   *torn* crash point left nothing behind. (An op killed *between* WAL
//!   write and fsync is genuinely indeterminate on real hardware; in this
//!   in-process simulation the record survives, so recovery must replay
//!   it — asserted as such.)
//! * Recovery never panics on damaged files: it falls back to older
//!   epochs, truncates torn tails, reports everything in
//!   [`DurabilityStats`](encdbdb::DurabilityStats), and only errors when
//!   a partition has no valid snapshot left at all.

use encdbdb::{DbError, DurabilityPolicy, FailPoint, Session};
use encdbdb_crypto::keys::Key128;
use std::path::{Path, PathBuf};

const CHOICES: [&str; 10] = [
    "ED1", "ED2", "ED3", "ED4", "ED5", "ED6", "ED7", "ED8", "ED9", "PLAIN",
];

/// Split points matching the 0..60 numeric-string domain used below.
const SPLITS: &str = "'0015', '0030', '0045'";

/// A unique, pre-cleaned storage directory for one test case.
fn storage_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("encdbdb-crash-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn cleanup(dir: &Path) {
    let _ = std::fs::remove_dir_all(dir);
}

fn create_sql(choice: &str, shards: usize) -> String {
    let partition_clause = if shards > 1 {
        format!(" PARTITION BY RANGE (v) SPLIT ({SPLITS})")
    } else {
        String::new()
    };
    format!("CREATE TABLE t (v {choice}(8)){partition_clause}")
}

/// Values spread across all four shards of the `SPLITS` domain.
const COMMITTED: [&str; 8] = [
    "0003", "0010", "0017", "0024", "0031", "0038", "0045", "0052",
];

/// The full differential check: the table's sorted contents must equal
/// the shadow model's, through the same SQL path a client would use.
fn assert_contents(db: &mut Session, model: &[&str], context: &str) {
    let r = db.execute("SELECT v FROM t").expect("full select");
    let mut got: Vec<String> = r
        .rows_as_strings()
        .into_iter()
        .map(|mut row| row.remove(0))
        .collect();
    got.sort();
    let mut expected: Vec<String> = model.iter().map(|v| v.to_string()).collect();
    expected.sort();
    assert_eq!(got, expected, "{context}: table contents");
    assert_eq!(
        db.server().row_count("t").expect("row count"),
        model.len(),
        "{context}: row count"
    );
    // A range straddling every split point, so partitioned runs exercise
    // the pruned multi-shard path too.
    let r = db
        .execute("SELECT COUNT(*) FROM t WHERE v BETWEEN '0010' AND '0046'")
        .expect("range count");
    let expected_in_range = model
        .iter()
        .filter(|v| ("0010"..="0046").contains(&&***v))
        .count();
    assert_eq!(
        r.rows_as_strings(),
        vec![vec![expected_in_range.to_string()]],
        "{context}: straddling range count"
    );
}

/// Builds a durable deployment with the committed fixture rows: some
/// merged into main (epoch ≥ 1 on every populated shard), some deleted,
/// some still in the delta stores — so recovery exercises snapshots, merge
/// replay and plain WAL replay at once. Background compaction is off: a
/// crash test must not have a detached merge worker writing to the
/// directory after the simulated process death.
fn build_fixture(choice: &str, shards: usize, dir: &Path) -> (Session, Vec<&'static str>) {
    let mut db = Session::with_seed_durable(7, dir).expect("durable session");
    db.set_compaction_policy(None);
    db.execute(&create_sql(choice, shards)).expect("create");
    let mut model = Vec::new();
    for v in &COMMITTED[..5] {
        db.execute(&format!("INSERT INTO t VALUES ('{v}')"))
            .expect("insert");
        model.push(*v);
    }
    db.merge("t").expect("merge");
    for v in &COMMITTED[5..] {
        db.execute(&format!("INSERT INTO t VALUES ('{v}')"))
            .expect("insert");
        model.push(*v);
    }
    // A committed delete: '0024' must never resurrect.
    db.execute("DELETE FROM t WHERE v = '0024'")
        .expect("delete");
    model.retain(|v| *v != "0024");
    (db, model)
}

fn reopen(dir: &Path, key: Key128) -> Session {
    let mut db = Session::open(dir, key, 99).expect("recovery");
    db.set_compaction_policy(None);
    db
}

/// After recovery the deployment must be fully writable again: inserts,
/// deletes and merges all work and stay consistent with the model.
fn assert_writable(db: &mut Session, model: &mut Vec<&'static str>, context: &str) {
    db.execute("INSERT INTO t VALUES ('0059')")
        .unwrap_or_else(|e| panic!("{context}: post-recovery insert: {e}"));
    model.push("0059");
    db.execute("DELETE FROM t WHERE v = '0010'")
        .unwrap_or_else(|e| panic!("{context}: post-recovery delete: {e}"));
    model.retain(|v| *v != "0010");
    db.merge("t")
        .unwrap_or_else(|e| panic!("{context}: post-recovery merge: {e}"));
    assert_contents(db, model, context);
}

/// The kill-point matrix: every injected crash point × every dictionary
/// kind × {1, 4} shards. The crashed operation itself errors; everything
/// committed before it survives recovery, and the crashed op's outcome
/// matches the injected point's semantics (torn → absent, unsynced but
/// written → present).
#[test]
fn crash_matrix_preserves_committed_rows() {
    let points = [
        FailPoint::WalTornAppend,
        FailPoint::WalAppendNoFsync,
        FailPoint::SnapshotTornWrite,
        FailPoint::SnapshotNoRename,
        FailPoint::CheckpointNoTruncate,
    ];
    for &shards in &[1usize, 4] {
        for choice in CHOICES {
            for (i, &point) in points.iter().enumerate() {
                let dir = storage_dir(&format!("matrix-{choice}-{shards}-{i}"));
                run_crash_case(choice, shards, point, &dir);
                cleanup(&dir);
            }
        }
    }
}

fn run_crash_case(choice: &str, shards: usize, point: FailPoint, dir: &Path) {
    let context = format!("{choice}/{shards} shards/{point:?}");
    let (mut db, mut model) = build_fixture(choice, shards, dir);
    let key = db.master_key();
    db.server().arm_fail_point(point).expect("arm");

    match point {
        FailPoint::WalTornAppend | FailPoint::WalAppendNoFsync => {
            // The crashed op is an insert of '0007'.
            let err = db
                .execute("INSERT INTO t VALUES ('0007')")
                .expect_err("insert must hit the injected crash");
            assert!(matches!(err, DbError::Durability(_)), "{context}: {err}");
            if point == FailPoint::WalAppendNoFsync {
                // The record was fully written before the simulated crash;
                // recovery replays it even though the caller saw an error.
                model.push("0007");
            }
        }
        FailPoint::SnapshotTornWrite | FailPoint::SnapshotNoRename => {
            // The crash hits the sealed snapshot persist *after* the first
            // shard's epoch publish — that publish commits (its WAL record
            // is down; the missing file is re-derived at recovery by
            // replaying the record over the previous epoch), and since the
            // poisoned storage then refuses to log further publishes, a
            // multi-shard merge errors partway through. Logical contents
            // are unchanged either way.
            match db.merge("t") {
                Ok(()) => {}
                Err(DbError::MergeConflict(_) | DbError::Durability(_)) => {}
                Err(e) => panic!("{context}: unexpected merge error: {e}"),
            }
            let stats = db.server().durability_stats().expect("stats");
            assert!(
                stats.snapshot_persist_failures >= 1,
                "{context}: persist failure must be counted"
            );
            assert!(
                stats.injected_crashes >= 1,
                "{context}: injected crash must be counted"
            );
        }
        FailPoint::CheckpointNoTruncate => {
            let err = db
                .server()
                .checkpoint("t")
                .expect_err("checkpoint must hit the injected crash");
            assert!(matches!(err, DbError::Durability(_)), "{context}: {err}");
        }
    }

    // The simulated process is dead: every further durable write fails
    // until recovery builds a fresh storage.
    let err = db
        .execute("INSERT INTO t VALUES ('0001')")
        .expect_err("storage is poisoned after the crash");
    assert!(matches!(err, DbError::Durability(_)), "{context}: {err}");

    drop(db);
    let mut db = reopen(dir, key);
    assert_contents(&mut db, &model, &context);
    assert_writable(&mut db, &mut model, &context);
}

/// One multi-row insert spanning two shards is one WAL record: a torn
/// append loses *both* halves, an unsynced-but-written one keeps both —
/// never a partial row set.
#[test]
fn multi_partition_insert_is_atomic_across_the_crash() {
    for (tag, point, survives) in [
        ("torn", FailPoint::WalTornAppend, false),
        ("nosync", FailPoint::WalAppendNoFsync, true),
    ] {
        let dir = storage_dir(&format!("atomic-{tag}"));
        let (mut db, mut model) = build_fixture("ED5", 4, &dir);
        let key = db.master_key();
        db.server().arm_fail_point(point).expect("arm");
        // '0005' routes to shard 0, '0050' to shard 3 — one record.
        db.execute("INSERT INTO t VALUES ('0005'), ('0050')")
            .expect_err("insert must hit the injected crash");
        if survives {
            model.push("0005");
            model.push("0050");
        }
        drop(db);
        let mut db = reopen(&dir, key);
        assert_contents(&mut db, &model, &format!("atomic/{tag}"));
        let present = |db: &mut Session, v: &str| {
            db.execute(&format!("SELECT v FROM t WHERE v = '{v}'"))
                .expect("point select")
                .row_count()
        };
        assert_eq!(
            present(&mut db, "0005"),
            present(&mut db, "0050"),
            "atomic/{tag}: both rows or neither"
        );
        cleanup(&dir);
    }
}

/// A graceful close-and-reopen (no crash at all) restores every kind and
/// both shard layouts exactly, with zero re-deployment by the owner.
#[test]
fn graceful_restart_restores_all_kinds() {
    for &shards in &[1usize, 4] {
        for choice in CHOICES {
            let dir = storage_dir(&format!("graceful-{choice}-{shards}"));
            let (db, mut model) = build_fixture(choice, shards, &dir);
            let key = db.master_key();
            drop(db);
            let mut db = reopen(&dir, key.clone());
            let context = format!("graceful/{choice}/{shards}");
            assert_contents(&mut db, &model, &context);
            // Double recovery: close and reopen again, unchanged.
            drop(db);
            let mut db = reopen(&dir, key);
            assert_contents(&mut db, &model, &context);
            assert_writable(&mut db, &mut model, &context);
            cleanup(&dir);
        }
    }
}

/// A bit-flipped newest snapshot is rejected (checksum/unseal failure),
/// recovery falls back to the previous epoch and re-derives the lost one
/// from the WAL's merge record — reported in the stats, not panicked on.
#[test]
fn corrupt_snapshot_falls_back_to_previous_epoch() {
    let dir = storage_dir("flip-snap");
    let (db, model) = build_fixture("ED9", 1, &dir);
    let key = db.master_key();
    drop(db);
    let newest = dir.join("t").join("p0-e1.snap");
    flip_byte(&newest);
    let mut db = reopen(&dir, key);
    let stats = db.server().durability_stats().expect("stats");
    assert!(stats.snapshots_rejected >= 1, "rejected: {stats:?}");
    assert!(stats.snapshot_fallbacks >= 1, "fallbacks: {stats:?}");
    assert!(stats.merges_replayed >= 1, "merge replay: {stats:?}");
    assert_contents(&mut db, &model, "flip-snap");
    cleanup(&dir);
}

/// A WAL truncated mid-record (a torn tail) loses exactly the tail
/// record; every earlier record replays, and the truncation is counted.
#[test]
fn truncated_wal_tail_is_detected_and_cut() {
    let dir = storage_dir("torn-wal");
    let (db, mut model) = build_fixture("ED3", 1, &dir);
    // The tail record is the committed delete of '0024'; tearing it
    // resurrects that row *by design* — fsync batching was not in play
    // here, so this models on-disk truncation after the fact (e.g. fsck),
    // which recovery must survive, not prevent.
    let key = db.master_key();
    drop(db);
    let wal = dir.join("t").join("wal.log");
    let bytes = std::fs::read(&wal).expect("read wal");
    std::fs::write(&wal, &bytes[..bytes.len() - 3]).expect("truncate wal");
    model.push("0024"); // The torn tail was its delete record.
    let mut db = reopen(&dir, key);
    let stats = db.server().durability_stats().expect("stats");
    assert!(stats.wal_torn_tails >= 1, "torn tails: {stats:?}");
    assert!(stats.wal_torn_tail_bytes > 0, "torn bytes: {stats:?}");
    assert_contents(&mut db, &model, "torn-wal");
    cleanup(&dir);
}

/// Snapshot files swapped between two partitions fail the embedded
/// identity check (same sealing key — unsealing alone would succeed!),
/// and both shards fall back to their previous epochs + a longer replay.
#[test]
fn swapped_partition_snapshots_are_rejected() {
    let dir = storage_dir("swap");
    let (db, model) = build_fixture("ED5", 4, &dir);
    let key = db.master_key();
    drop(db);
    let a = dir.join("t").join("p0-e1.snap");
    let b = dir.join("t").join("p1-e1.snap");
    let tmp = dir.join("t").join("swap.tmp");
    std::fs::rename(&a, &tmp).expect("swap");
    std::fs::rename(&b, &a).expect("swap");
    std::fs::rename(&tmp, &b).expect("swap");
    let mut db = reopen(&dir, key);
    let stats = db.server().durability_stats().expect("stats");
    assert!(stats.snapshots_rejected >= 2, "rejected: {stats:?}");
    assert!(stats.snapshot_fallbacks >= 2, "fallbacks: {stats:?}");
    assert_contents(&mut db, &model, "swap");
    cleanup(&dir);
}

/// When *every* snapshot of a partition is damaged, recovery reports a
/// typed error instead of panicking or fabricating data.
#[test]
fn unrecoverable_partition_errors_cleanly() {
    let dir = storage_dir("all-corrupt");
    let (db, _model) = build_fixture("ED1", 1, &dir);
    let key = db.master_key();
    drop(db);
    for entry in std::fs::read_dir(dir.join("t")).expect("read table dir") {
        let path = entry.expect("entry").path();
        if path.extension().is_some_and(|e| e == "snap") {
            flip_byte(&path);
        }
    }
    let err = Session::open(&dir, key, 99).expect_err("no valid snapshot left");
    assert!(matches!(err, DbError::Durability(_)), "got: {err}");
    cleanup(&dir);
}

/// A checkpoint folds everything into verified snapshots, truncates the
/// WAL, and the deployment still reopens exactly — the WAL floor marker
/// protects against a snapshot regressing behind the truncated log.
#[test]
fn checkpoint_truncates_wal_and_still_recovers() {
    let dir = storage_dir("checkpoint");
    let (mut db, mut model) = build_fixture("ED7", 4, &dir);
    let key = db.master_key();
    assert!(db.server().checkpoint("t").expect("checkpoint"));
    let stats = db.server().durability_stats().expect("stats");
    assert!(stats.wal_truncations >= 1, "truncations: {stats:?}");
    // Post-checkpoint writes land in the fresh WAL.
    db.execute("INSERT INTO t VALUES ('0055')").expect("insert");
    model.push("0055");
    drop(db);
    let mut db = reopen(&dir, key);
    assert_contents(&mut db, &model, "checkpoint");
    assert_writable(&mut db, &mut model, "checkpoint");
    cleanup(&dir);
}

/// Fsync batching: with a batch of N, appends only sync every Nth record
/// (plus checkpoints); committed data still survives a clean reopen.
#[test]
fn fsync_batching_syncs_less_and_still_recovers() {
    let dir = storage_dir("batch");
    let mut db = Session::with_seed(11).expect("session");
    db.set_compaction_policy(None);
    db.server()
        .attach_durability(
            &dir,
            DurabilityPolicy {
                wal_fsync_batch: 4,
                snapshot_history: 2,
            },
        )
        .expect("attach");
    db.execute(&create_sql("ED2", 1)).expect("create");
    let mut model = Vec::new();
    for v in &COMMITTED {
        db.execute(&format!("INSERT INTO t VALUES ('{v}')"))
            .expect("insert");
        model.push(*v);
    }
    let stats = db.server().durability_stats().expect("stats");
    assert!(
        stats.wal_fsyncs < stats.wal_records_appended,
        "batching must amortize syncs: {stats:?}"
    );
    let key = db.master_key();
    drop(db);
    let mut db = reopen(&dir, key);
    assert_contents(&mut db, &model, "batch");
    cleanup(&dir);
}

/// Attaching durability to a server that already has live (unmerged)
/// delta rows and deleted main rows must not lose either across a
/// restart: the attach folds the tables to quiescence before sealing the
/// initial snapshots, so post-attach WAL records land at positions
/// recovery can meet, and pre-attach deletions never resurrect.
#[test]
fn attach_to_populated_server_preserves_live_deltas_and_deletes() {
    for &shards in &[1usize, 4] {
        let dir = storage_dir(&format!("late-attach-{shards}"));
        let mut db = Session::with_seed(21).expect("session");
        db.set_compaction_policy(None);
        db.execute(&create_sql("ED5", shards)).expect("create");
        let mut model: Vec<&'static str> = Vec::new();
        for v in &COMMITTED[..5] {
            db.execute(&format!("INSERT INTO t VALUES ('{v}')"))
                .expect("insert");
            model.push(*v);
        }
        db.merge("t").expect("merge");
        // Live delta rows and a deleted main row at attach time.
        for v in &COMMITTED[5..] {
            db.execute(&format!("INSERT INTO t VALUES ('{v}')"))
                .expect("insert");
            model.push(*v);
        }
        db.execute("DELETE FROM t WHERE v = '0003'")
            .expect("delete");
        model.retain(|v| *v != "0003");
        db.server()
            .attach_durability(&dir, DurabilityPolicy::default())
            .expect("attach");
        // Post-attach writes: exactly what a snapshot that silently
        // dropped the live delta would make recovery truncate away.
        db.execute("INSERT INTO t VALUES ('0029')").expect("insert");
        model.push("0029");
        db.execute("DELETE FROM t WHERE v = '0045'")
            .expect("delete");
        model.retain(|v| *v != "0045");
        let key = db.master_key();
        drop(db);
        let mut db = reopen(&dir, key);
        let context = format!("late-attach/{shards}");
        assert_contents(&mut db, &model, &context);
        assert_writable(&mut db, &mut model, &context);
        cleanup(&dir);
    }
}

/// A directory holding a previous incarnation's durable state belongs to
/// `Session::open`/`recover`: attaching a fresh deployment over it is
/// refused (it would append to the old WAL and mix snapshot
/// generations), and the refusal leaves the directory reopenable.
#[test]
fn attach_over_existing_state_is_refused() {
    let dir = storage_dir("reattach");
    let (db, model) = build_fixture("ED2", 1, &dir);
    let key = db.master_key();
    drop(db);
    let fresh = Session::with_seed(31).expect("session");
    let err = fresh
        .server()
        .attach_durability(&dir, DurabilityPolicy::default())
        .expect_err("attach over existing state must be refused");
    assert!(matches!(err, DbError::Durability(_)), "got: {err}");
    let mut db = reopen(&dir, key);
    assert_contents(&mut db, &model, "reattach");
    cleanup(&dir);
}

/// The durable API surface degrades cleanly without attached storage.
#[test]
fn durable_calls_without_storage_are_typed_errors() {
    let db = Session::with_seed(3).expect("session");
    assert!(db.server().durability_stats().is_none());
    assert!(matches!(
        db.server().arm_fail_point(FailPoint::WalTornAppend),
        Err(DbError::Durability(_))
    ));
    assert!(matches!(
        db.server().checkpoint("t"),
        Err(DbError::Durability(_))
    ));
    // Attaching twice is rejected.
    let dir = storage_dir("double-attach");
    db.server()
        .attach_durability(&dir, DurabilityPolicy::default())
        .expect("first attach");
    assert!(matches!(
        db.server()
            .attach_durability(&dir, DurabilityPolicy::default()),
        Err(DbError::Durability(_))
    ));
    cleanup(&dir);
}

fn flip_byte(path: &Path) {
    let mut bytes = std::fs::read(path).expect("read file");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(path, &bytes).expect("write file");
}
