//! Differential testing of the equi-join pipeline: every join result is
//! compared against a plaintext MonetDB-baseline evaluation (filters via
//! `MonetColumn`'s linear range scan, the join itself as a plain Rust
//! nested loop) — across all nine encrypted dictionary kinds plus PLAIN,
//! with delta-store rows and deletions on both sides, across 1-shard ×
//! 4-shard table combinations, and under proptest-interleaved
//! insert/delete/compact schedules on both tables.
//!
//! The boundary properties of DESIGN.md §11 are asserted through
//! `QueryStats`: a two-table equi-join issues exactly one `JoinBridge`
//! ECALL, decrypts each distinct join-key code at most once per side, and
//! reports build/probe/bridge accounting.

use colstore::column::Column;
use colstore::monetdb::MonetColumn;
use encdbdb::Session;
use proptest::prelude::*;
use std::collections::BTreeSet;

const CHOICES: [&str; 10] = [
    "ED1", "ED2", "ED3", "ED4", "ED5", "ED6", "ED7", "ED8", "ED9", "PLAIN",
];

/// One logical row of a side's plaintext mirror: (join key, payload).
type Row = (String, String);

fn key_of(i: usize) -> String {
    format!("{:04}", (i * 13) % 40)
}

fn pay_of(side: &str, i: usize) -> String {
    format!("{side}{:03}", (i * 7) % 500)
}

/// Builds a `users ⋈ orders` deployment whose sides both mix main-store
/// rows (via merge), delta-store rows, and deletions; `shards` range
/// partitions the orders table into four shards on the join key.
fn build_pair(choice: &str, seed: u64, shards: bool) -> (Session, Vec<Row>, Vec<Row>) {
    let mut db = Session::with_seed(seed).unwrap();
    let clause = if shards {
        " PARTITION BY RANGE (k) SPLIT ('0010', '0020', '0030')"
    } else {
        ""
    };
    db.execute(&format!(
        "CREATE TABLE users (k {choice}(8), x {choice}(8))"
    ))
    .unwrap();
    db.execute(&format!(
        "CREATE TABLE orders (k {choice}(8), y {choice}(8)){clause}"
    ))
    .unwrap();
    let mut left: Vec<Row> = Vec::new();
    let mut right: Vec<Row> = Vec::new();
    let insert = |db: &mut Session,
                  mirror: &mut Vec<Row>,
                  table: &str,
                  side: &str,
                  range: std::ops::Range<usize>| {
        let rows: Vec<String> = range
            .map(|i| {
                let row = (key_of(i), pay_of(side, i));
                let sql = format!("('{}', '{}')", row.0, row.1);
                mirror.push(row);
                sql
            })
            .collect();
        db.execute(&format!("INSERT INTO {table} VALUES {}", rows.join(", ")))
            .unwrap();
    };
    // Main-store era: insert, delete one key everywhere, merge.
    insert(&mut db, &mut left, "users", "u", 0..50);
    insert(&mut db, &mut right, "orders", "o", 0..90);
    let victim = key_of(3);
    db.execute(&format!("DELETE FROM users WHERE k = '{victim}'"))
        .unwrap();
    left.retain(|r| r.0 != victim);
    db.merge("users").unwrap();
    db.merge("orders").unwrap();
    // Delta era on BOTH sides, plus a delete that hits main and delta of
    // the right table.
    insert(&mut db, &mut left, "users", "u", 50..65);
    insert(&mut db, &mut right, "orders", "o", 90..120);
    let victim = key_of(8);
    db.execute(&format!("DELETE FROM orders WHERE k = '{victim}'"))
        .unwrap();
    right.retain(|r| r.0 != victim);
    (db, left, right)
}

/// MonetDB-baseline filter: linear range scan over a mirror's key column.
fn filter_side<'a>(mirror: &'a [Row], range: Option<(&str, &str)>) -> Vec<&'a Row> {
    let Some((lo, hi)) = range else {
        return mirror.iter().collect();
    };
    if mirror.is_empty() {
        return Vec::new();
    }
    let column = Column::from_strs("k", 8, mirror.iter().map(|r| r.0.as_str())).unwrap();
    let monet = MonetColumn::ingest(&column);
    monet
        .range_search_inclusive(lo.as_bytes(), hi.as_bytes())
        .into_iter()
        .map(|rid| &mirror[rid.0 as usize])
        .collect()
}

/// The plaintext baseline join: nested loop over the filtered mirrors,
/// projecting (left payload, right payload), sorted.
fn baseline_join(
    left: &[Row],
    right: &[Row],
    lrange: Option<(&str, &str)>,
    rrange: Option<(&str, &str)>,
) -> Vec<Vec<String>> {
    let l = filter_side(left, lrange);
    let r = filter_side(right, rrange);
    let mut out = Vec::new();
    for lr in &l {
        for rr in &r {
            if lr.0 == rr.0 {
                out.push(vec![lr.1.clone(), rr.1.clone()]);
            }
        }
    }
    out.sort();
    out
}

fn sorted_rows(result: &encdbdb::QueryResult) -> Vec<Vec<String>> {
    let mut rows = result.rows_as_strings();
    rows.sort();
    rows
}

const JOIN_SQL: &str = "SELECT users.x, orders.y FROM users JOIN orders ON users.k = orders.k";

#[test]
fn flagship_join_matches_baseline_on_all_kinds() {
    for (i, choice) in CHOICES.iter().enumerate() {
        let (mut db, left, right) = build_pair(choice, 1200 + i as u64, false);
        // Unfiltered join.
        let r = db.execute(JOIN_SQL).unwrap();
        assert_eq!(r.columns, vec!["users.x", "orders.y"]);
        assert_eq!(
            sorted_rows(&r),
            baseline_join(&left, &right, None, None),
            "kind {choice}: unfiltered join"
        );
        assert!(!r.rows.is_empty(), "kind {choice}: non-trivial join");
        let stats = db.server().last_stats();
        // Exactly ONE JoinBridge ECALL for encrypted keys; none at all
        // when everything is PLAIN.
        let expected_calls = if *choice == "PLAIN" { 0 } else { 1 };
        assert_eq!(stats.enclave_calls, expected_calls, "kind {choice}");
        assert_eq!(stats.join_build_rows, left.len(), "kind {choice}");
        assert_eq!(stats.join_probe_rows, right.len(), "kind {choice}");
        let key_intersection: BTreeSet<&String> = left
            .iter()
            .map(|r| &r.0)
            .collect::<BTreeSet<_>>()
            .intersection(&right.iter().map(|r| &r.0).collect())
            .copied()
            .collect();
        assert_eq!(
            stats.bridge_entries,
            key_intersection.len(),
            "kind {choice}: one bridge entry per matched distinct key"
        );
        // Decrypts are bounded by distinct touched codes, never above
        // one per matching row and side.
        assert!(
            stats.values_decrypted <= left.len() + right.len(),
            "kind {choice}: decrypted {}",
            stats.values_decrypted
        );

        // Filtered join: a range on each side.
        let (lo, hi) = ("0005", "0030");
        let (rlo, rhi) = ("0000", "0025");
        let r = db
            .execute(&format!(
                "{JOIN_SQL} WHERE users.k BETWEEN '{lo}' AND '{hi}' \
                 AND orders.k BETWEEN '{rlo}' AND '{rhi}'"
            ))
            .unwrap();
        assert_eq!(
            sorted_rows(&r),
            baseline_join(&left, &right, Some((lo, hi)), Some((rlo, rhi))),
            "kind {choice}: filtered join"
        );
    }
}

#[test]
fn one_shard_by_four_shard_join_matches_monolithic() {
    let queries = [
        JOIN_SQL.to_string(),
        // Straddles the split points on the sharded side.
        format!("{JOIN_SQL} WHERE orders.k BETWEEN '0008' AND '0022'"),
        // Confined to one shard (pruning on).
        format!("{JOIN_SQL} WHERE orders.k BETWEEN '0010' AND '0019'"),
        // Filter on the 1-shard side only.
        format!("{JOIN_SQL} WHERE users.k >= '0025'"),
    ];
    for (i, choice) in CHOICES.iter().enumerate() {
        let (mut mono, l1, r1) = build_pair(choice, 1300 + i as u64, false);
        let (mut sharded, l2, r2) = build_pair(choice, 1300 + i as u64, true);
        assert_eq!(l1, l2, "same logical content");
        assert_eq!(r1, r2, "same logical content");
        for q in &queries {
            let a = mono.execute(q).unwrap();
            let b = sharded.execute(q).unwrap();
            assert_eq!(sorted_rows(&a), sorted_rows(&b), "kind {choice}: {q}");
        }
        // The sharded run saw 1 + 4 partitions, and the confined query
        // pruned shards on the orders side.
        sharded.execute(&queries[2]).unwrap();
        let stats = sharded.server().last_stats();
        assert_eq!(stats.partitions_total, 5, "kind {choice}");
        assert!(stats.partitions_pruned > 0, "kind {choice}: pruning");
    }
}

#[test]
fn empty_side_joins_answer_without_any_ecall() {
    for choice in ["ED1", "ED9", "PLAIN"] {
        let mut db = Session::with_seed(1400).unwrap();
        db.execute(&format!(
            "CREATE TABLE users (k {choice}(8), x {choice}(8))"
        ))
        .unwrap();
        db.execute(&format!(
            "CREATE TABLE orders (k {choice}(8), y {choice}(8))"
        ))
        .unwrap();
        db.execute("INSERT INTO users VALUES ('0001', 'ua'), ('0002', 'ub')")
            .unwrap();
        // Right side empty.
        let r = db.execute(JOIN_SQL).unwrap();
        assert_eq!(r.row_count(), 0, "kind {choice}");
        let stats = db.server().last_stats();
        assert_eq!(stats.enclave_calls, 0, "kind {choice}: empty-side no-op");
        assert_eq!(stats.bridge_entries, 0, "kind {choice}");
        // Both sides deleted down to empty.
        db.execute("INSERT INTO orders VALUES ('0001', 'oa')")
            .unwrap();
        db.execute("DELETE FROM users").unwrap();
        let r = db.execute(JOIN_SQL).unwrap();
        assert_eq!(r.row_count(), 0, "kind {choice}: deleted-left join");
        assert_eq!(db.server().last_stats().enclave_calls, 0, "kind {choice}");
    }
}

#[test]
fn bridge_decrypts_each_distinct_key_exactly_once_per_side() {
    // Heavily repetitive keys under ED1 (one dictionary entry per distinct
    // value): 60 + 90 rows over ≤ 12 distinct keys per side. After a merge
    // (no delta codes), the bridge must decrypt exactly one value per
    // distinct key per side — never per row.
    let mut db = Session::with_seed(1500).unwrap();
    db.execute("CREATE TABLE users (k ED1(8), x ED1(8))")
        .unwrap();
    db.execute("CREATE TABLE orders (k ED1(8), y ED1(8))")
        .unwrap();
    let urows: Vec<String> = (0..60)
        .map(|i| format!("('{:04}', 'u{:03}')", i % 12, i))
        .collect();
    let orows: Vec<String> = (0..90)
        .map(|i| format!("('{:04}', 'o{:03}')", 6 + (i % 12), i))
        .collect();
    db.execute(&format!("INSERT INTO users VALUES {}", urows.join(", ")))
        .unwrap();
    db.execute(&format!("INSERT INTO orders VALUES {}", orows.join(", ")))
        .unwrap();
    db.merge("users").unwrap();
    db.merge("orders").unwrap();
    let r = db.execute(JOIN_SQL).unwrap();
    // Keys 6..=11 overlap: 5 user rows × ~7-8 order rows each.
    assert!(r.row_count() > 0);
    let stats = db.server().last_stats();
    assert_eq!(stats.enclave_calls, 1, "exactly one JoinBridge ECALL");
    assert_eq!(
        stats.values_decrypted,
        12 + 12,
        "one decrypt per distinct key per side"
    );
    assert_eq!(stats.bridge_entries, 6, "keys 0006..0011 bridge");
    assert_eq!(stats.join_build_rows, 60);
    assert_eq!(stats.join_probe_rows, 90);
    assert!(stats.bridge_ns > 0);

    // A filtered join adds exactly the search ECALLs (one per filtered
    // side's main dictionary; deltas are empty after the merges).
    db.execute(&format!("{JOIN_SQL} WHERE users.k >= '0006'"))
        .unwrap();
    let stats = db.server().last_stats();
    assert_eq!(stats.enclave_calls, 2, "one search + one bridge");
}

#[test]
fn mixed_plain_and_encrypted_join_keys_bridge_correctly() {
    // One side's key column PLAIN, the other encrypted: the bridge gets
    // resolved plaintext values for one side and decrypts the other —
    // still exactly one ECALL, decrypting only the encrypted side.
    for enc in ["ED1", "ED5", "ED9"] {
        for plain_left in [true, false] {
            let (lkind, rkind) = if plain_left {
                ("PLAIN", enc)
            } else {
                (enc, "PLAIN")
            };
            let mut db = Session::with_seed(1450).unwrap();
            db.execute(&format!("CREATE TABLE users (k {lkind}(8), x ED1(8))"))
                .unwrap();
            db.execute(&format!("CREATE TABLE orders (k {rkind}(8), y ED1(8))"))
                .unwrap();
            let mut left: Vec<Row> = Vec::new();
            let mut right: Vec<Row> = Vec::new();
            for i in 0..25 {
                let row = (key_of(i), pay_of("u", i));
                db.execute(&format!(
                    "INSERT INTO users VALUES ('{}', '{}')",
                    row.0, row.1
                ))
                .unwrap();
                left.push(row);
            }
            for i in 10..45 {
                let row = (key_of(i), pay_of("o", i));
                db.execute(&format!(
                    "INSERT INTO orders VALUES ('{}', '{}')",
                    row.0, row.1
                ))
                .unwrap();
                right.push(row);
            }
            db.merge("users").unwrap();
            // Delta rows stay on the orders side.
            let r = db.execute(JOIN_SQL).unwrap();
            assert_eq!(
                sorted_rows(&r),
                baseline_join(&left, &right, None, None),
                "{lkind}×{rkind}: mixed-key join"
            );
            let stats = db.server().last_stats();
            assert_eq!(stats.enclave_calls, 1, "{lkind}×{rkind}: one bridge");
            // Only the encrypted side's distinct codes are decrypted.
            let enc_rows = if plain_left { right.len() } else { left.len() };
            assert!(
                stats.values_decrypted <= enc_rows,
                "{lkind}×{rkind}: decrypted {} > {enc_rows}",
                stats.values_decrypted
            );
            assert!(stats.bridge_entries > 0, "{lkind}×{rkind}");
        }
    }
}

#[test]
fn frequency_hiding_keys_always_go_through_the_bridge() {
    // ED9 keys: one dictionary entry per occurrence, so ValueID equality
    // never reveals value equality — a self-join on the same table must
    // still bridge, and must match every equal-value pair.
    let mut db = Session::with_seed(1600).unwrap();
    db.execute("CREATE TABLE t (k ED9(8), x ED9(8))").unwrap();
    db.execute("INSERT INTO t VALUES ('a', 'p'), ('a', 'q'), ('b', 'r')")
        .unwrap();
    db.merge("t").unwrap();
    let r = db.execute("SELECT t.x FROM t JOIN t ON t.k = t.k").unwrap();
    // Self-join pairs: 'a' rows 2×2 + 'b' rows 1×1 = 5.
    assert_eq!(r.row_count(), 5);
    let stats = db.server().last_stats();
    assert_eq!(stats.enclave_calls, 1, "ED9 self-join still bridges");
    assert_eq!(stats.bridge_entries, 2);
}

#[test]
fn repetition_revealing_self_join_skips_the_bridge() {
    // ED1 self-join on one merged partition: ValueID equality IS value
    // equality, so the server matches VIDs directly — zero ECALLs, zero
    // decrypts (the documented DESIGN.md §11 shortcut).
    let mut db = Session::with_seed(1700).unwrap();
    db.execute("CREATE TABLE t (k ED1(8), x ED1(8))").unwrap();
    db.execute("INSERT INTO t VALUES ('a', 'p'), ('a', 'q'), ('b', 'r')")
        .unwrap();
    db.merge("t").unwrap();
    let r = db.execute("SELECT t.x FROM t JOIN t ON t.k = t.k").unwrap();
    assert_eq!(r.row_count(), 5);
    let stats = db.server().last_stats();
    assert_eq!(stats.enclave_calls, 0, "VID identity shortcut");
    assert_eq!(stats.values_decrypted, 0);
    assert_eq!(stats.bridge_entries, 2);

    // With delta rows present the shortcut is unsound (delta codes are
    // per-row); the pipeline must fall back to the bridge and still be
    // correct.
    db.execute("INSERT INTO t VALUES ('a', 's')").unwrap();
    let r = db.execute("SELECT t.x FROM t JOIN t ON t.k = t.k").unwrap();
    assert_eq!(r.row_count(), 10, "3×3 'a' pairs + 1 'b' pair");
    assert_eq!(db.server().last_stats().enclave_calls, 1, "fell back");
}

#[test]
fn aggregates_distinct_and_in_compose_with_joins() {
    for choice in ["ED1", "ED5", "ED9", "PLAIN"] {
        let (mut db, left, right) = build_pair(choice, 1800, false);
        // Grouped COUNT over the join, against the baseline.
        let r = db
            .execute(
                "SELECT users.x, COUNT(*) FROM users JOIN orders ON users.k = orders.k \
                 GROUP BY users.x ORDER BY 2 DESC, 1 LIMIT 5",
            )
            .unwrap();
        let joined = baseline_join(&left, &right, None, None);
        let mut counts: std::collections::BTreeMap<String, u64> = Default::default();
        for row in &joined {
            *counts.entry(row[0].clone()).or_insert(0) += 1;
        }
        let mut expected: Vec<(String, u64)> = counts.into_iter().collect();
        expected.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        expected.truncate(5);
        let expected: Vec<Vec<String>> = expected
            .into_iter()
            .map(|(x, c)| vec![x, c.to_string()])
            .collect();
        assert_eq!(r.rows_as_strings(), expected, "kind {choice}: grouped join");

        // DISTINCT over the join output.
        let r = db
            .execute(
                "SELECT DISTINCT users.x FROM users JOIN orders ON users.k = orders.k \
                 ORDER BY users.x",
            )
            .unwrap();
        let mut expected: Vec<String> = joined.iter().map(|row| row[0].clone()).collect();
        expected.sort();
        expected.dedup();
        let expected: Vec<Vec<String>> = expected.into_iter().map(|x| vec![x]).collect();
        assert_eq!(
            r.rows_as_strings(),
            expected,
            "kind {choice}: distinct join"
        );

        // IN on one side mixed into the join filter.
        let keys = ["0000", "0013", "0026"];
        let r = db
            .execute(&format!(
                "{JOIN_SQL} WHERE users.k IN ('{}', '{}', '{}')",
                keys[0], keys[1], keys[2]
            ))
            .unwrap();
        let l: Vec<Row> = left
            .iter()
            .filter(|r| keys.contains(&r.0.as_str()))
            .cloned()
            .collect();
        assert_eq!(
            sorted_rows(&r),
            baseline_join(&l, &right, None, None),
            "kind {choice}: IN + join"
        );
    }
}

#[test]
fn in_predicate_matches_baseline_on_single_tables() {
    for (i, choice) in CHOICES.iter().enumerate() {
        let (mut db, left, _) = build_pair(choice, 1900 + i as u64, false);
        let keys = ["0013", "0026", "0039", "0013"]; // duplicate on purpose
        let r = db
            .execute(&format!(
                "SELECT x FROM users WHERE k IN ('{}', '{}', '{}', '{}') ORDER BY x",
                keys[0], keys[1], keys[2], keys[3]
            ))
            .unwrap();
        let mut expected: Vec<Vec<String>> = left
            .iter()
            .filter(|row| keys.contains(&row.0.as_str()))
            .map(|row| vec![row.1.clone()])
            .collect();
        expected.sort();
        assert_eq!(r.rows_as_strings(), expected, "kind {choice}: IN");
        // IN intersected with a range on the same column.
        let r = db
            .execute(&format!(
                "SELECT x FROM users WHERE k IN ('{}', '{}', '{}') AND k >= '0020' ORDER BY x",
                keys[0], keys[1], keys[2]
            ))
            .unwrap();
        let mut expected: Vec<Vec<String>> = left
            .iter()
            .filter(|row| keys.contains(&row.0.as_str()) && row.0.as_str() >= "0020")
            .map(|row| vec![row.1.clone()])
            .collect();
        expected.sort();
        assert_eq!(r.rows_as_strings(), expected, "kind {choice}: IN ∧ range");
    }
}

#[test]
fn contradictory_conjunctions_skip_wasted_searches() {
    // Intersecting an IN with another predicate on the same column prunes
    // provably-empty ranges up front: only the satisfiable range is ever
    // searched, and a fully contradictory filter enters the enclave zero
    // times.
    let mut db = Session::with_seed(2100).unwrap();
    db.execute("CREATE TABLE t (v ED1(8))").unwrap();
    let rows: Vec<String> = (0..40).map(|i| format!("('{:03}')", i % 10)).collect();
    db.execute(&format!("INSERT INTO t VALUES {}", rows.join(", ")))
        .unwrap();
    db.merge("t").unwrap();
    let r = db
        .execute("SELECT v FROM t WHERE v IN ('001', '002') AND v = '001'")
        .unwrap();
    assert_eq!(r.row_count(), 4);
    let stats = db.server().last_stats();
    assert_eq!(stats.enclave_calls, 1, "only the satisfiable range runs");
    let r = db
        .execute("SELECT v FROM t WHERE v = '001' AND v = '002'")
        .unwrap();
    assert_eq!(r.row_count(), 0);
    assert_eq!(
        db.server().last_stats().enclave_calls,
        0,
        "a contradictory filter never enters the enclave"
    );
}

#[test]
fn select_distinct_decrypts_once_per_distinct_value() {
    // DISTINCT rides the ValueID-histogram path: one Aggregate ECALL, one
    // decrypt per distinct value — never per row.
    let mut db = Session::with_seed(2000).unwrap();
    db.execute("CREATE TABLE t (v ED1(8))").unwrap();
    let rows: Vec<String> = (0..120).map(|i| format!("('{:03}')", i % 9)).collect();
    db.execute(&format!("INSERT INTO t VALUES {}", rows.join(", ")))
        .unwrap();
    db.merge("t").unwrap();
    let r = db.execute("SELECT DISTINCT v FROM t ORDER BY v").unwrap();
    assert_eq!(r.row_count(), 9);
    let expected: Vec<Vec<String>> = (0..9).map(|i| vec![format!("{i:03}")]).collect();
    assert_eq!(r.rows_as_strings(), expected);
    let stats = db.server().last_stats();
    assert_eq!(stats.enclave_calls, 1, "one Aggregate ECALL, no search");
    assert_eq!(stats.values_decrypted, 9, "one decrypt per distinct value");
}

/// Interleaved schedules over BOTH tables: inserts, range deletes and
/// compactions on either side, with the join checked against the
/// baseline after every mutation batch.
#[derive(Debug, Clone)]
enum Op {
    InsertL(usize),
    InsertR(usize),
    DeleteL(String),
    DeleteR(String),
    CompactL,
    CompactR,
    Join,
}

fn decode(kind: u8, a: u32) -> Op {
    let i = a as usize;
    match kind % 10 {
        0 | 1 => Op::InsertL(i),
        2..=4 => Op::InsertR(i),
        5 => Op::DeleteL(key_of(i)),
        6 => Op::DeleteR(key_of(i)),
        7 => Op::CompactL,
        8 => Op::CompactR,
        _ => Op::Join,
    }
}

fn run_join_schedule(
    choice: &str,
    seed: u64,
    steps: &[(u8, u32)],
    shards: bool,
) -> Result<(), TestCaseError> {
    let mut db = Session::with_seed(seed).expect("session setup");
    let clause = if shards {
        " PARTITION BY RANGE (k) SPLIT ('0010', '0020', '0030')"
    } else {
        ""
    };
    db.execute(&format!(
        "CREATE TABLE users (k {choice}(8), x {choice}(8))"
    ))
    .expect("create users");
    db.execute(&format!(
        "CREATE TABLE orders (k {choice}(8), y {choice}(8)){clause}"
    ))
    .expect("create orders");
    let mut left: Vec<Row> = Vec::new();
    let mut right: Vec<Row> = Vec::new();
    let check_join =
        |db: &mut Session, left: &[Row], right: &[Row], step: usize| -> Result<(), TestCaseError> {
            let r = db.execute(JOIN_SQL).expect("join");
            prop_assert_eq!(
                sorted_rows(&r),
                baseline_join(left, right, None, None),
                "{} step {}: join vs baseline",
                choice,
                step
            );
            let stats = db.server().last_stats();
            let has_rows = !left.is_empty() && !right.is_empty();
            let bridged = has_rows && choice != "PLAIN";
            // Search ECALLs never fire (unfiltered), so the call count is the
            // bridge alone — or zero for PLAIN keys and empty sides.
            prop_assert_eq!(
                stats.enclave_calls,
                usize::from(bridged),
                "{} step {}: exactly one JoinBridge ECALL",
                choice,
                step
            );
            prop_assert!(
                stats.values_decrypted <= left.len() + right.len(),
                "{} step {}: decrypts bounded by distinct codes",
                choice,
                step
            );
            Ok(())
        };
    for (step, &(kind, a)) in steps.iter().enumerate() {
        match decode(kind, a) {
            Op::InsertL(i) => {
                let row = (key_of(i), pay_of("u", i));
                db.execute(&format!(
                    "INSERT INTO users VALUES ('{}', '{}')",
                    row.0, row.1
                ))
                .expect("insert users");
                left.push(row);
            }
            Op::InsertR(i) => {
                let row = (key_of(i), pay_of("o", i));
                db.execute(&format!(
                    "INSERT INTO orders VALUES ('{}', '{}')",
                    row.0, row.1
                ))
                .expect("insert orders");
                right.push(row);
            }
            Op::DeleteL(k) => {
                db.execute(&format!("DELETE FROM users WHERE k = '{k}'"))
                    .expect("delete users");
                left.retain(|r| r.0 != k);
            }
            Op::DeleteR(k) => {
                db.execute(&format!("DELETE FROM orders WHERE k = '{k}'"))
                    .expect("delete orders");
                right.retain(|r| r.0 != k);
            }
            Op::CompactL => db.merge("users").expect("merge users"),
            Op::CompactR => db.merge("orders").expect("merge orders"),
            Op::Join => check_join(&mut db, &left, &right, step)?,
        }
    }
    // Final join across whatever main/delta split the schedule left.
    check_join(&mut db, &left, &right, steps.len())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Interleaved inserts/deletes/compactions on both tables keep the
    /// join byte-identical to the plaintext baseline — for all nine ED
    /// kinds plus PLAIN, with exactly one JoinBridge ECALL per join.
    #[test]
    fn interleaved_join_schedules_match_the_baseline(
        steps in prop::collection::vec((0u8..10, 0u32..600), 1..18),
        seed in 0u64..100_000,
    ) {
        for choice in CHOICES {
            run_join_schedule(choice, seed, &steps, false)?;
        }
    }

    /// The same schedules with the orders table split into four shards.
    #[test]
    fn interleaved_sharded_join_schedules_match_the_baseline(
        steps in prop::collection::vec((0u8..10, 0u32..600), 1..14),
        seed in 0u64..100_000,
    ) {
        for choice in ["ED1", "ED5", "ED9", "PLAIN"] {
            run_join_schedule(choice, seed, &steps, true)?;
        }
    }
}
