//! Differential proof that the networked service layer (DESIGN.md §16)
//! is invisible to the database semantics and to the *enclave* observer:
//! for all nine encrypted dictionary kinds plus PLAIN, the same workload
//! run over loopback TCP and run in-process produces byte-identical
//! results AND an identical leakage ledger — the wire adds zero enclave
//! transitions. Plus the admission/isolation contract: tenants cannot
//! name each other's tables, table quotas bind, over-limit requests get
//! a deterministic `BUSY`, and a bad token never reaches the query path.

use encdbdb::{
    net::tenant_table_name, DbError, EcallKind, NetClient, NetServer, NetServerConfig, QueryResult,
    Session, TenantSpec,
};

const CHOICES: [&str; 10] = [
    "ED1", "ED2", "ED3", "ED4", "ED5", "ED6", "ED7", "ED8", "ED9", "PLAIN",
];

const TENANT: &str = "acme";
const TOKEN: &str = "tok-acme";

/// The workload: statement templates with `{t}` as the table name, so
/// the in-process leg can address the same physical (namespaced) table
/// the server-side rewriter produces for the TCP leg.
fn workload(choice: &str) -> Vec<String> {
    let rows: Vec<String> = (0..30)
        .map(|i| format!("('{:04}')", (i * 7) % 60))
        .collect();
    vec![
        format!("CREATE TABLE {{t}} (v {choice}(8))"),
        format!("INSERT INTO {{t}} VALUES {}", rows.join(", ")),
        "SELECT v FROM {t} WHERE v >= '0030'".into(),
        "SELECT v FROM {t} WHERE v = '0014'".into(),
        "SELECT v FROM {t} WHERE v IN ('0007', '0049', '0056')".into(),
        "SELECT COUNT(*), SUM(v) FROM {t} WHERE v BETWEEN '0010' AND '0050'".into(),
        "SELECT DISTINCT v FROM {t} ORDER BY 1 LIMIT 5".into(),
        "DELETE FROM {t} WHERE v BETWEEN '0020' AND '0035'".into(),
        "SELECT v FROM {t}".into(),
    ]
}

fn sorted_result(r: &QueryResult) -> (Vec<String>, Vec<Vec<Vec<u8>>>) {
    let mut rows = r.rows.clone();
    rows.sort();
    (r.columns.clone(), rows)
}

/// Runs one kind's workload over TCP and in-process and compares every
/// observable.
fn run_kind(choice: &str, seed: u64) {
    // TCP leg: the table is created *through the wire* as tenant "acme",
    // so it lands in the shared namespace as `acme__t`.
    let tcp_session = Session::with_seed(seed).expect("tcp session");
    tcp_session.server().set_compaction_policy(None);
    let handle = NetServer::start(
        tcp_session,
        vec![TenantSpec::new(TENANT, TOKEN)],
        NetServerConfig::default(),
    )
    .expect("server start");
    let mut client = NetClient::connect(handle.addr(), TENANT, TOKEN).expect("connect");
    let tcp_results: Vec<QueryResult> = workload(choice)
        .iter()
        .map(|stmt| {
            client
                .execute(&stmt.replace("{t}", "t"))
                .unwrap_or_else(|e| panic!("{choice}: tcp leg failed on {stmt:?}: {e}"))
        })
        .collect();
    client.close();
    let tcp_session = handle.shutdown().expect("shutdown");

    // In-process leg: same seed, same workload, addressed directly at
    // the namespaced table the rewriter would produce.
    let mut local = Session::with_seed(seed).expect("local session");
    local.server().set_compaction_policy(None);
    let table = tenant_table_name(TENANT, "t");
    let local_results: Vec<QueryResult> = workload(choice)
        .iter()
        .map(|stmt| {
            let sql = stmt.replace("{t}", &table);
            local
                .execute(&sql)
                .unwrap_or_else(|e| panic!("{choice}: local leg failed on {sql:?}: {e}"))
        })
        .collect();

    // Results must be byte-identical (columns modulo the namespace
    // prefix the server strips before replying).
    for (i, (tcp, inproc)) in tcp_results.iter().zip(&local_results).enumerate() {
        let (tcp_cols, tcp_rows) = sorted_result(tcp);
        let (local_cols, local_rows) = sorted_result(inproc);
        let local_cols: Vec<String> = local_cols
            .iter()
            .map(|c| c.replace(&format!("{TENANT}__"), ""))
            .collect();
        assert_eq!(tcp_cols, local_cols, "{choice} stmt {i}: columns");
        assert_eq!(tcp_rows, local_rows, "{choice} stmt {i}: rows");
    }

    // The wire adds zero enclave transitions: per-kind, per-byte ledger
    // equality between the legs, and equal transition totals.
    let lt = tcp_session.leakage_ledger();
    let ll = local.leakage_ledger();
    for kind in EcallKind::ALL {
        let (t, l) = (lt.kind(kind), ll.kind(kind));
        assert_eq!(t.calls, l.calls, "{choice}: {kind:?} calls");
        assert_eq!(t.bytes_in, l.bytes_in, "{choice}: {kind:?} bytes_in");
        assert_eq!(t.bytes_out, l.bytes_out, "{choice}: {kind:?} bytes_out");
        assert_eq!(
            t.values_decrypted, l.values_decrypted,
            "{choice}: {kind:?} values_decrypted"
        );
        assert_eq!(
            t.untrusted_loads, l.untrusted_loads,
            "{choice}: {kind:?} untrusted_loads"
        );
        assert_eq!(
            t.untrusted_bytes, l.untrusted_bytes,
            "{choice}: {kind:?} untrusted_bytes"
        );
    }
    assert_eq!(
        tcp_session.metrics_report().counter("ecalls_total"),
        local.metrics_report().counter("ecalls_total"),
        "{choice}: the wire must add zero enclave transitions"
    );

    // The TCP leg's network counters saw exactly the workload.
    let m = tcp_session.metrics_report();
    assert_eq!(
        m.counter("net_requests_total"),
        workload(choice).len() as u64,
        "{choice}: one request per statement"
    );
    assert_eq!(m.counter("net_connections_accepted_total"), 1);
    assert_eq!(m.counter("net_auth_failures_total"), 0);
    assert_eq!(m.counter("net_busy_replies_total"), 0);
    assert!(m.counter("net_bytes_in_total") > 0);
    assert!(m.counter("net_bytes_out_total") > 0);
}

#[test]
fn tcp_and_in_process_agree_for_every_kind() {
    for (i, choice) in CHOICES.iter().enumerate() {
        run_kind(choice, 0x7C9_0000 + i as u64);
    }
}

#[test]
fn join_columns_round_trip_through_the_namespace() {
    let seed = 0x701_1234;
    let stmts = [
        "CREATE TABLE {a} (k ED5(8), x ED9(8))",
        "CREATE TABLE {b} (k ED5(8), y ED9(8))",
        "INSERT INTO {a} VALUES ('0001', '0010'), ('0002', '0020'), ('0003', '0030')",
        "INSERT INTO {b} VALUES ('0002', '0200'), ('0003', '0300'), ('0004', '0400')",
        "SELECT {a}.x, {b}.y FROM {a} JOIN {b} ON {a}.k = {b}.k",
        "SELECT {a}.k, SUM({b}.y) FROM {a} JOIN {b} ON {a}.k = {b}.k GROUP BY {a}.k",
    ];

    let tcp_session = Session::with_seed(seed).expect("tcp session");
    tcp_session.server().set_compaction_policy(None);
    let handle = NetServer::start(
        tcp_session,
        vec![TenantSpec::new(TENANT, TOKEN)],
        NetServerConfig::default(),
    )
    .expect("server start");
    let mut client = NetClient::connect(handle.addr(), TENANT, TOKEN).expect("connect");
    let tcp_results: Vec<QueryResult> = stmts
        .iter()
        .map(|s| {
            client
                .execute(&s.replace("{a}", "a").replace("{b}", "b"))
                .unwrap_or_else(|e| panic!("tcp join leg failed on {s:?}: {e}"))
        })
        .collect();
    client.close();
    let tcp_session = handle.shutdown().expect("shutdown");

    let mut local = Session::with_seed(seed).expect("local session");
    local.server().set_compaction_policy(None);
    let (ta, tb) = (
        tenant_table_name(TENANT, "a"),
        tenant_table_name(TENANT, "b"),
    );
    let local_results: Vec<QueryResult> = stmts
        .iter()
        .map(|s| {
            local
                .execute(&s.replace("{a}", &ta).replace("{b}", &tb))
                .unwrap_or_else(|e| panic!("local join leg failed on {s:?}: {e}"))
        })
        .collect();

    for (i, (tcp, inproc)) in tcp_results.iter().zip(&local_results).enumerate() {
        // Qualified output names ("a.x", "sum(b.y)") must come back with
        // the tenant prefix stripped.
        let local_cols: Vec<String> = inproc
            .columns
            .iter()
            .map(|c| c.replace(&format!("{TENANT}__"), ""))
            .collect();
        assert_eq!(tcp.columns, local_cols, "join stmt {i}: columns");
        let (_, tcp_rows) = sorted_result(tcp);
        let (_, local_rows) = sorted_result(inproc);
        assert_eq!(tcp_rows, local_rows, "join stmt {i}: rows");
    }
    let (lt, ll) = (tcp_session.leakage_ledger(), local.leakage_ledger());
    assert_eq!(lt.total_calls(), ll.total_calls(), "join: transitions");
}

#[test]
fn tenants_cannot_reach_each_others_tables() {
    let session = Session::with_seed(0x150_0001).expect("session");
    let handle = NetServer::start(
        session,
        vec![
            TenantSpec::new("acme", "tok-a"),
            TenantSpec::new("globex", "tok-g"),
        ],
        NetServerConfig::default(),
    )
    .expect("server start");

    let mut acme = NetClient::connect(handle.addr(), "acme", "tok-a").expect("acme connect");
    acme.execute("CREATE TABLE t (v ED2(8))").expect("create");
    acme.execute("INSERT INTO t VALUES ('0001'), ('0002')")
        .expect("insert");
    assert_eq!(
        acme.execute("SELECT v FROM t")
            .expect("own select")
            .rows
            .len(),
        2
    );

    // The other tenant addressing the same name sees *its own* (absent)
    // namespace, not acme's data.
    let mut globex = NetClient::connect(handle.addr(), "globex", "tok-g").expect("globex connect");
    let err = globex.execute("SELECT v FROM t").expect_err("isolated");
    let msg = err.to_string();
    assert!(
        msg.contains("globex__t") && msg.contains("table not found"),
        "isolation error should name the rewritten table: {msg}"
    );
    // Nor can it smuggle a qualified reference to another namespace: the
    // rewriter prefixes the qualifier too.
    let err = globex
        .execute("SELECT acme__t.v FROM acme__t")
        .expect_err("qualified escape");
    assert!(
        err.to_string().contains("globex__acme__t"),
        "qualified names must be re-namespaced: {err}"
    );

    acme.close();
    globex.close();
    handle.shutdown().expect("shutdown");
}

#[test]
fn table_quota_and_busy_shedding_are_deterministic() {
    // Table quota: a tenant provisioned for one table gets ERR_QUOTA on
    // the second create, and the refused create consumed no quota.
    let session = Session::with_seed(0x150_0002).expect("session");
    let mut spec = TenantSpec::new("acme", "tok");
    spec.max_tables = 1;
    let handle =
        NetServer::start(session, vec![spec], NetServerConfig::default()).expect("server start");
    let mut client = NetClient::connect(handle.addr(), "acme", "tok").expect("connect");
    client.execute("CREATE TABLE t (v ED2(8))").expect("first");
    let err = client
        .execute("CREATE TABLE u (v ED2(8))")
        .expect_err("quota");
    assert!(
        err.to_string().contains("server error 4") && err.to_string().contains("quota"),
        "{err}"
    );
    client.close();
    handle.shutdown().expect("shutdown");

    // Query admission: with a zero in-flight budget every query is shed
    // with BUSY carrying the configured backoff, and the handshake (not
    // subject to query admission) still succeeds.
    let session = Session::with_seed(0x150_0003).expect("session");
    let handle = NetServer::start(
        session,
        vec![TenantSpec::new("acme", "tok")],
        NetServerConfig {
            max_inflight_queries: 0,
            retry_after_ms: 33,
            ..NetServerConfig::default()
        },
    )
    .expect("server start");
    let mut client = NetClient::connect(handle.addr(), "acme", "tok").expect("connect");
    for _ in 0..3 {
        match client.execute("SELECT v FROM t") {
            Err(DbError::ServerBusy { retry_after_ms }) => assert_eq!(retry_after_ms, 33),
            other => panic!("expected ServerBusy, got {other:?}"),
        }
    }
    client.close();
    let session = handle.shutdown().expect("shutdown");
    assert_eq!(
        session.metrics_report().counter("net_busy_replies_total"),
        3
    );
}

#[test]
fn bad_credentials_never_reach_the_query_path() {
    let session = Session::with_seed(0x150_0004).expect("session");
    let handle = NetServer::start(
        session,
        vec![TenantSpec::new("acme", "tok")],
        NetServerConfig::default(),
    )
    .expect("server start");

    for (tenant, token) in [("acme", "wrong"), ("nobody", "tok")] {
        let err = NetClient::connect(handle.addr(), tenant, token).expect_err("rejected");
        assert!(err.to_string().contains("server error 2"), "{err}");
    }

    let session = handle.shutdown().expect("shutdown");
    let m = session.metrics_report();
    assert_eq!(m.counter("net_auth_failures_total"), 2);
    assert_eq!(
        m.counter("net_requests_total"),
        0,
        "rejected connections must execute nothing"
    );
}
