//! Analytic engine correctness: every aggregate / GROUP BY / ORDER BY /
//! LIMIT result is compared against a plaintext MonetDB-baseline
//! evaluation (filter via `MonetColumn`'s linear range scan, grouping and
//! aggregation in plain Rust) — across all nine encrypted dictionary
//! kinds plus PLAIN, with delta-store rows and deletions in the mix.

use colstore::column::Column;
use colstore::monetdb::MonetColumn;
use encdbdb::{DbError, Session};
use std::collections::BTreeMap;

/// One logical row of the plaintext mirror: (group, value, plain-value).
type MirrorRow = (String, String, String);

const GROUPS: [&str; 4] = ["amer", "anz", "apj", "emea"];

fn value_of(i: usize) -> String {
    format!("{:04}", (i * 37) % 300)
}

fn plain_of(i: usize) -> String {
    format!("{:03}", (i * 11) % 90)
}

fn group_of(i: usize) -> String {
    GROUPS[i % GROUPS.len()].to_string()
}

/// Builds a session whose table mixes main-store rows (via merge),
/// delta-store rows, and deletions — returning the plaintext mirror of
/// the valid rows. With `partitioned`, the table is range-partitioned on
/// `v` into three shards with splits inside the value domain.
fn build_with(choice: &str, seed: u64, partitioned: bool) -> (Session, Vec<MirrorRow>) {
    let mut db = Session::with_seed(seed).unwrap();
    let clause = if partitioned {
        " PARTITION BY RANGE (v) SPLIT ('0100', '0200')"
    } else {
        ""
    };
    db.execute(&format!(
        "CREATE TABLE t (g {choice}(8), v {choice}(8), p PLAIN(8)){clause}"
    ))
    .unwrap();
    let mut mirror: Vec<MirrorRow> = Vec::new();
    let insert = |db: &mut Session, mirror: &mut Vec<MirrorRow>, range: std::ops::Range<usize>| {
        let rows: Vec<String> = range
            .map(|i| {
                let row = (group_of(i), value_of(i), plain_of(i));
                let sql = format!("('{}', '{}', '{}')", row.0, row.1, row.2);
                mirror.push(row);
                sql
            })
            .collect();
        db.execute(&format!("INSERT INTO t VALUES {}", rows.join(", ")))
            .unwrap();
    };
    insert(&mut db, &mut mirror, 0..120);
    // Delete one value everywhere, then merge into the main store.
    let victim = value_of(3);
    db.execute(&format!("DELETE FROM t WHERE v = '{victim}'"))
        .unwrap();
    mirror.retain(|r| r.1 != victim);
    db.merge("t").unwrap();
    // Delta rows on top, plus a deletion that hits main and delta.
    insert(&mut db, &mut mirror, 120..150);
    let victim = value_of(8);
    db.execute(&format!("DELETE FROM t WHERE v = '{victim}'"))
        .unwrap();
    mirror.retain(|r| r.1 != victim);
    (db, mirror)
}

fn build(choice: &str, seed: u64) -> (Session, Vec<MirrorRow>) {
    build_with(choice, seed, false)
}

/// MonetDB-baseline filter: linear string-comparison range scan over the
/// mirror's `v` column.
fn filter_rows<'a>(mirror: &'a [MirrorRow], lo: &str, hi: &str) -> Vec<&'a MirrorRow> {
    let column = Column::from_strs("v", 8, mirror.iter().map(|r| r.1.as_str())).unwrap();
    let monet = MonetColumn::ingest(&column);
    monet
        .range_search_inclusive(lo.as_bytes(), hi.as_bytes())
        .into_iter()
        .map(|rid| &mirror[rid.0 as usize])
        .collect()
}

fn grouped_sums(rows: &[&MirrorRow]) -> BTreeMap<String, i128> {
    let mut sums = BTreeMap::new();
    for r in rows {
        *sums.entry(r.0.clone()).or_insert(0i128) += r.1.parse::<i128>().unwrap();
    }
    sums
}

const ALL_CHOICES: [&str; 10] = [
    "ED1", "ED2", "ED3", "ED4", "ED5", "ED6", "ED7", "ED8", "ED9", "PLAIN",
];

#[test]
fn flagship_grouped_sum_matches_baseline_on_all_kinds() {
    for (i, choice) in ALL_CHOICES.iter().enumerate() {
        let (mut db, mirror) = build(choice, 900 + i as u64);
        let (lo, hi) = ("0050", "0250");
        let result = db
            .execute(&format!(
                "SELECT g, SUM(v) FROM t WHERE v BETWEEN '{lo}' AND '{hi}' \
                 GROUP BY g ORDER BY 2 DESC LIMIT 10"
            ))
            .unwrap();
        assert_eq!(result.columns, vec!["g", "sum(v)"]);

        // Baseline: MonetDB-style linear filter, plain grouping, explicit
        // sort (sum descending, group ascending as the engine's canonical
        // full-row tiebreak).
        let matching = filter_rows(&mirror, lo, hi);
        let mut expected: Vec<(String, i128)> = grouped_sums(&matching).into_iter().collect();
        expected.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        expected.truncate(10);
        let expected: Vec<Vec<String>> = expected
            .into_iter()
            .map(|(g, s)| vec![g, s.to_string()])
            .collect();
        assert_eq!(result.rows_as_strings(), expected, "kind {choice}");
        assert!(!result.rows.is_empty(), "kind {choice}: empty result");
    }
}

#[test]
fn full_aggregate_battery_matches_baseline_on_all_kinds() {
    for (i, choice) in ALL_CHOICES.iter().enumerate() {
        let (mut db, mirror) = build(choice, 930 + i as u64);
        let (lo, hi) = ("0020", "0270");
        let result = db
            .execute(&format!(
                "SELECT g, COUNT(*), MIN(v), MAX(v), AVG(v) FROM t \
                 WHERE v BETWEEN '{lo}' AND '{hi}' GROUP BY g ORDER BY g"
            ))
            .unwrap();
        assert_eq!(
            result.columns,
            vec!["g", "count", "min(v)", "max(v)", "avg(v)"]
        );
        let matching = filter_rows(&mirror, lo, hi);
        let mut by_group: BTreeMap<String, Vec<&str>> = BTreeMap::new();
        for r in &matching {
            by_group.entry(r.0.clone()).or_default().push(r.1.as_str());
        }
        let expected: Vec<Vec<String>> = by_group
            .into_iter()
            .map(|(g, vs)| {
                let count = vs.len() as u64;
                let min = vs.iter().min().unwrap().to_string();
                let max = vs.iter().max().unwrap().to_string();
                let sum: i128 = vs.iter().map(|v| v.parse::<i128>().unwrap()).sum();
                let avg = String::from_utf8(encdict::aggregate::render_avg(sum, count)).unwrap();
                vec![g, count.to_string(), min, max, avg]
            })
            .collect();
        assert_eq!(result.rows_as_strings(), expected, "kind {choice}");
    }
}

#[test]
fn multi_partition_aggregates_match_the_monolithic_table_on_all_kinds() {
    // The acceptance property of the partition layer: a three-shard table
    // fed the same inserts/deletes/merges returns byte-identical grouped
    // aggregates — partial aggregates merged in the trusted core — for
    // every ED kind and PLAIN. The monolithic side is itself baselined
    // against MonetDB by the tests above, so transitively the partitioned
    // executor is too.
    let queries = [
        // Straddles both split points; groups span shards.
        "SELECT g, SUM(v), COUNT(*) FROM t WHERE v BETWEEN '0050' AND '0250' \
         GROUP BY g ORDER BY 2 DESC LIMIT 10",
        // Full battery, unfiltered (all shards scanned).
        "SELECT g, COUNT(*), MIN(v), MAX(v), AVG(v) FROM t GROUP BY g ORDER BY g",
        // Global aggregate (no GROUP BY) across shards.
        "SELECT COUNT(*), SUM(v), MIN(v), MAX(v) FROM t",
        // Filter confined to the middle shard only (pruning on).
        "SELECT g, SUM(v) FROM t WHERE v BETWEEN '0100' AND '0199' GROUP BY g ORDER BY 1",
        // PLAIN aggregate grouped by the encrypted partition column.
        "SELECT v, SUM(p) FROM t WHERE v >= '0200' GROUP BY v ORDER BY 1 LIMIT 8",
    ];
    for (i, choice) in ALL_CHOICES.iter().enumerate() {
        let (mut mono, mirror_mono) = build_with(choice, 910 + i as u64, false);
        let (mut sharded, mirror_sharded) = build_with(choice, 910 + i as u64, true);
        assert_eq!(mirror_mono, mirror_sharded, "same logical content");
        for q in queries {
            let a = mono.execute(q).unwrap();
            let b = sharded.execute(q).unwrap();
            assert_eq!(
                a.rows_as_strings(),
                b.rows_as_strings(),
                "kind {choice}: {q}"
            );
        }
        // The sharded run scanned multiple partitions to get there.
        let stats = sharded.server().last_stats();
        assert_eq!(stats.partitions_total, 3, "kind {choice}");
    }
}

#[test]
fn mixed_plain_aggregate_over_encrypted_groups() {
    // SUM over the PLAIN column grouped by an encrypted column, and the
    // reverse grouping by the PLAIN column — both against the baseline.
    for choice in ["ED5", "ED9"] {
        let (mut db, mirror) = build(choice, 960);
        let result = db
            .execute("SELECT g, SUM(p) FROM t GROUP BY g ORDER BY 1")
            .unwrap();
        let mut sums: BTreeMap<String, i128> = BTreeMap::new();
        for r in &mirror {
            *sums.entry(r.0.clone()).or_insert(0) += r.2.parse::<i128>().unwrap();
        }
        let expected: Vec<Vec<String>> = sums
            .into_iter()
            .map(|(g, s)| vec![g, s.to_string()])
            .collect();
        assert_eq!(result.rows_as_strings(), expected, "kind {choice}");

        let result = db
            .execute("SELECT p, COUNT(*) FROM t GROUP BY p ORDER BY 2 DESC, 1 LIMIT 5")
            .unwrap();
        let mut counts: BTreeMap<String, u64> = BTreeMap::new();
        for r in &mirror {
            *counts.entry(r.2.clone()).or_insert(0) += 1;
        }
        let mut expected: Vec<(String, u64)> = counts.into_iter().collect();
        expected.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        expected.truncate(5);
        let expected: Vec<Vec<String>> = expected
            .into_iter()
            .map(|(p, c)| vec![p, c.to_string()])
            .collect();
        assert_eq!(result.rows_as_strings(), expected, "kind {choice}");
    }
}

#[test]
fn group_by_without_aggregates_is_distinct() {
    let (mut db, mirror) = build("ED7", 970);
    let result = db.execute("SELECT g FROM t GROUP BY g ORDER BY g").unwrap();
    let mut expected: Vec<String> = mirror.iter().map(|r| r.0.clone()).collect();
    expected.sort();
    expected.dedup();
    let expected: Vec<Vec<String>> = expected.into_iter().map(|g| vec![g]).collect();
    assert_eq!(result.rows_as_strings(), expected);
}

#[test]
fn decrypt_calls_bounded_by_distinct_value_ids_not_rows() {
    // A heavily repetitive column: 150 rows over ≤ 4 groups and ≤ 30
    // distinct values. With a frequency-revealing dictionary the enclave
    // must decrypt at most (distinct g + distinct v) values, far below the
    // matching row count.
    let mut db = Session::with_seed(980).unwrap();
    db.execute("CREATE TABLE t (g ED1(8), v ED1(8))").unwrap();
    let rows: Vec<String> = (0..150)
        .map(|i| format!("('{}', '{:03}')", group_of(i), (i * 7) % 30))
        .collect();
    db.execute(&format!("INSERT INTO t VALUES {}", rows.join(", ")))
        .unwrap();
    db.merge("t").unwrap();
    let result = db
        .execute("SELECT g, SUM(v) FROM t GROUP BY g ORDER BY 2 DESC")
        .unwrap();
    assert_eq!(result.row_count(), 4);
    let stats = db.server().last_stats();
    // No filter: no dictionary search; exactly one aggregation ECALL.
    assert_eq!(stats.enclave_calls, 1);
    assert!(stats.values_decrypted > 0);
    assert!(
        stats.values_decrypted <= 4 + 30,
        "decrypted {} values for ≤ 34 distinct ValueIDs",
        stats.values_decrypted
    );
    assert!(
        stats.values_decrypted < 150,
        "bounded by distinct, not rows"
    );
    assert!(stats.chunks_scanned >= 1);
    assert_eq!(stats.result_rows, 4);

    // A filtered aggregate adds exactly one search ECALL (empty delta).
    let result = db
        .execute("SELECT g, SUM(v) FROM t WHERE v BETWEEN '005' AND '020' GROUP BY g ORDER BY 1")
        .unwrap();
    assert!(result.row_count() > 0);
    let stats = db.server().last_stats();
    assert_eq!(stats.enclave_calls, 2);
}

#[test]
fn frequency_hiding_dictionaries_decrypt_once_per_row_entry() {
    // ED9 hides frequencies: every occurrence has its own dictionary
    // entry, so distinct touched ValueIDs = matching rows — the histogram
    // is all-ones (padded) and the decrypt bound degrades to the row
    // count, exactly as DESIGN.md §8 documents.
    let mut db = Session::with_seed(981).unwrap();
    db.execute("CREATE TABLE t (g ED9(8), v ED9(8))").unwrap();
    let rows: Vec<String> = (0..60)
        .map(|i| format!("('{}', '{:03}')", group_of(i), (i * 7) % 10))
        .collect();
    db.execute(&format!("INSERT INTO t VALUES {}", rows.join(", ")))
        .unwrap();
    db.merge("t").unwrap();
    db.execute("SELECT g, SUM(v) FROM t GROUP BY g").unwrap();
    let stats = db.server().last_stats();
    assert_eq!(
        stats.values_decrypted,
        2 * 60,
        "one entry per row and column"
    );
}

#[test]
fn aggregates_over_empty_and_unfiltered_tables() {
    let mut db = Session::with_seed(982).unwrap();
    db.execute("CREATE TABLE t (g ED5(8), v ED5(8))").unwrap();
    // Empty table: COUNT returns 0, SUM returns NULL (empty string).
    let r = db.execute("SELECT COUNT(*), SUM(v) FROM t").unwrap();
    assert_eq!(
        r.rows_as_strings(),
        vec![vec!["0".to_string(), String::new()]]
    );
    // Grouped aggregate over an empty table: no rows.
    let r = db.execute("SELECT g, COUNT(*) FROM t GROUP BY g").unwrap();
    assert_eq!(r.row_count(), 0);
}

#[test]
fn sum_over_non_numeric_column_errors() {
    let mut db = Session::with_seed(983).unwrap();
    db.execute("CREATE TABLE t (v ED2(8))").unwrap();
    db.execute("INSERT INTO t VALUES ('abc'), ('def')").unwrap();
    assert!(matches!(
        db.execute("SELECT SUM(v) FROM t"),
        Err(DbError::Dict(encdict::EncdictError::Aggregate(_)))
    ));
    // MIN/MAX stay bytewise and fine.
    let r = db.execute("SELECT MIN(v), MAX(v) FROM t").unwrap();
    assert_eq!(
        r.rows_as_strings(),
        vec![vec!["abc".to_string(), "def".to_string()]]
    );
}

#[test]
fn order_by_and_limit_on_plain_row_selects() {
    let (mut db, mirror) = build("ED4", 984);
    let result = db
        .execute("SELECT v, g FROM t ORDER BY v DESC, g LIMIT 7")
        .unwrap();
    let mut expected: Vec<Vec<String>> = mirror
        .iter()
        .map(|r| vec![r.1.clone(), r.0.clone()])
        .collect();
    expected.sort_by(|a, b| b[0].cmp(&a[0]).then_with(|| a[1].cmp(&b[1])));
    expected.truncate(7);
    assert_eq!(result.rows_as_strings(), expected);
}
