//! Model-based differential testing of the dynamic-data path (§4.3):
//! proptest-generated interleavings of insert / delete / range select /
//! aggregate / compact run against every encrypted dictionary kind plus
//! PLAIN, and every operation's result is checked against a plaintext
//! model whose reads go through the MonetDB-style baseline column
//! (`MonetColumn` linear range scan).
//!
//! The schedules deliberately interleave compactions with reads and
//! writes so every operation is exercised against main-only, delta-only
//! and mixed main+delta states, across merge generations.
//!
//! The same schedules also run against **range-partitioned** tables
//! (split points inside the value domain, so inserts land on and around
//! the boundaries and range/delete/aggregate ops straddle the splits):
//! per-partition deltas, per-partition merges and the partition-parallel
//! executor must be indistinguishable from the monolithic table — and
//! from the plaintext baseline.
//!
//! Finally, the schedules run in **durable** mode (DESIGN.md §12):
//! `Restart` steps tear the whole session down — enclaves, keys, every
//! in-memory table — and reopen it from sealed snapshots plus the WAL.
//! The recovered server must keep answering exactly like the plaintext
//! model, mid-schedule and after a final restart, with zero owner
//! re-deployment.

use colstore::column::Column;
use colstore::monetdb::MonetColumn;
use encdbdb::Session;
use proptest::prelude::*;
use std::path::PathBuf;

const CHOICES: [&str; 10] = [
    "ED1", "ED2", "ED3", "ED4", "ED5", "ED6", "ED7", "ED8", "ED9", "PLAIN",
];

/// One schedule step, decoded from a generated `(kind, a, b)` triple.
#[derive(Debug, Clone)]
enum Op {
    Insert(String),
    Delete(String, String),
    Range(String, String),
    Agg(String, String),
    Compact,
    Restart,
}

/// Where the schedule's tables live.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Purely in memory (the pre-durability behavior): `Restart` degrades
    /// to a merge, keeping these schedules byte-identical to what they
    /// exercised before durable storage existed.
    InMemory,
    /// Backed by sealed snapshots and a WAL in a temp directory; `Restart`
    /// drops the entire session and recovers it from disk.
    Durable,
}

fn value(x: u32) -> String {
    format!("{:04}", x % 60)
}

fn bounds(a: u32, b: u32) -> (String, String) {
    let (lo, hi) = if a % 60 <= b % 60 { (a, b) } else { (b, a) };
    (value(lo), value(hi))
}

fn decode(kind: u8, a: u32, b: u32) -> Op {
    match kind % 10 {
        0..=3 => Op::Insert(value(a)),
        4 => {
            let (lo, hi) = bounds(a, b);
            Op::Delete(lo, hi)
        }
        5 | 6 => {
            let (lo, hi) = bounds(a, b);
            Op::Range(lo, hi)
        }
        7 | 8 => {
            let (lo, hi) = bounds(a, b);
            Op::Agg(lo, hi)
        }
        _ => {
            if a % 2 == 1 {
                Op::Restart
            } else {
                Op::Compact
            }
        }
    }
}

/// A fresh per-schedule storage directory for durable runs.
fn durable_dir() -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "encdbdb-diff-{}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The plaintext model: the logical multiset of valid rows, read through
/// the MonetDB baseline.
#[derive(Debug, Default)]
struct Model {
    rows: Vec<String>,
}

impl Model {
    fn baseline(&self) -> MonetColumn {
        let column = Column::from_strs("v", 8, self.rows.iter()).expect("model values fit");
        MonetColumn::ingest(&column)
    }

    /// Values matched by `[lo, hi]`, via the baseline's linear range scan.
    fn range(&self, lo: &str, hi: &str) -> Vec<String> {
        if self.rows.is_empty() {
            return Vec::new();
        }
        let baseline = self.baseline();
        let mut out: Vec<String> = baseline
            .range_search_inclusive(lo.as_bytes(), hi.as_bytes())
            .into_iter()
            .map(|rid| String::from_utf8_lossy(baseline.value(rid)).into_owned())
            .collect();
        out.sort();
        out
    }
}

/// Split points for the partitioned runs: inside the 0..60 domain, so
/// partition 0 covers `< "0015"`, 1 covers `["0015", "0030")`, 2 covers
/// `["0030", "0045")` and 3 covers `>= "0045"`. Domain values hit the
/// split points exactly (boundary rows) and random ranges straddle them.
const SPLITS: &str = "'0015', '0030', '0045'";

fn run_schedule(
    choice: &str,
    seed: u64,
    triples: &[(u8, u32, u32)],
    partitioned: bool,
    mode: Mode,
) -> Result<(), TestCaseError> {
    let dir = durable_dir();
    let mut db = match mode {
        Mode::InMemory => Session::with_seed(seed).expect("session setup"),
        Mode::Durable => Session::with_seed_durable(seed, &dir).expect("durable session setup"),
    };
    let partition_clause = if partitioned {
        format!(" PARTITION BY RANGE (v) SPLIT ({SPLITS})")
    } else {
        String::new()
    };
    db.execute(&format!("CREATE TABLE t (v {choice}(8)){partition_clause}"))
        .expect("create table");
    let mut model = Model::default();

    for (step, &(kind, a, b)) in triples.iter().enumerate() {
        let op = decode(kind, a, b);
        match &op {
            Op::Insert(v) => {
                db.execute(&format!("INSERT INTO t VALUES ('{v}')"))
                    .expect("insert");
                model.rows.push(v.clone());
            }
            Op::Delete(lo, hi) => {
                let r = db
                    .execute(&format!("DELETE FROM t WHERE v BETWEEN '{lo}' AND '{hi}'"))
                    .expect("delete");
                let expected = model.range(lo, hi).len();
                prop_assert_eq!(
                    r.rows_as_strings()[0][0].clone(),
                    expected.to_string(),
                    "{} step {}: delete count for [{}, {}]",
                    choice,
                    step,
                    lo,
                    hi
                );
                model
                    .rows
                    .retain(|v| v.as_str() < lo.as_str() || v.as_str() > hi.as_str());
            }
            Op::Range(lo, hi) => {
                let r = db
                    .execute(&format!(
                        "SELECT v FROM t WHERE v BETWEEN '{lo}' AND '{hi}'"
                    ))
                    .expect("range select");
                let mut got: Vec<String> = r
                    .rows_as_strings()
                    .into_iter()
                    .map(|mut row| row.remove(0))
                    .collect();
                got.sort();
                prop_assert_eq!(
                    got,
                    model.range(lo, hi),
                    "{} step {}: range [{}, {}]",
                    choice,
                    step,
                    lo,
                    hi
                );
            }
            Op::Agg(lo, hi) => {
                let r = db
                    .execute(&format!(
                        "SELECT COUNT(*), SUM(v) FROM t WHERE v BETWEEN '{lo}' AND '{hi}'"
                    ))
                    .expect("aggregate");
                let matched = model.range(lo, hi);
                let expected_sum = if matched.is_empty() {
                    String::new()
                } else {
                    matched
                        .iter()
                        .map(|v| v.parse::<u64>().expect("numeric domain"))
                        .sum::<u64>()
                        .to_string()
                };
                let rows = r.rows_as_strings();
                prop_assert_eq!(rows.len(), 1, "{} step {}: one aggregate row", choice, step);
                prop_assert_eq!(
                    rows[0].clone(),
                    vec![matched.len().to_string(), expected_sum],
                    "{} step {}: COUNT/SUM over [{}, {}]",
                    choice,
                    step,
                    lo,
                    hi
                );
            }
            Op::Compact => {
                db.merge("t").expect("merge");
            }
            Op::Restart => match mode {
                // In memory there is nothing to restart from; degrade to a
                // merge so the schedule distribution stays unchanged.
                Mode::InMemory => db.merge("t").expect("merge"),
                Mode::Durable => {
                    db.server().wait_for_compaction("t").expect("quiesce");
                    let key = db.master_key();
                    drop(db);
                    db = Session::open(&dir, key, seed.wrapping_add(1000 + step as u64))
                        .expect("recover from disk");
                }
            },
        }
        // Invariant after every operation: the server's logical row count
        // matches the model.
        prop_assert_eq!(
            db.server().row_count("t").expect("row count"),
            model.rows.len(),
            "{} step {}: row count after {:?}",
            choice,
            step,
            op
        );
    }

    // Durable runs always end with one more full restart, so every case
    // proves the recovered server — not just the original one — holds the
    // final answer.
    if mode == Mode::Durable {
        db.server().wait_for_compaction("t").expect("quiesce");
        let key = db.master_key();
        drop(db);
        db = Session::open(&dir, key, seed.wrapping_add(7777)).expect("final recover");
    }

    // Final full-table check across whatever main/delta split the schedule
    // left behind.
    let r = db.execute("SELECT v FROM t").expect("final select");
    let mut got: Vec<String> = r
        .rows_as_strings()
        .into_iter()
        .map(|mut row| row.remove(0))
        .collect();
    got.sort();
    let mut expected = model.rows.clone();
    expected.sort();
    prop_assert_eq!(got, expected, "{}: final table contents", choice);

    if mode == Mode::Durable {
        db.server().wait_for_compaction("t").expect("quiesce");
        drop(db);
        let _ = std::fs::remove_dir_all(&dir);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Every interleaving, against all nine encrypted dictionary kinds
    /// plus PLAIN, behaves exactly like the plaintext MonetDB baseline.
    #[test]
    fn interleavings_match_the_plaintext_model(
        triples in prop::collection::vec((0u8..10, 0u32..600, 0u32..600), 1..28),
        seed in 0u64..100_000,
    ) {
        for choice in CHOICES {
            run_schedule(choice, seed, &triples, false, Mode::InMemory)?;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The same interleavings over a four-shard range-partitioned table:
    /// per-partition deltas, per-partition merges (a `Compact` op merges
    /// every shard that has work) and partition-parallel range/aggregate
    /// execution stay byte-identical to the plaintext MonetDB baseline,
    /// for all nine ED kinds plus PLAIN — including rows inserted exactly
    /// on split points and ranges straddling them.
    #[test]
    fn partitioned_interleavings_match_the_plaintext_model(
        triples in prop::collection::vec((0u8..10, 0u32..600, 0u32..600), 1..28),
        seed in 0u64..100_000,
    ) {
        for choice in CHOICES {
            run_schedule(choice, seed, &triples, true, Mode::InMemory)?;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// The same interleavings against a durable deployment, with `Restart`
    /// steps dropping the session (enclaves, keys, all in-memory state)
    /// mid-schedule and recovering it from sealed snapshots plus the WAL —
    /// plus one guaranteed final restart before the last full-table check.
    /// The recovered server must stay indistinguishable from the plaintext
    /// MonetDB baseline for all nine ED kinds plus PLAIN.
    #[test]
    fn durable_interleavings_survive_restarts(
        triples in prop::collection::vec((0u8..10, 0u32..600, 0u32..600), 1..20),
        seed in 0u64..100_000,
    ) {
        for choice in CHOICES {
            run_schedule(choice, seed, &triples, false, Mode::Durable)?;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2))]

    /// Durable restarts over the four-shard partitioned table: recovery
    /// reassembles every partition (its own snapshot epoch and WAL suffix)
    /// and the partition-parallel executor keeps matching the baseline.
    #[test]
    fn durable_partitioned_interleavings_survive_restarts(
        triples in prop::collection::vec((0u8..10, 0u32..600, 0u32..600), 1..20),
        seed in 0u64..100_000,
    ) {
        for choice in CHOICES {
            run_schedule(choice, seed, &triples, true, Mode::Durable)?;
        }
    }
}

/// Deterministic boundary regression: rows on, just below and just above
/// every split point, exercised with point and straddling queries.
#[test]
fn split_point_boundaries_route_and_query_exactly() {
    for choice in CHOICES {
        let mut db = Session::with_seed(0xB0).expect("session setup");
        db.execute(&format!(
            "CREATE TABLE t (v {choice}(8)) PARTITION BY RANGE (v) SPLIT ({SPLITS})"
        ))
        .expect("create table");
        let values = [
            "0000", "0014", "0015", "0016", "0029", "0030", "0031", "0044", "0045", "0046", "0059",
        ];
        for v in values {
            db.execute(&format!("INSERT INTO t VALUES ('{v}')"))
                .unwrap();
        }
        // A split-point value belongs to the shard it opens.
        for (q, expected) in [
            ("SELECT v FROM t WHERE v = '0015'", 1usize),
            ("SELECT v FROM t WHERE v = '0030'", 1),
            ("SELECT v FROM t WHERE v < '0015'", 2),
            ("SELECT v FROM t WHERE v >= '0045'", 3),
            ("SELECT v FROM t WHERE v BETWEEN '0014' AND '0016'", 3),
            ("SELECT v FROM t WHERE v BETWEEN '0029' AND '0045'", 5),
            (
                "SELECT COUNT(*) FROM t WHERE v BETWEEN '0000' AND '0059'",
                1,
            ),
        ] {
            let r = db.execute(q).unwrap();
            assert_eq!(r.row_count(), expected, "{choice}: {q}");
        }
        assert_eq!(
            db.execute("SELECT COUNT(*) FROM t")
                .unwrap()
                .rows_as_strings(),
            vec![vec![values.len().to_string()]],
            "{choice}: total count"
        );
        // Merge every shard, then re-check a straddling range.
        db.merge("t").unwrap();
        let r = db
            .execute("SELECT v FROM t WHERE v BETWEEN '0014' AND '0046'")
            .unwrap();
        assert_eq!(r.row_count(), 9, "{choice}: post-merge straddle");
        let stats = db.server().compaction_stats("t").unwrap();
        assert_eq!(stats.partition_epochs, vec![1, 1, 1, 1], "{choice}");
    }
}
