//! Differential proof that the cross-session ECALL batching scheduler
//! (DESIGN.md §15) is invisible in query results and — for serial
//! workloads — byte-for-byte invisible in the leakage ledger.
//!
//! Three angles:
//!
//! * **Paired legs.** Proptest-generated interleavings of insert /
//!   delete / range select / aggregate / compact run twice from the same
//!   seed — once with batching on (the default), once through the
//!   bypass (`set_ecall_batching(false)`, the pre-scheduler
//!   lock-per-call path). Every read must match the other leg *and* a
//!   plaintext model, for all nine ED kinds plus PLAIN; and because a
//!   serial client only ever produces rounds of one, the two legs'
//!   leakage ledgers must agree exactly, per kind and per byte.
//! * **Forced coalescing.** Readers are pinned behind a held enclave
//!   lock so their searches provably share a transition, then their
//!   replies are checked bit-for-bit against answers precomputed
//!   through the bypass — no cross-wiring, fewer transitions.
//! * **Compaction publish mid-batch.** Requests pinned to an old store
//!   generation are queued while a merge publishes a new epoch; they
//!   must still answer correctly (each owns its snapshot's segments),
//!   and a post-publish query over the new generation agrees.
//!
//! Thread/case counts are bounded for CI via `ENCDBDB_STRESS_THREADS`.

use encdbdb::{EcallKind, Session};
use proptest::prelude::*;

const CHOICES: [&str; 10] = [
    "ED1", "ED2", "ED3", "ED4", "ED5", "ED6", "ED7", "ED8", "ED9", "PLAIN",
];

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn value(x: u32) -> String {
    format!("{:04}", x % 60)
}

fn bounds(a: u32, b: u32) -> (String, String) {
    let (lo, hi) = if a % 60 <= b % 60 { (a, b) } else { (b, a) };
    (value(lo), value(hi))
}

/// One schedule step, decoded from a generated `(kind, a, b)` triple
/// (same distribution as `dynamic_differential.rs`, with `Restart`
/// folded into `Compact` — batching is orthogonal to durability).
#[derive(Debug, Clone)]
enum Op {
    Insert(String),
    Delete(String, String),
    Range(String, String),
    Agg(String, String),
    Compact,
}

fn decode(kind: u8, a: u32, b: u32) -> Op {
    match kind % 10 {
        0..=3 => Op::Insert(value(a)),
        4 => {
            let (lo, hi) = bounds(a, b);
            Op::Delete(lo, hi)
        }
        5 | 6 => {
            let (lo, hi) = bounds(a, b);
            Op::Range(lo, hi)
        }
        7 | 8 => {
            let (lo, hi) = bounds(a, b);
            Op::Agg(lo, hi)
        }
        _ => Op::Compact,
    }
}

/// The plaintext model: values in `[lo, hi]`, sorted. The fixed-width
/// zero-padded domain makes lexicographic order numeric order.
fn matched(rows: &[String], lo: &str, hi: &str) -> Vec<String> {
    let mut out: Vec<String> = rows
        .iter()
        .filter(|v| v.as_str() >= lo && v.as_str() <= hi)
        .cloned()
        .collect();
    out.sort();
    out
}

fn sorted_col(r: encdbdb::QueryResult) -> Vec<String> {
    let mut got: Vec<String> = r
        .rows_as_strings()
        .into_iter()
        .map(|mut row| row.remove(0))
        .collect();
    got.sort();
    got
}

/// Runs one schedule through both legs and checks every observable —
/// results, row counts and (serial ⇒ singleton rounds only) the full
/// per-kind leakage ledger — for equality.
fn run_legs(choice: &str, seed: u64, triples: &[(u8, u32, u32)]) -> Result<(), TestCaseError> {
    let mut batched = Session::with_seed(seed).expect("batched session");
    let mut bypass = Session::with_seed(seed).expect("bypass session");
    assert!(batched.server().ecall_batching(), "batching is the default");
    bypass.server().set_ecall_batching(false);
    // Only explicit `Compact` steps merge: the threshold-driven policy
    // would race background rebuilds against the schedule, and a merge
    // publishing mid-delete retries the delete's searches — making the
    // per-byte ledger comparison below timing-dependent in *both* legs.
    batched.server().set_compaction_policy(None);
    bypass.server().set_compaction_policy(None);

    let create = format!("CREATE TABLE t (v {choice}(8))");
    batched.execute(&create).expect("create (batched)");
    bypass.execute(&create).expect("create (bypass)");
    let mut rows: Vec<String> = Vec::new();

    for (step, &(kind, a, b)) in triples.iter().enumerate() {
        let op = decode(kind, a, b);
        match &op {
            Op::Insert(v) => {
                let q = format!("INSERT INTO t VALUES ('{v}')");
                batched.execute(&q).expect("insert (batched)");
                bypass.execute(&q).expect("insert (bypass)");
                rows.push(v.clone());
            }
            Op::Delete(lo, hi) => {
                let q = format!("DELETE FROM t WHERE v BETWEEN '{lo}' AND '{hi}'");
                let rb = batched.execute(&q).expect("delete (batched)");
                let rd = bypass.execute(&q).expect("delete (bypass)");
                let expected = matched(&rows, lo, hi).len().to_string();
                prop_assert_eq!(
                    rb.rows_as_strings()[0][0].clone(),
                    expected.clone(),
                    "{} step {}: batched delete count",
                    choice,
                    step
                );
                prop_assert_eq!(
                    rd.rows_as_strings()[0][0].clone(),
                    expected,
                    "{} step {}: bypass delete count",
                    choice,
                    step
                );
                rows.retain(|v| v.as_str() < lo.as_str() || v.as_str() > hi.as_str());
            }
            Op::Range(lo, hi) => {
                let q = format!("SELECT v FROM t WHERE v BETWEEN '{lo}' AND '{hi}'");
                let got_b = sorted_col(batched.execute(&q).expect("range (batched)"));
                let got_d = sorted_col(bypass.execute(&q).expect("range (bypass)"));
                prop_assert_eq!(
                    &got_b,
                    &got_d,
                    "{} step {}: legs disagree on [{}, {}]",
                    choice,
                    step,
                    lo,
                    hi
                );
                prop_assert_eq!(
                    got_b,
                    matched(&rows, lo, hi),
                    "{} step {}: batched leg vs model",
                    choice,
                    step
                );
            }
            Op::Agg(lo, hi) => {
                let q = format!("SELECT COUNT(*), SUM(v) FROM t WHERE v BETWEEN '{lo}' AND '{hi}'");
                let rows_b = batched
                    .execute(&q)
                    .expect("agg (batched)")
                    .rows_as_strings();
                let rows_d = bypass.execute(&q).expect("agg (bypass)").rows_as_strings();
                prop_assert_eq!(&rows_b, &rows_d, "{} step {}: aggregate legs", choice, step);
                let hit = matched(&rows, lo, hi);
                let sum = if hit.is_empty() {
                    String::new()
                } else {
                    hit.iter()
                        .map(|v| v.parse::<u64>().expect("numeric domain"))
                        .sum::<u64>()
                        .to_string()
                };
                prop_assert_eq!(
                    rows_b,
                    vec![vec![hit.len().to_string(), sum]],
                    "{} step {}: aggregate vs model",
                    choice,
                    step
                );
            }
            Op::Compact => {
                batched.merge("t").expect("merge (batched)");
                bypass.merge("t").expect("merge (bypass)");
            }
        }
        prop_assert_eq!(
            batched.server().row_count("t").expect("row count"),
            rows.len(),
            "{} step {}: row count after {:?}",
            choice,
            step,
            op
        );
    }

    let got_b = sorted_col(batched.execute("SELECT v FROM t").expect("final (batched)"));
    let got_d = sorted_col(bypass.execute("SELECT v FROM t").expect("final (bypass)"));
    prop_assert_eq!(&got_b, &got_d, "{}: final contents differ", choice);
    let mut expected = rows.clone();
    expected.sort();
    prop_assert_eq!(got_b, expected, "{}: final contents vs model", choice);

    // A serial client never shares a transition, so the enabled
    // scheduler records native kinds exactly like the bypass: the two
    // ledgers must agree per kind and per byte, and neither leg may
    // contain a Batch record.
    let lb = batched.leakage_ledger();
    let ld = bypass.leakage_ledger();
    for kind in [
        EcallKind::Search,
        EcallKind::Aggregate,
        EcallKind::JoinBridge,
        EcallKind::Batch,
    ] {
        let (b, d) = (lb.kind(kind), ld.kind(kind));
        prop_assert_eq!(b.calls, d.calls, "{}: {:?} call count", choice, kind);
        prop_assert_eq!(b.bytes_in, d.bytes_in, "{}: {:?} bytes_in", choice, kind);
        prop_assert_eq!(b.bytes_out, d.bytes_out, "{}: {:?} bytes_out", choice, kind);
        prop_assert_eq!(
            b.values_decrypted,
            d.values_decrypted,
            "{}: {:?} values_decrypted",
            choice,
            kind
        );
        prop_assert_eq!(
            b.untrusted_loads,
            d.untrusted_loads,
            "{}: {:?} untrusted_loads",
            choice,
            kind
        );
    }
    prop_assert_eq!(
        lb.kind(EcallKind::Batch).calls,
        0,
        "{}: a serial client must never produce a shared round",
        choice
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Batched ≡ bypass for every interleaving, across all nine ED kinds
    /// plus PLAIN — results, row counts and serial leakage ledgers.
    #[test]
    fn interleavings_batched_equals_bypass(
        triples in prop::collection::vec((0u8..10, 0u32..600, 0u32..600), 1..24),
        seed in 0u64..100_000,
    ) {
        for choice in CHOICES {
            run_legs(choice, seed, &triples)?;
        }
    }
}

/// Preloads `t(v CHOICE(8))` with 240 merged rows (values 0000–0059,
/// four of each) and returns the session.
fn preloaded(choice: &str, seed: u64) -> Session {
    let mut db = Session::with_seed(seed).expect("session");
    db.execute(&format!("CREATE TABLE t (v {choice}(8))"))
        .expect("create");
    let rows: Vec<String> = (0..240).map(|i| format!("('{}')", value(i))).collect();
    db.execute(&format!("INSERT INTO t VALUES {}", rows.join(", ")))
        .expect("preload");
    db.merge("t").expect("merge");
    db
}

/// Readers pinned behind a held enclave lock provably coalesce, and
/// every reply still lands at the session that asked for it — checked
/// against bypass-precomputed answers for all nine ED kinds plus PLAIN.
#[test]
fn forced_coalescing_is_bit_identical() {
    let threads = env_usize("ENCDBDB_STRESS_THREADS", 6).max(3);
    for choice in CHOICES {
        let db = preloaded(choice, 0x9A);
        let queries: Vec<String> = (0..threads)
            .map(|i| {
                let lo = (i * 9) % 50;
                format!(
                    "SELECT v FROM t WHERE v BETWEEN '{:04}' AND '{:04}'",
                    lo,
                    lo + 7
                )
            })
            .collect();

        // Expected answers through the bypass (also warms the value
        // cache identically for every leg).
        db.server().set_ecall_batching(false);
        let mut expected = Vec::new();
        {
            let mut probe = db.reader(1);
            for q in &queries {
                expected.push(sorted_col(probe.execute(q).expect("bypass probe")));
            }
        }
        db.server().set_ecall_batching(true);

        let before = db.leakage_ledger();
        let readers: Vec<_> = (2..2 + threads as u64).map(|s| db.reader(s)).collect();
        // Pin the query enclave: the first submitter claims leadership
        // and blocks on the enclave mutex, everyone else queues behind
        // it — so at least one round provably carries > 1 request.
        let guard = db.server().enclave();
        std::thread::scope(|scope| {
            let handles: Vec<_> = readers
                .into_iter()
                .zip(&queries)
                .map(|(mut reader, q)| scope.spawn(move || sorted_col(reader.execute(q).unwrap())))
                .collect();
            // Give every reader time to enqueue behind the held lock.
            std::thread::sleep(std::time::Duration::from_millis(60));
            drop(guard);
            for (i, h) in handles.into_iter().enumerate() {
                assert_eq!(
                    h.join().expect("reader thread"),
                    expected[i],
                    "{choice}: reply cross-wired for query {i}"
                );
            }
        });

        if choice == "PLAIN" {
            continue; // plain scans never enter the enclave
        }
        let delta = db.leakage_ledger().since(&before);
        let transitions = delta.total_calls();
        assert!(
            transitions < threads as u64,
            "{choice}: {threads} coalesced queries took {transitions} transitions — \
             batching saved nothing"
        );
        assert!(
            delta.kind(EcallKind::Batch).calls >= 1,
            "{choice}: no shared round was recorded"
        );
        let report = db.server().obs().metrics_report();
        assert_eq!(
            report.counter("ecalls_total"),
            db.server().obs().ledger_report().total_calls(),
            "{choice}: registry and ledger disagree on transitions"
        );
    }
}

/// A compaction publish lands while requests pinned to the old store
/// generation are still queued: they answer correctly from their own
/// snapshots, and a fresh post-publish query agrees.
#[test]
fn compaction_publish_mid_batch_stays_correct() {
    let threads = env_usize("ENCDBDB_STRESS_THREADS", 4).max(2);
    for choice in ["ED2", "ED7", "ED9"] {
        let mut db = preloaded(choice, 0xC0);
        // One delta row so the pre-publish state is main + delta.
        db.execute("INSERT INTO t VALUES ('0007')").expect("insert");
        let epoch0 = db.server().epoch("t").expect("epoch");

        let q = "SELECT v FROM t WHERE v = '0007'";
        db.server().set_ecall_batching(false);
        let expected = sorted_col(db.execute(q).expect("bypass probe"));
        assert_eq!(expected.len(), 5, "4 preloaded + 1 delta row");
        db.server().set_ecall_batching(true);

        let readers: Vec<_> = (10..10 + threads as u64).map(|s| db.reader(s)).collect();
        // The guard is taken through a server clone so the session stays
        // mutably borrowable for the mid-batch merge below.
        let server = db.server().clone();
        let guard = server.enclave();
        std::thread::scope(|scope| {
            let handles: Vec<_> = readers
                .into_iter()
                .map(|mut reader| scope.spawn(move || sorted_col(reader.execute(q).unwrap())))
                .collect();
            std::thread::sleep(std::time::Duration::from_millis(60));
            // The merge runs on its own enclave and publishes a new
            // epoch while the readers are still queued against the old
            // generation.
            db.merge("t").expect("merge mid-batch");
            assert!(
                db.server().epoch("t").expect("epoch") > epoch0,
                "{choice}: the publish must land before dispatch"
            );
            drop(guard);
            for (i, h) in handles.into_iter().enumerate() {
                assert_eq!(
                    h.join().expect("reader thread"),
                    expected,
                    "{choice}: queued reader {i} broke across the publish"
                );
            }
        });

        // The new generation answers identically.
        let after = sorted_col(db.execute(q).expect("post-publish query"));
        assert_eq!(after, expected, "{choice}: post-publish contents");
        assert_eq!(
            db.server().last_stats().snapshot_epoch,
            db.server().epoch("t").expect("epoch"),
            "{choice}: the fresh query ran on the published epoch"
        );
    }
}
