//! Regression test for the scheduler crash-safety hole (DESIGN.md §15):
//! a round leader that panics mid-transition used to leave its followers
//! blocked forever on their `ReplySlot` condvars. Now the round is held
//! by a guard whose unwind path resigns leadership and poisons every
//! undelivered slot, so followers fail their query with
//! [`EncdictError::Poisoned`] instead of wedging — and the server keeps
//! serving afterwards.

use encdbdb::{DbError, Session};
use encdict::EncdictError;
use std::time::Duration;

fn sorted_col(r: encdbdb::QueryResult) -> Vec<String> {
    let mut out: Vec<String> = r
        .rows_as_strings()
        .into_iter()
        .map(|mut row| row.remove(0))
        .collect();
    out.sort();
    out
}

#[test]
fn injected_leader_panic_poisons_followers_and_server_recovers() {
    let mut db = Session::with_seed(0x90150).expect("session");
    assert!(db.server().ecall_batching(), "batching is the default");
    db.execute("CREATE TABLE t (v ED2(8))").expect("create");
    let rows: Vec<String> = (0..48).map(|i| format!("('{:04}')", i % 60)).collect();
    db.execute(&format!("INSERT INTO t VALUES {}", rows.join(", ")))
        .expect("insert");

    // Pin the enclave so the first reader claims leadership and then
    // blocks inside its round; arm the hook so that, once unpinned, the
    // leader panics right after acquiring the enclave lock.
    let guard = db.server().enclave();
    db.server().arm_scheduler_panic();

    let (leader_panicked, follower_results) = std::thread::scope(|scope| {
        let mut leader_reader = db.reader(1);
        let leader =
            scope.spawn(move || leader_reader.execute("SELECT v FROM t WHERE v >= '0010'"));
        // Give the leader time to claim leadership and block on the
        // pinned enclave, so the followers below provably enqueue.
        std::thread::sleep(Duration::from_millis(200));
        let followers: Vec<_> = (0..3)
            .map(|i| {
                let mut reader = db.reader(10 + i);
                scope.spawn(move || reader.execute("SELECT v FROM t WHERE v >= '0020'"))
            })
            .collect();
        std::thread::sleep(Duration::from_millis(200));
        drop(guard);
        (
            leader.join().is_err(),
            followers
                .into_iter()
                .map(|f| f.join().expect("follower threads must not panic"))
                .collect::<Vec<_>>(),
        )
    });

    assert!(
        leader_panicked,
        "the armed hook must panic the leader's thread"
    );
    for result in follower_results {
        match result {
            Err(DbError::Dict(e)) => {
                assert!(
                    matches!(e, EncdictError::Poisoned(_)),
                    "follower error should be Poisoned, got: {e}"
                );
            }
            other => panic!("follower must fail with a poisoned-round error, got {other:?}"),
        }
    }

    // Leadership was resigned during unwind and the hook auto-disarmed:
    // the very next queries — serial and concurrent — succeed.
    let expected: Vec<String> = {
        let mut v: Vec<String> = (0..48)
            .map(|i| format!("{:04}", i % 60))
            .filter(|v| v.as_str() >= "0020")
            .collect();
        v.sort();
        v
    };
    let after = db
        .execute("SELECT v FROM t WHERE v >= '0020'")
        .expect("server must keep serving after a poisoned round");
    assert_eq!(sorted_col(after), expected);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let mut reader = db.reader(100 + i);
                scope.spawn(move || {
                    sorted_col(
                        reader
                            .execute("SELECT v FROM t WHERE v >= '0020'")
                            .expect("post-recovery concurrent query"),
                    )
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().expect("no panic"), expected);
        }
    });
}

#[test]
fn poisoned_requests_leave_no_ledger_trace() {
    // A poisoned request never executed: no enclave transition happened
    // for it, so neither the ledger nor `ecalls_total` may move.
    let mut db = Session::with_seed(0x90151).expect("session");
    db.execute("CREATE TABLE t (v ED7(8))").expect("create");
    db.execute("INSERT INTO t VALUES ('0001'), ('0002'), ('0003')")
        .expect("insert");

    let before_ledger = db.leakage_ledger();
    let before_ecalls = db.metrics_report().counter("ecalls_total");

    let guard = db.server().enclave();
    db.server().arm_scheduler_panic();
    std::thread::scope(|scope| {
        let mut leader_reader = db.reader(1);
        let leader =
            scope.spawn(move || leader_reader.execute("SELECT v FROM t WHERE v >= '0002'"));
        std::thread::sleep(Duration::from_millis(200));
        let mut follower_reader = db.reader(2);
        let follower =
            scope.spawn(move || follower_reader.execute("SELECT v FROM t WHERE v >= '0002'"));
        std::thread::sleep(Duration::from_millis(200));
        drop(guard);
        assert!(leader.join().is_err());
        assert!(matches!(
            follower.join().expect("no panic"),
            Err(DbError::Dict(EncdictError::Poisoned(_)))
        ));
    });

    let delta = db.leakage_ledger().since(&before_ledger);
    assert_eq!(
        delta.total_calls(),
        0,
        "a poisoned round must record no transitions"
    );
    assert_eq!(
        db.metrics_report().counter("ecalls_total"),
        before_ecalls,
        "ecalls_total must not move for requests that never ran"
    );
}
