//! Graceful-shutdown proof for the networked service layer (DESIGN.md
//! §16.4): stopping a server mid-stream drains the queries in flight and
//! any background compaction before the durable session is released, so
//! recovery finds **no torn WAL tail** and every acknowledged write.
//! A control leg with an injected [`FailPoint::WalTornAppend`] shows the
//! torn-tail detector actually fires when an append *is* cut short —
//! making the zero in the graceful leg meaningful.

use encdbdb::{DbError, FailPoint, NetClient, NetServer, NetServerConfig, Session, TenantSpec};
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::time::Duration;

const TENANT: &str = "acme";
const TOKEN: &str = "tok";

fn storage_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("encdbdb-net-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn cleanup(dir: &Path) {
    let _ = std::fs::remove_dir_all(dir);
}

fn table_contents(db: &mut Session, table: &str) -> BTreeSet<String> {
    db.execute(&format!("SELECT v FROM {table}"))
        .expect("select")
        .rows_as_strings()
        .into_iter()
        .map(|mut row| row.remove(0))
        .collect()
}

#[test]
fn shutdown_mid_stream_drains_writes_and_leaves_no_torn_wal() {
    let dir = storage_dir("graceful");
    let session = Session::with_seed_durable(0xD0_0001, &dir).expect("durable session");
    let key = session.master_key();
    // Background compaction stays ON: the shutdown path must drain any
    // merge in flight, not just the query workers.
    let handle = NetServer::start(
        session,
        vec![TenantSpec::new(TENANT, TOKEN)],
        NetServerConfig::default(),
    )
    .expect("server start");
    let addr = handle.addr();

    let mut setup = NetClient::connect(addr, TENANT, TOKEN).expect("setup connect");
    setup
        .execute("CREATE TABLE t (v ED5(8))")
        .expect("create over the wire");
    setup.close();

    // Two writer connections stream inserts until the server goes away;
    // each records exactly the values the server acknowledged.
    let writers: Vec<_> = (0..2)
        .map(|tid: usize| {
            std::thread::spawn(move || {
                let mut client = NetClient::connect(addr, TENANT, TOKEN).expect("writer connect");
                let mut acked = Vec::new();
                let mut attempted = Vec::new();
                for i in 0..10_000usize {
                    let v = format!("{tid}{i:05}");
                    attempted.push(v.clone());
                    match client.execute(&format!("INSERT INTO t VALUES ('{v}')")) {
                        Ok(_) => acked.push(v),
                        Err(_) => break,
                    }
                }
                (acked, attempted)
            })
        })
        .collect();

    // Let the stream run, then pull the plug mid-flight.
    std::thread::sleep(Duration::from_millis(400));
    let session = handle.shutdown().expect("graceful shutdown");
    let results: Vec<(Vec<String>, Vec<String>)> = writers
        .into_iter()
        .map(|w| w.join().expect("writer thread"))
        .collect();
    let acked: BTreeSet<String> = results.iter().flat_map(|(a, _)| a.clone()).collect();
    let attempted: BTreeSet<String> = results.iter().flat_map(|(_, s)| s.clone()).collect();
    assert!(
        !acked.is_empty(),
        "the stream must land some writes before shutdown"
    );
    assert!(
        attempted.len() > acked.len(),
        "shutdown must interrupt the stream mid-flight (raise the sleep?)"
    );
    drop(session);

    // Recovery: clean WAL (no torn tail truncated), every acknowledged
    // write present, nothing outside the attempted set resurrected.
    let mut db = Session::open(&dir, key, 99).expect("reopen");
    let stats = db.server().durability_stats().expect("stats");
    assert_eq!(
        stats.wal_torn_tails, 0,
        "graceful shutdown must not tear the WAL: {stats:?}"
    );
    assert_eq!(stats.wal_torn_tail_bytes, 0);
    let got = table_contents(&mut db, "acme__t");
    for v in &acked {
        assert!(
            got.contains(v),
            "acknowledged write {v} lost across shutdown"
        );
    }
    for v in &got {
        assert!(
            attempted.contains(v),
            "recovered row {v} was never sent by a writer"
        );
    }
    // And the recovered deployment keeps working.
    db.execute("INSERT INTO acme__t VALUES ('zzz')")
        .expect("post-recovery insert");
    db.merge("acme__t").expect("post-recovery merge");
    cleanup(&dir);
}

#[test]
fn injected_torn_append_is_detected_by_recovery() {
    let dir = storage_dir("torn");
    let mut session = Session::with_seed_durable(0xD0_0002, &dir).expect("durable session");
    session.set_compaction_policy(None);
    let key = session.master_key();
    // Seed a committed row in-process (the fail point would otherwise
    // hit the CREATE first), then arm and serve.
    session
        .execute("CREATE TABLE acme__t (v ED5(8))")
        .expect("create");
    session
        .execute("INSERT INTO acme__t VALUES ('before')")
        .expect("committed insert");
    session
        .server()
        .arm_fail_point(FailPoint::WalTornAppend)
        .expect("arm");

    let handle = NetServer::start(
        session,
        vec![TenantSpec::new(TENANT, TOKEN)],
        NetServerConfig::default(),
    )
    .expect("server start");
    let mut client = NetClient::connect(handle.addr(), TENANT, TOKEN).expect("connect");
    let err = client
        .execute("INSERT INTO t VALUES ('torn')")
        .expect_err("the armed fail point must crash the append");
    match &err {
        DbError::Net(msg) => assert!(
            msg.contains("durability failure"),
            "the wire must relay the durability error: {msg}"
        ),
        other => panic!("expected a relayed server error, got {other:?}"),
    }
    client.close();
    // The simulated process is dead storage-wise; shutdown still joins
    // the threads but may surface the poisoned storage — either way the
    // on-disk state is what recovery sees.
    let _ = handle.shutdown();

    let mut db = Session::open(&dir, key, 99).expect("reopen");
    let stats = db.server().durability_stats().expect("stats");
    assert!(
        stats.wal_torn_tails >= 1,
        "recovery must detect and truncate the torn tail: {stats:?}"
    );
    assert!(stats.wal_torn_tail_bytes > 0);
    let got = table_contents(&mut db, "acme__t");
    assert!(got.contains("before"), "committed row lost");
    assert!(
        !got.contains("torn"),
        "a torn append must not resurrect: {got:?}"
    );
    cleanup(&dir);
}
