//! Concurrency stress: reader sessions issue queries while threshold- and
//! manually-driven compactions rebuild main stores in the background.
//!
//! Asserts the snapshot guarantees of DESIGN.md §9:
//!
//! * queries complete against the *old* epoch while a merge is in flight
//!   (readers never block on compaction);
//! * no torn reads — two mirrored columns always agree row-by-row, and
//!   every `COUNT(*)` is bracketed by the writer's progress counters;
//! * epoch and merge counters are monotone;
//! * a delete racing an in-flight merge aborts the publish instead of
//!   resurrecting the deleted row;
//! * the metrics registry's counters stay monotone (no torn reads) when
//!   sampled concurrently with the same load, and trace spans nest
//!   correctly across the partition-parallel fan-out (DESIGN.md §13).
//!
//! Thread count and table size are bounded via `ENCDBDB_STRESS_THREADS`
//! and `ENCDBDB_STRESS_ROWS` (see ci.sh).

use colstore::column::Column;
use colstore::table::Table;
use encdbdb::{
    ColumnSpec, CompactionPolicy, DictChoice, Session, TablePartitioning, TableSchema, TraceEvent,
};
use encdict::EdKind;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;
use workload::{HotShardSpec, Op, ScheduleGen, ScheduleSpec};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn value(i: usize) -> String {
    format!("{:04}", i % 100)
}

/// Builds a session with a two-column mirrored table (`v` ED2, `w` ED9 —
/// both columns of every row hold the same value) preloaded with `rows`
/// main-store rows. With `splits`, the table is range-partitioned on `v`.
fn mirrored_session_with(seed: u64, rows: usize, splits: &[&str]) -> Session {
    let mut v = Column::new("v", 8);
    let mut w = Column::new("w", 8);
    for i in 0..rows {
        v.push(value(i).as_bytes()).unwrap();
        w.push(value(i).as_bytes()).unwrap();
    }
    let mut table = Table::new("t");
    table.add_column(v).unwrap();
    table.add_column(w).unwrap();
    let mut schema = TableSchema::new(
        "t",
        vec![
            ColumnSpec::new("v", DictChoice::Encrypted(EdKind::Ed2), 8),
            ColumnSpec::new("w", DictChoice::Encrypted(EdKind::Ed9), 8),
        ],
    );
    if !splits.is_empty() {
        schema = schema.with_partitioning(TablePartitioning::new(
            "v",
            splits.iter().map(|s| s.as_bytes().to_vec()).collect(),
        ));
    }
    let mut db = Session::with_seed(seed).expect("session setup");
    db.load_table(&table, schema).expect("bulk load");
    db
}

fn mirrored_session(seed: u64, rows: usize) -> Session {
    mirrored_session_with(seed, rows, &[])
}

#[test]
fn readers_complete_against_old_snapshot_while_merge_runs() {
    let rows = env_usize("ENCDBDB_STRESS_ROWS", 2000);
    let mut db = mirrored_session(7100, rows);
    // The throttle pins the rebuild in flight long enough to observe the
    // overlap deterministically (it sleeps off the query path).
    db.server()
        .set_merge_throttle(Some(Duration::from_millis(400)));
    db.execute("INSERT INTO t VALUES ('9999', '9999')").unwrap();

    assert_eq!(db.server().epoch("t").unwrap(), 0);
    assert!(db.server().spawn_compaction("t").unwrap());
    assert!(db.server().merge_in_flight("t").unwrap());

    // A reader session completes a query while the merge is still running,
    // and it sees the old epoch.
    let mut reader = db.reader(7101);
    let r = reader
        .execute("SELECT v, w FROM t WHERE v = '9999'")
        .unwrap();
    assert_eq!(r.rows_as_strings(), vec![vec!["9999".to_string(); 2]]);
    let stats = reader.server().last_stats();
    assert_eq!(stats.snapshot_epoch, 0, "query served from the old epoch");
    assert!(
        db.server().merge_in_flight("t").unwrap(),
        "the merge must still be in flight after the query completed \
         (reader did not block on compaction)"
    );

    db.server().wait_for_compaction("t").unwrap();
    let stats = db.server().compaction_stats("t").unwrap();
    assert_eq!(stats.epoch, 1);
    assert_eq!(stats.merges_completed, 1);
    assert_eq!(stats.delta_rows, 0, "the insert was folded into main");
    assert_eq!(stats.last_error, None);

    // Same query, now served from the rebuilt store.
    let r = reader
        .execute("SELECT v, w FROM t WHERE v = '9999'")
        .unwrap();
    assert_eq!(r.rows_as_strings(), vec![vec!["9999".to_string(); 2]]);
    assert_eq!(reader.server().last_stats().snapshot_epoch, 1);
}

#[test]
fn concurrent_readers_with_background_compactions() {
    let threads = env_usize("ENCDBDB_STRESS_THREADS", 4);
    let initial = env_usize("ENCDBDB_STRESS_ROWS", 2000).min(400);
    let inserts = 320usize;
    let reads_per_thread = 50usize;

    let mut db = mirrored_session(7200, initial);
    db.server().set_compaction_policy(Some(CompactionPolicy {
        max_delta_rows: 48,
        // Insert-only workload; only the row-count threshold fires.
        max_invalid_fraction: 1.0,
    }));

    // Writer progress counters bracketing every row's visibility window.
    let pending = AtomicUsize::new(initial);
    let committed = AtomicUsize::new(initial);

    let mut writer = db.reader(7201);
    let mut readers: Vec<_> = (0..threads).map(|i| db.reader(7300 + i as u64)).collect();
    let server = db.server().clone();

    std::thread::scope(|scope| {
        let pending = &pending;
        let committed = &committed;
        let server = &server;

        scope.spawn(move || {
            let mut rng = StdRng::seed_from_u64(7202);
            let gen = ScheduleGen::new(ScheduleSpec::default());
            for _ in 0..inserts {
                let v = match gen.draw(&mut rng) {
                    Op::Insert { value } => value,
                    _ => "0042".to_string(),
                };
                pending.fetch_add(1, Ordering::SeqCst);
                writer
                    .execute(&format!("INSERT INTO t VALUES ('{v}', '{v}')"))
                    .expect("insert");
                committed.fetch_add(1, Ordering::SeqCst);
            }
        });

        for (i, mut reader) in readers.drain(..).enumerate() {
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(9000 + i as u64);
                let gen = ScheduleGen::new(ScheduleSpec::default());
                let mut last_epoch = 0u64;
                let mut last_merges = 0u64;
                for ops in gen.generate_reads(&mut rng, reads_per_thread) {
                    match ops {
                        Op::AggRead { .. } => {
                            // Unfiltered count, bracketed by the writer's
                            // progress: no lost or phantom rows.
                            let lo = committed.load(Ordering::SeqCst);
                            let r = reader.execute("SELECT COUNT(*) FROM t").expect("count");
                            let hi = pending.load(Ordering::SeqCst);
                            let count: usize = r.rows_as_strings()[0][0].parse().unwrap();
                            assert!(
                                (lo..=hi).contains(&count),
                                "reader {i}: COUNT(*) = {count} outside [{lo}, {hi}]"
                            );
                        }
                        Op::RangeRead { lo, hi } => {
                            // Mirrored-column consistency: a torn read
                            // (columns from different states) would break
                            // the per-row equality.
                            let r = reader
                                .execute(&format!(
                                    "SELECT v, w FROM t WHERE v BETWEEN '{lo}' AND '{hi}'"
                                ))
                                .expect("range read");
                            for row in r.rows_as_strings() {
                                assert_eq!(row[0], row[1], "reader {i}: torn row {row:?}");
                            }
                        }
                        _ => unreachable!("generate_reads yields only reads"),
                    }
                    // Monotone merge/epoch counters.
                    let stats = server.compaction_stats("t").expect("stats");
                    assert!(
                        stats.epoch >= last_epoch,
                        "reader {i}: epoch went backwards ({} -> {})",
                        last_epoch,
                        stats.epoch
                    );
                    assert!(
                        stats.merges_completed >= last_merges,
                        "reader {i}: merge counter went backwards"
                    );
                    last_epoch = stats.epoch;
                    last_merges = stats.merges_completed;
                }
            });
        }
    });

    db.server().wait_for_compaction("t").unwrap();
    let stats = db.server().compaction_stats("t").unwrap();
    assert!(
        stats.merges_completed >= 1,
        "the policy must have fired at least once: {stats:?}"
    );
    assert_eq!(stats.merges_failed, 0, "{stats:?}");
    assert_eq!(stats.last_error, None);

    // Final consistency: every insert landed exactly once.
    let r = db.execute("SELECT COUNT(*) FROM t").unwrap();
    assert_eq!(
        r.rows_as_strings()[0][0],
        (initial + inserts).to_string(),
        "final row count"
    );
    let r = db.execute("SELECT v, w FROM t").unwrap();
    for row in r.rows_as_strings() {
        assert_eq!(row[0], row[1], "torn row in final state");
    }
}

#[test]
fn merge_on_one_shard_never_blocks_other_shards() {
    // Two shards split at '0050'; values are 0000..0099, so the preload
    // populates both.
    let mut db = mirrored_session_with(7500, 400, &["0050"]);
    db.server()
        .set_merge_throttle(Some(Duration::from_millis(400)));

    // Dirty shard 0 only and pin its rebuild in flight.
    db.execute("INSERT INTO t VALUES ('0001', '0001')").unwrap();
    assert!(db.server().spawn_partition_compaction("t", 0).unwrap());
    assert!(db.server().merge_in_flight("t").unwrap());
    assert!(
        !db.server().spawn_partition_compaction("t", 1).unwrap(),
        "shard 1 has nothing to compact"
    );

    // A reader scoped to shard 1 completes while shard 0 is rebuilding —
    // and the scope is visible in the pruning stats.
    let mut reader = db.reader(7501);
    let r = reader
        .execute("SELECT v, w FROM t WHERE v BETWEEN '0060' AND '0060'")
        .unwrap();
    assert_eq!(r.row_count(), 4, "values repeat every 100 rows");
    for row in r.rows_as_strings() {
        assert_eq!(row[0], row[1], "torn row {row:?}");
    }
    let stats = reader.server().last_stats();
    assert_eq!(stats.partitions_total, 2);
    assert_eq!(stats.partitions_scanned, 1);
    assert_eq!(stats.partitions_pruned, 1);
    assert!(
        db.server().merge_in_flight("t").unwrap(),
        "shard 0's merge must still be in flight after a shard-1 read \
         (readers of other shards never block on a merge)"
    );

    // A *write* to shard 1 also proceeds and is immediately visible.
    reader
        .execute("INSERT INTO t VALUES ('0070', '0070')")
        .unwrap();
    let r = reader
        .execute("SELECT COUNT(*) FROM t WHERE v = '0070'")
        .unwrap();
    assert_eq!(r.rows_as_strings(), vec![vec!["5".to_string()]]);
    // And a grouped aggregate spanning both shards completes on shard 0's
    // *old* epoch while the merge is still running.
    let r = reader
        .execute("SELECT v, COUNT(*) FROM t WHERE v BETWEEN '0045' AND '0055' GROUP BY v")
        .unwrap();
    assert_eq!(r.row_count(), 11);
    assert!(
        db.server().merge_in_flight("t").unwrap(),
        "shard 0's merge outlives cross-shard aggregates"
    );

    db.server().wait_for_compaction("t").unwrap();
    let stats = db.server().compaction_stats("t").unwrap();
    assert_eq!(stats.partition_epochs, vec![1, 0], "only shard 0 published");
    assert_eq!(stats.merges_completed, 1);
    assert_eq!(stats.last_error, None);
    // Everything, merged and unmerged, is still intact.
    let r = db.execute("SELECT COUNT(*) FROM t").unwrap();
    assert_eq!(r.rows_as_strings(), vec![vec!["402".to_string()]]);
}

#[test]
fn hot_shard_writes_compact_only_the_hot_partition() {
    // Shard 1 ('0050'..) takes ~90% of inserts; shard 0 stays cold and
    // must never cross the merge threshold.
    let mut db = mirrored_session_with(7600, 200, &["0050"]);
    db.server().set_compaction_policy(Some(CompactionPolicy {
        max_delta_rows: 64,
        max_invalid_fraction: 1.0,
    }));
    let gen = ScheduleGen::new(ScheduleSpec::default()).with_hot_shard(HotShardSpec {
        hot_lo: 50,
        hot_hi: 99,
        hot_insert_pct: 90,
    });
    let mut rng = StdRng::seed_from_u64(7601);
    let mut inserted = 0usize;
    let mut writer = db.reader(7602);
    while inserted < 320 {
        if let Op::Insert { value } = gen.draw(&mut rng) {
            writer
                .execute(&format!("INSERT INTO t VALUES ('{value}', '{value}')"))
                .expect("insert");
            inserted += 1;
        }
    }
    db.server().wait_for_compaction("t").unwrap();
    let stats = db.server().compaction_stats("t").unwrap();
    assert!(
        stats.partition_epochs[1] >= 1,
        "the hot shard must have compacted: {stats:?}"
    );
    assert_eq!(
        stats.partition_epochs[0], 0,
        "the cold shard's ~10% of inserts stay under the threshold: {stats:?}"
    );
    assert_eq!(stats.merges_failed, 0);
    // No row lost across the uneven delta growth.
    let r = db.execute("SELECT COUNT(*) FROM t").unwrap();
    assert_eq!(
        r.rows_as_strings(),
        vec![vec![(200 + inserted).to_string()]]
    );
}

#[test]
fn delete_racing_a_merge_aborts_the_publish() {
    let mut db = mirrored_session(7400, 200);
    db.execute("INSERT INTO t VALUES ('9999', '9999')").unwrap();
    db.server()
        .set_merge_throttle(Some(Duration::from_millis(300)));

    assert!(db.server().spawn_compaction("t").unwrap());
    assert!(db.server().merge_in_flight("t").unwrap());

    // Delete a main-store row while the rebuild is reading the old state:
    // publishing the rebuild would resurrect it.
    let deleted: usize = db
        .execute("DELETE FROM t WHERE v = '0007'")
        .unwrap()
        .rows_as_strings()[0][0]
        .parse()
        .unwrap();
    assert!(deleted >= 1, "victim rows existed in the main store");

    db.server().wait_for_compaction("t").unwrap();
    let stats = db.server().compaction_stats("t").unwrap();
    // The first publish was aborted (the delete won), and the background
    // worker retried against the fresh state and published that instead —
    // the deleted row is never resurrected.
    assert_eq!(stats.merges_aborted, 1, "{stats:?}");
    assert_eq!(
        stats.merges_completed, 1,
        "aborted merge retried: {stats:?}"
    );
    assert_eq!(stats.epoch, 1, "only the retry published");

    // The delete survived the whole dance.
    let expected = 200 + 1 - deleted;
    let r = db.execute("SELECT COUNT(*) FROM t").unwrap();
    assert_eq!(r.rows_as_strings()[0][0], expected.to_string());
    let r = db.execute("SELECT v FROM t WHERE v = '0007'").unwrap();
    assert_eq!(r.row_count(), 0, "deleted rows stay deleted across merges");
    // Everything is folded; another merge is a no-op.
    db.server().set_merge_throttle(None);
    db.merge("t").unwrap();
    assert_eq!(db.server().epoch("t").unwrap(), 1);
    let r = db.execute("SELECT COUNT(*) FROM t").unwrap();
    assert_eq!(r.rows_as_strings()[0][0], expected.to_string());
}

#[test]
fn compaction_publish_invalidates_the_value_cache() {
    use encdbdb::EcallKind;

    let mut db = mirrored_session(7950, 200);
    let q = "SELECT v, w FROM t WHERE v BETWEEN '0010' AND '0019'";

    // Warm the enclave value cache at epoch 0: the repeat query answers
    // bit-identically and entirely from cached plaintexts.
    let cold = db.execute(q).unwrap().rows_as_strings();
    let before = db.leakage_ledger();
    let warm = db.execute(q).unwrap().rows_as_strings();
    let warm_search = db.leakage_ledger().since(&before).kind(EcallKind::Search);
    assert_eq!(warm, cold, "warm repeat must be bit-identical");
    assert_eq!(warm_search.values_decrypted, 0, "fully cache-served repeat");
    assert!(warm_search.cache_hits > 0);

    // A write lands in the delta and a merge publishes a new epoch: the
    // rebuilt main store re-encrypts every entry, so cache entries keyed
    // to the old generation must never answer post-publish reads.
    db.execute("INSERT INTO t VALUES ('0015', '0015')").unwrap();
    db.merge("t").unwrap();
    let before = db.leakage_ledger();
    let after = db.execute(q).unwrap().rows_as_strings();
    let post_search = db.leakage_ledger().since(&before).kind(EcallKind::Search);
    assert_eq!(
        after.len(),
        cold.len() + 1,
        "the folded insert is visible after the publish"
    );
    for row in &after {
        assert_eq!(row[0], row[1], "stale cached plaintext produced a torn row");
    }
    assert!(
        post_search.values_decrypted > 0,
        "the new-epoch store is re-decrypted — old-generation cache \
         entries are dead after a compaction publish"
    );
    assert_eq!(db.server().last_stats().snapshot_epoch, 1);
}

#[test]
fn metrics_counters_are_monotone_under_concurrent_load() {
    let threads = env_usize("ENCDBDB_STRESS_THREADS", 4);
    let initial = env_usize("ENCDBDB_STRESS_ROWS", 2000).min(400);
    let inserts = 240usize;
    let reads_per_thread = 40usize;

    let db = mirrored_session(7800, initial);
    db.server().set_compaction_policy(Some(CompactionPolicy {
        max_delta_rows: 48,
        max_invalid_fraction: 1.0,
    }));
    // A small throttle keeps rebuilds in flight while the readers sample
    // the registry, so compaction counters move under observation too.
    db.server()
        .set_merge_throttle(Some(Duration::from_millis(50)));

    let mut writer = db.reader(7801);
    let mut readers: Vec<_> = (0..threads).map(|i| db.reader(7900 + i as u64)).collect();
    let server = db.server().clone();

    std::thread::scope(|scope| {
        let server = &server;

        scope.spawn(move || {
            for i in 0..inserts {
                let v = value(i);
                writer
                    .execute(&format!("INSERT INTO t VALUES ('{v}', '{v}')"))
                    .expect("insert");
            }
        });

        for (i, mut reader) in readers.drain(..).enumerate() {
            scope.spawn(move || {
                let mut last = server.obs().metrics_report();
                for r in 0..reads_per_thread {
                    let lo = (r * 7 + i) % 90;
                    reader
                        .execute(&format!(
                            "SELECT v, w FROM t WHERE v BETWEEN '{:04}' AND '{:04}'",
                            lo,
                            lo + 9
                        ))
                        .expect("read");
                    // Every counter and histogram is monotone across two
                    // snapshots taken by the same thread: a torn 64-bit
                    // read or a lost update would show up as a decrease.
                    let now = server.obs().metrics_report();
                    for (a, b) in last.counters.iter().zip(now.counters.iter()) {
                        assert_eq!(a.0, b.0, "report layout is stable");
                        assert!(
                            b.1 >= a.1,
                            "reader {i}: counter {} went backwards ({} -> {})",
                            a.0,
                            a.1,
                            b.1
                        );
                    }
                    for (a, b) in last.histograms.iter().zip(now.histograms.iter()) {
                        assert!(
                            b.count >= a.count && b.sum_ns >= a.sum_ns,
                            "reader {i}: histogram {} shrank",
                            a.name
                        );
                    }
                    last = now;
                }
            });
        }
    });

    db.server().wait_for_compaction("t").unwrap();
    // Quiescent cross-checks: the per-kind statement counters partition
    // queries_total exactly, and the registry's ECALL counter agrees with
    // the ledger — the same events feed both sinks, so any torn or lost
    // update under the concurrent load above would split them.
    let report = db.server().obs().metrics_report();
    let issued = (inserts + threads * reads_per_thread) as u64;
    assert_eq!(report.counter("queries_total"), issued);
    assert_eq!(report.counter("inserts_total"), inserts as u64);
    assert_eq!(
        report.counter("selects_total"),
        (threads * reads_per_thread) as u64
    );
    assert_eq!(
        report.counter("queries_total"),
        report.counter("selects_total")
            + report.counter("aggregates_total")
            + report.counter("joins_total")
            + report.counter("inserts_total")
            + report.counter("deletes_total"),
        "statement-kind counters partition queries_total"
    );
    let ledger = db.server().obs().ledger_report();
    assert_eq!(report.counter("ecalls_total"), ledger.total_calls());
    let hist = report.histogram("query_ns").expect("query_ns");
    assert_eq!(hist.count, issued, "one query_ns sample per statement");
    assert!(
        report.counter("compactions_completed_total") >= 1,
        "the policy fired under the insert load"
    );
    assert_eq!(report.counter("compaction_errors_total"), 0);
}

#[test]
fn partition_parallel_join_spans_nest_correctly() {
    fn kids<'a>(events: &'a [TraceEvent], id: u64, name: &str) -> Vec<&'a TraceEvent> {
        events
            .iter()
            .filter(|e| e.parent == id && e.name == name)
            .collect()
    }

    let mut db = Session::with_seed(7700).unwrap();
    // Pin the native span topology: under the §15 scheduler, fan-out
    // partitions of one query may coalesce their searches into a shared
    // round whose single `ecall.batch` span is a root (one transition
    // cannot nest under several partition spans at once), so whether a
    // given partition parents an `ecall.search` span becomes
    // timing-dependent. The batched shape is covered by
    // `tests/batching_differential.rs`; this test asserts the bypass one.
    db.server().set_ecall_batching(false);
    db.execute("CREATE TABLE users (k ED2(8), x ED2(8))")
        .unwrap();
    db.execute(
        "CREATE TABLE orders (k ED2(8), y ED2(8)) \
         PARTITION BY RANGE (k) SPLIT ('0010', '0020', '0030')",
    )
    .unwrap();
    let rows = |n: usize, side: &str| -> String {
        (0..n)
            .map(|i| format!("('{:04}', '{side}{i:03}')", (i * 13) % 40))
            .collect::<Vec<_>>()
            .join(", ")
    };
    db.execute(&format!("INSERT INTO users VALUES {}", rows(40, "u")))
        .unwrap();
    db.execute(&format!("INSERT INTO orders VALUES {}", rows(80, "o")))
        .unwrap();
    db.merge("users").unwrap();
    db.merge("orders").unwrap();

    // Range filters on both sides cover every shard: nothing is pruned,
    // and each active partition's scan issues a dictionary search.
    let r = db
        .execute(
            "SELECT users.x, orders.y FROM users JOIN orders ON users.k = orders.k \
             WHERE users.k BETWEEN '0000' AND '0039' \
             AND orders.k BETWEEN '0000' AND '0039'",
        )
        .unwrap();
    assert!(r.row_count() > 0, "the join matched");

    let events = db.server().obs().trace_events();
    // The join's root is the newest top-level "query" span (earlier roots
    // belong to the CREATE/INSERT statements above).
    let root = events
        .iter()
        .filter(|e| e.name == "query" && e.parent == 0)
        .max_by_key(|e| e.start_ns)
        .expect("query root span");
    for name in ["parse", "plan", "snapshot", "bridge", "render"] {
        assert_eq!(
            kids(&events, root.id, name).len(),
            1,
            "exactly one {name} span under the join root"
        );
    }

    // One scan span per join side; each records its active partition
    // count in `arg` and parents exactly that many partition spans — 1
    // for the unpartitioned users side, 4 for the sharded orders side —
    // even though the partition spans close on fan-out worker threads.
    let scans = kids(&events, root.id, "scan");
    assert_eq!(scans.len(), 2, "one scan span per join side");
    let mut part_counts = Vec::new();
    for scan in &scans {
        let parts = kids(&events, scan.id, "partition");
        assert_eq!(
            parts.len() as u64,
            scan.arg,
            "scan arg records its active partition count"
        );
        for p in &parts {
            let ecalls: Vec<&TraceEvent> = events
                .iter()
                .filter(|e| e.parent == p.id && e.cat == "ecall")
                .collect();
            assert!(!ecalls.is_empty(), "partition issued no search ECALL");
            for e in &ecalls {
                assert_eq!(e.name, "ecall.search", "only searches under a scan");
            }
            // Nesting is temporal containment: the partition interval
            // lies inside its scan (fan_out joins before the scan ends).
            assert!(p.start_ns >= scan.start_ns, "partition starts in scan");
            assert!(
                p.start_ns + p.dur_ns <= scan.start_ns + scan.dur_ns,
                "partition span escapes its scan"
            );
        }
        part_counts.push(parts.len());
    }
    part_counts.sort_unstable();
    assert_eq!(part_counts, vec![1, 4]);

    // Exactly one JoinBridge transition, nested under the bridge span
    // (DESIGN.md §11: one bridge ECALL per two-table equi-join).
    let bridge = kids(&events, root.id, "bridge")[0];
    let bridged: Vec<&TraceEvent> = events
        .iter()
        .filter(|e| e.name == "ecall.join_bridge")
        .collect();
    assert_eq!(bridged.len(), 1);
    assert_eq!(bridged[0].parent, bridge.id);

    // No dangling parent links anywhere in the retained trace.
    for e in &events {
        assert!(
            e.parent == 0 || events.iter().any(|p| p.id == e.parent),
            "dangling parent link in {e:?}"
        );
    }
}

#[test]
fn sixty_four_readers_coalesce_without_cross_wiring() {
    // DESIGN.md §15: 64 reader sessions hammer the scheduler through a
    // throttled merge. Every reader checks the *content* of its own
    // replies (a cross-wired batch demux would hand it another session's
    // rows), the queue wait stays bounded, and the transition ledger
    // still agrees with the registry afterwards.
    let readers_n = env_usize("ENCDBDB_STRESS_READERS", 64);
    let reads_per_thread = 6usize;
    let db = mirrored_session(8600, 600);
    db.server()
        .set_merge_throttle(Some(Duration::from_millis(300)));
    // Dirty the delta and pin a rebuild in flight so the whole reader
    // fleet runs concurrently with a merge.
    let mut writer = db.reader(8601);
    writer
        .execute("INSERT INTO t VALUES ('9999', '9999')")
        .unwrap();
    assert!(db.server().spawn_compaction("t").unwrap());
    assert!(db.server().merge_in_flight("t").unwrap());

    let mut fleet: Vec<_> = (0..readers_n).map(|i| db.reader(8700 + i as u64)).collect();
    // Pin the query enclave briefly while the fleet starts, so at least
    // one round provably coalesces even on a single-core runner.
    let guard = db.server().enclave();
    std::thread::scope(|scope| {
        for (i, mut reader) in fleet.drain(..).enumerate() {
            scope.spawn(move || {
                for k in 0..reads_per_thread {
                    // Each reader owns a distinct 4-value band per round:
                    // the preload holds every value 0..100 six times, so
                    // the expected multiset is exact and reader-specific.
                    let lo = (i * 7 + k * 13) % 90;
                    let hi = lo + 3;
                    let r = reader
                        .execute(&format!(
                            "SELECT v, w FROM t WHERE v BETWEEN '{:04}' AND '{:04}'",
                            lo, hi
                        ))
                        .expect("fleet read");
                    let rows = r.rows_as_strings();
                    assert_eq!(
                        rows.len(),
                        4 * 6,
                        "reader {i} round {k}: wrong cardinality for [{lo}, {hi}]"
                    );
                    for row in rows {
                        assert_eq!(row[0], row[1], "reader {i}: torn/cross-wired row");
                        let v: usize = row[0].parse().unwrap();
                        assert!(
                            (lo..=hi).contains(&v),
                            "reader {i} round {k}: foreign row {v} in [{lo}, {hi}] — \
                             reply cross-wired across the batch demux"
                        );
                    }
                }
            });
        }
        std::thread::sleep(Duration::from_millis(50));
        drop(guard);
    });

    db.server().wait_for_compaction("t").unwrap();
    let report = db.server().obs().metrics_report();
    assert!(
        report.counter("ecall_batches_total") >= 1,
        "64 pinned readers produced no shared round"
    );
    assert!(
        report.counter("batched_calls_total") >= 2,
        "batched-call counter did not move"
    );
    // The scheduler only ever *reduces* transitions: never more than one
    // per logical search issued.
    let ledger = db.server().obs().ledger_report();
    assert_eq!(
        report.counter("ecalls_total"),
        ledger.total_calls(),
        "registry and ledger disagree after concurrent batching"
    );
    // Bounded queue wait: every submit-to-dispatch wait was recorded,
    // and even the unluckiest request (pinned behind the held lock plus
    // a fleet of rounds) stayed within a generous ceiling.
    let wait = report.histogram("ecall_wait_ns").expect("ecall_wait_ns");
    assert!(wait.count > 0, "no queue waits recorded");
    assert!(
        wait.max_ns < 5_000_000_000,
        "a request waited {}ms — queue wait is unbounded",
        wait.max_ns / 1_000_000
    );
    assert_eq!(report.counter("compaction_errors_total"), 0);
}
