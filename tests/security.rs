//! Cross-crate security tests: what the untrusted server can and cannot
//! observe, and how tampering is handled end-to-end.

use colstore::column::Column;
use colstore::table::Table;
use encdbdb::{ColumnSpec, DictChoice, Session, TableSchema};
use encdict::leakage::FrequencyProfile;
use encdict::EdKind;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Build a deployment over a heavily skewed column and inspect the
/// *server-visible* artifacts per kind.
fn deploy_skewed(kind: EdKind, seed: u64) -> (Session, Vec<String>) {
    let values: Vec<String> = (0..30u32)
        .flat_map(|i| std::iter::repeat_n(format!("val{i:02}"), (i as usize % 7) * 4 + 1))
        .collect();
    let mut db = Session::with_seed(seed).unwrap();
    let mut table = Table::new("t");
    table
        .add_column(Column::from_strs("c", 8, values.iter()).unwrap())
        .unwrap();
    let mut schema = TableSchema::new(
        "t",
        vec![ColumnSpec::new("c", DictChoice::Encrypted(kind), 8)],
    );
    schema.columns[0].bs_max = 5;
    db.load_table(&table, schema).unwrap();
    (db, values)
}

#[test]
fn server_storage_sizes_reflect_repetition_option() {
    // The attacker trivially sees storage sizes; they must follow Table 3:
    // revealing < smoothing < hiding for a repetitive column.
    let (db1, _) = deploy_skewed(EdKind::Ed1, 1);
    let (db4, _) = deploy_skewed(EdKind::Ed4, 2);
    let (db7, _) = deploy_skewed(EdKind::Ed7, 3);
    let s1 = db1.server().column_storage_size("t", "c").unwrap();
    let s4 = db4.server().column_storage_size("t", "c").unwrap();
    let s7 = db7.server().column_storage_size("t", "c").unwrap();
    assert!(s1 < s4, "revealing ({s1}) < smoothing ({s4})");
    assert!(s4 < s7, "smoothing ({s4}) < hiding ({s7})");
}

#[test]
fn repeated_queries_are_unlinkable_at_the_proxy_boundary() {
    // The same SQL query executed twice must produce different encrypted
    // range bounds (probabilistic encryption with fresh IVs), so the server
    // cannot tell repeated queries apart.
    use encdbdb_crypto::hkdf::derive_column_key;
    use encdbdb_crypto::{Key128, Pae};
    use encdict::{EncryptedRange, RangeQuery};

    let pae = Pae::new(&derive_column_key(&Key128::from_bytes([1; 16]), "t", "c"));
    let mut rng = StdRng::seed_from_u64(5);
    let q = RangeQuery::between("a", "m");
    let t1 = EncryptedRange::encrypt(&pae, &mut rng, &q);
    let t2 = EncryptedRange::encrypt(&pae, &mut rng, &q);
    assert_ne!(t1.tau_s.as_bytes(), t2.tau_s.as_bytes());
    assert_ne!(t1.tau_e.as_bytes(), t2.tau_e.as_bytes());
}

#[test]
fn frequency_hiding_attribute_vector_is_flat_after_load() {
    use colstore::dictionary::ValueId;
    // Rebuild the deployment artifacts directly to inspect the AV the
    // server stores for an ED7 column.
    let values: Vec<String> = std::iter::repeat_n("dup".to_string(), 50)
        .chain((0..10).map(|i| format!("u{i}")))
        .collect();
    let column = Column::from_strs("c", 8, values.iter()).unwrap();
    let mut rng = StdRng::seed_from_u64(6);
    let (_, av) = encdict::build::build_plain(
        &column,
        EdKind::Ed7,
        &encdict::build::BuildParams::default(),
        &mut rng,
    )
    .unwrap();
    let profile = FrequencyProfile::of(&av);
    assert!(profile.is_flat(), "ED7 AV must not reveal frequencies");
    // Sanity: the AV still references |C| distinct ValueIDs.
    let distinct: std::collections::HashSet<ValueId> =
        av.as_slice().iter().map(|&v| ValueId(v)).collect();
    assert_eq!(distinct.len(), values.len());
}

#[test]
fn queries_after_tamper_fail_loudly_not_wrongly() {
    // Tampering with stored ciphertexts must produce an error, never a
    // wrong (silently corrupted) result. We simulate by querying with a
    // proxy keyed differently from the deployment.
    use encdbdb::{DbaasServer, Proxy};
    use encdbdb_crypto::Key128;
    use encdict::DictEnclave;

    let mut rng = StdRng::seed_from_u64(7);
    let server = DbaasServer::with_enclave(DictEnclave::with_seed(8));
    server.provision_direct(Key128::from_bytes([1; 16]));
    let owner = encdbdb::DataOwner::from_key(Key128::from_bytes([1; 16]));
    let mut table = Table::new("t");
    table
        .add_column(Column::from_strs("c", 8, ["a", "b"]).unwrap())
        .unwrap();
    owner
        .deploy(
            &server,
            &table,
            TableSchema::new(
                "t",
                vec![ColumnSpec::new("c", DictChoice::Encrypted(EdKind::Ed1), 8)],
            ),
            &mut rng,
        )
        .unwrap();

    // A proxy with the wrong master key (≙ an attacker forging queries, or
    // corrupted key material) is rejected by the enclave's authenticated
    // decryption.
    let evil_proxy = Proxy::new(Key128::from_bytes([2; 16]));
    let err = evil_proxy
        .execute(&server, "SELECT c FROM t WHERE c = 'a'", &mut rng)
        .unwrap_err();
    assert!(matches!(err, encdbdb::DbError::Dict(_)));
}

/// All 370 rows of the skewed deployment: 30 distinct values, value
/// `val{i}` occurring `(i % 7) * 4 + 1` times.
const SKEWED_ROWS: u64 = 370;
const SKEWED_DISTINCT: u64 = 30;

#[test]
fn observed_search_leakage_follows_each_kinds_bounds() {
    use encdbdb::EcallKind;
    use encdict::OrderOption;

    // The binary search probes head+tail of O(log |D|) entries, and the
    // rotated variant (Algorithm 3) pays an extra probe round per step;
    // |D| never exceeds the row count here (hiding), so 6 * (log2(370) +
    // 2) loads is a generous O(log |D|) ceiling — still far below the
    // 2|D| loads of every linear scan asserted on below.
    let log_bound = 6 * (64 - SKEWED_ROWS.leading_zeros() as u64 + 2);
    let mut bytes_in_per_kind = Vec::new();
    for (i, kind) in EdKind::ALL.iter().copied().enumerate() {
        let (mut db, _) = deploy_skewed(kind, 7200 + i as u64);
        let before = db.leakage_ledger();
        db.execute("SELECT c FROM t WHERE c = 'val05'").unwrap();
        let delta = db.leakage_ledger().since(&before);
        let search = delta.kind(EcallKind::Search);
        assert_eq!(search.calls, 1, "{kind:?}: one Search ECALL per partition");
        assert_eq!(
            delta.total_calls(),
            1,
            "{kind:?}: the query makes no other enclave transition"
        );
        assert_eq!(
            search.values_decrypted,
            search.untrusted_loads / 2,
            "{kind:?}: one head + one tail load per examined entry"
        );
        match kind.order() {
            OrderOption::Sorted | OrderOption::Rotated => {
                assert!(
                    search.untrusted_loads <= log_bound,
                    "{kind:?}: binary search loads {} exceed O(log |D|) bound {log_bound}",
                    search.untrusted_loads
                );
                // Reply size is computed from the actual result now (8
                // bytes per ValueID range), not a hardcoded constant: a
                // sorted search returns exactly one range; a rotated one
                // may split a wrapped match into two.
                match kind.order() {
                    OrderOption::Sorted => {
                        assert_eq!(search.bytes_out, 8, "{kind:?}: one contiguous range reply")
                    }
                    _ => assert!(
                        search.bytes_out == 8 || search.bytes_out == 16,
                        "{kind:?}: rotated replies are 1 or 2 ranges, got {} bytes",
                        search.bytes_out
                    ),
                }
            }
            OrderOption::Unsorted => {
                // The linear scan examines every entry: exactly 2|D| loads.
                let dict_len = match kind.repetition() {
                    encdict::RepetitionOption::Revealing => Some(SKEWED_DISTINCT),
                    encdict::RepetitionOption::Hiding => Some(SKEWED_ROWS),
                    // Smoothing bucket counts depend on build randomness.
                    encdict::RepetitionOption::Smoothing => None,
                };
                match dict_len {
                    Some(d) => assert_eq!(
                        search.untrusted_loads,
                        2 * d,
                        "{kind:?}: linear scan examines the whole dictionary"
                    ),
                    None => assert!(
                        search.untrusted_loads > log_bound
                            && search.untrusted_loads <= 2 * SKEWED_ROWS,
                        "{kind:?}: smoothing scan loads {} outside (log bound, 2·rows]",
                        search.untrusted_loads
                    ),
                }
                assert!(
                    search.bytes_out >= 4,
                    "{kind:?}: id replies scale with hits"
                );
            }
        }
        bytes_in_per_kind.push((kind, search.bytes_in));
    }
    // Probabilistic encryption: the encrypted range bounds of the same
    // query have the same length under every kind — the request payload
    // leaks nothing about the dictionary layout.
    let first = bytes_in_per_kind[0].1;
    assert!(first > 0);
    for (kind, bytes_in) in &bytes_in_per_kind {
        assert_eq!(
            *bytes_in, first,
            "{kind:?}: request payload size must not depend on the kind"
        );
    }
}

#[test]
fn plain_column_queries_make_zero_enclave_transitions() {
    let mut db = Session::with_seed(7300).unwrap();
    db.execute("CREATE TABLE p (v PLAIN(8))").unwrap();
    db.execute("INSERT INTO p VALUES ('a'), ('b'), ('a')")
        .unwrap();
    let before = db.leakage_ledger();
    let r = db.execute("SELECT v FROM p WHERE v = 'a'").unwrap();
    assert_eq!(r.row_count(), 2);
    let r = db.execute("SELECT v, COUNT(*) FROM p GROUP BY v").unwrap();
    assert_eq!(r.row_count(), 2);
    let delta = db.leakage_ledger().since(&before);
    assert_eq!(
        delta.total_calls(),
        0,
        "PLAIN selects and aggregates never enter the enclave"
    );
}

#[test]
fn hiding_kinds_decrypt_more_than_revealing_on_unsorted_scans() {
    use encdbdb::EcallKind;
    // ED3 (revealing, unsorted) scans |un(C)| entries; ED9 (hiding,
    // unsorted) scans |C| — the compression/leakage trade-off of Table 3,
    // observed rather than assumed.
    let observed = |kind: EdKind, seed: u64| {
        let (mut db, _) = deploy_skewed(kind, seed);
        let before = db.leakage_ledger();
        db.execute("SELECT c FROM t WHERE c = 'val12'").unwrap();
        db.leakage_ledger()
            .since(&before)
            .kind(EcallKind::Search)
            .values_decrypted
    };
    let ed3 = observed(EdKind::Ed3, 7400);
    let ed9 = observed(EdKind::Ed9, 7401);
    assert_eq!(ed3, SKEWED_DISTINCT);
    assert_eq!(ed9, SKEWED_ROWS);
    assert!(ed9 > ed3);
}

#[test]
fn export_trace_ecall_spans_match_ledger_counts() {
    // The acceptance invariant: every enclave transition appears as
    // exactly one "ecall" span in the exported trace AND one ledger
    // record — for the cheapest (ED1) and most protective (ED9) kinds.
    for (kind, seed) in [(EdKind::Ed1, 7500), (EdKind::Ed9, 7501)] {
        let (mut db, _) = deploy_skewed(kind, seed);
        db.execute("SELECT c FROM t WHERE c = 'val05'").unwrap();
        db.execute("SELECT c FROM t WHERE c < 'val03'").unwrap();
        db.execute("INSERT INTO t VALUES ('zzz')").unwrap();
        let ledger = db.leakage_ledger();
        let spans = db.server().obs().trace_events();
        let ecall_spans = spans.iter().filter(|e| e.cat == "ecall").count() as u64;
        assert_eq!(
            ecall_spans,
            ledger.total_calls(),
            "{kind:?}: trace and ledger must agree on every transition"
        );
        assert!(ecall_spans >= 3, "{kind:?}: two searches and a reencrypt");
        let json = db.export_trace();
        assert!(json.starts_with('{') && json.contains("\"traceEvents\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert_eq!(
            json.matches("\"cat\":\"ecall\"").count() as u64,
            ledger.total_calls(),
            "{kind:?}: exported JSON carries the same ECALL spans"
        );
    }
}

#[test]
fn delta_insert_hides_order_and_frequency() {
    // §4.3: inserting into the ED9 delta leaks neither order nor frequency.
    // Check the server-visible delta bytes: equal plaintexts inserted twice
    // produce different stored ciphertexts of equal length.
    let mut db = Session::with_seed(9).unwrap();
    db.execute("CREATE TABLE t (v ED9(8))").unwrap();
    db.execute("INSERT INTO t VALUES ('same'), ('same')")
        .unwrap();
    // Query both back — they decrypt identically...
    let r = db.execute("SELECT v FROM t WHERE v = 'same'").unwrap();
    assert_eq!(r.row_count(), 2);
    // ...but the storage accounting shows two independent ciphertexts (the
    // delta grew by two full entries; dedup would have shared one).
    let size_two = db.server().column_storage_size("t", "v").unwrap();
    db.execute("INSERT INTO t VALUES ('same')").unwrap();
    let size_three = db.server().column_storage_size("t", "v").unwrap();
    assert!(size_three > size_two);
}

#[test]
fn batching_reduces_transitions_without_widening_leakage() {
    // DESIGN.md §15: coalescing K identical queries into one transition
    // must (a) strictly reduce the number of enclave transitions and
    // (b) keep the combined payload exactly the documented union — the
    // sum of the members' native request bytes, with untrusted loads
    // and decrypts bounded by K times a solo run. Anything above the
    // union would mean the batch path leaks more than K separate calls.
    use encdbdb::EcallKind;
    use std::time::Duration;

    let threads = 6usize;
    for (i, kind) in [EdKind::Ed2, EdKind::Ed7, EdKind::Ed9]
        .into_iter()
        .enumerate()
    {
        let (db, _) = deploy_skewed(kind, 9300 + i as u64);
        let q = "SELECT c FROM t WHERE c BETWEEN 'val05' AND 'val09'";

        // Solo baseline through the enabled scheduler: a serial client
        // produces a round of one, recorded as a native Search.
        let before = db.leakage_ledger();
        let expected = {
            let mut probe = db.reader(1);
            probe.execute(q).unwrap().rows_as_strings().len()
        };
        let solo = db.leakage_ledger().since(&before).kind(EcallKind::Search);
        assert_eq!(solo.calls, 1, "{kind:?}: bulk-loaded table, empty delta");
        assert!(solo.bytes_in > 0, "{kind:?}: encrypted bounds crossed in");

        // K readers forced to coalesce: pin the enclave so everyone
        // queues, then release.
        let before = db.leakage_ledger();
        let readers: Vec<_> = (2..2 + threads as u64).map(|s| db.reader(s)).collect();
        let guard = db.server().enclave();
        std::thread::scope(|scope| {
            let handles: Vec<_> = readers
                .into_iter()
                .map(|mut r| scope.spawn(move || r.execute(q).unwrap().rows_as_strings().len()))
                .collect();
            std::thread::sleep(Duration::from_millis(60));
            drop(guard);
            for h in handles {
                assert_eq!(h.join().unwrap(), expected, "{kind:?}: wrong reply");
            }
        });
        let window = db.leakage_ledger().since(&before);
        let native = window.kind(EcallKind::Search);
        let batch = window.kind(EcallKind::Batch);

        // (a) Fewer transitions than calls, and at least one shared round.
        assert!(
            window.total_calls() < threads as u64,
            "{kind:?}: {} transitions for {threads} queries — nothing coalesced",
            window.total_calls()
        );
        assert!(batch.calls >= 1, "{kind:?}: no Batch record");

        // (b) The union bound. Request bytes are exact: the same query's
        // encrypted bounds have a fixed ciphertext length, so K requests
        // cross exactly K × the solo bytes whether coalesced or not.
        assert_eq!(
            native.bytes_in + batch.bytes_in,
            threads as u64 * solo.bytes_in,
            "{kind:?}: combined request payload must equal the members' sum"
        );
        // Work counters never exceed K solo runs (the shared value cache
        // can only shrink them).
        assert!(
            native.untrusted_loads + batch.untrusted_loads <= threads as u64 * solo.untrusted_loads,
            "{kind:?}: batched loads exceed {threads} solo runs"
        );
        assert!(
            native.values_decrypted + batch.values_decrypted
                <= threads as u64 * solo.values_decrypted,
            "{kind:?}: batched decrypts exceed {threads} solo runs"
        );

        // Every Batch ledger record is marked as a genuinely shared
        // round, and the registry still counts one transition per record.
        let records = db.server().obs().ledger_records();
        assert!(
            records
                .iter()
                .filter(|r| matches!(r.kind, EcallKind::Batch))
                .all(|r| r.batch_size >= 2),
            "{kind:?}: a Batch record with batch_size < 2"
        );
        let report = db.server().obs().metrics_report();
        assert_eq!(
            report.counter("ecalls_total"),
            db.server().obs().ledger_report().total_calls(),
            "{kind:?}: transition counter and ledger must agree"
        );
        assert!(
            report.counter("ecall_batches_total") >= 1,
            "{kind:?}: batch counter did not move"
        );
        assert!(
            report.counter("batched_calls_total") >= 2,
            "{kind:?}: batched-call counter did not move"
        );
    }
}
