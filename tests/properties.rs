//! Property-based tests on the core invariants, spanning crates.

use colstore::column::Column;
use encdbdb_crypto::hkdf::derive_column_key;
use encdbdb_crypto::{Key128, Pae};
use encdict::avsearch::{search, Parallelism, SetSearchStrategy};
use encdict::build::{build_encrypted, build_plain, BuildParams};
use encdict::enclave_ops::decrypt_column_value;
use encdict::plain::search_plain;
use encdict::{DictEnclave, EdKind, EncryptedRange, RangeQuery};
use proptest::prelude::*;

fn kind_strategy() -> impl Strategy<Value = EdKind> {
    prop::sample::select(EdKind::ALL.to_vec())
}

fn value_strategy() -> impl Strategy<Value = String> {
    // Short alphabetic values with deliberate collisions.
    prop::collection::vec(prop::sample::select(vec!['a', 'b', 'c', 'd', 'e']), 0..6)
        .prop_map(|cs| cs.into_iter().collect())
}

fn column_strategy() -> impl Strategy<Value = Vec<String>> {
    prop::collection::vec(value_strategy(), 1..60)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Definition 1 (split correctness) holds for every kind over random
    /// columns, on the plaintext twin.
    #[test]
    fn split_correctness_universal(values in column_strategy(), kind in kind_strategy(), seed in 0u64..1000) {
        let column = Column::from_strs("c", 8, values.iter()).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        use rand::SeedableRng;
        let params = BuildParams { bs_max: 3, ..BuildParams::default() };
        let (dict, av) = build_plain(&column, kind, &params, &mut rng).unwrap();
        prop_assert!(encdict::build::verify_plain_split(&column, &dict, &av));
    }

    /// The full encrypted pipeline (build → enclave search → attribute
    /// vector search) returns exactly the rows a reference scan returns,
    /// for every kind and random closed ranges.
    #[test]
    fn encrypted_search_matches_reference(
        values in column_strategy(),
        kind in kind_strategy(),
        lo in value_strategy(),
        hi in value_strategy(),
        seed in 0u64..1000,
    ) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let column = Column::from_strs("c", 8, values.iter()).unwrap();
        let skdb = Key128::from_bytes([9; 16]);
        let sk_d = derive_column_key(&skdb, "t", "c");
        let params = BuildParams { table_name: "t".into(), col_name: "c".into(), bs_max: 3 };
        let (dict, av) = build_encrypted(&column, kind, &params, &sk_d, &mut rng).unwrap();
        let mut enclave = DictEnclave::with_seed(seed);
        enclave.provision_direct(skdb);

        let (lo, hi) = if lo <= hi { (lo, hi) } else { (hi, lo) };
        let query = RangeQuery::between(lo.as_bytes(), hi.as_bytes());
        let tau = EncryptedRange::encrypt(&Pae::new(&sk_d), &mut rng, &query);
        let result = enclave.search(&dict, &tau).unwrap();
        let rids = search(&av, &result, dict.len(), SetSearchStrategy::PaperLinear, Parallelism::Serial);
        let got: Vec<u32> = rids.iter().map(|r| r.0).collect();
        let expected: Vec<u32> = values
            .iter()
            .enumerate()
            .filter(|(_, v)| query.contains(v.as_bytes()))
            .map(|(j, _)| j as u32)
            .collect();
        prop_assert_eq!(got, expected, "kind {}", kind);
    }

    /// PlainDBDB and EncDBDB return identical ValueID *sets of plaintexts*
    /// for the same column/kind/seed.
    #[test]
    fn plain_and_encrypted_twins_agree(
        values in column_strategy(),
        kind in kind_strategy(),
        needle in value_strategy(),
        seed in 0u64..1000,
    ) {
        use rand::SeedableRng;
        let column = Column::from_strs("c", 8, values.iter()).unwrap();
        let params = BuildParams { table_name: "t".into(), col_name: "c".into(), bs_max: 3 };
        let query = RangeQuery::equals(needle.as_bytes());

        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let (pdict, _) = build_plain(&column, kind, &params, &mut rng).unwrap();
        let plain_matches = search_plain(&pdict, &query).unwrap().match_count();

        let skdb = Key128::from_bytes([9; 16]);
        let sk_d = derive_column_key(&skdb, "t", "c");
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let (edict, _) = build_encrypted(&column, kind, &params, &sk_d, &mut rng).unwrap();
        let mut enclave = DictEnclave::with_seed(seed);
        enclave.provision_direct(skdb);
        let mut rng2 = rand::rngs::StdRng::seed_from_u64(seed + 1);
        let tau = EncryptedRange::encrypt(&Pae::new(&sk_d), &mut rng2, &query);
        let enc_matches = enclave.search(&edict, &tau).unwrap().match_count();

        // Same seed -> same split -> same number of matching entries.
        prop_assert_eq!(plain_matches, enc_matches);
    }

    /// Every ciphertext in an encrypted dictionary decrypts to a value of
    /// the source column, and the multiset of AV-mapped plaintexts equals
    /// the column (an encrypted restatement of Definition 1).
    #[test]
    fn encrypted_split_correctness(values in column_strategy(), kind in kind_strategy(), seed in 0u64..1000) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let column = Column::from_strs("c", 8, values.iter()).unwrap();
        let sk_d = Key128::from_bytes([5; 16]);
        let params = BuildParams { bs_max: 3, ..BuildParams::default() };
        let (dict, av) = build_encrypted(&column, kind, &params, &sk_d, &mut rng).unwrap();
        let pae = Pae::new(&sk_d);
        for j in 0..column.len() {
            let vid = av.as_slice()[j] as usize;
            let pt = decrypt_column_value(&pae, dict.ciphertext(vid)).unwrap();
            prop_assert_eq!(pt.as_slice(), column.value(j));
        }
    }

    /// Frequency-smoothing bound: no ValueID occurs more than bs_max times.
    #[test]
    fn smoothing_frequency_bound(values in column_strategy(), bs_max in 1usize..8, seed in 0u64..1000) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let column = Column::from_strs("c", 8, values.iter()).unwrap();
        let params = BuildParams { bs_max, ..BuildParams::default() };
        let (_, av) = build_plain(&column, EdKind::Ed4, &params, &mut rng).unwrap();
        let mut counts = std::collections::HashMap::new();
        for &id in av.as_slice() {
            *counts.entry(id).or_insert(0usize) += 1;
        }
        prop_assert!(counts.values().all(|&c| c <= bs_max));
    }

    /// ENCODE preserves lexicographic order for random byte strings.
    #[test]
    fn encode_is_order_preserving(a in prop::collection::vec(any::<u8>(), 0..10),
                                  b in prop::collection::vec(any::<u8>(), 0..10)) {
        let ea = encdict::encode::encode(&a, 10).unwrap();
        let eb = encdict::encode::encode(&b, 10).unwrap();
        prop_assert_eq!(a.cmp(&b), ea.cmp(&eb));
    }

    /// PAE roundtrip with random data and AAD.
    #[test]
    fn pae_roundtrip(key in any::<[u8; 16]>(), pt in prop::collection::vec(any::<u8>(), 0..64),
                     aad in prop::collection::vec(any::<u8>(), 0..16), iv in any::<[u8; 12]>()) {
        let pae = Pae::new(&Key128::from_bytes(key));
        let ct = pae.encrypt(&iv, &pt, &aad);
        prop_assert_eq!(pae.decrypt(&ct, &aad).unwrap(), pt);
    }

    /// U256 modular subtraction agrees with i128 arithmetic on small values.
    #[test]
    fn u256_sub_mod_reference(a in 0u64..10_000, b in 0u64..10_000, n in 10_001u64..20_000) {
        use encdict::bigint::U256;
        let got = U256::from_u64(a).sub_mod(U256::from_u64(b), U256::from_u64(n));
        let expected = (a as i128 - b as i128).rem_euclid(n as i128) as u64;
        prop_assert_eq!(got, U256::from_u64(expected));
    }
}
