//! Workspace smoke test: one small column through all nine encrypted
//! dictionaries — build → encrypt → range query → decrypt — checked
//! against the plaintext MonetDB baseline at every step.

use colstore::column::Column;
use colstore::monetdb::MonetColumn;
use encdbdb_crypto::hkdf::derive_column_key;
use encdbdb_crypto::{Key128, Pae};
use encdict::avsearch::{search, Parallelism, SetSearchStrategy};
use encdict::build::{build_encrypted, BuildParams};
use encdict::enclave_ops::decrypt_column_value;
use encdict::{DictEnclave, EdKind, EncryptedRange, RangeQuery};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A small column with repeats (so smoothing buckets split), an extreme
/// value, and values that straddle the query bounds.
fn sample_values() -> Vec<&'static str> {
    vec![
        "cherry",
        "apple",
        "banana",
        "cherry",
        "apple",
        "fig",
        "banana",
        "cherry",
        "date",
        "elderberry",
        "apple",
        "grape",
        "banana",
        "cherry",
        "aa",
    ]
}

#[test]
fn all_nine_kinds_round_trip_against_monetdb_baseline() {
    let values = sample_values();
    let column = Column::from_strs("fruit", 12, values.iter()).unwrap();
    let monet = MonetColumn::ingest(&column);

    // Closed [lo, hi] bounds, driving both the encrypted query and the
    // plaintext baseline; the middle one is an equality query in range form.
    let bounds: [(&[u8], &[u8]); 3] = [(b"b", b"d"), (b"cherry", b"cherry"), (b"", b"zzz")];

    for kind in EdKind::ALL {
        let skdb = Key128::from_bytes([9; 16]);
        let sk_d = derive_column_key(&skdb, "t", "fruit");
        let pae = Pae::new(&sk_d);
        let params = BuildParams {
            table_name: "t".into(),
            col_name: "fruit".into(),
            bs_max: 2,
        };
        let mut rng = StdRng::seed_from_u64(31);
        let (dict, av) = build_encrypted(&column, kind, &params, &sk_d, &mut rng).unwrap();

        // Decrypt round-trip: every row's ciphertext, located through the
        // attribute vector, decrypts back to the row's plaintext value.
        for j in 0..column.len() {
            let vid = av.as_slice()[j] as usize;
            let pt = decrypt_column_value(&pae, dict.ciphertext(vid)).unwrap();
            assert_eq!(
                pt.as_slice(),
                column.value(j),
                "kind {kind}: row {j} does not round-trip"
            );
        }

        // Encrypted range queries return exactly what the plaintext
        // MonetDB-style baseline returns.
        let mut enclave = DictEnclave::with_seed(77);
        enclave.provision_direct(skdb);
        for (lo, hi) in bounds {
            let query = RangeQuery::between(lo, hi);
            let tau = EncryptedRange::encrypt(&pae, &mut rng, &query);
            let result = enclave.search(&dict, &tau).unwrap();
            let rids = search(
                &av,
                &result,
                dict.len(),
                SetSearchStrategy::PaperLinear,
                Parallelism::Serial,
            );
            let got: Vec<u32> = rids.iter().map(|r| r.0).collect();
            let expected: Vec<u32> = monet
                .range_search_inclusive(lo, hi)
                .iter()
                .map(|r| r.0)
                .collect();
            assert_eq!(got, expected, "kind {kind}: query {query:?}");
        }
    }
}
