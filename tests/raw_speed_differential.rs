//! Differential proof that the raw-speed pass (vectorized AV scans,
//! batched disjunction searches, the enclave value cache — DESIGN.md §14)
//! changes performance only: query answers stay bit-identical to the
//! per-range / uncached baselines across all nine encrypted dictionary
//! kinds plus PLAIN, and the enclave-boundary accounting stays exact —
//! cache hits never skip an ECALL, and the `values_decrypted ==
//! untrusted_loads / 2` identity survives because a hit costs neither a
//! load nor a decrypt.

use encdbdb::{EcallKind, Session};

const CHOICES: [&str; 10] = [
    "ED1", "ED2", "ED3", "ED4", "ED5", "ED6", "ED7", "ED8", "ED9", "PLAIN",
];

const ENCRYPTED: [&str; 9] = [
    "ED1", "ED2", "ED3", "ED4", "ED5", "ED6", "ED7", "ED8", "ED9",
];

/// A table with duplicates in the main store and a non-empty delta, so
/// every query below exercises both stores.
fn deploy(choice: &str, seed: u64) -> Session {
    let mut db = Session::with_seed(seed).unwrap();
    db.set_compaction_policy(None);
    db.execute(&format!("CREATE TABLE t (v {choice}(8))"))
        .unwrap();
    // 24 main rows over 8 distinct values, skewed.
    let mut main_rows = Vec::new();
    for i in 0u32..24 {
        main_rows.push(format!("'{:04}'", (i * i) % 80 / 10 * 10));
    }
    db.execute(&format!(
        "INSERT INTO t VALUES ({})",
        main_rows.join("), (")
    ))
    .unwrap();
    db.merge("t").unwrap();
    // 6 delta rows, overlapping and extending the main domain.
    db.execute("INSERT INTO t VALUES ('0010'), ('0010'), ('0040'), ('0085'), ('0085'), ('0090')")
        .unwrap();
    db
}

fn sorted_rows(db: &mut Session, sql: &str) -> Vec<Vec<String>> {
    let mut rows = db.execute(sql).unwrap().rows_as_strings();
    rows.sort();
    rows
}

/// The batched disjunction (`IN`, one search ECALL per store) must answer
/// exactly like the union of its per-value equality queries, for every
/// kind — and for encrypted kinds it must pay exactly one Search ECALL
/// per store, not one per disjunct.
#[test]
fn batched_disjunctions_answer_like_per_range_queries() {
    for choice in CHOICES {
        let mut db = deploy(choice, 8100);
        let per_range: Vec<Vec<String>> = ["0010", "0040", "0085"]
            .iter()
            .flat_map(|v| {
                db.execute(&format!("SELECT v FROM t WHERE v = '{v}'"))
                    .unwrap()
                    .rows_as_strings()
            })
            .collect();
        let mut per_range = per_range;
        per_range.sort();

        let before = db.leakage_ledger();
        let batched = sorted_rows(
            &mut db,
            "SELECT v FROM t WHERE v IN ('0010', '0040', '0085')",
        );
        assert_eq!(batched, per_range, "{choice}: batched != per-range union");
        assert!(
            !batched.is_empty(),
            "{choice}: the disjunction matches rows"
        );

        let delta = db.leakage_ledger().since(&before);
        let search = delta.kind(EcallKind::Search);
        if choice == "PLAIN" {
            assert_eq!(delta.total_calls(), 0, "PLAIN never enters the enclave");
        } else {
            assert_eq!(
                search.calls, 2,
                "{choice}: one batched ECALL per store (main + delta), not per disjunct"
            );
            assert_eq!(
                search.values_decrypted,
                search.untrusted_loads / 2,
                "{choice}: the decrypt/load identity holds under batching"
            );
            let stats = db.server().last_stats();
            assert_eq!(stats.enclave_calls, 2, "{choice}: stats mirror the ledger");
        }
    }
}

/// Repeating the identical range query must return bit-identical rows
/// while the enclave value cache absorbs every decrypt: the warm run pays
/// the same ECALLs (hits never skip a transition) but zero fresh
/// decrypts and zero untrusted loads for the cached entries.
#[test]
fn warm_value_cache_tightens_decrypt_bounds_without_skipping_ecalls() {
    for choice in ENCRYPTED {
        let mut db = deploy(choice, 8200);
        let q = "SELECT v FROM t WHERE v BETWEEN '0020' AND '0060'";

        let before = db.leakage_ledger();
        let cold = sorted_rows(&mut db, q);
        let cold_delta = db.leakage_ledger().since(&before);
        let cold_search = cold_delta.kind(EcallKind::Search);
        assert!(
            cold_search.values_decrypted > 0,
            "{choice}: the cold run decrypts dictionary entries"
        );

        let before = db.leakage_ledger();
        let warm = sorted_rows(&mut db, q);
        let warm_delta = db.leakage_ledger().since(&before);
        let warm_search = warm_delta.kind(EcallKind::Search);

        assert_eq!(warm, cold, "{choice}: cached answers must be bit-identical");
        assert_eq!(
            warm_search.calls, cold_search.calls,
            "{choice}: cache hits must not skip search ECALLs"
        );
        assert_eq!(
            warm_search.values_decrypted, 0,
            "{choice}: the warm run re-reads only cached entries"
        );
        assert_eq!(
            warm_search.untrusted_loads, 0,
            "{choice}: a cache hit costs no untrusted load"
        );
        assert!(
            warm_search.cache_hits >= cold_search.values_decrypted,
            "{choice}: every cold decrypt is answered from cache when warm \
             (hits {} < cold decrypts {})",
            warm_search.cache_hits,
            cold_search.values_decrypted
        );
        // The identity holds on both sides of the cache: hits contribute
        // zero loads and zero decrypts.
        for (label, s) in [("cold", &cold_search), ("warm", &warm_search)] {
            assert_eq!(
                s.values_decrypted,
                s.untrusted_loads / 2,
                "{choice}: {label} decrypt/load identity"
            );
        }
        let stats = db.server().last_stats();
        assert_eq!(
            stats.cache_hits as u64, warm_search.cache_hits,
            "{choice}: QueryStats and ledger agree on cache hits"
        );
    }
}

/// Warm-cache aggregates: the grouped histogram answer must not change,
/// while the Aggregate ECALL's decrypts drop to zero once the searched
/// entries are cached.
#[test]
fn warm_cache_aggregates_stay_bit_identical() {
    for choice in ENCRYPTED {
        let mut db = deploy(choice, 8300);
        let q = "SELECT v, COUNT(*) FROM t WHERE v BETWEEN '0000' AND '0099' GROUP BY v ORDER BY 1";
        let cold = db.execute(q).unwrap().rows_as_strings();
        let before = db.leakage_ledger();
        let warm = db.execute(q).unwrap().rows_as_strings();
        let delta = db.leakage_ledger().since(&before);
        assert_eq!(warm, cold, "{choice}: warm aggregate differs");
        assert_eq!(
            delta.kind(EcallKind::Aggregate).calls,
            1,
            "{choice}: the warm aggregate still enters the enclave once"
        );
        assert_eq!(
            delta.kind(EcallKind::Aggregate).values_decrypted,
            0,
            "{choice}: every touched ValueID was cached by the first run"
        );
        assert!(
            delta.kind(EcallKind::Aggregate).cache_hits > 0,
            "{choice}: the warm aggregate reads from the value cache"
        );
    }
}

/// Chunked-scan accounting stays exact under the batched path: one
/// histogram chunk per started 4096-row block per store, counted once.
#[test]
fn chunk_accounting_is_exact_under_batched_scans() {
    let mut db = deploy("ED1", 8400);
    db.execute("SELECT v, COUNT(*) FROM t WHERE v >= '0000' GROUP BY v")
        .unwrap();
    let stats = db.server().last_stats();
    // 24 main rows -> one main chunk; 6 delta rows -> one delta chunk.
    assert_eq!(stats.chunks_scanned, 2);
    assert_eq!(stats.enclave_calls, 2 + 1, "two searches + one aggregate");
}
