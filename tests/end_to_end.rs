//! Cross-crate integration tests: the full EncDBDB pipeline from data-owner
//! setup through SQL query execution, exercised against a plaintext
//! reference implementation.

use colstore::column::Column;
use colstore::table::Table;
use encdbdb::{ColumnSpec, DictChoice, Session, TableSchema};
use encdict::EdKind;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates a random dataset and checks every ED kind returns exactly what
/// a plaintext scan returns, for a battery of query shapes.
#[test]
fn all_kinds_agree_with_reference_scan() {
    let mut rng = StdRng::seed_from_u64(9001);
    let rows = 300usize;
    let values: Vec<String> = (0..rows)
        .map(|_| format!("v{:04}", rng.gen_range(0..40)))
        .collect();

    for kind in EdKind::ALL {
        let mut db = Session::with_seed(9100 + kind.number() as u64).unwrap();
        let mut table = Table::new("t");
        table
            .add_column(Column::from_strs("c", 8, values.iter()).unwrap())
            .unwrap();
        let schema = TableSchema::new(
            "t",
            vec![ColumnSpec::new("c", DictChoice::Encrypted(kind), 8)],
        );
        db.load_table(&table, schema).unwrap();

        type Pred = fn(&str) -> bool;
        let queries: [(&str, Pred); 4] = [
            ("SELECT c FROM t WHERE c = 'v0005'", |v| v == "v0005"),
            ("SELECT c FROM t WHERE c < 'v0010'", |v| v < "v0010"),
            ("SELECT c FROM t WHERE c >= 'v0030'", |v| v >= "v0030"),
            ("SELECT c FROM t WHERE c BETWEEN 'v0010' AND 'v0020'", |v| {
                ("v0010"..="v0020").contains(&v)
            }),
        ];
        for (sql, pred) in queries {
            let mut got: Vec<String> = db
                .execute(sql)
                .unwrap()
                .rows_as_strings()
                .into_iter()
                .map(|mut r| r.remove(0))
                .collect();
            got.sort();
            let mut expected: Vec<String> = values.iter().filter(|v| pred(v)).cloned().collect();
            expected.sort();
            assert_eq!(got, expected, "kind {kind}, query {sql}");
        }
    }
}

/// The setup phase must reject a server whose enclave measurement differs
/// from the expected dictionary-search enclave.
#[test]
fn attestation_rejects_unexpected_enclave() {
    use encdbdb::{DataOwner, DbaasServer};
    use enclave_sim::attestation::{Measurement, SigningPlatform};

    let mut rng = StdRng::seed_from_u64(42);
    let owner = DataOwner::generate(&mut rng);
    let server = DbaasServer::new();
    let service = SigningPlatform::default().verification_service();
    let err = owner
        .provision(
            &server,
            &service,
            Measurement::of(b"some-other-enclave"),
            &mut rng,
        )
        .unwrap_err();
    assert!(matches!(err, encdbdb::DbError::Enclave(_)));
}

/// Mixed-protection table: encrypted and plaintext dictionaries coexist,
/// and filters on either kind project columns of the other.
#[test]
fn mixed_encrypted_and_plain_columns() {
    let mut db = Session::with_seed(77).unwrap();
    db.execute("CREATE TABLE emp (name ED7(16), dept PLAIN(8), salary ED9(8))")
        .unwrap();
    db.execute(
        "INSERT INTO emp VALUES \
         ('alice', 'eng', '00090000'), ('bob', 'eng', '00085000'), \
         ('carol', 'sales', '00070000'), ('dave', 'eng', '00072000')",
    )
    .unwrap();

    // Filter on the PLAIN column, project encrypted columns.
    let r = db
        .execute("SELECT name, salary FROM emp WHERE dept = 'eng'")
        .unwrap();
    assert_eq!(r.row_count(), 3);

    // Filter on an encrypted column, project the PLAIN column.
    let r = db
        .execute("SELECT dept FROM emp WHERE salary >= '00080000'")
        .unwrap();
    let mut got = r.rows_as_strings();
    got.sort();
    assert_eq!(got, vec![vec!["eng".to_string()], vec!["eng".to_string()]]);
}

/// Insert → delete → merge → insert across multiple merges keeps results
/// exact for every storage generation.
#[test]
fn repeated_merge_cycles_stay_consistent() {
    let mut db = Session::with_seed(123).unwrap();
    db.execute("CREATE TABLE t (v ED5(8))").unwrap();
    let mut live: Vec<String> = Vec::new();
    let mut rng = StdRng::seed_from_u64(321);
    for cycle in 0..5 {
        // Insert a batch.
        let batch: Vec<String> = (0..20)
            .map(|i| format!("c{cycle}v{:03}", i * rng.gen_range(1..5)))
            .collect();
        let values = batch
            .iter()
            .map(|v| format!("('{v}')"))
            .collect::<Vec<_>>()
            .join(", ");
        db.execute(&format!("INSERT INTO t VALUES {values}"))
            .unwrap();
        live.extend(batch);
        // Delete a random prefix range.
        let cut = format!("c{cycle}v{:03}", 3);
        db.execute(&format!(
            "DELETE FROM t WHERE v >= 'c{cycle}' AND v < '{cut}'"
        ))
        .unwrap();
        live.retain(|v| !(v.as_str() >= format!("c{cycle}").as_str() && v.as_str() < cut.as_str()));
        // Merge on odd cycles.
        if cycle % 2 == 1 {
            db.merge("t").unwrap();
        }
        // Verify full contents.
        let mut got: Vec<String> = db
            .execute("SELECT v FROM t")
            .unwrap()
            .rows_as_strings()
            .into_iter()
            .map(|mut r| r.remove(0))
            .collect();
        got.sort();
        let mut expected = live.clone();
        expected.sort();
        assert_eq!(got, expected, "cycle {cycle}");
    }
}

/// Persistence round trip: a column written to disk and reloaded deploys
/// and queries identically.
#[test]
fn persisted_column_redeploys() {
    let dir = std::env::temp_dir().join("encdbdb-e2e");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("col.bin");

    let column = Column::from_strs("c", 8, ["x1", "x2", "x3", "x2"]).unwrap();
    colstore::persist::write_column(&path, &column).unwrap();
    let reloaded = colstore::persist::read_column(&path).unwrap();
    assert_eq!(reloaded, column);

    let mut db = Session::with_seed(555).unwrap();
    let mut table = Table::new("t");
    table.add_column(reloaded).unwrap();
    db.load_table(
        &table,
        TableSchema::new(
            "t",
            vec![ColumnSpec::new("c", DictChoice::Encrypted(EdKind::Ed3), 8)],
        ),
    )
    .unwrap();
    let r = db.execute("SELECT c FROM t WHERE c = 'x2'").unwrap();
    assert_eq!(r.row_count(), 2);
    std::fs::remove_file(&path).ok();
}

/// The workload generator and the full pipeline compose: a C2-like column
/// under the paper's recommended ED5, queried with RS-style ranges.
#[test]
fn workload_column_under_ed5() {
    let spec = workload::ColumnSpec {
        name: "c".to_string(),
        rows: 5_000,
        unique_values: 50,
        value_len: 10,
        zipf_exponent: 0.7,
    };
    let mut rng = StdRng::seed_from_u64(31);
    let column = workload::generate(&spec, &mut rng);
    let uniques = workload::spec::sorted_unique_values(&spec);

    let mut db = Session::with_seed(32).unwrap();
    let mut table = Table::new("bw");
    table.add_column(column.clone()).unwrap();
    db.load_table(
        &table,
        TableSchema::new(
            "bw",
            vec![ColumnSpec::new("c", DictChoice::Encrypted(EdKind::Ed5), 10)],
        ),
    )
    .unwrap();

    let gen = workload::RangeQueryGen::new(uniques, 5);
    for _ in 0..10 {
        let q = gen.draw(&mut rng);
        let (lo, hi) = match (&q.start, &q.end) {
            (encdict::RangeBound::Inclusive(a), encdict::RangeBound::Inclusive(b)) => (
                String::from_utf8(a.clone()).unwrap(),
                String::from_utf8(b.clone()).unwrap(),
            ),
            _ => unreachable!(),
        };
        let got = db
            .execute(&format!(
                "SELECT c FROM bw WHERE c BETWEEN '{lo}' AND '{hi}'"
            ))
            .unwrap()
            .row_count();
        let expected = column
            .iter()
            .filter(|v| *v >= lo.as_bytes() && *v <= hi.as_bytes())
            .count();
        assert_eq!(got, expected);
    }
}
