#!/usr/bin/env bash
# Offline CI for the EncDBDB reproduction.
#
# Everything here runs without network access: all dependencies are path
# dependencies inside the workspace (see DESIGN.md §4), so --offline is
# safe and enforced to catch any accidental registry dependency early.
set -euo pipefail
cd "$(dirname "$0")"

run() {
    echo "==> $*"
    "$@"
}

run cargo build --release --offline
run cargo test -q --offline
run cargo fmt --check
run cargo clippy --all-targets --offline -- -D warnings
# Rustdoc must stay warning-free (broken intra-doc links, bad code fences).
run env RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --offline
# The concurrency stress suite again, explicitly bounded: a fixed reader
# thread count and table size so CI machines of any width behave alike.
# This includes the partition stress tests (hot-shard writes + a merge on
# one shard while readers scan the others).
run env ENCDBDB_STRESS_THREADS=4 ENCDBDB_STRESS_ROWS=2000 \
    cargo test -q --offline --test concurrent_stress
# The multi-partition differential suite, bounded the same way.
run env ENCDBDB_STRESS_THREADS=4 ENCDBDB_STRESS_ROWS=2000 \
    cargo test -q --offline --test dynamic_differential
# The equi-join differential suite (all 9 ED kinds + PLAIN vs the MonetDB
# baseline, 1×4-shard combinations, proptest interleavings on both
# tables), bounded the same way.
run env ENCDBDB_STRESS_THREADS=4 ENCDBDB_STRESS_ROWS=2000 \
    cargo test -q --offline --test join_exec
# The crash-recovery fault-injection suite: the kill-point matrix (all 9
# ED kinds + PLAIN, 1- and 4-shard), corruption (bit flips, truncated WAL
# tails, swapped snapshot files) and checkpoint/fsync-batching recovery.
run env ENCDBDB_STRESS_THREADS=4 ENCDBDB_STRESS_ROWS=2000 \
    cargo test -q --offline --test crash_recovery
# The leakage-audit suite: the ECALL ledger's observed per-kind leakage
# for all 9 ED kinds + PLAIN against the DESIGN.md §2/§10/§11 bounds.
run cargo test -q --offline --test security
# The ECALL-batching differential suite: batched scheduler vs bypass must
# be bit-identical in results AND leakage ledgers (all 9 ED kinds + PLAIN,
# proptest interleavings, forced coalescing, compaction publish mid-batch).
run env ENCDBDB_STRESS_THREADS=4 \
    cargo test -q --offline --test batching_differential
# The scheduler crash-safety regression: an injected leader panic must
# poison (not wedge) the followers, and the server must keep serving.
run cargo test -q --offline --test scheduler_poison
# The networked service layer (DESIGN.md §16): TCP-vs-in-process
# differential (results, leakage ledgers, tenant isolation, quotas,
# admission control) and the graceful-shutdown / torn-WAL proof.
run cargo test -q --offline --test net_differential
run cargo test -q --offline --test net_shutdown
# Benches are excluded from `cargo test` (they are timed loops); keep them
# compiling — including the analytic-engine aggregate bench, the
# snapshot/compaction bench, the partition-layer bench and the join
# build/probe bench.
run cargo bench --no-run --offline -p encdbdb-bench
run cargo bench --no-run --offline -p encdbdb-bench --bench aggregate
run cargo bench --no-run --offline -p encdbdb-bench --bench compaction
run cargo bench --no-run --offline -p encdbdb-bench --bench partition
run cargo bench --no-run --offline -p encdbdb-bench --bench join
run cargo bench --no-run --offline -p encdbdb-bench --bench durability
run cargo bench --no-run --offline -p encdbdb-bench --bench cache
run cargo bench --no-run --offline -p encdbdb-bench --bench concurrency
# The concurrent-reader load generator (README "Concurrent throughput").
run cargo build --release --offline -p encdbdb-bench --bin loadgen
# The bench-trajectory emit mode: one fast bounded bench run writing
# BENCH_*.json into a temp dir, validated against the emit schema (the
# committed baselines under baselines/ are validated the same way).
BENCH_JSON_DIR="$(mktemp -d)"
trap 'rm -rf "$BENCH_JSON_DIR"' EXIT
run env ENCDBDB_BENCH_JSON="$BENCH_JSON_DIR" ENCDBDB_DURABILITY_ROWS=200 \
    cargo bench -q --offline -p encdbdb-bench --bench durability
run python3 tools/validate_bench_json.py "$BENCH_JSON_DIR"/BENCH_durability.json
run python3 tools/validate_bench_json.py baselines/BENCH_*.json
# The scan-kernel regression gate: a fresh av_search run (no row knobs,
# same workload as the committed baseline) compared median-to-median
# against baselines/BENCH_av_search.json. The tolerance (default 3x,
# ENCDBDB_BENCH_TOLERANCE to override) absorbs shared-runner noise while
# still catching an accidental algorithmic regression in the hot scan
# kernels.
run env ENCDBDB_BENCH_JSON="$BENCH_JSON_DIR" \
    cargo bench -q --offline -p encdbdb-bench --bench av_search
run python3 tools/validate_bench_json.py --baseline \
    baselines/BENCH_av_search.json "$BENCH_JSON_DIR"/BENCH_av_search.json
# Regression gates for the analytic engine and the join bridge, run with
# the same bounded row knobs their committed baselines were emitted with
# (the validator skips the comparison if the env objects differ).
run env ENCDBDB_BENCH_JSON="$BENCH_JSON_DIR" ENCDBDB_AGG_ROWS=100000 \
    cargo bench -q --offline -p encdbdb-bench --bench aggregate
run python3 tools/validate_bench_json.py --baseline \
    baselines/BENCH_aggregate.json "$BENCH_JSON_DIR"/BENCH_aggregate.json
run env ENCDBDB_BENCH_JSON="$BENCH_JSON_DIR" ENCDBDB_JOIN_ROWS=100000 \
    cargo bench -q --offline -p encdbdb-bench --bench join
run python3 tools/validate_bench_json.py --baseline \
    baselines/BENCH_join.json "$BENCH_JSON_DIR"/BENCH_join.json
# The concurrent-throughput gate (DESIGN.md §15): a fresh 1/4/16/64
# session ladder under the simulated 500 µs enclave-transition cost,
# compared against the committed baseline AND required to show >= 2x
# batched-over-bypass queries/sec at 16 sessions.
run env ENCDBDB_BENCH_JSON="$BENCH_JSON_DIR" ENCDBDB_SIM_TRANSITION_NS=500000 \
    cargo bench -q --offline -p encdbdb-bench --bench concurrency
run python3 tools/validate_bench_json.py --baseline \
    baselines/BENCH_concurrency.json "$BENCH_JSON_DIR"/BENCH_concurrency.json
run python3 tools/check_batching_speedup.py "$BENCH_JSON_DIR"/BENCH_concurrency.json
# The networked-throughput gate (DESIGN.md §16): the same ladder over
# real TCP connections — one thread-pooled server on an ephemeral
# loopback port, bounded sweep — required to show >= 2x queries/sec at
# 16 connections over a single connection (batched leg) and a non-zero
# ServerBusy shed count at the 64-connection rung. The committed
# baselines/BENCH_network.json is held to the same gate above via the
# baselines glob plus the --tcp check here.
run env ENCDBDB_BENCH_JSON="$BENCH_JSON_DIR" ENCDBDB_SIM_TRANSITION_NS=500000 \
    ./target/release/loadgen --tcp --sweep --samples 3
run python3 tools/validate_bench_json.py "$BENCH_JSON_DIR"/BENCH_network.json
run python3 tools/check_batching_speedup.py --tcp "$BENCH_JSON_DIR"/BENCH_network.json
run python3 tools/check_batching_speedup.py --tcp baselines/BENCH_network.json

echo "==> CI green"
