#!/usr/bin/env bash
# Offline CI for the EncDBDB reproduction.
#
# Everything here runs without network access: all dependencies are path
# dependencies inside the workspace (see DESIGN.md §4), so --offline is
# safe and enforced to catch any accidental registry dependency early.
set -euo pipefail
cd "$(dirname "$0")"

run() {
    echo "==> $*"
    "$@"
}

run cargo build --release --offline
run cargo test -q --offline
run cargo fmt --check
run cargo clippy --all-targets --offline -- -D warnings
# Rustdoc must stay warning-free (broken intra-doc links, bad code fences).
run env RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --offline
# Benches are excluded from `cargo test` (they are timed loops); keep them
# compiling — including the analytic-engine aggregate bench.
run cargo bench --no-run --offline -p encdbdb-bench
run cargo bench --no-run --offline -p encdbdb-bench --bench aggregate

echo "==> CI green"
