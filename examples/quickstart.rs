//! Quickstart: create an EncDBDB deployment, load data, run encrypted
//! range queries.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! The session wires up the full architecture of the paper's Figure 2: a
//! data owner generates the master key, remote-attests the server's
//! enclave, provisions the key, and a trusted proxy translates SQL into
//! encrypted range selects.

use encdbdb::Session;

fn main() -> Result<(), encdbdb::DbError> {
    // Setup (Fig. 5 steps 1-2): key generation, attestation, provisioning.
    let mut db = Session::with_seed(7)?;

    // ED5 (frequency smoothing + rotated) is the paper's recommended
    // security/latency/storage tradeoff (§6.4); ED9 is the maximum-security
    // choice.
    db.execute("CREATE TABLE people (fname ED5(12), city ED9(16))")?;

    db.execute(
        "INSERT INTO people VALUES \
         ('Jessica', 'Karlsruhe'), \
         ('Archie',  'Waterloo'), \
         ('Hans',    'Walldorf'), \
         ('Ella',    'Toronto')",
    )?;

    // Every filter becomes an encrypted range select; the server only ever
    // sees PAE ciphertexts of the bounds and of the values.
    let result =
        db.execute("SELECT fname, city FROM people WHERE fname BETWEEN 'Archie' AND 'Hans'")?;
    println!("people with fname in [Archie, Hans]:");
    for row in result.rows_as_strings() {
        println!("  {} from {}", row[0], row[1]);
    }
    assert_eq!(result.row_count(), 3);

    // Equality, inequality and open ranges are all converted to ranges by
    // the proxy, so the server cannot distinguish the query types.
    let result = db.execute("SELECT city FROM people WHERE fname = 'Jessica'")?;
    println!("Jessica's city: {}", result.rows_as_strings()[0][0]);

    let result = db.execute("SELECT fname FROM people WHERE fname > 'Ella'")?;
    println!(
        "fnames after Ella: {:?}",
        result
            .rows_as_strings()
            .into_iter()
            .map(|mut r| r.remove(0))
            .collect::<Vec<_>>()
    );

    Ok(())
}
