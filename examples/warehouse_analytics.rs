//! Warehouse analytics: the workload the paper's introduction motivates —
//! a business-warehouse table with per-column security choices, bulk-loaded
//! by the data owner and queried with analytic range selects.
//!
//! ```text
//! cargo run --release --example warehouse_analytics [-- rows]
//! ```
//!
//! Demonstrates the §6.4 usage guideline: frequency-revealing sorted
//! dictionaries (ED1) for low-sensitivity, high-compression columns;
//! ED5 as the recommended tradeoff; ED9 for the most sensitive column.

use colstore::column::Column;
use colstore::table::Table;
use encdbdb::{ColumnSpec, DictChoice, Session, TableSchema};
use encdict::EdKind;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let rows: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(20_000);
    let mut rng = StdRng::seed_from_u64(99);

    // Synthesize a sales fact table: order id (nearly unique), country
    // (few uniques, highly repetitive — like the paper's C2), price band.
    let countries = ["DE", "CA", "US", "FR", "JP", "IN", "BR", "GB"];
    let mut order_ids = Vec::with_capacity(rows);
    let mut country_col = Vec::with_capacity(rows);
    let mut price_col = Vec::with_capacity(rows);
    for i in 0..rows {
        order_ids.push(format!("ord{i:09}"));
        country_col.push(countries[rng.gen_range(0..countries.len())].to_string());
        // Prices as zero-padded strings so lexicographic order = numeric order.
        price_col.push(format!("{:06}", rng.gen_range(1_000..250_000)));
    }
    let mut table = Table::new("sales");
    table.add_column(Column::from_strs("order_id", 12, order_ids.iter())?)?;
    table.add_column(Column::from_strs("country", 2, country_col.iter())?)?;
    table.add_column(Column::from_strs("price", 6, price_col.iter())?)?;

    // Per-column security selection (§6.4 guideline).
    let schema = TableSchema::new(
        "sales",
        vec![
            // Order ids: nearly unique, low sensitivity -> ED1 (fast, compact).
            ColumnSpec::new("order_id", DictChoice::Encrypted(EdKind::Ed1), 12),
            // Country: repetitive and sensitive to frequency analysis ->
            // ED5 bounds frequency leakage and hides the plain order.
            ColumnSpec::new("country", DictChoice::Encrypted(EdKind::Ed5), 2),
            // Price: the most sensitive column -> ED9 (no leakage).
            ColumnSpec::new("price", DictChoice::Encrypted(EdKind::Ed9), 6),
        ],
    );

    let mut db = Session::with_seed(100)?;
    let start = std::time::Instant::now();
    db.load_table(&table, schema)?;
    println!("bulk-loaded {rows} rows in {:?}", start.elapsed());

    // Analytic query 1: a grouped range aggregation (the exec engine).
    // Grouping and frequency weighting run on ValueIDs in untrusted
    // memory; the enclave decrypts each distinct touched value once.
    let start = std::time::Instant::now();
    let result = db.execute(
        "SELECT country, COUNT(*), SUM(price) FROM sales \
         WHERE price BETWEEN '100000' AND '125000' \
         GROUP BY country ORDER BY 2 DESC",
    )?;
    let elapsed = start.elapsed();
    let stats = db.server().last_stats();
    println!(
        "\norders with price in [100000, 125000] by country ({elapsed:?}, \
         {} chunks, {} ECALLs, {} values decrypted):",
        stats.chunks_scanned, stats.enclave_calls, stats.values_decrypted
    );
    for row in result.rows_as_strings() {
        println!("  {}: {} orders, {} total", row[0], row[1], row[2]);
    }

    // Analytic query 1b: deterministic warehouse shapes from the workload
    // crate — a top-k ranking of countries by revenue.
    use workload::spec::{AggQueryGen, AggQueryShape};
    let gen = AggQueryGen::new("sales", "country", "price", {
        let mut uniques: Vec<String> = price_col.clone();
        uniques.sort();
        uniques.dedup();
        uniques
    });
    let top_k = gen.draw(AggQueryShape::TopK { k: 3 }, &mut rng);
    let result = db.execute(&top_k)?;
    println!("\ntop 3 countries by revenue ({top_k}):");
    for row in result.rows_as_strings() {
        println!("  {}: {}", row[0], row[1]);
    }

    // Analytic query 2: country slice (equality on ED5 — converted to a
    // range by the proxy, indistinguishable from the query above).
    let start = std::time::Instant::now();
    let result = db.execute("SELECT price FROM sales WHERE country = 'DE'")?;
    let elapsed = start.elapsed();
    let max = result
        .rows_as_strings()
        .into_iter()
        .map(|mut r| r.remove(0))
        .max()
        .unwrap_or_default();
    println!(
        "\nDE orders: {} (max price {max}, {elapsed:?})",
        result.row_count()
    );

    // Analytic query 3: order-id point lookup (ED1).
    let probe = &order_ids[rows / 2];
    let result = db.execute(&format!(
        "SELECT country, price FROM sales WHERE order_id = '{probe}'"
    ))?;
    println!("\nlookup {probe}: {:?}", result.rows_as_strings());

    Ok(())
}
