//! Dynamic data: inserts, deletes and the protected merge (paper §4.3).
//!
//! ```text
//! cargo run --release --example dynamic_delta
//! ```
//!
//! Shows the delta-store life cycle: inserts are re-encrypted inside the
//! enclave and appended to an ED9 delta (no order or frequency leaks on
//! ingest), deletes flip validity bits, reads combine main + delta, and the
//! periodic merge rebuilds the main store with fresh randomness so old and
//! new stores are unlinkable.

use encdbdb::Session;

fn main() -> Result<(), encdbdb::DbError> {
    let mut db = Session::with_seed(55)?;
    db.execute("CREATE TABLE inventory (sku ED2(10), qty ED9(6))")?;

    // Phase 1: initial inserts land in the write-optimized delta store.
    db.execute(
        "INSERT INTO inventory VALUES \
         ('sku-00001', '000120'), ('sku-00002', '000034'), \
         ('sku-00003', '000560'), ('sku-00004', '000007')",
    )?;
    let r = db.execute("SELECT sku, qty FROM inventory WHERE sku <= 'sku-00002'")?;
    println!(
        "before merge (served from delta): {:?}",
        r.rows_as_strings()
    );

    // Phase 2: merge folds the delta into a freshly rebuilt, re-rotated
    // ED2 main store. The read results stay identical.
    db.merge("inventory")?;
    let r = db.execute("SELECT sku, qty FROM inventory WHERE sku <= 'sku-00002'")?;
    println!(
        "after merge (served from main):   {:?}",
        r.rows_as_strings()
    );

    // Phase 3: updates = delete + insert; reads see main and delta merged
    // while checking validity.
    db.execute("DELETE FROM inventory WHERE sku = 'sku-00002'")?;
    db.execute("INSERT INTO inventory VALUES ('sku-00002', '000035')")?;
    let r = db.execute("SELECT qty FROM inventory WHERE sku = 'sku-00002'")?;
    println!(
        "after update, sku-00002 qty = {:?}",
        r.rows_as_strings()[0][0]
    );
    assert_eq!(r.rows_as_strings(), vec![vec!["000035".to_string()]]);

    // Phase 4: steady state — merge again, verify the full table.
    db.merge("inventory")?;
    let r = db.execute("SELECT * FROM inventory")?;
    println!("final inventory ({} rows):", r.row_count());
    let mut rows = r.rows_as_strings();
    rows.sort();
    for row in rows {
        println!("  {} -> {}", row[0], row[1]);
    }
    Ok(())
}
