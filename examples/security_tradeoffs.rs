//! Security/performance/storage tradeoffs across ED1–ED9 (paper §6.4).
//!
//! ```text
//! cargo run --release --example security_tradeoffs [-- rows]
//! ```
//!
//! Builds the same repetitive column under all nine encrypted dictionaries
//! and reports, for each: what an attacker observes (max ValueID frequency,
//! order correlation), the storage size, and the latency of a range query —
//! making the usage guideline of §6.4 concrete.

use encdbdb_bench::{
    build_ed, build_plain_ed, column_pae, fmt_bytes, fmt_duration, master_key, prepare_c2,
};
use encdict::avsearch::{search, Parallelism, SetSearchStrategy};
use encdict::leakage::analyze;
use encdict::{DictEnclave, EdKind, EncryptedRange, RangeQuery};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let rows: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(20_000);
    let bs_max = 10usize;
    let prepared = prepare_c2(rows, 77);
    let mut rng = StdRng::seed_from_u64(78);

    let n_uniques = prepared.sorted_uniques.len();
    let lo = prepared.sorted_uniques[n_uniques / 4].clone();
    let hi = prepared.sorted_uniques[(n_uniques / 4 + 4).min(n_uniques - 1)].clone();
    let query = RangeQuery::between(lo.clone(), hi.clone());

    println!(
        "column: {} rows, {} uniques, bs_max={bs_max}, query [{}..{}]\n",
        rows,
        prepared.stats.unique_count(),
        lo,
        hi
    );
    println!(
        "{:<5} {:>12} {:>11} {:>12} {:>11} {:>10}",
        "ED", "max AV freq", "order corr", "storage", "latency", "results"
    );

    for kind in EdKind::ALL {
        // Attacker view from the plaintext twin (the evaluator knows the
        // plaintexts; the attacker sees positions + the attribute vector).
        let (pdict, pav) = build_plain_ed(&prepared, kind, bs_max, 80 + kind.number() as u64);
        let plaintexts: Vec<Vec<u8>> = (0..pdict.len()).map(|i| pdict.value(i).to_vec()).collect();
        let leak = analyze(&pav, &plaintexts);

        // Encrypted instance for storage + latency.
        let (dict, av) = build_ed(&prepared, kind, bs_max, 90 + kind.number() as u64);
        let storage = dict.storage_size() + av.packed_size(dict.len());
        let mut enclave = DictEnclave::with_seed(91);
        enclave.provision_direct(master_key());
        let pae = column_pae(&prepared.spec.name);
        let tau = EncryptedRange::encrypt(&pae, &mut rng, &query);
        let start = std::time::Instant::now();
        let result = enclave.search(&dict, &tau).expect("search");
        let rids = search(
            &av,
            &result,
            dict.len(),
            SetSearchStrategy::PaperLinear,
            Parallelism::Serial,
        );
        let latency = start.elapsed();

        println!(
            "{:<5} {:>12} {:>11.3} {:>12} {:>11} {:>10}",
            kind.to_string(),
            leak.max_frequency,
            leak.modular_order_corr,
            fmt_bytes(storage),
            fmt_duration(latency),
            rids.len()
        );
    }

    println!();
    println!("reading guide (§6.4): ED1 = fastest/smallest, weakest; ED5 = the");
    println!("recommended tradeoff (bounded frequency + modular-only order leakage");
    println!("at near-ED1 latency); ED8 = strong security at binary-search speed,");
    println!("large storage; ED9 = maximum security, linear-scan latency.");
}
