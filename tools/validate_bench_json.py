#!/usr/bin/env python3
"""Validate BENCH_<area>.json trajectory files against the schema the
criterion shim emits (schema 1), and optionally gate a fresh run against
a committed baseline.

Usage:
  validate_bench_json.py FILE [FILE ...]
  validate_bench_json.py --baseline BASELINE FRESH

Each file must be a JSON object with:
  schema      == 1
  area        non-empty string matching the BENCH_<area>.json file name
  benchmarks  non-empty list of {id, median_ns, p95_ns, samples} where
              ids are unique, median_ns/p95_ns are positive integers,
              p95_ns >= median_ns, samples is a positive integer
  env         object mapping ENCDBDB_* knob names to string values

In --baseline mode both files are schema-validated first, then every
benchmark id present in BOTH files is compared:

  fresh.median_ns <= baseline.median_ns * tolerance

The tolerance defaults to 3.0x — wide enough to absorb shared-CI noise,
tight enough to catch an accidental O(n) -> O(n^2) regression — and is
overridable via ENCDBDB_BENCH_TOLERANCE. When the two files' env objects
differ (e.g. the fresh run was row-bounded), the comparison is skipped
with a notice instead of failing: medians from different workloads are
not comparable. Ids present in only one file are reported but never
fatal, so adding or retiring benchmarks does not break the gate.

Exits non-zero with a per-file message on the first violation.
"""

import json
import os
import sys


def fail(path, msg):
    print(f"{path}: {msg}", file=sys.stderr)
    sys.exit(1)


def validate(path):
    with open(path) as f:
        doc = json.load(f)
    if not isinstance(doc, dict):
        fail(path, "top level is not an object")
    if doc.get("schema") != 1:
        fail(path, f"schema is {doc.get('schema')!r}, expected 1")
    area = doc.get("area")
    if not isinstance(area, str) or not area:
        fail(path, "area is not a non-empty string")
    expected = f"BENCH_{area}.json"
    if os.path.basename(path) != expected:
        fail(path, f"file name does not match area (expected {expected})")
    benches = doc.get("benchmarks")
    if not isinstance(benches, list) or not benches:
        fail(path, "benchmarks is not a non-empty list")
    seen = set()
    for i, b in enumerate(benches):
        where = f"benchmarks[{i}]"
        if not isinstance(b, dict):
            fail(path, f"{where} is not an object")
        bid = b.get("id")
        if not isinstance(bid, str) or not bid:
            fail(path, f"{where}.id is not a non-empty string")
        if bid in seen:
            fail(path, f"duplicate benchmark id {bid!r}")
        seen.add(bid)
        for key in ("median_ns", "p95_ns", "samples"):
            v = b.get(key)
            if not isinstance(v, int) or isinstance(v, bool) or v <= 0:
                fail(path, f"{where}.{key} is not a positive integer")
        if b["p95_ns"] < b["median_ns"]:
            fail(path, f"{where}: p95_ns < median_ns")
    env = doc.get("env")
    if not isinstance(env, dict):
        fail(path, "env is not an object")
    for k, v in env.items():
        if not k.startswith("ENCDBDB_") or not isinstance(v, str):
            fail(path, f"env[{k!r}] is not an ENCDBDB_* string knob")
    print(f"{path}: ok ({len(benches)} benchmarks)")
    return doc


def tolerance():
    raw = os.environ.get("ENCDBDB_BENCH_TOLERANCE", "3.0")
    try:
        t = float(raw)
    except ValueError:
        print(f"ENCDBDB_BENCH_TOLERANCE={raw!r} is not a number", file=sys.stderr)
        sys.exit(2)
    if t < 1.0:
        print(f"ENCDBDB_BENCH_TOLERANCE={t} must be >= 1.0", file=sys.stderr)
        sys.exit(2)
    return t


def gate(baseline_path, fresh_path):
    baseline = validate(baseline_path)
    fresh = validate(fresh_path)
    if baseline["area"] != fresh["area"]:
        fail(fresh_path, f"area {fresh['area']!r} != baseline {baseline['area']!r}")
    if baseline["env"] != fresh["env"]:
        print(
            f"{fresh_path}: env differs from baseline "
            f"({fresh['env']} vs {baseline['env']}) — regression gate skipped"
        )
        return
    tol = tolerance()
    base = {b["id"]: b for b in baseline["benchmarks"]}
    new = {b["id"]: b for b in fresh["benchmarks"]}
    for bid in sorted(set(base) ^ set(new)):
        which = "baseline" if bid in base else "fresh run"
        print(f"{fresh_path}: id {bid!r} only in {which} — not compared")
    worst = None
    for bid in sorted(set(base) & set(new)):
        ratio = new[bid]["median_ns"] / base[bid]["median_ns"]
        if worst is None or ratio > worst[1]:
            worst = (bid, ratio)
        if ratio > tol:
            fail(
                fresh_path,
                f"regression on {bid!r}: median {new[bid]['median_ns']} ns is "
                f"{ratio:.2f}x the baseline {base[bid]['median_ns']} ns "
                f"(tolerance {tol}x)",
            )
    if worst is None:
        fail(fresh_path, "no shared benchmark ids with the baseline")
    print(
        f"{fresh_path}: within {tol}x of {baseline_path} "
        f"(worst {worst[1]:.2f}x on {worst[0]!r})"
    )


def main():
    args = sys.argv[1:]
    if args and args[0] == "--baseline":
        if len(args) != 3:
            print(__doc__.strip(), file=sys.stderr)
            sys.exit(2)
        gate(args[1], args[2])
        return
    if not args:
        print(__doc__.strip(), file=sys.stderr)
        sys.exit(2)
    for path in args:
        validate(path)


if __name__ == "__main__":
    main()
