#!/usr/bin/env python3
"""Validate BENCH_<area>.json trajectory files against the schema the
criterion shim emits (schema 1).

Usage: validate_bench_json.py FILE [FILE ...]

Each file must be a JSON object with:
  schema      == 1
  area        non-empty string matching the BENCH_<area>.json file name
  benchmarks  non-empty list of {id, median_ns, p95_ns, samples} where
              ids are unique, median_ns/p95_ns are positive integers,
              p95_ns >= median_ns, samples is a positive integer
  env         object mapping ENCDBDB_* knob names to string values

Exits non-zero with a per-file message on the first violation.
"""

import json
import os
import sys


def fail(path, msg):
    print(f"{path}: {msg}", file=sys.stderr)
    sys.exit(1)


def validate(path):
    with open(path) as f:
        doc = json.load(f)
    if not isinstance(doc, dict):
        fail(path, "top level is not an object")
    if doc.get("schema") != 1:
        fail(path, f"schema is {doc.get('schema')!r}, expected 1")
    area = doc.get("area")
    if not isinstance(area, str) or not area:
        fail(path, "area is not a non-empty string")
    expected = f"BENCH_{area}.json"
    if os.path.basename(path) != expected:
        fail(path, f"file name does not match area (expected {expected})")
    benches = doc.get("benchmarks")
    if not isinstance(benches, list) or not benches:
        fail(path, "benchmarks is not a non-empty list")
    seen = set()
    for i, b in enumerate(benches):
        where = f"benchmarks[{i}]"
        if not isinstance(b, dict):
            fail(path, f"{where} is not an object")
        bid = b.get("id")
        if not isinstance(bid, str) or not bid:
            fail(path, f"{where}.id is not a non-empty string")
        if bid in seen:
            fail(path, f"duplicate benchmark id {bid!r}")
        seen.add(bid)
        for key in ("median_ns", "p95_ns", "samples"):
            v = b.get(key)
            if not isinstance(v, int) or isinstance(v, bool) or v <= 0:
                fail(path, f"{where}.{key} is not a positive integer")
        if b["p95_ns"] < b["median_ns"]:
            fail(path, f"{where}: p95_ns < median_ns")
    env = doc.get("env")
    if not isinstance(env, dict):
        fail(path, "env is not an object")
    for k, v in env.items():
        if not k.startswith("ENCDBDB_") or not isinstance(v, str):
            fail(path, f"env[{k!r}] is not an ENCDBDB_* string knob")
    print(f"{path}: ok ({len(benches)} benchmarks)")


def main():
    if len(sys.argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        sys.exit(2)
    for path in sys.argv[1:]:
        validate(path)


if __name__ == "__main__":
    main()
