#!/usr/bin/env python3
"""Gate on the cross-session ECALL batching speedup (DESIGN.md §15/§16).

Default mode reads a BENCH_concurrency.json emitted by
`benches/concurrency.rs` and asserts that at 16 concurrent sessions the
batched scheduler leg is at least MIN_SPEEDUP (default 2.0) times faster
than the bypass leg, i.e.

    median_ns(qps/16/bypass) / median_ns(qps/16/batched) >= MIN_SPEEDUP

`--tcp` mode reads a BENCH_network.json emitted by `loadgen --tcp` and
asserts the networked throughput scales: 16 TCP connections must sustain
at least MIN_SPEEDUP times the queries/sec of a single connection on the
batched leg. Wave durations are normalised by the issued query counts
(recorded in env as ENCDBDB_NET_ISSUED_<n>; a 16-connection wave issues
16x the queries of a 1-connection wave), so

    (issued_16 / median_ns(tcp_wave/16/batched))
    / (issued_1 / median_ns(tcp_wave/1/batched)) >= MIN_SPEEDUP

It also requires that admission control actually shed load at the
64-connection rung (ENCDBDB_NET_BUSY_64_batched > 0) when that point is
present, proving the ServerBusy path is exercised, not dead code.

Usage: check_batching_speedup.py [--tcp] BENCH_*.json [min_speedup]
"""

import json
import sys


def check_concurrency(path: str, doc: dict, min_speedup: float) -> int:
    medians = {b["id"]: b["median_ns"] for b in doc.get("benchmarks", [])}
    for needed in ("qps/16/batched", "qps/16/bypass"):
        if needed not in medians:
            print(f"{path}: missing benchmark id '{needed}'", file=sys.stderr)
            return 1
    ratio = medians["qps/16/bypass"] / medians["qps/16/batched"]
    if ratio < min_speedup:
        print(
            f"{path}: 16-session batched/bypass speedup {ratio:.2f}x "
            f"below required {min_speedup:.1f}x",
            file=sys.stderr,
        )
        return 1
    print(f"{path}: 16-session batched/bypass speedup {ratio:.2f}x (>= {min_speedup:.1f}x)")
    return 0


def check_tcp(path: str, doc: dict, min_speedup: float) -> int:
    medians = {b["id"]: b["median_ns"] for b in doc.get("benchmarks", [])}
    env = doc.get("env", {})
    for needed in ("tcp_wave/1/batched", "tcp_wave/16/batched"):
        if needed not in medians:
            print(f"{path}: missing benchmark id '{needed}'", file=sys.stderr)
            return 1
    issued_1 = float(env.get("ENCDBDB_NET_ISSUED_1", 1))
    issued_16 = float(env.get("ENCDBDB_NET_ISSUED_16", 16))
    qps_1 = issued_1 / medians["tcp_wave/1/batched"]
    qps_16 = issued_16 / medians["tcp_wave/16/batched"]
    ratio = qps_16 / qps_1
    if ratio < min_speedup:
        print(
            f"{path}: 16-connection TCP throughput only {ratio:.2f}x a single "
            f"connection, below required {min_speedup:.1f}x",
            file=sys.stderr,
        )
        return 1
    print(
        f"{path}: 16-connection TCP throughput {ratio:.2f}x a single connection "
        f"(>= {min_speedup:.1f}x)"
    )
    if "tcp_wave/64/batched" in medians:
        busy = int(env.get("ENCDBDB_NET_BUSY_64_batched", 0))
        if busy <= 0:
            print(
                f"{path}: 64-connection rung recorded no ServerBusy replies — "
                f"admission control never shed load",
                file=sys.stderr,
            )
            return 1
        print(f"{path}: 64-connection rung shed load ({busy} ServerBusy replies)")
    return 0


def main() -> int:
    argv = sys.argv[1:]
    tcp = "--tcp" in argv
    argv = [a for a in argv if a != "--tcp"]
    if not argv:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    path = argv[0]
    min_speedup = float(argv[1]) if len(argv) > 1 else 2.0

    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    if tcp:
        return check_tcp(path, doc, min_speedup)
    return check_concurrency(path, doc, min_speedup)


if __name__ == "__main__":
    sys.exit(main())
