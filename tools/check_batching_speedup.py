#!/usr/bin/env python3
"""Gate on the cross-session ECALL batching speedup (DESIGN.md §15).

Reads a BENCH_concurrency.json emitted by `benches/concurrency.rs` and
asserts that at 16 concurrent sessions the batched scheduler leg is at
least MIN_SPEEDUP (default 2.0) times faster than the bypass leg, i.e.

    median_ns(qps/16/bypass) / median_ns(qps/16/batched) >= MIN_SPEEDUP

Usage: check_batching_speedup.py BENCH_concurrency.json [min_speedup]
"""

import json
import sys


def main() -> int:
    if len(sys.argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    path = sys.argv[1]
    min_speedup = float(sys.argv[2]) if len(sys.argv) > 2 else 2.0

    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    medians = {b["id"]: b["median_ns"] for b in doc.get("benchmarks", [])}
    for needed in ("qps/16/batched", "qps/16/bypass"):
        if needed not in medians:
            print(f"{path}: missing benchmark id '{needed}'", file=sys.stderr)
            return 1
    ratio = medians["qps/16/bypass"] / medians["qps/16/batched"]
    if ratio < min_speedup:
        print(
            f"{path}: 16-session batched/bypass speedup {ratio:.2f}x "
            f"below required {min_speedup:.1f}x",
            file=sys.stderr,
        )
        return 1
    print(f"{path}: 16-session batched/bypass speedup {ratio:.2f}x (>= {min_speedup:.1f}x)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
