//! Umbrella crate re-exporting the EncDBDB reproduction public API.
#![forbid(unsafe_code)]
pub use colstore;
pub use encdbdb;
pub use encdbdb_crypto as crypto;
pub use encdict;
pub use enclave_sim as enclave;
pub use workload;
