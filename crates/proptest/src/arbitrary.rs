//! The [`Arbitrary`] trait and the [`any`] entry point.

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::{Rng, RngCore};

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws one unconstrained value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

/// Returns the canonical strategy for `T`, like `proptest::arbitrary::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.gen::<$t>()
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, isize, bool, f32, f64);

impl Arbitrary for char {
    fn arbitrary(rng: &mut StdRng) -> Self {
        // Bias toward ASCII so generated text stays mostly readable, with a
        // tail of arbitrary scalar values to still exercise unicode paths.
        if rng.gen_bool(0.9) {
            rng.gen_range(0x20u32..0x7F) as u8 as char
        } else {
            loop {
                if let Some(c) = char::from_u32(rng.next_u32() % 0x11_0000) {
                    return c;
                }
            }
        }
    }
}

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut StdRng) -> Self {
        core::array::from_fn(|_| T::arbitrary(rng))
    }
}
