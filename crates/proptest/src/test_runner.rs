//! Case execution: configuration, deterministic RNG, and failure reporting.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// How many cases each property runs, mirroring `proptest`'s config struct.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the property to pass.
    pub cases: u32,
    /// Maximum number of rejected (`prop_assume!`) cases tolerated.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: env_u32("PROPTEST_CASES").unwrap_or(256),
            max_global_rejects: 1024,
        }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases (still overridable by
    /// `PROPTEST_CASES`).
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases: env_u32("PROPTEST_CASES").unwrap_or(cases),
            ..ProptestConfig::default()
        }
    }
}

fn env_u32(name: &str) -> Option<u32> {
    std::env::var(name).ok()?.parse().ok()
}

/// Why a test case did not succeed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// An assertion failed; the property is falsified.
    Fail(String),
    /// The case was rejected by `prop_assume!`; draw another input.
    Reject(String),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }

    /// A rejection with the given reason.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

/// Runs the cases of one property test.
#[derive(Debug)]
pub struct TestRunner {
    config: ProptestConfig,
    name: &'static str,
    seed: u64,
    rng: StdRng,
    passed: u32,
    rejected: u32,
    case: u32,
}

impl TestRunner {
    /// Creates a runner for the named property.
    ///
    /// The RNG seed derives deterministically from the property name so CI
    /// failures reproduce locally; set `PROPTEST_SEED` to explore another
    /// stream.
    pub fn new(config: ProptestConfig, name: &'static str) -> Self {
        let seed = match std::env::var("PROPTEST_SEED") {
            Ok(s) => s
                .parse()
                .unwrap_or_else(|_| panic!("PROPTEST_SEED must be a u64, got {s:?}")),
            Err(_) => fnv1a(name.as_bytes()),
        };
        TestRunner {
            config,
            name,
            seed,
            rng: StdRng::seed_from_u64(seed),
            passed: 0,
            rejected: 0,
            case: 0,
        }
    }

    /// Whether another case should run.
    pub fn more_cases(&mut self) -> bool {
        if self.passed >= self.config.cases {
            return false;
        }
        if self.rejected > self.config.max_global_rejects {
            panic!(
                "property {}: too many prop_assume! rejections ({} with only {} passes)",
                self.name, self.rejected, self.passed
            );
        }
        self.case += 1;
        true
    }

    /// The RNG strategies draw from.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    /// Records one case outcome, panicking on failure.
    pub fn finish_case(&mut self, outcome: Result<(), TestCaseError>) {
        match outcome {
            Ok(()) => self.passed += 1,
            Err(TestCaseError::Reject(_)) => self.rejected += 1,
            Err(TestCaseError::Fail(message)) => panic!(
                "property failed: {}\n  property: {}\n  case: {}/{} (seed {}; \
                 rerun with PROPTEST_SEED={} to reproduce)",
                message, self.name, self.case, self.config.cases, self.seed, self.seed
            ),
        }
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn with_cases_sets_count() {
        assert_eq!(ProptestConfig::with_cases(48).cases, 48);
    }

    #[test]
    fn runner_runs_exactly_cases() {
        let mut runner = TestRunner::new(ProptestConfig::with_cases(5), "five");
        let mut ran = 0;
        while runner.more_cases() {
            ran += 1;
            runner.finish_case(Ok(()));
        }
        assert_eq!(ran, 5);
    }

    #[test]
    fn rejections_do_not_count_as_passes() {
        let mut runner = TestRunner::new(ProptestConfig::with_cases(3), "rej");
        let mut total = 0;
        while runner.more_cases() {
            total += 1;
            if total <= 2 {
                runner.finish_case(Err(TestCaseError::reject("skip")));
            } else {
                runner.finish_case(Ok(()));
            }
        }
        assert_eq!(total, 5, "two rejects then three passes");
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failure_panics() {
        let mut runner = TestRunner::new(ProptestConfig::with_cases(1), "boom");
        assert!(runner.more_cases());
        runner.finish_case(Err(TestCaseError::fail("nope")));
    }

    #[test]
    fn seed_is_stable_per_name() {
        let a = TestRunner::new(ProptestConfig::with_cases(1), "same");
        let b = TestRunner::new(ProptestConfig::with_cases(1), "same");
        assert_eq!(a.seed, b.seed);
    }
}
