//! Regex-like string generation for `&str` strategies.
//!
//! Supports the pattern subset used in this workspace's property tests:
//! literal characters, `.` (any character), character classes with ranges
//! and literals (`[a-z' ]`), and the quantifiers `{m,n}`, `{n}`, `?`, `*`,
//! `+`. Unsupported constructs panic with the offending pattern so a test
//! author immediately sees what to extend.

use crate::arbitrary::Arbitrary;
use rand::rngs::StdRng;
use rand::Rng;

/// Cap for the open-ended `*` / `+` quantifiers.
const UNBOUNDED_CAP: usize = 8;

#[derive(Debug, Clone)]
enum Atom {
    /// A fixed character.
    Literal(char),
    /// `.` — any character.
    Any,
    /// A character class: single chars and inclusive ranges.
    Class {
        singles: Vec<char>,
        ranges: Vec<(char, char)>,
    },
}

#[derive(Debug, Clone)]
struct Piece {
    atom: Atom,
    min: usize,
    max: usize,
}

/// Generates one string matching `pattern`.
pub fn generate_from_pattern(pattern: &str, rng: &mut StdRng) -> String {
    let pieces = parse(pattern);
    let mut out = String::new();
    for piece in &pieces {
        let count = rng.gen_range(piece.min..=piece.max);
        for _ in 0..count {
            out.push(sample_atom(&piece.atom, rng));
        }
    }
    out
}

fn sample_atom(atom: &Atom, rng: &mut StdRng) -> char {
    match atom {
        Atom::Literal(c) => *c,
        Atom::Any => char::arbitrary(rng),
        Atom::Class { singles, ranges } => {
            // Weight each range by its width so e.g. `[a-z' ]` doesn't give
            // the two singles 2/3 of the probability mass.
            let range_weight: usize = ranges
                .iter()
                .map(|(lo, hi)| (*hi as usize - *lo as usize) + 1)
                .sum();
            let total = singles.len() + range_weight;
            let mut pick = rng.gen_range(0..total);
            if pick < singles.len() {
                return singles[pick];
            }
            pick -= singles.len();
            for (lo, hi) in ranges {
                let width = (*hi as usize - *lo as usize) + 1;
                if pick < width {
                    return char::from_u32(*lo as u32 + pick as u32)
                        .expect("class ranges stay within valid scalars");
                }
                pick -= width;
            }
            unreachable!("weights cover the class");
        }
    }
}

fn parse(pattern: &str) -> Vec<Piece> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0;
    let mut pieces = Vec::new();
    while i < chars.len() {
        let atom = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .unwrap_or_else(|| panic!("unclosed '[' in pattern {pattern:?}"))
                    + i;
                let atom = parse_class(&chars[i + 1..close], pattern);
                i = close + 1;
                atom
            }
            '.' => {
                i += 1;
                Atom::Any
            }
            '\\' => {
                let c = *chars
                    .get(i + 1)
                    .unwrap_or_else(|| panic!("dangling '\\' in pattern {pattern:?}"));
                i += 2;
                Atom::Literal(match c {
                    'n' => '\n',
                    't' => '\t',
                    other => other,
                })
            }
            c @ ('(' | ')' | '|') => {
                panic!("pattern {pattern:?} uses unsupported regex construct {c:?}")
            }
            c => {
                i += 1;
                Atom::Literal(c)
            }
        };
        let (min, max) = parse_quantifier(&chars, &mut i, pattern);
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

fn parse_class(body: &[char], pattern: &str) -> Atom {
    assert!(!body.is_empty(), "empty class in pattern {pattern:?}");
    assert!(
        body[0] != '^',
        "negated class in pattern {pattern:?} is not supported"
    );
    let mut singles = Vec::new();
    let mut ranges = Vec::new();
    let mut i = 0;
    while i < body.len() {
        if i + 2 < body.len() && body[i + 1] == '-' {
            let (lo, hi) = (body[i], body[i + 2]);
            assert!(lo <= hi, "inverted range in class of pattern {pattern:?}");
            ranges.push((lo, hi));
            i += 3;
        } else {
            singles.push(body[i]);
            i += 1;
        }
    }
    Atom::Class { singles, ranges }
}

fn parse_quantifier(chars: &[char], i: &mut usize, pattern: &str) -> (usize, usize) {
    match chars.get(*i) {
        Some('{') => {
            let close = chars[*i..]
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| panic!("unclosed '{{' in pattern {pattern:?}"))
                + *i;
            let body: String = chars[*i + 1..close].iter().collect();
            *i = close + 1;
            let parse_n = |s: &str| -> usize {
                s.trim()
                    .parse()
                    .unwrap_or_else(|_| panic!("bad quantifier in pattern {pattern:?}"))
            };
            match body.split_once(',') {
                Some((lo, hi)) => (parse_n(lo), parse_n(hi)),
                None => {
                    let n = parse_n(&body);
                    (n, n)
                }
            }
        }
        Some('?') => {
            *i += 1;
            (0, 1)
        }
        Some('*') => {
            *i += 1;
            (0, UNBOUNDED_CAP)
        }
        Some('+') => {
            *i += 1;
            (1, UNBOUNDED_CAP)
        }
        _ => (1, 1),
    }
}

#[cfg(test)]
mod tests {
    use super::generate_from_pattern;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn gen(pattern: &str, seed: u64) -> String {
        let mut rng = StdRng::seed_from_u64(seed);
        generate_from_pattern(pattern, &mut rng)
    }

    #[test]
    fn class_with_counted_repeat() {
        for seed in 0..50 {
            let s = gen("[a-e]{0,5}", seed);
            assert!(s.len() <= 5);
            assert!(s.chars().all(|c| ('a'..='e').contains(&c)));
        }
    }

    #[test]
    fn class_with_literals_and_range() {
        for seed in 0..50 {
            let s = gen("[a-z' ]{0,10}", seed);
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c == '\'' || c == ' '));
        }
    }

    #[test]
    fn concatenated_atoms() {
        for seed in 0..50 {
            let s = gen("[a-z][a-z0-9_]{0,8}", seed);
            assert!(!s.is_empty() && s.len() <= 9);
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
        }
    }

    #[test]
    fn printable_ascii_class() {
        for seed in 0..20 {
            let s = gen("[ -~]{0,120}", seed);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)));
            assert!(s.chars().count() <= 120);
        }
    }

    #[test]
    fn dot_generates_varied_chars() {
        let mut any_non_ascii = false;
        for seed in 0..200 {
            let s = gen(".{0,80}", seed);
            assert!(s.chars().count() <= 80);
            any_non_ascii |= !s.is_ascii();
        }
        assert!(any_non_ascii, "dot should occasionally produce non-ASCII");
    }

    #[test]
    fn literals_quantifiers_and_escapes() {
        assert_eq!(gen("abc", 1), "abc");
        assert_eq!(gen("a{3}", 1), "aaa");
        assert_eq!(gen("\\.", 1), ".");
        let s = gen("x?y*z+", 7);
        assert!(s.ends_with('z') || s.contains('z'));
    }
}
