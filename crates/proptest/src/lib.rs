//! Offline stand-in for the `proptest` crate.
//!
//! The workspace builds without network access (DESIGN.md §4), so this crate
//! reimplements the subset of the proptest API used by the property tests:
//! the [`proptest!`] macro, [`prop_assert!`]/[`prop_assert_eq!`]/
//! [`prop_assert_ne!`]/[`prop_assume!`], the [`strategy::Strategy`] trait
//! with `prop_map`, integer-range strategies, regex-string strategies
//! (`"[a-e]{0,5}"`), [`collection::vec`], [`sample::select`], and
//! [`arbitrary::any`].
//!
//! Differences from the real crate, deliberately accepted:
//!
//! * **No shrinking.** A failing case reports its case index and the
//!   deterministic seed instead of a minimised input.
//! * **Deterministic by default.** Each test function derives its RNG seed
//!   from its own name, so CI failures reproduce locally; set
//!   `PROPTEST_SEED` to explore a different stream, and `PROPTEST_CASES`
//!   to override the case count.
//! * **Regex strategies** understand the subset the tests use: literal
//!   characters, `.`, character classes like `[a-z' ]` with ranges, and the
//!   `{m,n}`/`{n}`/`?`/`*`/`+` quantifiers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arbitrary;
pub mod collection;
pub mod sample;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// The commonly-used API in one import, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Alias module so `prop::collection::vec` / `prop::sample::select`
    /// resolve as they do with the real crate's prelude.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
        pub use crate::strategy;
    }
}

/// Fails the current test case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current test case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (left, right) => $crate::prop_assert!(
                *left == *right,
                "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
                left,
                right
            ),
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (left, right) => $crate::prop_assert!(
                *left == *right,
                "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`: {}",
                left,
                right,
                format!($($fmt)+)
            ),
        }
    };
}

/// Fails the current test case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (left, right) => $crate::prop_assert!(
                *left != *right,
                "assertion failed: `(left != right)`\n  both: `{:?}`",
                left
            ),
        }
    };
}

/// Skips the current case (counted separately from failures) unless `cond`.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Declares property tests.
///
/// Supports the standard forms used in this workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(48))]
///     #[test]
///     fn my_property(x in 0u64..100, s in "[a-e]{0,5}") {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@funcs ($config); $($rest)*);
    };
    (@funcs ($config:expr); ) => {};
    (@funcs ($config:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut runner =
                $crate::test_runner::TestRunner::new(config, stringify!($name));
            while runner.more_cases() {
                $(
                    let $arg = $crate::strategy::Strategy::generate(&$strategy, runner.rng());
                )+
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                runner.finish_case(outcome);
            }
        }
        $crate::proptest!(@funcs ($config); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @funcs ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        );
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 10u64..20, y in 1usize..=3) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((1..=3).contains(&y));
        }

        #[test]
        fn regex_strings_match_shape(s in "[a-e]{0,5}") {
            prop_assert!(s.len() <= 5);
            prop_assert!(s.chars().all(|c| ('a'..='e').contains(&c)));
        }

        #[test]
        fn vec_sizes_respected(v in prop::collection::vec(any::<u8>(), 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
        }

        #[test]
        fn select_picks_from_list(k in prop::sample::select(vec![3u32, 5, 7])) {
            prop_assert!(k == 3 || k == 5 || k == 7);
        }

        #[test]
        fn prop_map_applies(len in prop::collection::vec(any::<bool>(), 0..4).prop_map(|v| v.len())) {
            prop_assert!(len < 4);
        }

        #[test]
        fn arrays_generate(a in any::<[u8; 16]>(), b in any::<[u8; 12]>()) {
            prop_assert_eq!(a.len(), 16);
            prop_assert_eq!(b.len(), 12);
        }
    }

    proptest! {
        #[test]
        fn default_config_works(x in 0u8..10) {
            prop_assert!(x < 10);
        }
    }

    // Declared without #[test] so the outer tests can drive them directly.
    proptest! {
        fn always_fails(x in 0u32..10) {
            prop_assert!(x > 100, "x was {}", x);
        }

        fn only_even(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failures_panic_with_context() {
        always_fails();
    }

    #[test]
    fn assume_rejects_without_failing() {
        only_even();
    }
}
