//! Sampling strategies (`prop::sample::select`).

use rand::rngs::StdRng;
use rand::Rng;

use crate::strategy::Strategy;

/// Uniformly selects one of the given values.
pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select requires at least one option");
    Select { options }
}

/// Strategy returned by [`select`].
#[derive(Debug, Clone)]
pub struct Select<T: Clone> {
    options: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        self.options[rng.gen_range(0..self.options.len())].clone()
    }
}
