//! The [`Strategy`] trait and basic combinators.

use core::ops::{Range, RangeInclusive};
use rand::rngs::StdRng;
use rand::Rng;

/// A recipe for generating values of type `Self::Value`.
///
/// Unlike the real proptest there is no value tree / shrinking: a strategy
/// simply draws a fresh value from the runner's RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
}

/// String strategies from regex-like patterns, e.g. `"[a-e]{0,5}"`.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut StdRng) -> String {
        crate::string::generate_from_pattern(self, rng)
    }
}
