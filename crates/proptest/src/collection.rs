//! Collection strategies (`prop::collection::vec`).

use core::ops::{Range, RangeInclusive};
use rand::rngs::StdRng;
use rand::Rng;

use crate::strategy::Strategy;

/// Admissible element-count specifications for [`vec()`].
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    /// Inclusive upper bound.
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        let (lo, hi) = r.into_inner();
        assert!(lo <= hi, "empty size range");
        SizeRange { lo, hi }
    }
}

/// Generates `Vec`s whose length falls in `size` and whose elements come
/// from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy returned by [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.lo..=self.size.hi);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
