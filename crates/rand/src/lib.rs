//! Offline stand-in for the `rand` crate.
//!
//! This workspace builds with no network access (see DESIGN.md §4 and the
//! README's "Offline builds" section), so the subset of the `rand 0.8` API
//! the code actually uses is reimplemented here:
//!
//! * [`RngCore`], [`SeedableRng`], [`Rng`] (with `gen`, `gen_range`,
//!   `gen_bool`, `fill_bytes`),
//! * [`rngs::StdRng`] — a deterministic xoshiro256\*\* generator seeded via
//!   splitmix64, with `seed_from_u64` and `from_entropy`,
//! * [`seq::SliceRandom`] — Fisher–Yates `shuffle` plus `choose`.
//!
//! The generator is **not** cryptographically secure; the workspace's
//! security-relevant randomness (GCM IVs, ephemeral DH keys) flows through
//! it only in tests, simulations, and benchmarks, never in a real
//! deployment. This mirrors how the paper's prototype treats randomness
//! quality as orthogonal to the leakage evaluation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use core::ops::{Range, RangeInclusive};

/// A source of uniformly distributed random bits.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates a generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it with splitmix64 so
    /// that nearby seeds yield unrelated streams.
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = SplitMix64 { state };
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }

    /// Creates a generator seeded from ambient entropy (wall clock and a
    /// process-global counter). Not cryptographically strong; see the crate
    /// docs.
    fn from_entropy() -> Self {
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::time::{SystemTime, UNIX_EPOCH};
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let nanos = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0xDEAD_BEEF);
        let count = COUNTER.fetch_add(1, Ordering::Relaxed);
        Self::seed_from_u64(nanos ^ count.rotate_left(32) ^ 0x9E37_79B9_7F4A_7C15)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Types that can be sampled uniformly from the generator's raw bits via
/// [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty => $via:ident),* $(,)?) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$via() as $t
            }
        }
    )*};
}

impl_standard_int! {
    u8 => next_u32, u16 => next_u32, u32 => next_u32,
    u64 => next_u64, usize => next_u64,
    i8 => next_u32, i16 => next_u32, i32 => next_u32,
    i64 => next_u64, isize => next_u64,
}

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl<const N: usize> Standard for [u8; N] {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        let mut out = [0u8; N];
        rng.fill_bytes(&mut out);
        out
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range. Panics if empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

// Uniform integer in [0, span) via the 128-bit multiply trick; the bias is
// at most span / 2^64, far below anything these workloads can observe.
fn uniform_below(rng: &mut (impl RngCore + ?Sized), span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_sample_range_int {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return Standard::sample(rng);
                }
                (lo as i128 + uniform_below(rng, span as u64) as i128) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit: $t = Standard::sample(rng);
                self.start + (self.end - self.start) * unit
            }
        }
    )*};
}

impl_sample_range_float!(f32, f64);

/// Convenience methods layered over [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of any [`Standard`]-samplable type.
    fn gen<T: Standard>(&mut self) -> T {
        Standard::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p not in [0, 1]");
        self.gen::<f64>() < p
    }

    /// Fills `dest` with random bytes (alias of [`RngCore::fill_bytes`]).
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Mock generators for deterministic tests.
    pub mod mock {
        use super::RngCore;

        /// Yields an arithmetic sequence: `initial`, `initial + increment`,
        /// `initial + 2·increment`, … (wrapping), like `rand`'s `StepRng`.
        #[derive(Debug, Clone, PartialEq, Eq)]
        pub struct StepRng {
            value: u64,
            increment: u64,
        }

        impl StepRng {
            /// Creates a generator starting at `initial`.
            pub fn new(initial: u64, increment: u64) -> Self {
                StepRng {
                    value: initial,
                    increment,
                }
            }
        }

        impl RngCore for StepRng {
            fn next_u32(&mut self) -> u32 {
                self.next_u64() as u32
            }

            fn next_u64(&mut self) -> u64 {
                let out = self.value;
                self.value = self.value.wrapping_add(self.increment);
                out
            }
        }
    }

    /// The workspace's standard deterministic generator: xoshiro256\*\*.
    ///
    /// Unlike the real `rand::rngs::StdRng` this is not a CSPRNG; see the
    /// crate docs for why that is acceptable here.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> Self {
            let mut s = [0u64; 4];
            for (lane, chunk) in s.iter_mut().zip(seed.chunks_exact(8)) {
                *lane = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            // xoshiro must not start in the all-zero state.
            if s == [0; 4] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0xBF58_476D_1CE4_E5B9,
                    0x94D0_49BB_1331_11EB,
                    1,
                ];
            }
            StdRng { s }
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..=i));
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: usize = rng.gen_range(1..=3);
            assert!((1..=3).contains(&w));
            let f: f64 = rng.gen_range(0.0..2.5);
            assert!((0.0..2.5).contains(&f));
            let neg: i64 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&neg));
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[rng.gen_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn fill_bytes_fills_odd_lengths() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert_ne!(buf, [0u8; 13]);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }

    #[test]
    fn from_entropy_instances_differ() {
        let mut a = StdRng::from_entropy();
        let mut b = StdRng::from_entropy();
        // The per-process counter guarantees distinct seeds even when the
        // clock does not advance between the two calls.
        let xs: Vec<u64> = (0..4).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..4).map(|_| b.next_u64()).collect();
        assert_ne!(xs, ys);
    }
}
