//! Multi-column conjunctive filters: the step-12 prefiltering ("rid would
//! be used to prefilter other columns in the same table").

use encdbdb::Session;

fn setup() -> Session {
    let mut db = Session::with_seed(700).unwrap();
    db.execute("CREATE TABLE orders (country ED5(2), price ED1(6), status ED9(10))")
        .unwrap();
    db.execute(
        "INSERT INTO orders VALUES \
         ('DE', '000100', 'shipped'), \
         ('DE', '000500', 'pending'), \
         ('CA', '000150', 'shipped'), \
         ('CA', '000700', 'shipped'), \
         ('US', '000300', 'pending')",
    )
    .unwrap();
    db
}

#[test]
fn two_column_and_intersects() {
    let mut db = setup();
    let r = db
        .execute("SELECT status FROM orders WHERE country = 'DE' AND price >= '000200'")
        .unwrap();
    assert_eq!(r.rows_as_strings(), vec![vec!["pending".to_string()]]);
}

#[test]
fn same_column_and_still_narrows_to_one_range() {
    let mut db = setup();
    let r = db
        .execute("SELECT country FROM orders WHERE price >= '000150' AND price < '000500'")
        .unwrap();
    let mut got = r.rows_as_strings();
    got.sort();
    assert_eq!(got, vec![vec!["CA".to_string()], vec!["US".to_string()]]);
}

#[test]
fn count_and_delete_with_conjunction() {
    let mut db = setup();
    let r = db
        .execute("SELECT COUNT(*) FROM orders WHERE country = 'CA' AND status = 'shipped'")
        .unwrap();
    assert_eq!(r.rows_as_strings(), vec![vec!["2".to_string()]]);
    let r = db
        .execute("DELETE FROM orders WHERE country = 'CA' AND price > '000500'")
        .unwrap();
    assert_eq!(r.rows_as_strings(), vec![vec!["1".to_string()]]);
    let r = db.execute("SELECT COUNT(*) FROM orders").unwrap();
    assert_eq!(r.rows_as_strings(), vec![vec!["4".to_string()]]);
}

#[test]
fn conjunction_spans_main_and_delta() {
    let mut db = setup();
    db.merge("orders").unwrap(); // existing rows into main stores
    db.execute("INSERT INTO orders VALUES ('DE', '000900', 'pending')")
        .unwrap(); // delta row
    let r = db
        .execute("SELECT price FROM orders WHERE country = 'DE' AND status = 'pending'")
        .unwrap();
    let mut got = r.rows_as_strings();
    got.sort();
    assert_eq!(
        got,
        vec![vec!["000500".to_string()], vec!["000900".to_string()]]
    );
}

#[test]
fn empty_intersection() {
    let mut db = setup();
    let r = db
        .execute("SELECT * FROM orders WHERE country = 'US' AND status = 'shipped'")
        .unwrap();
    assert_eq!(r.row_count(), 0);
}
