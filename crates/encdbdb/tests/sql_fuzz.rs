//! SQL front-end robustness: the parser must never panic, only return
//! errors, on arbitrary input — and must round-trip generated statements,
//! including the analytic extension (aggregates, GROUP BY, ORDER BY,
//! LIMIT) via `Display`: parse → display → parse is the identity on the
//! parsed representation.

use encdbdb::sql::{parse, ColumnRef, JoinClause, OrderKey, OrderTarget, SelectItem, Statement};
use encdict::aggregate::AggFunc;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary printable input never panics the lexer/parser.
    #[test]
    fn parser_never_panics(input in "[ -~]{0,120}") {
        let _ = parse(&input);
    }

    /// Arbitrary bytes interpreted as UTF-8 (lossy) never panic either.
    #[test]
    fn parser_handles_weird_unicode(input in ".{0,80}") {
        let _ = parse(&input);
    }

    /// Generated INSERTs parse back to the same rows, including values that
    /// need quote escaping.
    #[test]
    fn insert_roundtrip(rows in prop::collection::vec(
        prop::collection::vec("[a-z' ]{0,10}", 1..4), 1..4)
    ) {
        let arity = rows[0].len();
        let rows: Vec<Vec<String>> = rows.into_iter()
            .map(|mut r| { r.resize(arity, String::new()); r })
            .collect();
        let sql = format!(
            "INSERT INTO t VALUES {}",
            rows.iter()
                .map(|r| format!(
                    "({})",
                    r.iter()
                        .map(|v| format!("'{}'", v.replace('\'', "''")))
                        .collect::<Vec<_>>()
                        .join(", ")
                ))
                .collect::<Vec<_>>()
                .join(", ")
        );
        let stmt = parse(&sql).expect("generated SQL parses");
        match stmt {
            Statement::Insert { table, rows: parsed } => {
                prop_assert_eq!(table, "t");
                let expected: Vec<Vec<Vec<u8>>> = rows.iter()
                    .map(|r| r.iter().map(|v| v.as_bytes().to_vec()).collect())
                    .collect();
                prop_assert_eq!(parsed, expected);
            }
            other => prop_assert!(false, "wrong statement {:?}", other),
        }
    }

    /// Generated range selects parse to a single-column filter.
    #[test]
    fn select_filter_roundtrip(
        col in "[a-z][a-z0-9_]{0,8}",
        lo in "[a-m]{1,6}",
        hi in "[n-z]{1,6}",
    ) {
        let sql = format!("SELECT {col} FROM t WHERE {col} BETWEEN '{lo}' AND '{hi}'");
        let stmt = parse(&sql).expect("generated SQL parses");
        match stmt {
            Statement::Select { filter: Some(f), .. } => {
                prop_assert_eq!(f.column(), Some(col.as_str()));
            }
            other => prop_assert!(false, "wrong statement {:?}", other),
        }
    }

    /// Constructed statements of the extended grammar round-trip through
    /// `Display`: parse(display(stmt)) == stmt.
    #[test]
    fn extended_grammar_display_roundtrip(
        table in "[a-z][a-z0-9_]{0,6}",
        group_col in "[a-z][a-z0-9_]{0,6}",
        agg_col in "[A-Za-z][a-z0-9_]{0,6}",
        func in prop::sample::select(vec![
            AggFunc::Count, AggFunc::Sum, AggFunc::Min, AggFunc::Max, AggFunc::Avg,
        ]),
        with_filter in any::<bool>(),
        lo in "[a-m]{1,5}",
        hi in "[n-z']{1,5}",
        with_group in any::<bool>(),
        order_pos in 1usize..=2,
        desc in any::<bool>(),
        order_by_name in any::<bool>(),
        limit in prop::sample::select(vec![None, Some(0usize), Some(7), Some(10_000)]),
    ) {
        let aggregate = SelectItem::Aggregate {
            func,
            column: if func == AggFunc::Count {
                None
            } else {
                Some(agg_col.clone().into())
            },
        };
        let (items, group_by) = if with_group {
            (
                vec![SelectItem::Column(group_col.clone().into()), aggregate],
                vec![ColumnRef::bare(group_col.clone())],
            )
        } else {
            (vec![aggregate], vec![])
        };
        let order_by = if order_by_name && with_group {
            vec![OrderKey { target: OrderTarget::Column(group_col.clone()), desc }]
        } else {
            vec![OrderKey {
                target: OrderTarget::Position(order_pos.min(items.len())),
                desc,
            }]
        };
        let filter = with_filter.then(|| encdbdb::sql::Filter::Between {
            column: group_col.clone().into(),
            low: lo.clone().into_bytes(),
            high: hi.clone().into_bytes(),
        });
        let stmt = Statement::Select {
            distinct: false,
            items,
            table: table.clone(),
            join: None,
            filter,
            group_by,
            order_by,
            limit,
        };
        let rendered = stmt.to_string();
        let reparsed = parse(&rendered);
        prop_assert!(reparsed.is_ok(), "failed to reparse {rendered:?}: {reparsed:?}");
        prop_assert_eq!(reparsed.unwrap(), stmt, "display output: {}", rendered);
    }

    /// Constructed join statements with qualified references, DISTINCT and
    /// IN round-trip through `Display`.
    #[test]
    fn join_grammar_display_roundtrip(
        left in "[a-z][a-z0-9_]{0,5}",
        right in "[a-z][a-z0-9_]{0,5}",
        key in "[a-z][a-z0-9_]{0,5}",
        col_l in "[a-z][a-z0-9_]{0,5}",
        col_r in "[a-z][a-z0-9_]{0,5}",
        distinct in any::<bool>(),
        in_values in prop::collection::vec("[a-z']{1,6}", 1..4),
        with_filter in any::<bool>(),
        limit in prop::sample::select(vec![None, Some(3usize)]),
    ) {
        let filter = with_filter.then(|| encdbdb::sql::Filter::In {
            column: ColumnRef::qualified(left.clone(), col_l.clone()),
            values: in_values.iter().map(|v| v.clone().into_bytes()).collect(),
        });
        let stmt = Statement::Select {
            distinct,
            items: vec![
                SelectItem::Column(ColumnRef::qualified(left.clone(), col_l.clone())),
                SelectItem::Column(ColumnRef::qualified(right.clone(), col_r.clone())),
            ],
            table: left.clone(),
            join: Some(Box::new(JoinClause {
                table: right.clone(),
                left: ColumnRef::qualified(left.clone(), key.clone()),
                right: ColumnRef::qualified(right.clone(), key.clone()),
            })),
            filter,
            group_by: vec![],
            order_by: vec![OrderKey {
                target: OrderTarget::Column(format!("{left}.{col_l}")),
                desc: false,
            }],
            limit,
        };
        let rendered = stmt.to_string();
        let reparsed = parse(&rendered);
        prop_assert!(reparsed.is_ok(), "failed to reparse {rendered:?}: {reparsed:?}");
        prop_assert_eq!(reparsed.unwrap(), stmt, "display output: {}", rendered);
    }

    /// Any successfully parsed statement re-renders and re-parses to an
    /// equal statement (parse → display → parse on raw fuzz input).
    #[test]
    fn parse_display_parse_fixpoint(input in "[ -~]{0,120}") {
        if let Ok(s1) = parse(&input) {
            let rendered = s1.to_string();
            let s2 = parse(&rendered);
            prop_assert!(s2.is_ok(), "reparse of {rendered:?} failed: {s2:?}");
            prop_assert_eq!(s2.unwrap(), s1, "rendered: {}", rendered);
        }
    }
}
