//! SQL front-end robustness: the parser must never panic, only return
//! errors, on arbitrary input — and must round-trip generated statements.

use encdbdb::sql::{parse, Statement};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary printable input never panics the lexer/parser.
    #[test]
    fn parser_never_panics(input in "[ -~]{0,120}") {
        let _ = parse(&input);
    }

    /// Arbitrary bytes interpreted as UTF-8 (lossy) never panic either.
    #[test]
    fn parser_handles_weird_unicode(input in ".{0,80}") {
        let _ = parse(&input);
    }

    /// Generated INSERTs parse back to the same rows, including values that
    /// need quote escaping.
    #[test]
    fn insert_roundtrip(rows in prop::collection::vec(
        prop::collection::vec("[a-z' ]{0,10}", 1..4), 1..4)
    ) {
        let arity = rows[0].len();
        let rows: Vec<Vec<String>> = rows.into_iter()
            .map(|mut r| { r.resize(arity, String::new()); r })
            .collect();
        let sql = format!(
            "INSERT INTO t VALUES {}",
            rows.iter()
                .map(|r| format!(
                    "({})",
                    r.iter()
                        .map(|v| format!("'{}'", v.replace('\'', "''")))
                        .collect::<Vec<_>>()
                        .join(", ")
                ))
                .collect::<Vec<_>>()
                .join(", ")
        );
        let stmt = parse(&sql).expect("generated SQL parses");
        match stmt {
            Statement::Insert { table, rows: parsed } => {
                prop_assert_eq!(table, "t");
                let expected: Vec<Vec<Vec<u8>>> = rows.iter()
                    .map(|r| r.iter().map(|v| v.as_bytes().to_vec()).collect())
                    .collect();
                prop_assert_eq!(parsed, expected);
            }
            other => prop_assert!(false, "wrong statement {:?}", other),
        }
    }

    /// Generated range selects parse to a single-column filter.
    #[test]
    fn select_filter_roundtrip(
        col in "[a-z][a-z0-9_]{0,8}",
        lo in "[a-m]{1,6}",
        hi in "[n-z]{1,6}",
    ) {
        let sql = format!("SELECT {col} FROM t WHERE {col} BETWEEN '{lo}' AND '{hi}'");
        let stmt = parse(&sql).expect("generated SQL parses");
        match stmt {
            Statement::Select { filter: Some(f), .. } => {
                prop_assert_eq!(f.column(), Some(col.as_str()));
            }
            other => prop_assert!(false, "wrong statement {:?}", other),
        }
    }
}
