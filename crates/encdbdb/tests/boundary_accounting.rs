//! Enclave-boundary accounting across the DBMS layer: the paper's §5 claim
//! of one context switch per query, and the behaviour of merges.

use encdbdb::Session;

fn ecalls(db: &mut Session) -> u64 {
    db.server().enclave().enclave().counters().ecalls
}

fn merge_ecalls(db: &mut Session) -> u64 {
    db.server().merge_enclave().enclave().counters().ecalls
}

fn reset(db: &mut Session) {
    db.server().enclave().enclave_mut().reset_counters();
    db.server().merge_enclave().enclave_mut().reset_counters();
}

#[test]
fn one_ecall_per_filtered_select_on_main_store() {
    let mut db = Session::with_seed(600).unwrap();
    db.execute("CREATE TABLE t (v ED1(8))").unwrap();
    db.execute("INSERT INTO t VALUES ('a'), ('b'), ('c')")
        .unwrap();
    db.merge("t").unwrap(); // move data into the main store, empty delta
    reset(&mut db);
    db.execute("SELECT v FROM t WHERE v = 'b'").unwrap();
    // One ECALL for the main dictionary search; an empty delta store is
    // skipped without entering the enclave — the §5 guarantee is per
    // searched dictionary.
    assert_eq!(ecalls(&mut db), 1);
    assert_eq!(db.server().last_stats().enclave_calls, 1);

    // With rows in the delta, its ED9 dictionary is searched too.
    db.execute("INSERT INTO t VALUES ('d')").unwrap();
    reset(&mut db);
    db.execute("SELECT v FROM t WHERE v = 'b'").unwrap();
    assert_eq!(ecalls(&mut db), 2);
    assert_eq!(db.server().last_stats().enclave_calls, 2);
}

#[test]
fn unfiltered_select_needs_no_ecall() {
    let mut db = Session::with_seed(601).unwrap();
    db.execute("CREATE TABLE t (v ED9(8))").unwrap();
    db.execute("INSERT INTO t VALUES ('a'), ('b')").unwrap();
    reset(&mut db);
    db.execute("SELECT v FROM t").unwrap();
    assert_eq!(ecalls(&mut db), 0, "full scans never enter the enclave");
}

#[test]
fn insert_costs_one_ecall_per_encrypted_cell() {
    let mut db = Session::with_seed(602).unwrap();
    db.execute("CREATE TABLE t (a ED1(8), b ED9(8), c PLAIN(8))")
        .unwrap();
    reset(&mut db);
    db.execute("INSERT INTO t VALUES ('x', 'y', 'z'), ('p', 'q', 'r')")
        .unwrap();
    // Two rows × two encrypted columns = 4 re-encryption ECALLs; the PLAIN
    // column never touches the enclave.
    assert_eq!(ecalls(&mut db), 4);
}

#[test]
fn merge_costs_one_ecall_per_encrypted_column() {
    let mut db = Session::with_seed(603).unwrap();
    db.execute("CREATE TABLE t (a ED2(8), b ED5(8), c PLAIN(8))")
        .unwrap();
    db.execute("INSERT INTO t VALUES ('x', 'y', 'z')").unwrap();
    reset(&mut db);
    db.merge("t").unwrap();
    // Merges run on the dedicated compaction enclave, off the query path.
    assert_eq!(
        merge_ecalls(&mut db),
        2,
        "one merge ECALL per encrypted column"
    );
    assert_eq!(ecalls(&mut db), 0, "the query enclave stays untouched");
}

#[test]
fn trusted_heap_stays_bounded_across_queries() {
    let mut db = Session::with_seed(604).unwrap();
    db.execute("CREATE TABLE t (v ED5(8))").unwrap();
    let rows: Vec<String> = (0..500).map(|i| format!("('v{:04}')", i % 40)).collect();
    db.execute(&format!("INSERT INTO t VALUES {}", rows.join(", ")))
        .unwrap();
    db.merge("t").unwrap();
    db.server().enclave().enclave_mut().reset_heap_peak();
    for i in 0..20 {
        db.execute(&format!("SELECT v FROM t WHERE v = 'v{:04}'", i))
            .unwrap();
    }
    let peak = db.server().enclave().enclave().trusted_heap_peak();
    // Query processing needs only transient per-value buffers — far below
    // even a kilobyte, and nowhere near the 96 MiB EPC budget.
    assert!(peak < 1024, "peak trusted heap {peak} B");
}

#[test]
fn multiple_tables_are_isolated() {
    let mut db = Session::with_seed(605).unwrap();
    db.execute("CREATE TABLE t1 (v ED1(8))").unwrap();
    db.execute("CREATE TABLE t2 (v ED9(8))").unwrap();
    db.execute("INSERT INTO t1 VALUES ('only-t1')").unwrap();
    db.execute("INSERT INTO t2 VALUES ('only-t2')").unwrap();
    assert_eq!(
        db.execute("SELECT COUNT(*) FROM t1")
            .unwrap()
            .rows_as_strings(),
        vec![vec!["1".to_string()]]
    );
    let r = db.execute("SELECT v FROM t2 WHERE v >= 'a'").unwrap();
    assert_eq!(r.rows_as_strings(), vec![vec!["only-t2".to_string()]]);
    // Same column name in two tables derives different keys: deleting from
    // t1 leaves t2 untouched.
    db.execute("DELETE FROM t1 WHERE v = 'only-t1'").unwrap();
    assert_eq!(
        db.execute("SELECT COUNT(*) FROM t2")
            .unwrap()
            .rows_as_strings(),
        vec![vec!["1".to_string()]]
    );
}
