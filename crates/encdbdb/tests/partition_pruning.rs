//! Partition-layer enclave-boundary accounting: pruned, empty and
//! fully-invalid shards must never cost an ECALL (the partition analogue
//! of the empty-delta no-op), and a partition-parallel aggregate pays at
//! most one search ECALL per filtered dictionary of each non-empty shard
//! plus exactly one `Aggregate` ECALL.

use encdbdb::Session;

fn ecalls(db: &Session) -> u64 {
    db.server().enclave().enclave().counters().ecalls
}

fn reset(db: &Session) {
    db.server().enclave().enclave_mut().reset_counters();
    db.server().merge_enclave().enclave_mut().reset_counters();
}

/// A three-shard table (splits at '0030' and '0060') with rows only in
/// shard 0, main-store resident, empty deltas.
fn shard0_only_session(seed: u64) -> Session {
    let mut db = Session::with_seed(seed).unwrap();
    db.set_compaction_policy(None); // deterministic ECALL accounting
    db.execute("CREATE TABLE t (v ED1(8)) PARTITION BY RANGE (v) SPLIT ('0030', '0060')")
        .unwrap();
    db.execute("INSERT INTO t VALUES ('0010'), ('0020'), ('0025')")
        .unwrap();
    db.merge("t").unwrap();
    db
}

#[test]
fn pruned_shards_issue_zero_ecalls() {
    let mut db = shard0_only_session(700);
    reset(&db);
    // Scope = shard 0 only; shards 1 and 2 are pruned by the range.
    db.execute("SELECT v FROM t WHERE v BETWEEN '0000' AND '0025'")
        .unwrap();
    // One search ECALL for shard 0's main dictionary; its delta is empty.
    assert_eq!(ecalls(&db), 1);
    let stats = db.server().last_stats();
    assert_eq!(stats.enclave_calls, 1);
    assert_eq!(stats.partitions_total, 3);
    assert_eq!(stats.partitions_scanned, 1);
    assert_eq!(stats.partitions_pruned, 2);
}

#[test]
fn empty_in_scope_shards_issue_zero_ecalls() {
    let mut db = shard0_only_session(701);
    reset(&db);
    // Scope = shards 1 and 2 (shard 0 pruned) — both hold no row at all:
    // the query must be answered without entering the enclave once.
    let r = db.execute("SELECT v FROM t WHERE v >= '0040'").unwrap();
    assert_eq!(r.row_count(), 0);
    assert_eq!(ecalls(&db), 0, "empty shards never enter the enclave");
    let stats = db.server().last_stats();
    assert_eq!(stats.enclave_calls, 0);
    assert_eq!(stats.partitions_scanned, 0);
    assert_eq!(stats.partitions_pruned, 1);
}

#[test]
fn grouped_aggregate_over_pruned_and_empty_shards_skips_the_enclave() {
    let mut db = shard0_only_session(702);
    reset(&db);
    // Grouped aggregate whose range only reaches the two empty shards:
    // zero groups, zero ECALLs — not even the Aggregate call.
    let r = db
        .execute("SELECT v, COUNT(*) FROM t WHERE v >= '0040' GROUP BY v")
        .unwrap();
    assert_eq!(r.row_count(), 0);
    assert_eq!(ecalls(&db), 0, "no part, no Aggregate ECALL");
    let stats = db.server().last_stats();
    assert_eq!(stats.enclave_calls, 0);
    assert_eq!(stats.values_decrypted, 0);
}

#[test]
fn fully_invalid_shard_skips_the_enclave() {
    let mut db = Session::with_seed(703).unwrap();
    db.set_compaction_policy(None);
    db.execute("CREATE TABLE t (v ED2(8)) PARTITION BY RANGE (v) SPLIT ('0050')")
        .unwrap();
    db.execute("INSERT INTO t VALUES ('0010'), ('0020'), ('0070')")
        .unwrap();
    db.merge("t").unwrap();
    // Invalidate every row of shard 0; its main store still holds (dead)
    // dictionary entries.
    db.execute("DELETE FROM t WHERE v < '0050'").unwrap();
    reset(&db);
    let r = db.execute("SELECT v FROM t WHERE v <= '0099'").unwrap();
    assert_eq!(r.row_count(), 1, "only shard 1's row survives");
    // Shard 0 is fully invalid -> provably matches nothing -> no search
    // ECALL; shard 1 pays exactly one.
    assert_eq!(ecalls(&db), 1);
    let stats = db.server().last_stats();
    assert_eq!(stats.partitions_scanned, 1);
}

#[test]
fn aggregate_pays_one_search_per_nonempty_shard_and_one_aggregate_call() {
    let mut db = Session::with_seed(704).unwrap();
    db.set_compaction_policy(None);
    db.execute("CREATE TABLE t (v ED5(8)) PARTITION BY RANGE (v) SPLIT ('0030', '0060')")
        .unwrap();
    // Rows in all three shards.
    db.execute("INSERT INTO t VALUES ('0010'), ('0040'), ('0040'), ('0070')")
        .unwrap();
    db.merge("t").unwrap();
    reset(&db);
    // Filtered grouped aggregate spanning all three shards: one search
    // ECALL per shard's main dictionary (deltas are empty) + exactly one
    // Aggregate ECALL carrying the three per-shard histograms.
    let r = db
        .execute(
            "SELECT v, COUNT(*) FROM t WHERE v BETWEEN '0000' AND '0099' GROUP BY v ORDER BY 1",
        )
        .unwrap();
    assert_eq!(
        r.rows_as_strings(),
        vec![
            vec!["0010".to_string(), "1".to_string()],
            vec!["0040".to_string(), "2".to_string()],
            vec!["0070".to_string(), "1".to_string()],
        ]
    );
    assert_eq!(ecalls(&db), 3 + 1);
    let stats = db.server().last_stats();
    assert_eq!(stats.enclave_calls, 4);
    assert_eq!(stats.partitions_scanned, 3);
    // Decrypt bound: the aggregate re-reads one distinct touched ValueID
    // per shard, and every one of them was just decrypted by that shard's
    // search ECALL — the enclave value cache answers all three, so the
    // aggregate adds zero fresh decrypts. The searches themselves may hit
    // the cache further on their own repeated probes of one entry.
    assert_eq!(stats.values_decrypted, 0);
    assert!(
        stats.cache_hits >= 3,
        "three aggregate reads must be cache hits, got {}",
        stats.cache_hits
    );

    // Unfiltered global aggregate: no search at all, one Aggregate ECALL.
    reset(&db);
    let r = db.execute("SELECT COUNT(*), SUM(v) FROM t").unwrap();
    assert_eq!(
        r.rows_as_strings(),
        vec![vec!["4".to_string(), "160".to_string()]]
    );
    assert_eq!(ecalls(&db), 1, "histograms need no enclave; one Aggregate");
}
