//! EncDBDB: a searchable encrypted, fast, compressed, in-memory database
//! using (simulated) enclaves — the DBMS layer of the reproduction.
//!
//! This crate wires the encrypted dictionaries of the [`encdict`] crate
//! into a working database (paper §3–§5):
//!
//! * [`sql`] — a SQL front end where ED1–ED9 are column data types, as in
//!   the paper's MonetDB integration (`CREATE TABLE t1 (c1 ED7(12), ...)`).
//! * [`schema`] — per-column dictionary selection and range partitioning
//!   (`PARTITION BY RANGE (col) SPLIT ('a', ...)`).
//! * [`owner`] — the data owner: key generation, remote attestation,
//!   `EncDB` encryption, deployment (Fig. 5 steps 1–4).
//! * [`proxy`] — the trusted proxy: query-type-hiding range conversion and
//!   encryption of filters, decryption of results (steps 5 + 14).
//! * [`server`] — the untrusted DBaaS server: storage, query evaluation
//!   engine, delta stores, merges (steps 6–13).
//! * [`exec`] — the analytic query engine: vectorized GROUP BY /
//!   aggregates / ORDER BY / LIMIT over ValueID histograms, with one
//!   enclave consultation per query.
//! * [`session`] — an in-process deployment of all components.
//! * [`net`] — a networked multi-tenant deployment: binary wire
//!   protocol, thread-pooled TCP server with admission control, and a
//!   thin client (`NetServer`, `NetClient`).
//! * [`obs`] — observability: metrics registry, trace spans, and the
//!   ECALL leakage ledger (`Session::export_trace`, `metrics_report`).
//!
//! # Quickstart
//!
//! ```
//! use encdbdb::Session;
//!
//! let mut db = Session::with_seed(7)?;
//! db.execute("CREATE TABLE people (fname ED5(12), city ED9(16))")?;
//! db.execute("INSERT INTO people VALUES ('Jessica', 'Karlsruhe'), ('Archie', 'Waterloo')")?;
//! let r = db.execute("SELECT city FROM people WHERE fname >= 'B'")?;
//! assert_eq!(r.rows_as_strings(), vec![vec!["Karlsruhe".to_string()]]);
//!
//! // Analytic queries run on ValueID histograms; the enclave decrypts
//! // each distinct touched value once (see the `exec` module).
//! db.execute("CREATE TABLE sales (region ED5(8), price ED9(6))")?;
//! db.execute(
//!     "INSERT INTO sales VALUES ('emea', '0100'), ('emea', '0250'), ('apj', '0075')",
//! )?;
//! let r = db.execute(
//!     "SELECT region, SUM(price) FROM sales GROUP BY region ORDER BY 2 DESC LIMIT 2",
//! )?;
//! assert_eq!(
//!     r.rows_as_strings(),
//!     vec![
//!         vec!["emea".to_string(), "350".to_string()],
//!         vec!["apj".to_string(), "75".to_string()],
//!     ]
//! );
//! # Ok::<(), encdbdb::DbError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod exec;
pub mod net;
pub mod obs;
pub mod owner;
pub mod proxy;
pub mod schema;
pub mod server;
pub mod session;
pub mod sql;

pub use error::DbError;
pub use exec::plan::{AggregatePlan, SelectPlan};
pub use net::{NetClient, NetServer, NetServerConfig, NetServerHandle, TenantSpec};
pub use obs::{EcallKind, LedgerReport, MetricsReport, Obs, TraceEvent};
pub use owner::DataOwner;
pub use proxy::{Proxy, QueryResult};
pub use schema::{ColumnSpec, DictChoice, TablePartitioning, TableSchema};
pub use server::{
    CompactionPolicy, CompactionStats, DbaasServer, DeployedColumn, DurabilityPolicy,
    DurabilityStats, FailPoint, QueryOutcome, QueryStats, ServerQuery,
};
pub use session::{ReaderSession, Session};
