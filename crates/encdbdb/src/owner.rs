//! The data owner (paper Fig. 5, steps 1–4).
//!
//! The owner generates the master key `SK_DB`, attests the server's enclave
//! and provisions the key over the attested channel, encrypts the plaintext
//! database column by column (`EncDB`), and deploys the result.

use crate::error::DbError;
use crate::schema::{DictChoice, TableSchema};
use crate::server::{DbaasServer, DeployedColumn};
use colstore::column::Column;
use colstore::table::Table;
use encdbdb_crypto::hkdf::derive_column_key;
use encdbdb_crypto::keys::{Key128, Key256};
use encdbdb_crypto::{x25519, Pae};
use encdict::build::{build_encrypted, build_plain, BuildParams};
use enclave_sim::attestation::{Measurement, VerificationService};
use enclave_sim::channel::{self, Role};
use rand::Rng;

/// The trusted data owner.
#[derive(Debug)]
pub struct DataOwner {
    skdb: Key128,
}

impl DataOwner {
    /// Step 1: generates a fresh master key.
    pub fn generate<R: Rng + ?Sized>(rng: &mut R) -> Self {
        DataOwner {
            skdb: Key128::generate(rng),
        }
    }

    /// Creates an owner from an existing key (e.g. restored from backup).
    pub fn from_key(skdb: Key128) -> Self {
        DataOwner { skdb }
    }

    /// The master key — handed to the trusted proxy (step 2's out-of-band
    /// provisioning).
    pub fn master_key(&self) -> Key128 {
        self.skdb.clone()
    }

    /// Step 2: remote-attests the server's enclave *instances* — the
    /// query-path one and the compaction one, both measuring to the same
    /// expected code identity — and provisions `SK_DB` to each over its
    /// own derived secure channel.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::Enclave`] if a quote does not verify, a
    /// measurement is unexpected, or provisioning fails.
    pub fn provision<R: Rng + ?Sized>(
        &self,
        server: &DbaasServer,
        service: &VerificationService,
        expected_measurement: Measurement,
        rng: &mut R,
    ) -> Result<(), DbError> {
        for handle in server.enclave_handles() {
            let mut enclave = handle.lock().unwrap_or_else(|e| e.into_inner());
            let quote = enclave.enclave_mut().attest(rng);
            let report = service.verify_expecting(&quote, expected_measurement)?;
            let owner_secret = Key256::generate(rng);
            let owner_public = x25519::public_key(&owner_secret);
            let session = channel::session_key(&owner_secret, &report.report_data, Role::DataOwner);
            let wrapped = Pae::new(&session)
                .encrypt_with_rng(rng, self.skdb.as_bytes(), channel::PROVISION_AAD)
                .into_bytes();
            enclave
                .enclave_mut()
                .provision_key(&owner_public, &wrapped)?;
        }
        Ok(())
    }

    /// Re-attaches to a restarted server (crash recovery, DESIGN.md §12):
    /// attests the fresh enclave instances and re-provisions `SK_DB` over
    /// the attested channels — *without* re-encrypting or re-deploying any
    /// data. The tables come back from sealed snapshots and the WAL; only
    /// the volatile in-enclave key needs the owner again.
    ///
    /// # Errors
    ///
    /// As [`DataOwner::provision`].
    pub fn reattach<R: Rng + ?Sized>(
        &self,
        server: &DbaasServer,
        service: &VerificationService,
        expected_measurement: Measurement,
        rng: &mut R,
    ) -> Result<(), DbError> {
        self.provision(server, service, expected_measurement, rng)
    }

    /// Step 3: `EncDB` — encrypts a plaintext table according to its
    /// schema, producing deployable columns.
    ///
    /// # Errors
    ///
    /// Propagates build failures (oversized values, bad bs_max).
    pub fn encrypt_table<R: Rng + ?Sized>(
        &self,
        table: &Table,
        schema: &TableSchema,
        rng: &mut R,
    ) -> Result<Vec<DeployedColumn>, DbError> {
        let mut deployed = Vec::with_capacity(schema.columns.len());
        for spec in &schema.columns {
            let column = table.column(&spec.name)?;
            let params = BuildParams {
                table_name: schema.name.clone(),
                col_name: spec.name.clone(),
                bs_max: spec.bs_max,
            };
            match spec.choice {
                DictChoice::Encrypted(kind) => {
                    let sk_d = derive_column_key(&self.skdb, &schema.name, &spec.name);
                    let (dict, av) = build_encrypted(column, kind, &params, &sk_d, rng)?;
                    deployed.push(DeployedColumn::Encrypted(dict, av));
                }
                DictChoice::Plain => {
                    let (dict, av) = build_plain(column, encdict::EdKind::Ed1, &params, rng)?;
                    deployed.push(DeployedColumn::Plain(dict, av));
                }
            }
        }
        Ok(deployed)
    }

    /// Steps 3+4 combined: encrypt and deploy a table.
    ///
    /// A schema with range partitioning first splits the plaintext rows by
    /// the partition column ([`split_table`]) and encrypts every shard
    /// separately — each partition gets its own dictionaries, built from
    /// its own value population, so the server can scale scans out across
    /// shards without ever correlating values between them.
    ///
    /// # Errors
    ///
    /// As [`DataOwner::encrypt_table`] and [`DbaasServer::deploy_table`];
    /// [`DbError::ColumnNotFound`] if the partition column is missing from
    /// the plaintext table.
    pub fn deploy<R: Rng + ?Sized>(
        &self,
        server: &DbaasServer,
        table: &Table,
        schema: TableSchema,
        rng: &mut R,
    ) -> Result<(), DbError> {
        match schema.partitioning.clone() {
            None => {
                let columns = self.encrypt_table(table, &schema, rng)?;
                server.deploy_table(schema, columns)
            }
            Some(part) => {
                let shards = split_table(table, &schema, &part)?;
                let mut parts = Vec::with_capacity(shards.len());
                for shard in &shards {
                    parts.push(self.encrypt_table(shard, &schema, rng)?);
                }
                server.deploy_table_partitioned(schema, parts)
            }
        }
    }
}

/// Splits a plaintext table into per-partition tables by the partition
/// column's value — the owner-side half of a partitioned deploy.
///
/// # Errors
///
/// Returns [`DbError::ColumnNotFound`] when the partition column (or any
/// schema column) is missing from the table.
pub fn split_table(
    table: &Table,
    schema: &TableSchema,
    part: &crate::schema::TablePartitioning,
) -> Result<Vec<Table>, DbError> {
    let routing_col = table
        .column(&part.column)
        .map_err(|_| DbError::ColumnNotFound(part.column.clone()))?;
    let assignment: Vec<usize> = routing_col.iter().map(|v| part.partition_of(v)).collect();
    let count = part.partition_count();
    let mut shards: Vec<Table> = (0..count).map(|_| Table::new(table.name())).collect();
    for spec in &schema.columns {
        let source = table.column(&spec.name)?;
        let mut columns: Vec<Column> = (0..count)
            .map(|_| Column::new(&spec.name, spec.max_len))
            .collect();
        for (pid, value) in assignment.iter().zip(source.iter()) {
            columns[*pid].push(value)?;
        }
        for (shard, column) in shards.iter_mut().zip(columns) {
            shard.add_column(column)?;
        }
    }
    Ok(shards)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnSpec;
    use colstore::column::Column;
    use encdict::enclave_ops::DictLogic;
    use encdict::{DictEnclave, EdKind};
    use enclave_sim::attestation::SigningPlatform;
    use enclave_sim::Enclave;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn attested_provisioning_end_to_end() {
        let mut rng = StdRng::seed_from_u64(1);
        let platform = SigningPlatform::generate(&mut rng);
        let service = platform.verification_service();
        let enclave = Enclave::on_platform(DictLogic::with_seed(2), platform);
        // Wrap into the dict enclave facade via a fresh server.
        let server = DbaasServer::with_enclave(DictEnclave::with_seed(3));
        // Recreate: DictEnclave::with_seed builds its own default platform;
        // use the measurement of the logic for expectation checks.
        let expected = enclave.measurement();
        drop(enclave);

        let owner = DataOwner::generate(&mut rng);
        // The default-platform service matches DictEnclave::with_seed.
        let default_service = SigningPlatform::default().verification_service();
        owner
            .provision(&server, &default_service, expected, &mut rng)
            .unwrap();
        // Both instances — query path and compaction — are provisioned.
        assert!(server.enclave().enclave().is_provisioned());
        assert!(server.merge_enclave().enclave().is_provisioned());
        // A service for a *different* platform must reject the quote.
        let server2 = DbaasServer::with_enclave(DictEnclave::with_seed(4));
        let err = owner
            .provision(&server2, &service, expected, &mut rng)
            .unwrap_err();
        assert!(matches!(err, DbError::Enclave(_)));
    }

    #[test]
    fn measurement_mismatch_rejected() {
        let mut rng = StdRng::seed_from_u64(5);
        let server = DbaasServer::with_enclave(DictEnclave::with_seed(6));
        let owner = DataOwner::generate(&mut rng);
        let service = SigningPlatform::default().verification_service();
        let wrong = Measurement::of(b"malicious-enclave");
        let err = owner
            .provision(&server, &service, wrong, &mut rng)
            .unwrap_err();
        assert_eq!(
            err,
            DbError::Enclave(enclave_sim::EnclaveError::MeasurementMismatch)
        );
    }

    #[test]
    fn encrypt_table_produces_matching_columns() {
        let mut rng = StdRng::seed_from_u64(7);
        let owner = DataOwner::generate(&mut rng);
        let mut table = Table::new("t");
        table
            .add_column(Column::from_strs("a", 8, ["x", "y", "x"]).unwrap())
            .unwrap();
        table
            .add_column(Column::from_strs("b", 8, ["1", "2", "3"]).unwrap())
            .unwrap();
        let schema = TableSchema::new(
            "t",
            vec![
                ColumnSpec::new("a", DictChoice::Encrypted(EdKind::Ed5), 8),
                ColumnSpec::new("b", DictChoice::Plain, 8),
            ],
        );
        let deployed = owner.encrypt_table(&table, &schema, &mut rng).unwrap();
        assert_eq!(deployed.len(), 2);
        match &deployed[0] {
            DeployedColumn::Encrypted(dict, av) => {
                assert_eq!(av.len(), 3);
                assert_eq!(dict.kind(), EdKind::Ed5);
            }
            other => panic!("expected encrypted column, got {other:?}"),
        }
        match &deployed[1] {
            DeployedColumn::Plain(dict, av) => {
                assert_eq!(av.len(), 3);
                assert_eq!(dict.len(), 3);
            }
            other => panic!("expected plain column, got {other:?}"),
        }
    }

    #[test]
    fn missing_column_in_table_fails() {
        let mut rng = StdRng::seed_from_u64(8);
        let owner = DataOwner::generate(&mut rng);
        let table = Table::new("t");
        let schema = TableSchema::new("t", vec![ColumnSpec::new("ghost", DictChoice::Plain, 8)]);
        assert!(owner.encrypt_table(&table, &schema, &mut rng).is_err());
    }
}
