//! An in-process EncDBDB deployment: owner + proxy + server + enclave.
//!
//! [`Session`] wires the paper's architecture (Fig. 2) into a single handle
//! for examples, tests and benchmarks: the data owner generates `SK_DB`,
//! attests and provisions the server's enclaves, hands the key to the
//! trusted proxy, and applications issue SQL through the session.
//!
//! The server behind a session is shared state (DESIGN.md §9):
//! [`Session::reader`] forks any number of [`ReaderSession`]s that execute
//! queries concurrently — each against a consistent main-store snapshot —
//! while inserts land in the delta stores and background compactions
//! publish rebuilt epochs.

use crate::error::DbError;
use crate::owner::DataOwner;
use crate::proxy::{Proxy, QueryResult};
use crate::schema::TableSchema;
use crate::server::{CompactionPolicy, DbaasServer, DurabilityPolicy};
use colstore::table::Table;
use encdbdb_crypto::keys::Key128;
use encdict::enclave_ops::DictLogic;
use encdict::DictEnclave;
use enclave_sim::attestation::Measurement;
use enclave_sim::attestation::SigningPlatform;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::Path;

/// A complete in-process EncDBDB deployment.
#[derive(Debug)]
pub struct Session {
    owner: DataOwner,
    proxy: Proxy,
    server: DbaasServer,
    rng: StdRng,
}

impl Session {
    /// Builds a deployment with a seeded RNG: key generation, enclave
    /// attestation (against the default development platform) and key
    /// provisioning happen here, mirroring Fig. 5 steps 1–2. Both enclave
    /// instances — the query-path one and the compaction one — are
    /// attested and provisioned.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::Enclave`] if attestation or provisioning fails.
    pub fn with_seed(seed: u64) -> Result<Self, DbError> {
        let mut rng = StdRng::seed_from_u64(seed);
        let owner = DataOwner::generate(&mut rng);
        let server = DbaasServer::with_enclaves(
            DictEnclave::with_seed(seed.wrapping_add(1)),
            DictEnclave::with_seed(seed.wrapping_add(0x9E37_79B9)),
        );
        let service = SigningPlatform::default().verification_service();
        let expected = Measurement::of(Self::enclave_code_identity());
        owner.provision(&server, &service, expected, &mut rng)?;
        let proxy = Proxy::new(owner.master_key());
        Ok(Session {
            owner,
            proxy,
            server,
            rng,
        })
    }

    /// [`Session::with_seed`] plus durable storage under `dir` (DESIGN.md
    /// §12): every deploy, insert, delete and epoch publish from here on
    /// is persisted, and the deployment can be reopened after a crash with
    /// [`Session::open`].
    ///
    /// # Errors
    ///
    /// As [`Session::with_seed`], plus [`DbError::Durability`] if the
    /// storage directory cannot be initialized.
    pub fn with_seed_durable(seed: u64, dir: impl AsRef<Path>) -> Result<Self, DbError> {
        let db = Self::with_seed(seed)?;
        db.server
            .attach_durability(dir, DurabilityPolicy::default())?;
        Ok(db)
    }

    /// Reopens a durable deployment from its storage directory after a
    /// restart or crash: fresh enclaves are attested and re-provisioned by
    /// the data owner (restored from `master_key` — zero re-deployment of
    /// data), then the server recovers every table from its sealed
    /// snapshots and WAL.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::Enclave`] if re-attestation fails and
    /// [`DbError::Durability`] if the on-disk state is unusable.
    pub fn open(dir: impl AsRef<Path>, master_key: Key128, seed: u64) -> Result<Self, DbError> {
        let mut rng = StdRng::seed_from_u64(seed);
        let owner = DataOwner::from_key(master_key);
        let server = DbaasServer::with_enclaves(
            DictEnclave::with_seed(seed.wrapping_add(1)),
            DictEnclave::with_seed(seed.wrapping_add(0x9E37_79B9)),
        );
        let service = SigningPlatform::default().verification_service();
        let expected = Measurement::of(Self::enclave_code_identity());
        // Provision before recovery: unsealing needs no key, but replaying
        // a logged merge rebuilds dictionaries inside the merge enclave.
        owner.reattach(&server, &service, expected, &mut rng)?;
        server.recover(dir, DurabilityPolicy::default())?;
        let proxy = Proxy::new(owner.master_key());
        Ok(Session {
            owner,
            proxy,
            server,
            rng,
        })
    }

    /// The deployment's master key `SK_DB` — what the owner must retain to
    /// [`Session::open`] the deployment again after a restart.
    pub fn master_key(&self) -> Key128 {
        self.owner.master_key()
    }

    /// The code identity the data owner expects the enclave to measure to.
    pub fn enclave_code_identity() -> &'static [u8] {
        use enclave_sim::EnclaveLogic;
        DictLogic::with_seed(0).code_identity()
    }

    /// Executes one SQL statement through the proxy.
    ///
    /// # Errors
    ///
    /// Propagates parse, lookup and crypto failures.
    ///
    /// # Example
    ///
    /// ```
    /// use encdbdb::Session;
    ///
    /// let mut db = Session::with_seed(1)?;
    /// db.execute("CREATE TABLE t1 (FName ED5(12))")?;
    /// db.execute("INSERT INTO t1 VALUES ('Jessica'), ('Archie'), ('Hans')")?;
    /// let result = db.execute("SELECT FName FROM t1 WHERE FName < 'Ella'")?;
    /// assert_eq!(result.rows_as_strings(), vec![vec!["Archie".to_string()]]);
    /// # Ok::<(), encdbdb::DbError>(())
    /// ```
    pub fn execute(&mut self, sql: &str) -> Result<QueryResult, DbError> {
        self.proxy.execute(&self.server, sql, &mut self.rng)
    }

    /// Forks a concurrent reader/writer session sharing this deployment's
    /// server state. The fork holds its own proxy handle and RNG, so it is
    /// `Send` and can run on another thread; queries from any number of
    /// forks execute against consistent snapshots and never block on
    /// compactions.
    pub fn reader(&self, seed: u64) -> ReaderSession {
        ReaderSession {
            proxy: self.proxy.clone(),
            server: self.server.clone(),
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Bulk-loads a plaintext table: the data owner encrypts it per
    /// `schema` and deploys it as the main store (Fig. 5 steps 3–4).
    ///
    /// # Errors
    ///
    /// Propagates build and deployment failures.
    pub fn load_table(&mut self, table: &Table, schema: TableSchema) -> Result<(), DbError> {
        self.owner
            .deploy(&self.server, table, schema, &mut self.rng)
    }

    /// Synchronously merges a table's delta stores into rebuilt main
    /// stores and publishes the next epoch (§4.3).
    ///
    /// # Errors
    ///
    /// Propagates enclave failures.
    pub fn merge(&mut self, table: &str) -> Result<(), DbError> {
        self.server.merge_table(table)
    }

    /// Installs (or removes) the threshold-driven background compaction
    /// policy — see [`CompactionPolicy`].
    pub fn set_compaction_policy(&mut self, policy: Option<CompactionPolicy>) {
        self.server.set_compaction_policy(policy);
    }

    /// Direct access to the server (benchmarks, storage accounting,
    /// compaction control).
    pub fn server(&self) -> &DbaasServer {
        &self.server
    }

    /// Mutable access to the server (parallelism configuration).
    pub fn server_mut(&mut self) -> &mut DbaasServer {
        &mut self.server
    }

    /// Snapshot of every metric counter and latency histogram of this
    /// deployment (shared across all forks of the session).
    pub fn metrics_report(&self) -> crate::MetricsReport {
        self.server.obs().metrics_report()
    }

    /// Per-kind totals of every enclave transition observed so far — the
    /// measured counterpart of the DESIGN.md §10 leakage analysis.
    pub fn leakage_ledger(&self) -> crate::LedgerReport {
        self.server.obs().ledger_report()
    }

    /// Exports the retained trace spans as Chrome-trace JSON (load the
    /// string into `chrome://tracing` / Perfetto).
    pub fn export_trace(&self) -> String {
        self.server.obs().export_trace()
    }
}

/// A concurrent session over a shared [`Session`]'s deployment: a cloned
/// server handle plus a proxy with its own RNG. Create with
/// [`Session::reader`]; despite the name, the fork can also issue writes
/// (inserts/deletes land in the shared delta stores).
#[derive(Debug)]
pub struct ReaderSession {
    proxy: Proxy,
    server: DbaasServer,
    rng: StdRng,
}

impl ReaderSession {
    /// Executes one SQL statement through this fork's proxy.
    ///
    /// # Errors
    ///
    /// Propagates parse, lookup and crypto failures.
    pub fn execute(&mut self, sql: &str) -> Result<QueryResult, DbError> {
        self.proxy.execute(&self.server, sql, &mut self.rng)
    }

    /// Executes an already-parsed [`Statement`](crate::sql::Statement)
    /// through this fork's proxy — the net server's entry point: it
    /// parses once, rewrites table references into the tenant's
    /// namespace, and runs the rewritten AST directly.
    ///
    /// # Errors
    ///
    /// Propagates lookup and crypto failures.
    pub fn execute_statement(
        &mut self,
        stmt: crate::sql::Statement,
    ) -> Result<QueryResult, DbError> {
        self.proxy
            .execute_statement(&self.server, stmt, &mut self.rng)
    }

    /// The shared server handle (epoch and compaction inspection).
    pub fn server(&self) -> &DbaasServer {
        &self.server
    }

    /// Snapshot of the shared deployment's metrics (see
    /// [`Session::metrics_report`]).
    pub fn metrics_report(&self) -> crate::MetricsReport {
        self.server.obs().metrics_report()
    }

    /// The shared deployment's ECALL leakage ledger (see
    /// [`Session::leakage_ledger`]).
    pub fn leakage_ledger(&self) -> crate::LedgerReport {
        self.server.obs().ledger_report()
    }

    /// Exports the shared trace ring as Chrome-trace JSON (see
    /// [`Session::export_trace`]).
    pub fn export_trace(&self) -> String {
        self.server.obs().export_trace()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnSpec, DictChoice};
    use colstore::column::Column;
    use encdict::EdKind;

    fn session() -> Session {
        Session::with_seed(42).expect("session setup")
    }

    #[test]
    fn create_insert_select_roundtrip_all_kinds() {
        // One column per ED kind plus PLAIN, all in one table.
        // (The paper: "EncDBDB is able to process all dictionary types
        // together, even if they are mixed in one table.")
        let mut db = session();
        db.execute(
            "CREATE TABLE mix (c1 ED1(8), c2 ED2(8), c3 ED3(8), c4 ED4(8), c5 ED5(8), \
             c6 ED6(8), c7 ED7(8), c8 ED8(8), c9 ED9(8), cp PLAIN(8))",
        )
        .unwrap();
        for v in ["delta", "alpha", "echo", "bravo", "charlie"] {
            let vals = std::iter::repeat_n(format!("'{v}'"), 10)
                .collect::<Vec<_>>()
                .join(", ");
            db.execute(&format!("INSERT INTO mix VALUES ({vals})"))
                .unwrap();
        }
        for col in ["c1", "c2", "c3", "c4", "c5", "c6", "c7", "c8", "c9", "cp"] {
            let r = db
                .execute(&format!(
                    "SELECT {col} FROM mix WHERE {col} BETWEEN 'b' AND 'd'"
                ))
                .unwrap();
            let mut got: Vec<String> = r
                .rows_as_strings()
                .into_iter()
                .map(|mut r| r.remove(0))
                .collect();
            got.sort();
            assert_eq!(got, vec!["bravo", "charlie"], "column {col}");
        }
    }

    #[test]
    fn paper_example_query() {
        let mut db = session();
        db.execute("CREATE TABLE t1 (FName ED7(12))").unwrap();
        db.execute("INSERT INTO t1 VALUES ('Hans'), ('Jessica'), ('Archie'), ('Ella')")
            .unwrap();
        // SELECT FName FROM t1 WHERE FName < 'Ella' — converted by the
        // proxy to a range [-∞, 'Ella').
        let r = db
            .execute("SELECT FName FROM t1 WHERE FName < 'Ella'")
            .unwrap();
        assert_eq!(r.rows_as_strings(), vec![vec!["Archie".to_string()]]);
    }

    #[test]
    fn bulk_load_then_query() {
        let mut db = session();
        let mut table = Table::new("bw");
        table
            .add_column(
                Column::from_strs("region", 8, ["emea", "apj", "amer", "emea", "apj"]).unwrap(),
            )
            .unwrap();
        table
            .add_column(
                Column::from_strs("amount", 8, ["100", "250", "075", "300", "150"]).unwrap(),
            )
            .unwrap();
        let schema = TableSchema::new(
            "bw",
            vec![
                ColumnSpec::new("region", DictChoice::Encrypted(EdKind::Ed5), 8),
                ColumnSpec::new("amount", DictChoice::Encrypted(EdKind::Ed1), 8),
            ],
        );
        db.load_table(&table, schema).unwrap();
        let r = db
            .execute("SELECT region, amount FROM bw WHERE amount >= '150'")
            .unwrap();
        let mut rows = r.rows_as_strings();
        rows.sort();
        assert_eq!(
            rows,
            vec![
                vec!["apj".to_string(), "150".to_string()],
                vec!["apj".to_string(), "250".to_string()],
                vec!["emea".to_string(), "300".to_string()],
            ]
        );
    }

    #[test]
    fn select_star_and_unfiltered() {
        let mut db = session();
        db.execute("CREATE TABLE t (a ED1(4), b PLAIN(4))").unwrap();
        db.execute("INSERT INTO t VALUES ('x', '1'), ('y', '2')")
            .unwrap();
        let r = db.execute("SELECT * FROM t").unwrap();
        assert_eq!(r.columns, vec!["a", "b"]);
        assert_eq!(r.row_count(), 2);
    }

    #[test]
    fn delete_and_merge_lifecycle() {
        let mut db = session();
        db.execute("CREATE TABLE t (v ED2(8))").unwrap();
        db.execute("INSERT INTO t VALUES ('a'), ('b'), ('c'), ('d')")
            .unwrap();
        let r = db.execute("DELETE FROM t WHERE v = 'b'").unwrap();
        assert_eq!(r.rows_as_strings()[0][0], "1");
        let r = db.execute("SELECT v FROM t").unwrap();
        assert_eq!(r.row_count(), 3);

        // Merge folds the delta into a rebuilt ED2 main store and
        // publishes the next epoch.
        assert_eq!(db.server().epoch("t").unwrap(), 0);
        db.merge("t").unwrap();
        assert_eq!(db.server().epoch("t").unwrap(), 1);
        let r = db.execute("SELECT v FROM t WHERE v >= 'c'").unwrap();
        let mut got = r.rows_as_strings();
        got.sort();
        assert_eq!(got, vec![vec!["c".to_string()], vec!["d".to_string()]]);
        // Inserts keep working after a merge.
        db.execute("INSERT INTO t VALUES ('e')").unwrap();
        let r = db.execute("SELECT v FROM t").unwrap();
        assert_eq!(r.row_count(), 4);
        // A second merge with a non-empty delta publishes epoch 2.
        db.merge("t").unwrap();
        assert_eq!(db.server().epoch("t").unwrap(), 2);
        // Merging with nothing to do is a no-op that keeps the epoch.
        db.merge("t").unwrap();
        assert_eq!(db.server().epoch("t").unwrap(), 2);
    }

    #[test]
    fn filter_on_one_column_projects_another() {
        let mut db = session();
        db.execute("CREATE TABLE t (k ED1(4), v ED9(8))").unwrap();
        db.execute("INSERT INTO t VALUES ('a', 'one'), ('b', 'two'), ('c', 'three')")
            .unwrap();
        let r = db.execute("SELECT v FROM t WHERE k >= 'b'").unwrap();
        let mut got = r.rows_as_strings();
        got.sort();
        assert_eq!(
            got,
            vec![vec!["three".to_string()], vec!["two".to_string()]]
        );
    }

    #[test]
    fn errors_are_reported() {
        let mut db = session();
        assert!(matches!(
            db.execute("SELECT * FROM nope"),
            Err(DbError::TableNotFound(_))
        ));
        db.execute("CREATE TABLE t (a ED1(4))").unwrap();
        assert!(matches!(
            db.execute("SELECT nope FROM t"),
            Err(DbError::ColumnNotFound(_))
        ));
        assert!(matches!(
            db.execute("INSERT INTO t VALUES ('a', 'b')"),
            Err(DbError::ArityMismatch { .. })
        ));
        assert!(matches!(
            db.execute("INSERT INTO t VALUES ('waytoolong')"),
            Err(DbError::ValueTooLong { .. })
        ));
        assert!(matches!(
            db.execute("SELECT * FROM t WHERE a = 'x' AND b = 'y'"),
            Err(DbError::UnsupportedFilter(_) | DbError::ColumnNotFound(_))
        ));
    }

    #[test]
    fn equality_and_range_queries_look_identical_to_server() {
        // Covered cryptographically in encdict::range tests; here we check
        // the proxy path produces working queries for every operator.
        let mut db = session();
        db.execute("CREATE TABLE t (v ED8(8))").unwrap();
        db.execute("INSERT INTO t VALUES ('a'), ('b'), ('b'), ('c')")
            .unwrap();
        for (q, expected) in [
            ("SELECT v FROM t WHERE v = 'b'", 2usize),
            ("SELECT v FROM t WHERE v < 'b'", 1),
            ("SELECT v FROM t WHERE v <= 'b'", 3),
            ("SELECT v FROM t WHERE v > 'b'", 1),
            ("SELECT v FROM t WHERE v >= 'b'", 3),
            ("SELECT v FROM t WHERE v BETWEEN 'a' AND 'b'", 3),
            ("SELECT v FROM t WHERE v >= 'a' AND v < 'c'", 3),
        ] {
            let r = db.execute(q).unwrap();
            assert_eq!(r.row_count(), expected, "query: {q}");
        }
    }

    #[test]
    fn joins_execute_through_sessions_and_reader_forks() {
        // Multi-table statements flow through the same Session/fork path
        // as single-table ones: both tables are snapshotted in one tight
        // acquisition pass, so a fork's join sees a consistent pair.
        let mut db = session();
        db.execute("CREATE TABLE a (k ED5(8), x ED1(8))").unwrap();
        db.execute("CREATE TABLE b (k ED5(8), y ED9(8))").unwrap();
        db.execute("INSERT INTO a VALUES ('k1', 'x1'), ('k2', 'x2')")
            .unwrap();
        db.execute("INSERT INTO b VALUES ('k2', 'y2'), ('k3', 'y3')")
            .unwrap();
        let mut reader = db.reader(9);
        let r = reader
            .execute("SELECT a.x, b.y FROM a JOIN b ON a.k = b.k")
            .unwrap();
        assert_eq!(
            r.rows_as_strings(),
            vec![vec!["x2".to_string(), "y2".to_string()]]
        );
        // One JoinBridge ECALL, visible through the shared server handle.
        assert_eq!(reader.server().last_stats().enclave_calls, 1);
        // A write through the parent is visible to the fork's next join.
        db.execute("INSERT INTO a VALUES ('k3', 'x3')").unwrap();
        let r = reader
            .execute("SELECT a.x, b.y FROM a JOIN b ON a.k = b.k ORDER BY 1")
            .unwrap();
        assert_eq!(r.row_count(), 2);
    }

    #[test]
    fn reader_sessions_share_state() {
        let mut db = session();
        db.execute("CREATE TABLE t (v ED5(8))").unwrap();
        db.execute("INSERT INTO t VALUES ('a'), ('b')").unwrap();
        let mut reader = db.reader(7);
        let r = reader.execute("SELECT v FROM t WHERE v >= 'b'").unwrap();
        assert_eq!(r.row_count(), 1);
        // A write through the fork is visible to the parent, and vice
        // versa.
        reader.execute("INSERT INTO t VALUES ('c')").unwrap();
        let r = db.execute("SELECT v FROM t").unwrap();
        assert_eq!(r.row_count(), 3);
        db.merge("t").unwrap();
        let r = reader.execute("SELECT v FROM t WHERE v >= 'b'").unwrap();
        assert_eq!(r.row_count(), 2);
        assert_eq!(reader.server().epoch("t").unwrap(), 1);
    }
}

#[cfg(test)]
mod count_tests {
    use super::*;

    #[test]
    fn count_star_with_and_without_filter() {
        let mut db = Session::with_seed(88).unwrap();
        db.execute("CREATE TABLE t (v ED5(8))").unwrap();
        db.execute("INSERT INTO t VALUES ('a'), ('b'), ('b'), ('c'), ('d')")
            .unwrap();
        let r = db.execute("SELECT COUNT(*) FROM t").unwrap();
        assert_eq!(r.rows_as_strings(), vec![vec!["5".to_string()]]);
        let r = db
            .execute("SELECT COUNT(*) FROM t WHERE v BETWEEN 'b' AND 'c'")
            .unwrap();
        assert_eq!(r.rows_as_strings(), vec![vec!["3".to_string()]]);
        // Counts respect deletions.
        db.execute("DELETE FROM t WHERE v = 'b'").unwrap();
        let r = db.execute("SELECT COUNT(*) FROM t").unwrap();
        assert_eq!(r.rows_as_strings(), vec![vec!["3".to_string()]]);
    }

    #[test]
    fn count_parse_errors() {
        let mut db = Session::with_seed(89).unwrap();
        db.execute("CREATE TABLE t (v ED1(8))").unwrap();
        assert!(db.execute("SELECT COUNT(v) FROM t").is_err());
        assert!(db.execute("SELECT COUNT(* FROM t").is_err());
    }
}
