//! Compiling two-table equi-join SELECTs into [`JoinPlan`]s.
//!
//! A join statement splits into three layers, mirroring where each piece
//! is allowed to run (DESIGN.md §11):
//!
//! 1. **Per-side scan** (untrusted server): each side filters its table
//!    exactly like a single-table select — partition pruning, one search
//!    ECALL per filtered dictionary of each non-empty in-scope shard —
//!    and reduces its matching rows to per-partition join-key codes.
//! 2. **Key bridging** (one `JoinBridge` ECALL): the enclave decrypts each
//!    *distinct* join-key code once per side and returns an opaque
//!    ValueID↔ValueID bridge, so the hash build/probe runs untrusted on
//!    bridge ids, never on plaintexts.
//! 3. **Post-processing** (trusted proxy, after decryption): projection or
//!    GROUP BY / aggregation / DISTINCT over the joined rows, then ORDER
//!    BY / LIMIT — joined cells of encrypted columns only exist as
//!    ciphertexts until step 14, so everything value-dependent runs here.
//!
//! The compiler resolves possibly-qualified column references to a side,
//! validates the GROUP BY coverage rule, and pins every reference to an
//! index into the *combined referenced row* (left side's columns first,
//! then the right side's) that the server renders for each joined pair.

use crate::error::DbError;
use crate::exec::plan::resolve_order;
use crate::schema::TableSchema;
use crate::sql::{ColumnRef, JoinClause, OrderKey, SelectItem};
use encdict::aggregate::{AggFunc, OutputItem, SortSpec};

/// Which table of a join a reference resolves to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinSide {
    /// The `FROM` table.
    Left,
    /// The `JOIN`ed table.
    Right,
}

/// One side of a compiled join: what the server scans and renders.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinSidePlan {
    /// The side's table.
    pub table: String,
    /// The side's join-key column (bare name).
    pub key: String,
    /// Referenced columns the server renders per joined row, deduplicated
    /// (bare names).
    pub columns: Vec<String>,
}

/// One aggregate over the combined referenced row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JoinAggExpr {
    /// The aggregate function.
    pub func: AggFunc,
    /// Index of the aggregated column in the combined row (`None` only
    /// for `COUNT(*)`).
    pub col: Option<usize>,
}

/// The proxy-side post-processing of a join: a plain projection or a
/// grouped aggregation (which `SELECT DISTINCT` lowers onto).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JoinPost {
    /// Project combined-row indices, in SELECT-list order.
    Rows {
        /// Indices into the combined referenced row.
        projection: Vec<usize>,
    },
    /// GROUP BY / aggregate over the joined rows.
    Aggregate {
        /// Grouped combined-row indices, in declaration order.
        group_cols: Vec<usize>,
        /// Aggregates in SELECT-list order.
        aggregates: Vec<JoinAggExpr>,
        /// Output items in SELECT-list order.
        items: Vec<OutputItem>,
    },
}

/// A compiled two-table equi-join.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinPlan {
    /// The build side (`FROM` table).
    pub left: JoinSidePlan,
    /// The probe side (`JOIN`ed table).
    pub right: JoinSidePlan,
    /// Post-processing applied by the proxy after decryption.
    pub post: JoinPost,
    /// Output column names, in SELECT-list order.
    pub item_names: Vec<String>,
    /// ORDER BY keys resolved to output positions.
    pub sort: Vec<SortSpec>,
    /// Optional LIMIT.
    pub limit: Option<usize>,
}

impl JoinPlan {
    /// The combined referenced row: each column with the side it renders
    /// from, left side first.
    pub fn combined_columns(&self) -> Vec<(JoinSide, &str)> {
        self.left
            .columns
            .iter()
            .map(|c| (JoinSide::Left, c.as_str()))
            .chain(
                self.right
                    .columns
                    .iter()
                    .map(|c| (JoinSide::Right, c.as_str())),
            )
            .collect()
    }
}

/// Per-side registry of referenced columns (deduplicated, in
/// first-appearance order).
struct Registry {
    left: Vec<String>,
    right: Vec<String>,
}

impl Registry {
    fn index(&mut self, side: JoinSide, name: &str) -> (JoinSide, usize) {
        let list = match side {
            JoinSide::Left => &mut self.left,
            JoinSide::Right => &mut self.right,
        };
        let idx = match list.iter().position(|n| n == name) {
            Some(i) => i,
            None => {
                list.push(name.to_string());
                list.len() - 1
            }
        };
        (side, idx)
    }

    fn combined(&self, side: JoinSide, idx: usize) -> usize {
        match side {
            JoinSide::Left => idx,
            JoinSide::Right => self.left.len() + idx,
        }
    }
}

/// Resolves a possibly qualified reference to a join side and bare name.
pub(crate) fn resolve_side(
    left: &TableSchema,
    right: &TableSchema,
    r: &ColumnRef,
) -> Result<(JoinSide, String), DbError> {
    let side = match &r.table {
        Some(t) if t == &left.name => JoinSide::Left,
        Some(t) if t == &right.name => JoinSide::Right,
        Some(t) => {
            return Err(DbError::Plan(format!(
                "column {r} references table {t}, which is not part of the join"
            )))
        }
        None => match (
            left.column(&r.column).is_some(),
            right.column(&r.column).is_some(),
        ) {
            (true, false) => JoinSide::Left,
            (false, true) => JoinSide::Right,
            (true, true) => {
                return Err(DbError::Plan(format!(
                    "column {} is ambiguous between {} and {}; qualify it",
                    r.column, left.name, right.name
                )))
            }
            (false, false) => return Err(DbError::ColumnNotFound(r.column.clone())),
        },
    };
    let schema = match side {
        JoinSide::Left => left,
        JoinSide::Right => right,
    };
    if schema.column(&r.column).is_none() {
        return Err(DbError::ColumnNotFound(r.to_string()));
    }
    Ok((side, r.column.clone()))
}

/// Compiles a two-table equi-join SELECT.
///
/// # Errors
///
/// Returns [`DbError::ColumnNotFound`] for unknown columns and
/// [`DbError::Plan`] for shape violations (ambiguous bare references, ON
/// keys landing on one side, bare item not grouped, DISTINCT with
/// aggregates, bad ORDER BY target).
#[allow(clippy::too_many_arguments)]
pub fn compile_join(
    left_schema: &TableSchema,
    right_schema: &TableSchema,
    join: &JoinClause,
    distinct: bool,
    items: &[SelectItem],
    group_by: &[ColumnRef],
    order_by: &[OrderKey],
    limit: Option<usize>,
) -> Result<JoinPlan, DbError> {
    // Resolve the ON equality to one key per side. A self-join (`FROM t
    // JOIN t ON ...`) resolves both qualifiers to the left schema, so the
    // second operand falls through to the right side explicitly.
    let (s1, k1) = resolve_side(left_schema, right_schema, &join.left)?;
    let (s2, k2) = resolve_side(left_schema, right_schema, &join.right)?;
    let self_join = left_schema.name == right_schema.name;
    let (left_key, right_key) = match (s1, s2) {
        (JoinSide::Left, JoinSide::Right) => (k1, k2),
        (JoinSide::Right, JoinSide::Left) => (k2, k1),
        (JoinSide::Left, JoinSide::Left) if self_join => (k1, k2),
        _ => {
            return Err(DbError::Plan(format!(
                "ON {} = {} must name one column per joined table",
                join.left, join.right
            )))
        }
    };

    // `SELECT *` expands to every column of both sides, qualified.
    let expanded: Vec<SelectItem>;
    let items = if items.is_empty() {
        if !group_by.is_empty() {
            return Err(DbError::Plan(
                "SELECT * cannot be combined with GROUP BY".to_string(),
            ));
        }
        expanded = left_schema
            .columns
            .iter()
            .map(|c| (left_schema.name.clone(), c.name.clone()))
            .chain(
                right_schema
                    .columns
                    .iter()
                    .map(|c| (right_schema.name.clone(), c.name.clone())),
            )
            .map(|(t, c)| SelectItem::Column(ColumnRef::qualified(t, c)))
            .collect();
        &expanded[..]
    } else {
        items
    };

    let is_aggregate_query = !group_by.is_empty() || items.iter().any(SelectItem::is_aggregate);
    if distinct && is_aggregate_query {
        return Err(DbError::Plan(
            "SELECT DISTINCT cannot be combined with GROUP BY or aggregates".to_string(),
        ));
    }

    let mut registry = Registry {
        left: Vec::new(),
        right: Vec::new(),
    };
    // Intermediate (side, side-index) references; combined indices are
    // assigned once the registry is complete (right-side offsets depend on
    // how many left columns end up referenced).
    enum RawItem {
        Col(JoinSide, usize),
        Agg(usize),
    }
    let group_refs: Vec<(JoinSide, usize)> = group_by
        .iter()
        .map(|g| {
            let (side, name) = resolve_side(left_schema, right_schema, g)?;
            Ok(registry.index(side, &name))
        })
        .collect::<Result<_, DbError>>()?;
    let mut raw_items = Vec::with_capacity(items.len());
    let mut raw_aggs: Vec<(AggFunc, Option<(JoinSide, usize)>)> = Vec::new();
    let mut item_names = Vec::with_capacity(items.len());
    let mut item_aliases = Vec::with_capacity(items.len());
    for item in items {
        item_names.push(item.output_name());
        match item {
            SelectItem::Column(r) => {
                let (side, name) = resolve_side(left_schema, right_schema, r)?;
                // ORDER BY may address the item as typed, fully qualified
                // with its resolved side's table, or bare — never through
                // a foreign qualifier.
                let side_table = match side {
                    JoinSide::Left => &left_schema.name,
                    JoinSide::Right => &right_schema.name,
                };
                let mut aliases = vec![
                    item.output_name(),
                    format!("{side_table}.{name}"),
                    name.clone(),
                ];
                aliases.dedup();
                item_aliases.push(aliases);
                let slot = registry.index(side, &name);
                if is_aggregate_query && !group_refs.contains(&slot) {
                    return Err(DbError::Plan(format!(
                        "column {r} must appear in GROUP BY to be selected alongside aggregates"
                    )));
                }
                raw_items.push(RawItem::Col(slot.0, slot.1));
            }
            SelectItem::Aggregate { func, column } => {
                item_aliases.push(vec![item.output_name()]);
                let col = column
                    .as_ref()
                    .map(|c| {
                        let (side, name) = resolve_side(left_schema, right_schema, c)?;
                        Ok::<_, DbError>(registry.index(side, &name))
                    })
                    .transpose()?;
                raw_aggs.push((*func, col));
                raw_items.push(RawItem::Agg(raw_aggs.len() - 1));
            }
        }
    }

    let sort = resolve_order(order_by, &item_aliases)?;
    let post = if is_aggregate_query || distinct {
        let (group_cols, plan_items) = if distinct {
            // DISTINCT = group on every selected column.
            let cols: Vec<usize> = raw_items
                .iter()
                .map(|it| match it {
                    RawItem::Col(s, i) => registry.combined(*s, *i),
                    RawItem::Agg(_) => unreachable!("rejected above"),
                })
                .collect();
            let items = (0..cols.len()).map(OutputItem::Group).collect();
            (cols, items)
        } else {
            let group_cols: Vec<usize> = group_refs
                .iter()
                .map(|&(s, i)| registry.combined(s, i))
                .collect();
            let items = raw_items
                .iter()
                .map(|it| match it {
                    RawItem::Col(s, i) => {
                        let combined = registry.combined(*s, *i);
                        let pos = group_cols
                            .iter()
                            .position(|&g| g == combined)
                            .expect("coverage checked above");
                        OutputItem::Group(pos)
                    }
                    RawItem::Agg(j) => OutputItem::Agg(*j),
                })
                .collect();
            (group_cols, items)
        };
        JoinPost::Aggregate {
            group_cols,
            aggregates: raw_aggs
                .into_iter()
                .map(|(func, col)| JoinAggExpr {
                    func,
                    col: col.map(|(s, i)| registry.combined(s, i)),
                })
                .collect(),
            items: plan_items,
        }
    } else {
        JoinPost::Rows {
            projection: raw_items
                .iter()
                .map(|it| match it {
                    RawItem::Col(s, i) => registry.combined(*s, *i),
                    RawItem::Agg(_) => unreachable!("no aggregates in a rows post"),
                })
                .collect(),
        }
    };

    Ok(JoinPlan {
        left: JoinSidePlan {
            table: left_schema.name.clone(),
            key: left_key,
            columns: registry.left,
        },
        right: JoinSidePlan {
            table: right_schema.name.clone(),
            key: right_key,
            columns: registry.right,
        },
        post,
        item_names,
        sort,
        limit,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnSpec, DictChoice};
    use crate::sql::{parse, Statement};
    use encdict::EdKind;

    fn schemas() -> (TableSchema, TableSchema) {
        (
            TableSchema::new(
                "a",
                vec![
                    ColumnSpec::new("k", DictChoice::Encrypted(EdKind::Ed1), 8),
                    ColumnSpec::new("x", DictChoice::Encrypted(EdKind::Ed5), 8),
                ],
            ),
            TableSchema::new(
                "b",
                vec![
                    ColumnSpec::new("k", DictChoice::Encrypted(EdKind::Ed1), 8),
                    ColumnSpec::new("y", DictChoice::Plain, 8),
                ],
            ),
        )
    }

    fn compile(sql: &str) -> Result<JoinPlan, DbError> {
        let (left, right) = schemas();
        match parse(sql).unwrap() {
            Statement::Select {
                distinct,
                items,
                join: Some(join),
                group_by,
                order_by,
                limit,
                ..
            } => compile_join(
                &left, &right, &join, distinct, &items, &group_by, &order_by, limit,
            ),
            other => panic!("not a join select: {other:?}"),
        }
    }

    #[test]
    fn row_join_compiles_with_shared_key_scan_set() {
        let plan =
            compile("SELECT a.x, b.y FROM a JOIN b ON a.k = b.k ORDER BY a.x LIMIT 3").unwrap();
        assert_eq!(plan.left.key, "k");
        assert_eq!(plan.right.key, "k");
        assert_eq!(plan.left.columns, vec!["x"]);
        assert_eq!(plan.right.columns, vec!["y"]);
        assert_eq!(
            plan.post,
            JoinPost::Rows {
                projection: vec![0, 1]
            }
        );
        assert_eq!(plan.item_names, vec!["a.x", "b.y"]);
        assert_eq!(
            plan.sort,
            vec![SortSpec {
                item: 0,
                desc: false
            }]
        );
        assert_eq!(plan.limit, Some(3));
    }

    #[test]
    fn reversed_on_clause_normalizes_sides() {
        let plan = compile("SELECT a.x FROM a JOIN b ON b.k = a.k").unwrap();
        assert_eq!(plan.left.table, "a");
        assert_eq!(plan.right.table, "b");
        assert_eq!(plan.left.key, "k");
    }

    #[test]
    fn bare_references_resolve_when_unambiguous() {
        let plan = compile("SELECT x, y FROM a JOIN b ON a.k = b.k").unwrap();
        assert_eq!(plan.left.columns, vec!["x"]);
        assert_eq!(plan.right.columns, vec!["y"]);
        // `k` lives in both tables: bare use is ambiguous.
        assert!(matches!(
            compile("SELECT k FROM a JOIN b ON a.k = b.k"),
            Err(DbError::Plan(_))
        ));
    }

    #[test]
    fn star_expands_both_sides_qualified() {
        let plan = compile("SELECT * FROM a JOIN b ON a.k = b.k").unwrap();
        assert_eq!(plan.item_names, vec!["a.k", "a.x", "b.k", "b.y"]);
        assert_eq!(plan.left.columns, vec!["k", "x"]);
        assert_eq!(plan.right.columns, vec!["k", "y"]);
    }

    #[test]
    fn grouped_join_aggregates_over_combined_row() {
        let plan = compile(
            "SELECT a.x, SUM(b.y), COUNT(*) FROM a JOIN b ON a.k = b.k \
             GROUP BY a.x ORDER BY 2 DESC",
        )
        .unwrap();
        // Combined row: [x (left 0), y (right -> left_len + 0 = 1)].
        let JoinPost::Aggregate {
            group_cols,
            aggregates,
            items,
        } = &plan.post
        else {
            panic!("expected aggregate post");
        };
        assert_eq!(group_cols, &vec![0]);
        assert_eq!(
            aggregates,
            &vec![
                JoinAggExpr {
                    func: AggFunc::Sum,
                    col: Some(1)
                },
                JoinAggExpr {
                    func: AggFunc::Count,
                    col: None
                },
            ]
        );
        assert_eq!(
            items,
            &vec![OutputItem::Group(0), OutputItem::Agg(0), OutputItem::Agg(1)]
        );
    }

    #[test]
    fn distinct_join_groups_on_all_items() {
        let plan = compile("SELECT DISTINCT a.x, b.y FROM a JOIN b ON a.k = b.k").unwrap();
        let JoinPost::Aggregate {
            group_cols,
            aggregates,
            items,
        } = &plan.post
        else {
            panic!("expected aggregate post");
        };
        assert_eq!(group_cols, &vec![0, 1]);
        assert!(aggregates.is_empty());
        assert_eq!(items, &vec![OutputItem::Group(0), OutputItem::Group(1)]);
    }

    #[test]
    fn shape_violations_are_rejected() {
        assert!(matches!(
            compile("SELECT a.x, SUM(b.y) FROM a JOIN b ON a.k = b.k"),
            Err(DbError::Plan(_))
        ));
        assert!(matches!(
            compile("SELECT c.x FROM a JOIN b ON a.k = b.k"),
            Err(DbError::Plan(_))
        ));
        assert!(matches!(
            compile("SELECT a.nope FROM a JOIN b ON a.k = b.k"),
            Err(DbError::ColumnNotFound(_))
        ));
        assert!(matches!(
            compile("SELECT a.x FROM a JOIN b ON a.k = a.x"),
            Err(DbError::Plan(_))
        ));
        assert!(matches!(
            compile("SELECT a.x FROM a JOIN b ON a.k = b.k ORDER BY b.nope"),
            Err(DbError::Plan(_))
        ));
        // A wrong qualifier never silently resolves to the other table's
        // column: b has no x, so ORDER BY b.x must not sort by a.x.
        assert!(matches!(
            compile("SELECT a.x, b.y FROM a JOIN b ON a.k = b.k ORDER BY b.x"),
            Err(DbError::Plan(_))
        ));
    }

    #[test]
    fn order_by_accepts_qualified_and_bare_aliases() {
        // Bare item ordered by its qualified name.
        let plan = compile("SELECT x, b.y FROM a JOIN b ON a.k = b.k ORDER BY a.x").unwrap();
        assert_eq!(
            plan.sort,
            vec![SortSpec {
                item: 0,
                desc: false
            }]
        );
        // Qualified item ordered by its bare name.
        let plan = compile("SELECT a.x, b.y FROM a JOIN b ON a.k = b.k ORDER BY y").unwrap();
        assert_eq!(
            plan.sort,
            vec![SortSpec {
                item: 1,
                desc: false
            }]
        );
    }
}
