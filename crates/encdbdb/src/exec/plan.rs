//! Logical query plans: compiling the extended SELECT AST against a table
//! schema.
//!
//! A select compiles to one of two plan shapes:
//!
//! * [`SelectPlan::Rows`] — a plain projection (`Scan → Filter → Sort →
//!   Limit`): the server renders matching rows as today; ORDER BY / LIMIT
//!   are applied by the trusted proxy *after* decryption, since row cells
//!   of encrypted columns only exist as ciphertexts on the server.
//! * [`SelectPlan::Aggregate`] — the analytic shape (`Scan → Filter →
//!   GroupBy → Aggregate → Sort → Limit`): the server reduces matching
//!   rows to a ValueID histogram and the grouped aggregation runs over
//!   values resolved once per distinct touched ValueID (inside the enclave
//!   when any referenced column is encrypted).
//!
//! Compilation validates column references, the GROUP BY coverage rule
//! (every bare select item must be grouped), and ORDER BY targets, and
//! resolves ORDER BY keys to output positions.

use crate::error::DbError;
use crate::schema::TableSchema;
use crate::sql::{ColumnRef, OrderKey, OrderTarget, SelectItem};
use encdict::aggregate::{AggFunc, OutputItem, SortSpec};

/// One aggregate expression of a compiled plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AggExpr {
    /// The aggregate function.
    pub func: AggFunc,
    /// The aggregated column name (`None` only for `COUNT(*)`).
    pub column: Option<String>,
}

/// A compiled aggregate plan (GroupBy → Aggregate → Sort → Limit).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AggregatePlan {
    /// GROUP BY column names, in declaration order.
    pub group_cols: Vec<String>,
    /// Aggregates to compute, in SELECT-list order.
    pub aggregates: Vec<AggExpr>,
    /// Output items in SELECT-list order.
    pub items: Vec<OutputItem>,
    /// Output column names, aligned with `items`.
    pub item_names: Vec<String>,
    /// ORDER BY keys resolved to output positions.
    pub sort: Vec<SortSpec>,
    /// Optional LIMIT.
    pub limit: Option<usize>,
}

/// A compiled select.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SelectPlan {
    /// Plain row projection; `columns` empty means all schema columns.
    Rows {
        /// Projected column names (empty = `*`).
        columns: Vec<String>,
        /// ORDER BY keys resolved to projected positions (applied by the
        /// proxy after decryption).
        sort: Vec<SortSpec>,
        /// Optional LIMIT (applied with the sort).
        limit: Option<usize>,
    },
    /// Grouped aggregation.
    Aggregate(AggregatePlan),
}

/// Resolves ORDER BY keys against a list of output column names. A
/// each output item may be addressed by several *aliases* (its rendered
/// name, its table-qualified form, its bare name), so `ORDER BY t.c` and
/// `ORDER BY c` both resolve — but only when the qualifier really names
/// the item's table, and only when the bare name is unambiguous.
pub(crate) fn resolve_order(
    order_by: &[OrderKey],
    aliases: &[Vec<String>],
) -> Result<Vec<SortSpec>, DbError> {
    order_by
        .iter()
        .map(|key| {
            let item = match &key.target {
                OrderTarget::Position(p) => {
                    if *p == 0 || *p > aliases.len() {
                        return Err(DbError::Plan(format!(
                            "ORDER BY position {p} outside the {} output columns",
                            aliases.len()
                        )));
                    }
                    p - 1
                }
                OrderTarget::Column(name) => {
                    let hits: Vec<usize> = aliases
                        .iter()
                        .enumerate()
                        .filter(|(_, a)| a.iter().any(|n| n == name))
                        .map(|(i, _)| i)
                        .collect();
                    match hits.as_slice() {
                        [i] => *i,
                        [] => {
                            return Err(DbError::Plan(format!(
                                "ORDER BY column {name} is not in the output"
                            )))
                        }
                        [first, rest @ ..] => {
                            // Several hits are fine when they are the SAME
                            // underlying column selected repeatedly
                            // (identical alias sets) — any of them sorts
                            // identically.
                            if rest.iter().all(|&i| aliases[i] == aliases[*first]) {
                                *first
                            } else {
                                return Err(DbError::Plan(format!(
                                    "ORDER BY column {name} is ambiguous in the output"
                                )));
                            }
                        }
                    }
                }
            };
            Ok(SortSpec {
                item,
                desc: key.desc,
            })
        })
        .collect()
}

/// The ORDER BY aliases of one single-table output column: its bare name
/// and its table-qualified form.
fn table_aliases(table: &str, name: &str) -> Vec<String> {
    vec![name.to_string(), format!("{table}.{name}")]
}

/// Resolves a possibly qualified reference against one table: a qualifier,
/// if present, must name that table.
pub(crate) fn resolve_single_table(schema: &TableSchema, r: &ColumnRef) -> Result<String, DbError> {
    if let Some(t) = &r.table {
        if t != &schema.name {
            return Err(DbError::Plan(format!(
                "column {r} references table {t}, not {}",
                schema.name
            )));
        }
    }
    Ok(r.column.clone())
}

/// Compiles a parsed single-table SELECT against a schema. Qualified
/// column references must name this table; `SELECT DISTINCT` lowers onto
/// the grouped (ValueID-histogram) plan shape over the selected columns —
/// no new execution path, one decrypt per distinct value.
///
/// # Errors
///
/// Returns [`DbError::ColumnNotFound`] for unknown columns and
/// [`DbError::Plan`] for shape violations (bare item not grouped, `*` with
/// GROUP BY, DISTINCT with aggregates, bad ORDER BY target).
pub fn compile_select(
    schema: &TableSchema,
    distinct: bool,
    items: &[SelectItem],
    group_by: &[ColumnRef],
    order_by: &[OrderKey],
    limit: Option<usize>,
) -> Result<SelectPlan, DbError> {
    let check_column = |name: &str| -> Result<(), DbError> {
        schema
            .column(name)
            .map(|_| ())
            .ok_or_else(|| DbError::ColumnNotFound(name.to_string()))
    };
    let group_by = group_by
        .iter()
        .map(|g| resolve_single_table(schema, g))
        .collect::<Result<Vec<String>, DbError>>()?;
    let is_aggregate_query = !group_by.is_empty() || items.iter().any(SelectItem::is_aggregate);
    if distinct && is_aggregate_query {
        return Err(DbError::Plan(
            "SELECT DISTINCT cannot be combined with GROUP BY or aggregates".to_string(),
        ));
    }

    if !is_aggregate_query && !distinct {
        let columns: Vec<String> = items
            .iter()
            .map(|item| match item {
                SelectItem::Column(c) => resolve_single_table(schema, c),
                SelectItem::Aggregate { .. } => unreachable!("no aggregates in a rows plan"),
            })
            .collect::<Result<_, _>>()?;
        for c in &columns {
            check_column(c)?;
        }
        // Resolve ORDER BY against the effective projection (`*` = all
        // schema columns, in schema order); keys may be bare or qualified
        // with this table's name.
        let effective: Vec<Vec<String>> = if columns.is_empty() {
            schema
                .columns
                .iter()
                .map(|c| table_aliases(&schema.name, &c.name))
                .collect()
        } else {
            columns
                .iter()
                .map(|c| table_aliases(&schema.name, c))
                .collect()
        };
        let sort = resolve_order(order_by, &effective)?;
        return Ok(SelectPlan::Rows {
            columns,
            sort,
            limit,
        });
    }

    if items.is_empty() {
        return Err(DbError::Plan(
            "SELECT * cannot be combined with GROUP BY or DISTINCT".to_string(),
        ));
    }
    // DISTINCT = GROUP BY over every selected column, no aggregates.
    let group_by = if distinct {
        items
            .iter()
            .map(|item| match item {
                SelectItem::Column(c) => resolve_single_table(schema, c),
                SelectItem::Aggregate { .. } => unreachable!("rejected above"),
            })
            .collect::<Result<Vec<String>, DbError>>()?
    } else {
        group_by
    };
    for g in &group_by {
        check_column(g)?;
    }
    let mut aggregates = Vec::new();
    let mut plan_items = Vec::with_capacity(items.len());
    let mut item_names = Vec::with_capacity(items.len());
    let mut item_aliases = Vec::with_capacity(items.len());
    for item in items {
        match item {
            SelectItem::Column(r) => {
                let name = resolve_single_table(schema, r)?;
                let group_idx = group_by.iter().position(|g| g == &name).ok_or_else(|| {
                    DbError::Plan(format!(
                        "column {name} must appear in GROUP BY to be selected alongside aggregates"
                    ))
                })?;
                plan_items.push(OutputItem::Group(group_idx));
                item_aliases.push(table_aliases(&schema.name, &name));
                item_names.push(name);
            }
            SelectItem::Aggregate { func, column } => {
                let column = column
                    .as_ref()
                    .map(|c| resolve_single_table(schema, c))
                    .transpose()?;
                if let Some(c) = &column {
                    check_column(c)?;
                }
                let name = match (&func, &column) {
                    (AggFunc::Count, _) => "count".to_string(),
                    (f, Some(c)) => format!("{}({c})", f.to_string().to_lowercase()),
                    (f, None) => format!("{}(*)", f.to_string().to_lowercase()),
                };
                item_aliases.push(vec![name.clone()]);
                item_names.push(name);
                aggregates.push(AggExpr {
                    func: *func,
                    column,
                });
                plan_items.push(OutputItem::Agg(aggregates.len() - 1));
            }
        }
    }
    let sort = resolve_order(order_by, &item_aliases)?;
    Ok(SelectPlan::Aggregate(AggregatePlan {
        group_cols: group_by,
        aggregates,
        items: plan_items,
        item_names,
        sort,
        limit,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnSpec, DictChoice};
    use crate::sql::parse;
    use encdict::EdKind;

    fn schema() -> TableSchema {
        TableSchema::new(
            "t",
            vec![
                ColumnSpec::new("a", DictChoice::Encrypted(EdKind::Ed5), 8),
                ColumnSpec::new("b", DictChoice::Encrypted(EdKind::Ed1), 8),
                ColumnSpec::new("p", DictChoice::Plain, 8),
            ],
        )
    }

    fn compile(sql: &str) -> Result<SelectPlan, DbError> {
        match parse(sql).unwrap() {
            crate::sql::Statement::Select {
                distinct,
                items,
                group_by,
                order_by,
                limit,
                ..
            } => compile_select(&schema(), distinct, &items, &group_by, &order_by, limit),
            other => panic!("not a select: {other:?}"),
        }
    }

    #[test]
    fn plain_select_compiles_to_rows() {
        let plan = compile("SELECT a, b FROM t ORDER BY b DESC LIMIT 3").unwrap();
        assert_eq!(
            plan,
            SelectPlan::Rows {
                columns: vec!["a".into(), "b".into()],
                sort: vec![SortSpec {
                    item: 1,
                    desc: true
                }],
                limit: Some(3),
            }
        );
        // Star projection resolves ORDER BY against schema order.
        let plan = compile("SELECT * FROM t ORDER BY p").unwrap();
        assert_eq!(
            plan,
            SelectPlan::Rows {
                columns: vec![],
                sort: vec![SortSpec {
                    item: 2,
                    desc: false
                }],
                limit: None,
            }
        );
    }

    #[test]
    fn aggregate_select_compiles() {
        let plan = compile("SELECT a, SUM(b), COUNT(*) FROM t GROUP BY a ORDER BY 2 DESC LIMIT 10");
        let SelectPlan::Aggregate(plan) = plan.unwrap() else {
            panic!("expected aggregate plan");
        };
        assert_eq!(plan.group_cols, vec!["a"]);
        assert_eq!(
            plan.aggregates,
            vec![
                AggExpr {
                    func: AggFunc::Sum,
                    column: Some("b".into())
                },
                AggExpr {
                    func: AggFunc::Count,
                    column: None
                },
            ]
        );
        assert_eq!(
            plan.items,
            vec![OutputItem::Group(0), OutputItem::Agg(0), OutputItem::Agg(1)]
        );
        assert_eq!(plan.item_names, vec!["a", "sum(b)", "count"]);
        assert_eq!(
            plan.sort,
            vec![SortSpec {
                item: 1,
                desc: true
            }]
        );
        assert_eq!(plan.limit, Some(10));
    }

    #[test]
    fn group_by_without_aggregates_is_distinct() {
        let plan = compile("SELECT a FROM t GROUP BY a").unwrap();
        assert!(matches!(plan, SelectPlan::Aggregate(_)));
    }

    #[test]
    fn select_distinct_lowers_to_grouping() {
        let plan = compile("SELECT DISTINCT a FROM t ORDER BY a").unwrap();
        let SelectPlan::Aggregate(plan) = plan else {
            panic!("expected aggregate plan");
        };
        assert_eq!(plan.group_cols, vec!["a"]);
        assert!(plan.aggregates.is_empty());
        assert_eq!(plan.items, vec![OutputItem::Group(0)]);
        // Multi-column DISTINCT groups on the whole tuple.
        let SelectPlan::Aggregate(plan) = compile("SELECT DISTINCT a, b FROM t").unwrap() else {
            panic!("expected aggregate plan");
        };
        assert_eq!(plan.group_cols, vec!["a", "b"]);
        // DISTINCT with aggregates or GROUP BY is rejected.
        assert!(matches!(
            compile("SELECT DISTINCT a, COUNT(*) FROM t"),
            Err(DbError::Plan(_))
        ));
        assert!(matches!(
            compile("SELECT DISTINCT a FROM t GROUP BY a"),
            Err(DbError::Plan(_))
        ));
        assert!(matches!(
            compile("SELECT DISTINCT * FROM t"),
            Err(DbError::Plan(_))
        ));
    }

    #[test]
    fn qualified_references_resolve_against_the_table() {
        let plan = compile("SELECT t.a, t.b FROM t ORDER BY t.b").unwrap();
        assert_eq!(
            plan,
            SelectPlan::Rows {
                columns: vec!["a".into(), "b".into()],
                sort: vec![SortSpec {
                    item: 1,
                    desc: false
                }],
                limit: None,
            }
        );
        // A foreign qualifier is a plan error — in the select list and in
        // ORDER BY (which must not silently fall back to the bare name).
        assert!(matches!(
            compile("SELECT other.a FROM t"),
            Err(DbError::Plan(_))
        ));
        assert!(matches!(
            compile("SELECT a FROM t ORDER BY other.a"),
            Err(DbError::Plan(_))
        ));
        assert!(matches!(
            compile("SELECT a, COUNT(*) FROM t GROUP BY a ORDER BY other.a"),
            Err(DbError::Plan(_))
        ));
    }

    #[test]
    fn order_by_over_repeated_identical_columns_is_not_ambiguous() {
        // Selecting the same column twice stays orderable by name — every
        // hit is the identical column, so any of them sorts the same.
        let plan = compile("SELECT a, a FROM t ORDER BY a").unwrap();
        assert_eq!(
            plan,
            SelectPlan::Rows {
                columns: vec!["a".into(), "a".into()],
                sort: vec![SortSpec {
                    item: 0,
                    desc: false
                }],
                limit: None,
            }
        );
    }

    #[test]
    fn order_by_output_name_resolves() {
        let SelectPlan::Aggregate(plan) =
            compile("SELECT a, COUNT(*) FROM t GROUP BY a ORDER BY count DESC").unwrap()
        else {
            panic!("expected aggregate plan");
        };
        assert_eq!(
            plan.sort,
            vec![SortSpec {
                item: 1,
                desc: true
            }]
        );
    }

    #[test]
    fn shape_violations_are_rejected() {
        assert!(matches!(
            compile("SELECT a, SUM(b) FROM t"),
            Err(DbError::Plan(_))
        ));
        assert!(matches!(
            compile("SELECT * FROM t GROUP BY a"),
            Err(DbError::Plan(_))
        ));
        assert!(matches!(
            compile("SELECT a, COUNT(*) FROM t GROUP BY a ORDER BY 3"),
            Err(DbError::Plan(_))
        ));
        assert!(matches!(
            compile("SELECT a FROM t ORDER BY missing"),
            Err(DbError::Plan(_))
        ));
        assert!(matches!(
            compile("SELECT SUM(nope) FROM t"),
            Err(DbError::ColumnNotFound(_))
        ));
        assert!(matches!(
            compile("SELECT b FROM t GROUP BY nope"),
            Err(DbError::ColumnNotFound(_))
        ));
    }
}
