//! The vectorized aggregate executor: `Scan → Filter → GroupBy →
//! Aggregate → Sort → Limit` on the untrusted server.
//!
//! Execution splits exactly like the paper splits range search:
//!
//! 1. **Filter** reuses the range machinery (enclave dictionary search +
//!    attribute-vector scan, delta stores and validity vectors included).
//! 2. **Scan** walks the referenced columns' attribute vectors in
//!    4096-row chunks — multi-threaded via
//!    [`Parallelism`](encdict::avsearch::Parallelism) — and reduces the
//!    matching rows to a ValueID-tuple histogram. No ciphertext is
//!    touched; the scan runs entirely on ValueIDs in untrusted memory.
//! 3. **GroupBy/Aggregate/Sort/Limit** run where plaintext is allowed:
//!    one `Aggregate` ECALL when any referenced column is encrypted (the
//!    enclave decrypts each distinct touched ValueID once and returns
//!    freshly encrypted cells), or locally for all-PLAIN queries — the
//!    same [`encdict::aggregate`] core either way.
//!
//! The whole query — filter, scan, aggregation — executes against one
//! `TableSnapshot` (see `crate::server`) acquired up front, so
//! concurrent compactions never tear an aggregate.
//!
//! [`QueryStats`](crate::server::QueryStats) records the chunk count, the
//! ECALLs and the decrypted-value count, making the headline property
//! checkable: enclave decryptions are bounded by distinct ValueIDs, not by
//! row count.

use crate::error::DbError;
use crate::exec::aggregate::{build_histogram, remap_codes, ColumnCodes};
use crate::exec::plan::AggregatePlan;
use crate::server::{
    matching_rids_multi, CellValue, ColumnDelta, DbaasServer, MainColumn, SelectResponse,
    ServerFilter,
};
use colstore::delta::DeltaStore;
use colstore::dictionary::RecordId;
use encdict::aggregate::{AggPlanSpec, AggSpec, OutputItem};
use encdict::enclave_ops::{AggCell, AggColumnData, AggregateRequest};
use encdict::PlainDictionary;

/// Resolves the distinct touched codes of a PLAIN column to their values
/// (main dictionary below `dict.len()`, delta rows above).
fn resolve_plain(dict: &PlainDictionary, delta: &DeltaStore, codes: &[u32]) -> Vec<Vec<u8>> {
    codes
        .iter()
        .map(|&code| {
            if (code as usize) < dict.len() {
                dict.value(code as usize).to_vec()
            } else {
                delta.value(RecordId(code - dict.len() as u32)).to_vec()
            }
        })
        .collect()
}

/// Checks a caller-supplied plan for internal consistency (the compiler
/// produces valid plans; `aggregate` is a public API).
fn validate_plan(plan: &AggregatePlan) -> Result<(), DbError> {
    if plan.item_names.len() != plan.items.len() {
        return Err(DbError::Plan("item names misaligned with items".into()));
    }
    for item in &plan.items {
        let ok = match item {
            OutputItem::Group(i) => *i < plan.group_cols.len(),
            OutputItem::Agg(j) => *j < plan.aggregates.len(),
        };
        if !ok {
            return Err(DbError::Plan("plan item out of range".into()));
        }
    }
    for key in &plan.sort {
        if key.item >= plan.items.len() {
            return Err(DbError::Plan("sort key out of range".into()));
        }
    }
    Ok(())
}

impl DbaasServer {
    /// Executes a grouped aggregation (the `exec` engine's entry point).
    ///
    /// # Errors
    ///
    /// Propagates lookup, plan-validation and enclave failures.
    pub fn aggregate(
        &self,
        table: &str,
        plan: &AggregatePlan,
        filters: &[ServerFilter],
    ) -> Result<SelectResponse, DbError> {
        validate_plan(plan)?;
        let cfg = self.config();
        let t = self.table_handle(table)?;
        let snap = t.snapshot();
        let (main_rids, delta_rids, mut stats) =
            matching_rids_multi(&snap, &t.schema, self.query_enclave_handle(), filters, &cfg)?;

        // Referenced columns (group keys first, then aggregate inputs),
        // deduplicated — they define the histogram's tuple order.
        let mut ref_names: Vec<String> = Vec::new();
        let mut index_of = |name: &str| -> usize {
            match ref_names.iter().position(|n| n == name) {
                Some(i) => i,
                None => {
                    ref_names.push(name.to_string());
                    ref_names.len() - 1
                }
            }
        };
        let group_cols: Vec<usize> = plan.group_cols.iter().map(|g| index_of(g)).collect();
        let aggregates: Vec<AggSpec> = plan
            .aggregates
            .iter()
            .map(|a| AggSpec {
                func: a.func,
                col: a.column.as_deref().map(&mut index_of),
            })
            .collect();
        let spec = AggPlanSpec {
            group_cols,
            aggregates,
            items: plan.items.clone(),
            sort: plan.sort.clone(),
            limit: plan.limit,
        };
        let mut ref_cols: Vec<(&MainColumn, &ColumnDelta)> = Vec::with_capacity(ref_names.len());
        for name in &ref_names {
            let (idx, _) = t
                .schema
                .column(name)
                .ok_or_else(|| DbError::ColumnNotFound(name.clone()))?;
            ref_cols.push((&snap.main.columns[idx], &snap.deltas[idx]));
        }

        // Vectorized chunk scan: matching rows → ValueID-tuple histogram.
        let scan_start = std::time::Instant::now();
        let cols: Vec<ColumnCodes<'_>> = ref_cols
            .iter()
            .map(|(main, _)| ColumnCodes {
                av: main.av_slice(),
                main_len: main.main_len(),
            })
            .collect();
        let hist = build_histogram(&cols, &main_rids, &delta_rids, cfg.parallelism);
        stats.av_search_ns += scan_start.elapsed().as_nanos() as u64;
        stats.chunks_scanned += hist.chunks;
        let remapped = remap_codes(cols.len(), hist.tuples);

        // Grouped aggregation over the distinct touched values.
        let agg_start = std::time::Instant::now();
        let rows: Vec<Vec<CellValue>> = if ref_cols.iter().any(|(main, _)| main.is_encrypted()) {
            let plain_tables: Vec<Option<Vec<Vec<u8>>>> = ref_cols
                .iter()
                .enumerate()
                .map(|(c, (main, delta))| match (main, delta) {
                    (MainColumn::Plain { dict, .. }, ColumnDelta::Plain(delta)) => {
                        Some(resolve_plain(dict, delta, &remapped.codes[c]))
                    }
                    _ => None,
                })
                .collect();
            let columns: Vec<AggColumnData<'_>> = ref_cols
                .iter()
                .enumerate()
                .map(|(c, (main, delta))| match (main, delta) {
                    (MainColumn::Encrypted(main), ColumnDelta::Encrypted(delta)) => {
                        AggColumnData::Encrypted {
                            col_name: &ref_names[c],
                            main: main.dict().segment_ref(),
                            delta: delta.segment_ref(),
                            codes: &remapped.codes[c],
                        }
                    }
                    _ => AggColumnData::Plain {
                        values: plain_tables[c].as_deref().expect("resolved above"),
                    },
                })
                .collect();
            let reply = self.enclave().aggregate(AggregateRequest {
                table_name: &t.schema.name,
                columns,
                tuples: &remapped.tuples,
                plan: &spec,
            })?;
            stats.enclave_calls += 1;
            stats.values_decrypted += reply.values_decrypted;
            reply
                .rows
                .into_iter()
                .map(|row| {
                    row.into_iter()
                        .map(|cell| match cell {
                            AggCell::Encrypted(b) => CellValue::Encrypted(b),
                            AggCell::Plain(b) => CellValue::Plain(b),
                        })
                        .collect()
                })
                .collect()
        } else {
            let tables: Vec<Vec<Vec<u8>>> = ref_cols
                .iter()
                .enumerate()
                .map(|(c, (main, delta))| match (main, delta) {
                    (MainColumn::Plain { dict, .. }, ColumnDelta::Plain(delta)) => {
                        resolve_plain(dict, delta, &remapped.codes[c])
                    }
                    _ => unreachable!("checked above"),
                })
                .collect();
            encdict::aggregate::evaluate(&tables, &remapped.tuples, &spec)?
                .into_iter()
                .map(|row| row.into_iter().map(CellValue::Plain).collect())
                .collect()
        };
        stats.aggregate_ns += agg_start.elapsed().as_nanos() as u64;
        stats.result_rows = rows.len();
        stats.snapshot_epoch = snap.main.epoch;
        self.store_stats(stats);
        Ok(SelectResponse {
            columns: plan.item_names.clone(),
            rows,
        })
    }
}
