//! The vectorized aggregate executor: `Scan → Filter → GroupBy →
//! Aggregate → Sort → Limit` on the untrusted server, partition-parallel.
//!
//! Execution splits exactly like the paper splits range search:
//!
//! 1. **Filter** reuses the range machinery (enclave dictionary search +
//!    attribute-vector scan, delta stores and validity vectors included),
//!    per range partition.
//! 2. **Scan** walks the referenced columns' attribute vectors in
//!    4096-row chunks — fanned out across partitions on scoped threads,
//!    and multi-threaded within a partition via
//!    [`Parallelism`](encdict::avsearch::Parallelism) — and reduces each
//!    partition's matching rows to a ValueID-tuple histogram. No
//!    ciphertext is touched; the scan runs entirely on ValueIDs in
//!    untrusted memory. Pruned and empty partitions are skipped without a
//!    single ECALL.
//! 3. **GroupBy/Aggregate/Sort/Limit** run where plaintext is allowed:
//!    the per-partition histograms travel as *parts* of one `Aggregate`
//!    ECALL when any referenced column is encrypted — the enclave
//!    decrypts each partition's distinct touched ValueIDs once, folds
//!    every part into per-group partial aggregates and merges the
//!    partials in the trusted core
//!    ([`encdict::aggregate::GroupPartials`]) — or locally for all-PLAIN
//!    queries, through the same trusted-core partial-merge code.
//!
//! Each partition's filter, scan and histogram run against one
//! `PartitionSnapshot` (see `crate::server`) acquired up front, so
//! concurrent compactions never tear an aggregate — a merge publishing on
//! shard A cannot affect the scan of shard B, and shard A's scan drains
//! on its old epoch.
//!
//! [`QueryStats`] records the chunk count, the
//! ECALLs, the decrypted-value count and the partition pruning, making
//! the headline properties checkable: enclave decryptions are bounded by
//! distinct ValueIDs per partition, never by row count, and enclave calls
//! by one search per filtered dictionary plus one `Aggregate` per query.

use crate::error::DbError;
use crate::exec::aggregate::{build_histogram, remap_codes, ColumnCodes, Remapped};
use crate::exec::plan::AggregatePlan;
use crate::obs::{EcallIo, EcallKind, SpanId};
use crate::server::{
    fan_out, matching_rids_multi, BatchKey, CallClass, CellValue, ColumnDelta, DbaasServer,
    EnclaveCtx, MainColumn, QueryStats, SelectResponse, ServerFilter,
};
use colstore::delta::DeltaStore;
use colstore::dictionary::RecordId;
use encdict::aggregate::{AggPlanSpec, AggSpec, GroupPartials, OutputItem};
use encdict::batch::{
    OwnedAggColumn, OwnedAggPartition, OwnedAggregateCall, OwnedDictCall, SegSource,
};
use encdict::enclave_ops::{AggCell, DictReply};
use encdict::PlainDictionary;

/// Resolves the distinct touched codes of a PLAIN column to their values
/// (main dictionary below `dict.len()`, delta rows above).
fn resolve_plain(dict: &PlainDictionary, delta: &DeltaStore, codes: &[u32]) -> Vec<Vec<u8>> {
    codes
        .iter()
        .map(|&code| {
            if (code as usize) < dict.len() {
                dict.value(code as usize).to_vec()
            } else {
                delta.value(RecordId(code - dict.len() as u32)).to_vec()
            }
        })
        .collect()
}

/// Checks a caller-supplied plan for internal consistency (the compiler
/// produces valid plans; `aggregate` is a public API).
fn validate_plan(plan: &AggregatePlan) -> Result<(), DbError> {
    if plan.item_names.len() != plan.items.len() {
        return Err(DbError::Plan("item names misaligned with items".into()));
    }
    for item in &plan.items {
        let ok = match item {
            OutputItem::Group(i) => *i < plan.group_cols.len(),
            OutputItem::Agg(j) => *j < plan.aggregates.len(),
        };
        if !ok {
            return Err(DbError::Plan("plan item out of range".into()));
        }
    }
    for key in &plan.sort {
        if key.item >= plan.items.len() {
            return Err(DbError::Plan("sort key out of range".into()));
        }
    }
    Ok(())
}

/// One scanned partition's contribution: its remapped histogram plus the
/// PLAIN columns' resolved value tables.
struct PartScan {
    remapped: Remapped,
    plain_tables: Vec<Option<Vec<Vec<u8>>>>,
    stats: QueryStats,
}

impl DbaasServer {
    /// Executes a grouped aggregation (the `exec` engine's entry point)
    /// over all partitions.
    ///
    /// # Errors
    ///
    /// Propagates lookup, plan-validation and enclave failures.
    pub fn aggregate(
        &self,
        table: &str,
        plan: &AggregatePlan,
        filters: &[ServerFilter],
    ) -> Result<SelectResponse, DbError> {
        self.aggregate_scoped(table, plan, filters, None, SpanId::NONE)
    }

    pub(crate) fn aggregate_scoped(
        &self,
        table: &str,
        plan: &AggregatePlan,
        filters: &[ServerFilter],
        scope: Option<&[usize]>,
        parent: SpanId,
    ) -> Result<SelectResponse, DbError> {
        validate_plan(plan)?;
        let obs = self.obs().clone();
        let cfg = self.config();
        // Partition scope (pruning) + per-partition snapshots via the
        // shared N-table acquisition path; empty shards are skipped
        // without any ECALL.
        let snap_span = obs.span("snapshot", "query", parent);
        let ts = self
            .snapshot_tables(&[(table, filters, scope)])?
            .pop()
            .expect("one table requested");
        snap_span.finish();
        let t = &ts.table;

        // Referenced columns (group keys first, then aggregate inputs),
        // deduplicated — they define the histogram's tuple order.
        let mut ref_names: Vec<String> = Vec::new();
        let mut index_of = |name: &str| -> usize {
            match ref_names.iter().position(|n| n == name) {
                Some(i) => i,
                None => {
                    ref_names.push(name.to_string());
                    ref_names.len() - 1
                }
            }
        };
        let group_cols: Vec<usize> = plan.group_cols.iter().map(|g| index_of(g)).collect();
        let aggregates: Vec<AggSpec> = plan
            .aggregates
            .iter()
            .map(|a| AggSpec {
                func: a.func,
                col: a.column.as_deref().map(&mut index_of),
            })
            .collect();
        let spec = AggPlanSpec {
            group_cols,
            aggregates,
            items: plan.items.clone(),
            sort: plan.sort.clone(),
            limit: plan.limit,
        };
        // Schema positions of the referenced columns, and whether each is
        // encrypted (uniform across partitions — one schema).
        let mut ref_idx = Vec::with_capacity(ref_names.len());
        let mut col_names: Vec<Option<&str>> = Vec::with_capacity(ref_names.len());
        for name in &ref_names {
            let (idx, spec) = t
                .schema
                .column(name)
                .ok_or_else(|| DbError::ColumnNotFound(name.clone()))?;
            ref_idx.push(idx);
            col_names.push(match spec.choice {
                crate::schema::DictChoice::Encrypted(_) => Some(spec.name.as_str()),
                crate::schema::DictChoice::Plain => None,
            });
        }
        let any_encrypted = col_names.iter().any(Option::is_some);

        let active = &ts.active;
        let mut stats = QueryStats::default();
        ts.seed_stats(&mut stats);

        // Per-partition, fanned out on scoped threads: filter → chunked
        // histogram scan → dense remap → resolve PLAIN value tables.
        let ref_idx = &ref_idx;
        let scan_span = obs.span_arg("scan", "query", parent, active.len() as u64);
        let obs_ref = &obs;
        let scans = fan_out(active, |pid, snap| {
            let pspan = obs_ref.span_arg("partition", "query", scan_span.id(), pid as u64);
            let ctx = EnclaveCtx {
                sched: self.scheduler(),
                obs: obs_ref,
                parent: pspan.id(),
                part: pid as u64,
            };
            let (main_rids, delta_rids, mut part_stats) =
                matching_rids_multi(snap, &t.schema, &ctx, filters, &cfg)?;
            let scan_start = std::time::Instant::now();
            let cols: Vec<ColumnCodes<'_>> = ref_idx
                .iter()
                .map(|&idx| ColumnCodes {
                    av: snap.main.columns[idx].av_slice(),
                    main_len: snap.main.columns[idx].main_len(),
                })
                .collect();
            let hist = build_histogram(&cols, &main_rids, &delta_rids, cfg.parallelism)?;
            part_stats.av_search_ns += scan_start.elapsed().as_nanos() as u64;
            part_stats.chunks_scanned += hist.chunks;
            part_stats.snapshot_epoch = snap.epoch();
            let remapped = remap_codes(cols.len(), hist.tuples);
            let plain_tables: Vec<Option<Vec<Vec<u8>>>> = ref_idx
                .iter()
                .enumerate()
                .map(
                    |(c, &idx)| match (&snap.main.columns[idx], &snap.deltas[idx]) {
                        (MainColumn::Plain { dict, .. }, ColumnDelta::Plain(delta)) => {
                            Some(resolve_plain(dict, delta, &remapped.codes[c]))
                        }
                        _ => None,
                    },
                )
                .collect();
            Ok::<_, DbError>(PartScan {
                remapped,
                plain_tables,
                stats: part_stats,
            })
        });
        let mut parts: Vec<PartScan> = Vec::with_capacity(scans.len());
        for scan in scans {
            let scan = scan?;
            stats.absorb(&scan.stats);
            parts.push(scan);
        }
        scan_span.finish();

        // Grouped aggregation over the distinct touched values of every
        // partition, with the partial-aggregate merge in the trusted core.
        let agg_start = std::time::Instant::now();
        let rows: Vec<Vec<CellValue>> = if any_encrypted {
            // Partitions with no matching rows contribute no part. The
            // request is built in owned form (Arc'd main generations,
            // copied delta segments) so it can ride a combined transition
            // of the cross-session scheduler; its generation key is the
            // maximum epoch among the included partition snapshots.
            let mut generation = 0u64;
            let part_data: Vec<OwnedAggPartition> = active
                .iter()
                .zip(&parts)
                .filter(|(_, scan)| !scan.remapped.tuples.is_empty())
                .map(|((pid, snap), scan)| {
                    generation = generation.max(snap.epoch());
                    OwnedAggPartition {
                        columns: ref_idx
                            .iter()
                            .enumerate()
                            .map(
                                |(c, &idx)| match (&snap.main.columns[idx], &snap.deltas[idx]) {
                                    (
                                        MainColumn::Encrypted(main),
                                        ColumnDelta::Encrypted(delta),
                                    ) => OwnedAggColumn::Encrypted {
                                        main: SegSource::Shared(main.dict_arc()),
                                        delta: delta.owned_segment(),
                                        codes: scan.remapped.codes[c].clone(),
                                        cache: Some((*pid as u64, snap.epoch())),
                                    },
                                    _ => OwnedAggColumn::Plain {
                                        values: scan.plain_tables[c]
                                            .clone()
                                            .expect("resolved above"),
                                    },
                                },
                            )
                            .collect(),
                        tuples: scan.remapped.tuples.clone(),
                    }
                })
                .collect();
            if part_data.is_empty() && !spec.group_cols.is_empty() {
                // Every shard pruned or empty: a grouped aggregate has
                // zero groups — answered without entering the enclave.
                Vec::new()
            } else {
                // One Aggregate ECALL for the whole query — at most one
                // per non-empty partition, and exactly one here. A global
                // (no GROUP BY) aggregate still consults the enclave even
                // with zero parts: its NULL row carries cells encrypted
                // under the column keys.
                //
                // bytes_in approximates the request payload: 4 bytes per
                // remapped code or tuple slot plus resolved plain values.
                let bytes_in: u64 = part_data
                    .iter()
                    .map(|p| {
                        let cols: u64 = p
                            .columns
                            .iter()
                            .map(|c| match c {
                                OwnedAggColumn::Encrypted { codes, .. } => 4 * codes.len() as u64,
                                OwnedAggColumn::Plain { values } => {
                                    values.iter().map(|v| v.len() as u64).sum()
                                }
                            })
                            .sum();
                        cols + 4 * p.tuples.len() as u64
                    })
                    .sum();
                let outcome = self.scheduler().submit(
                    OwnedDictCall::Aggregate(OwnedAggregateCall {
                        table_name: t.schema.name.clone(),
                        col_names: col_names.iter().map(|n| n.map(str::to_string)).collect(),
                        parts: part_data,
                        plan: spec.clone(),
                    }),
                    BatchKey {
                        class: CallClass::Aggregate,
                        generation,
                    },
                );
                let batched = outcome.batched();
                let reply = match outcome.reply {
                    DictReply::Aggregated(Ok(reply)) => reply,
                    DictReply::Aggregated(Err(e)) => return Err(e.into()),
                    _ => unreachable!("aggregate call returns aggregate reply"),
                };
                if !batched {
                    let bytes_out: u64 = reply
                        .rows
                        .iter()
                        .map(|row| {
                            row.iter()
                                .map(|cell| match cell {
                                    AggCell::Encrypted(b) | AggCell::Plain(b) => b.len() as u64,
                                })
                                .sum::<u64>()
                        })
                        .sum();
                    obs.ecall(
                        EcallKind::Aggregate,
                        EcallIo {
                            bytes_in,
                            bytes_out,
                            values_decrypted: reply.values_decrypted as u64,
                            untrusted_loads: outcome.untrusted_loads,
                            untrusted_bytes: outcome.untrusted_bytes,
                            cache_hits: outcome.cache_hits,
                            cache_misses: outcome.cache_misses,
                        },
                        outcome.start_ns,
                        outcome.dur_ns,
                        parent,
                    );
                }
                stats.enclave_calls += 1;
                stats.values_decrypted += reply.values_decrypted;
                stats.cache_hits += outcome.cache_hits as usize;
                stats.ecall_wait_ns += outcome.wait_ns;
                stats.batch_peers += outcome.peers - 1;
                reply
                    .rows
                    .into_iter()
                    .map(|row| {
                        row.into_iter()
                            .map(|cell| match cell {
                                AggCell::Encrypted(b) => CellValue::Encrypted(b),
                                AggCell::Plain(b) => CellValue::Plain(b),
                            })
                            .collect()
                    })
                    .collect()
            }
        } else {
            // All-PLAIN: same trusted-core partial merge, run locally
            // (value tables move out of the scan — no per-query copy).
            let mut partials = GroupPartials::new();
            for scan in parts {
                let tables: Vec<Vec<Vec<u8>>> = scan
                    .plain_tables
                    .into_iter()
                    .map(|t| t.expect("all columns are PLAIN"))
                    .collect();
                let mut partial = GroupPartials::new();
                partial.accumulate(&tables, &scan.remapped.tuples, &spec)?;
                partials.merge(partial);
            }
            partials
                .finalize(&spec)?
                .into_iter()
                .map(|row| row.into_iter().map(CellValue::Plain).collect())
                .collect()
        };
        stats.aggregate_ns += agg_start.elapsed().as_nanos() as u64;
        stats.result_rows = rows.len();
        self.store_stats(stats);
        Ok(SelectResponse {
            columns: plan.item_names.clone(),
            rows,
        })
    }
}
