//! The untrusted half of grouped aggregation: reducing matching rows to a
//! **ValueID-tuple histogram**, entirely on ValueIDs in untrusted memory.
//!
//! The attribute vectors of the referenced columns are scanned in
//! [`CHUNK_ROWS`]-row batches (optionally across threads, reusing
//! [`Parallelism`]); each batch counts how often every distinct tuple of
//! per-column codes occurs among the matching rows. Codes address the
//! concatenated main + delta value space of a column: a code below the
//! main dictionary length is a main-store ValueID, anything above is a
//! delta row. Only the *distinct* codes ever reach a decryption — the
//! frequency weighting replaces per-row work.

use crate::error::DbError;
use colstore::dictionary::RecordId;
use encdict::avsearch::Parallelism;
use std::cell::RefCell;
use std::collections::{BTreeSet, HashMap};

/// Rows per histogram batch (one vectorized execution unit).
pub const CHUNK_ROWS: usize = 4096;

/// Upper bound on the single-column code space for the dense
/// (array-indexed) counting fast path — 64 Ki codes = a 512 KiB counts
/// array per worker.
const DENSE_CODE_SPACE: usize = 1 << 16;

thread_local! {
    /// Reused per-worker gather buffer (row-major code tuples of one
    /// chunk): the scan allocates once per thread, not once per chunk or
    /// per query (DESIGN.md §14).
    static CODE_SCRATCH: RefCell<Vec<u32>> = const { RefCell::new(Vec::new()) };
}

/// The code source of one referenced column.
#[derive(Debug, Clone, Copy)]
pub struct ColumnCodes<'a> {
    /// The column's main-store attribute vector.
    pub av: &'a [u32],
    /// Main dictionary length — the offset of the delta code space.
    pub main_len: usize,
}

/// The histogram of one aggregate query plus scan accounting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// Distinct code tuples (one code per referenced column) and how many
    /// matching rows carry each.
    pub tuples: Vec<(Vec<u32>, u64)>,
    /// Number of row chunks scanned.
    pub chunks: usize,
}

/// Rejects a column whose concatenated main + delta code space exceeds
/// `u32`: the delta code `main_len + rid` would silently wrap and alias
/// two distinct values into one histogram bucket. Checked once up front
/// so the per-row kernels can add without branching.
fn check_code_space(cols: &[ColumnCodes<'_>], delta_rids: &[RecordId]) -> Result<(), DbError> {
    let Some(max_rid) = delta_rids.iter().map(|r| r.0).max() else {
        return Ok(());
    };
    for col in cols {
        if col.main_len as u64 + max_rid as u64 > u32::MAX as u64 {
            return Err(DbError::CodeSpaceOverflow {
                main_len: col.main_len,
                delta_rid: max_rid,
            });
        }
    }
    Ok(())
}

fn count_chunk(
    cols: &[ColumnCodes<'_>],
    rids: &[RecordId],
    delta: bool,
    into: &mut HashMap<Vec<u32>, u64>,
) {
    let ncols = cols.len();
    if ncols == 0 {
        // Pure COUNT(*): every row contributes to the empty tuple.
        *into.entry(Vec::new()).or_insert(0) += rids.len() as u64;
        return;
    }
    CODE_SCRATCH.with(|cell| {
        let mut buf = cell.borrow_mut();
        buf.clear();
        buf.resize(rids.len() * ncols, 0);
        // Branch-free gather, one tight column-at-a-time pass: the
        // delta/main decision and the code arithmetic hoist out of the
        // per-row loop, leaving a pure strided gather the compiler can
        // unroll/vectorize. Wrap-safety of `main_len + rid` was proven by
        // `check_code_space`.
        for (c, col) in cols.iter().enumerate() {
            if delta {
                let base = col.main_len as u32;
                for (j, &rid) in rids.iter().enumerate() {
                    buf[j * ncols + c] = base + rid.0;
                }
            } else {
                for (j, &rid) in rids.iter().enumerate() {
                    buf[j * ncols + c] = col.av[rid.0 as usize];
                }
            }
        }
        // Probe with the gathered row-major tuples and only clone on
        // first sight, keeping allocations at O(distinct tuples).
        for tuple in buf.chunks_exact(ncols) {
            match into.get_mut(tuple) {
                Some(n) => *n += 1,
                None => {
                    into.insert(tuple.to_vec(), 1);
                }
            }
        }
    });
}

/// Dense counting kernel for one chunk: a single scatter-add per row into
/// a direct-indexed counts array — no hashing, no tuple allocation.
#[inline]
fn dense_count_chunk(col: ColumnCodes<'_>, rids: &[RecordId], delta: bool, counts: &mut [u64]) {
    if delta {
        let base = col.main_len;
        for &rid in rids {
            counts[base + rid.0 as usize] += 1;
        }
    } else {
        for &rid in rids {
            counts[col.av[rid.0 as usize] as usize] += 1;
        }
    }
}

/// Single-column fast path over a bounded code space: per-worker dense
/// `u64` counts arrays merged element-wise. Output order (ascending code)
/// matches the generic path's tuple sort exactly.
fn dense_histogram_single(
    col: ColumnCodes<'_>,
    chunks: &[(&[RecordId], bool)],
    threads: usize,
    space: usize,
) -> Histogram {
    let mut counts = vec![0u64; space];
    if threads <= 1 {
        for (rids, delta) in chunks {
            dense_count_chunk(col, rids, *delta, &mut counts);
        }
    } else {
        let partials: Vec<Vec<u64>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    scope.spawn(move || {
                        let mut local = vec![0u64; space];
                        for (rids, delta) in chunks.iter().skip(t).step_by(threads) {
                            dense_count_chunk(col, rids, *delta, &mut local);
                        }
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("histogram scan worker panicked"))
                .collect()
        });
        for partial in partials {
            for (slot, n) in counts.iter_mut().zip(partial) {
                *slot += n;
            }
        }
    }
    let tuples = counts
        .iter()
        .enumerate()
        .filter(|(_, &n)| n > 0)
        .map(|(code, &n)| (vec![code as u32], n))
        .collect();
    Histogram {
        tuples,
        chunks: chunks.len(),
    }
}

/// Builds the ValueID-tuple histogram over the matching main and delta
/// rows, scanning in [`CHUNK_ROWS`]-row chunks, multi-threaded per
/// `parallelism`. The result is deterministic (sorted by tuple).
///
/// # Errors
///
/// Returns [`DbError::CodeSpaceOverflow`] when a column's concatenated
/// main + delta code space does not fit in `u32`.
pub fn build_histogram(
    cols: &[ColumnCodes<'_>],
    main_rids: &[RecordId],
    delta_rids: &[RecordId],
    parallelism: Parallelism,
) -> Result<Histogram, DbError> {
    check_code_space(cols, delta_rids)?;
    let chunks: Vec<(&[RecordId], bool)> = main_rids
        .chunks(CHUNK_ROWS)
        .map(|c| (c, false))
        .chain(delta_rids.chunks(CHUNK_ROWS).map(|c| (c, true)))
        .collect();
    let threads = match parallelism {
        Parallelism::Serial => 1,
        Parallelism::Threads(n) => n.max(1),
    }
    .min(chunks.len().max(1));

    if let [col] = cols {
        let space = col.main_len
            + delta_rids
                .iter()
                .map(|r| r.0 as usize + 1)
                .max()
                .unwrap_or(0);
        if space <= DENSE_CODE_SPACE {
            return Ok(dense_histogram_single(*col, &chunks, threads, space));
        }
    }

    let mut merged: HashMap<Vec<u32>, u64> = HashMap::new();
    if threads <= 1 {
        for (rids, delta) in &chunks {
            count_chunk(cols, rids, *delta, &mut merged);
        }
    } else {
        let partials: Vec<HashMap<Vec<u32>, u64>> = std::thread::scope(|scope| {
            let chunks = &chunks;
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    scope.spawn(move || {
                        let mut local = HashMap::new();
                        for (rids, delta) in chunks.iter().skip(t).step_by(threads) {
                            count_chunk(cols, rids, *delta, &mut local);
                        }
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("histogram scan worker panicked"))
                .collect()
        });
        for partial in partials {
            for (tuple, n) in partial {
                *merged.entry(tuple).or_insert(0) += n;
            }
        }
    }
    let mut tuples: Vec<(Vec<u32>, u64)> = merged.into_iter().collect();
    tuples.sort_unstable();
    Ok(Histogram {
        tuples,
        chunks: chunks.len(),
    })
}

/// A histogram with per-column codes remapped to dense value-table
/// indices: `codes[c]` lists the distinct touched codes of column `c`
/// (ascending), and every tuple entry indexes into that list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Remapped {
    /// Distinct touched codes per referenced column, ascending.
    pub codes: Vec<Vec<u32>>,
    /// Tuples rewritten to value-table indices, with frequencies.
    pub tuples: Vec<(Vec<u32>, u64)>,
}

/// Collects the distinct codes of each column and rewrites the histogram
/// tuples to indices into those per-column lists — the value tables only
/// ever hold one entry per distinct touched ValueID.
pub fn remap_codes(ncols: usize, tuples: Vec<(Vec<u32>, u64)>) -> Remapped {
    let mut distinct: Vec<BTreeSet<u32>> = vec![BTreeSet::new(); ncols];
    for (tuple, _) in &tuples {
        for (c, &code) in tuple.iter().enumerate() {
            distinct[c].insert(code);
        }
    }
    let codes: Vec<Vec<u32>> = distinct
        .into_iter()
        .map(|s| s.into_iter().collect())
        .collect();
    let index: Vec<HashMap<u32, u32>> = codes
        .iter()
        .map(|list| {
            list.iter()
                .enumerate()
                .map(|(i, &code)| (code, i as u32))
                .collect()
        })
        .collect();
    let tuples = tuples
        .into_iter()
        .map(|(tuple, n)| {
            let mapped = tuple
                .iter()
                .enumerate()
                .map(|(c, code)| index[c][code])
                .collect();
            (mapped, n)
        })
        .collect();
    Remapped { codes, tuples }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rids(v: &[u32]) -> Vec<RecordId> {
        v.iter().map(|&i| RecordId(i)).collect()
    }

    #[test]
    fn histogram_counts_tuples_and_offsets_delta() {
        // Two columns over 6 main rows; delta rows get codes main_len + rid.
        let av_a = [0u32, 1, 0, 1, 0, 2];
        let av_b = [5u32, 5, 5, 6, 5, 6];
        let cols = [
            ColumnCodes {
                av: &av_a,
                main_len: 3,
            },
            ColumnCodes {
                av: &av_b,
                main_len: 7,
            },
        ];
        let h = build_histogram(
            &cols,
            &rids(&[0, 2, 3, 4]),
            &rids(&[0, 1]),
            Parallelism::Serial,
        )
        .unwrap();
        assert_eq!(
            h.tuples,
            vec![
                (vec![0, 5], 3), // rows 0, 2, 4
                (vec![1, 6], 1), // row 3
                (vec![3, 7], 1), // delta row 0 -> codes (3+0, 7+0)
                (vec![4, 8], 1), // delta row 1
            ]
        );
        assert_eq!(h.chunks, 2); // one main chunk + one delta chunk
    }

    #[test]
    fn parallel_histogram_matches_serial() {
        let av: Vec<u32> = (0..20_000).map(|i| i % 13).collect();
        let cols = [ColumnCodes {
            av: &av,
            main_len: 13,
        }];
        let all: Vec<RecordId> = (0..20_000).map(RecordId).collect();
        let serial = build_histogram(&cols, &all, &[], Parallelism::Serial).unwrap();
        for threads in [2usize, 3, 8] {
            let parallel =
                build_histogram(&cols, &all, &[], Parallelism::Threads(threads)).unwrap();
            assert_eq!(serial, parallel, "threads = {threads}");
        }
        assert_eq!(serial.chunks, 20_000usize.div_ceil(CHUNK_ROWS));
    }

    #[test]
    fn zero_columns_still_counts_rows() {
        let h = build_histogram(&[], &rids(&[0, 1, 2]), &rids(&[0]), Parallelism::Serial).unwrap();
        assert_eq!(h.tuples, vec![(vec![], 4)]);
    }

    #[test]
    fn code_space_overflow_is_a_typed_error_not_a_wrap() {
        // A main dictionary this long leaves no room for delta rid 1:
        // main_len + 1 == 2^32, one past u32::MAX. Before the check this
        // wrapped to code 0 and aliased the delta row into main value 0.
        let av: Vec<u32> = vec![0];
        let cols = [ColumnCodes {
            av: &av,
            main_len: u32::MAX as usize,
        }];
        let err =
            build_histogram(&cols, &rids(&[0]), &rids(&[0, 1]), Parallelism::Serial).unwrap_err();
        assert_eq!(
            err,
            DbError::CodeSpaceOverflow {
                main_len: u32::MAX as usize,
                delta_rid: 1,
            }
        );

        // One row less and the space fits exactly: the last delta code is
        // u32::MAX itself, which must succeed.
        let h = build_histogram(&cols, &rids(&[0]), &rids(&[0]), Parallelism::Serial).unwrap();
        assert_eq!(
            h.tuples,
            vec![(vec![0], 1), (vec![u32::MAX], 1)],
            "boundary code u32::MAX is valid and distinct from main code 0"
        );
    }

    #[test]
    fn dense_single_column_path_matches_generic() {
        // Single column, small code space: exercises the dense fast path
        // and pins its output against the generic hash-map path (forced by
        // adding a second identical column, whose tuples we project away).
        let av: Vec<u32> = (0..10_000).map(|i| (i * 7) % 251).collect();
        let cols = [ColumnCodes {
            av: &av,
            main_len: 251,
        }];
        let wide = [cols[0], cols[0]];
        let main: Vec<RecordId> = (0..10_000).step_by(3).map(RecordId).collect();
        let delta = rids(&[0, 5, 9]);
        for par in [Parallelism::Serial, Parallelism::Threads(4)] {
            let dense = build_histogram(&cols, &main, &delta, par).unwrap();
            let generic = build_histogram(&wide, &main, &delta, par).unwrap();
            let projected: Vec<(Vec<u32>, u64)> = generic
                .tuples
                .iter()
                .map(|(t, n)| (vec![t[0]], *n))
                .collect();
            assert_eq!(dense.tuples, projected);
            assert_eq!(dense.chunks, generic.chunks);
        }
    }

    #[test]
    fn remap_produces_dense_indices() {
        let tuples = vec![(vec![10, 100], 2), (vec![7, 100], 1), (vec![10, 90], 4)];
        let r = remap_codes(2, tuples);
        assert_eq!(r.codes, vec![vec![7, 10], vec![90, 100]]);
        assert_eq!(
            r.tuples,
            vec![(vec![1, 1], 2), (vec![0, 1], 1), (vec![1, 0], 4)]
        );
    }
}
