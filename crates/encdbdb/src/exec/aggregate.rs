//! The untrusted half of grouped aggregation: reducing matching rows to a
//! **ValueID-tuple histogram**, entirely on ValueIDs in untrusted memory.
//!
//! The attribute vectors of the referenced columns are scanned in
//! [`CHUNK_ROWS`]-row batches (optionally across threads, reusing
//! [`Parallelism`]); each batch counts how often every distinct tuple of
//! per-column codes occurs among the matching rows. Codes address the
//! concatenated main + delta value space of a column: a code below the
//! main dictionary length is a main-store ValueID, anything above is a
//! delta row. Only the *distinct* codes ever reach a decryption — the
//! frequency weighting replaces per-row work.

use colstore::dictionary::RecordId;
use encdict::avsearch::Parallelism;
use std::collections::{BTreeSet, HashMap};

/// Rows per histogram batch (one vectorized execution unit).
pub const CHUNK_ROWS: usize = 4096;

/// The code source of one referenced column.
#[derive(Debug, Clone, Copy)]
pub struct ColumnCodes<'a> {
    /// The column's main-store attribute vector.
    pub av: &'a [u32],
    /// Main dictionary length — the offset of the delta code space.
    pub main_len: usize,
}

impl ColumnCodes<'_> {
    #[inline]
    fn code(&self, rid: RecordId, delta: bool) -> u32 {
        if delta {
            self.main_len as u32 + rid.0
        } else {
            self.av[rid.0 as usize]
        }
    }
}

/// The histogram of one aggregate query plus scan accounting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// Distinct code tuples (one code per referenced column) and how many
    /// matching rows carry each.
    pub tuples: Vec<(Vec<u32>, u64)>,
    /// Number of row chunks scanned.
    pub chunks: usize,
}

fn count_chunk(
    cols: &[ColumnCodes<'_>],
    rids: &[RecordId],
    delta: bool,
    into: &mut HashMap<Vec<u32>, u64>,
) {
    // Probe with a reused scratch tuple and only clone it into the map on
    // first sight, keeping allocations at O(distinct tuples), not O(rows).
    let mut scratch: Vec<u32> = Vec::with_capacity(cols.len());
    for &rid in rids {
        scratch.clear();
        scratch.extend(cols.iter().map(|c| c.code(rid, delta)));
        match into.get_mut(scratch.as_slice()) {
            Some(n) => *n += 1,
            None => {
                into.insert(scratch.clone(), 1);
            }
        }
    }
}

/// Builds the ValueID-tuple histogram over the matching main and delta
/// rows, scanning in [`CHUNK_ROWS`]-row chunks, multi-threaded per
/// `parallelism`. The result is deterministic (sorted by tuple).
pub fn build_histogram(
    cols: &[ColumnCodes<'_>],
    main_rids: &[RecordId],
    delta_rids: &[RecordId],
    parallelism: Parallelism,
) -> Histogram {
    let chunks: Vec<(&[RecordId], bool)> = main_rids
        .chunks(CHUNK_ROWS)
        .map(|c| (c, false))
        .chain(delta_rids.chunks(CHUNK_ROWS).map(|c| (c, true)))
        .collect();
    let threads = match parallelism {
        Parallelism::Serial => 1,
        Parallelism::Threads(n) => n.max(1),
    }
    .min(chunks.len().max(1));

    let mut merged: HashMap<Vec<u32>, u64> = HashMap::new();
    if threads <= 1 {
        for (rids, delta) in &chunks {
            count_chunk(cols, rids, *delta, &mut merged);
        }
    } else {
        let partials: Vec<HashMap<Vec<u32>, u64>> = std::thread::scope(|scope| {
            let chunks = &chunks;
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    scope.spawn(move || {
                        let mut local = HashMap::new();
                        for (rids, delta) in chunks.iter().skip(t).step_by(threads) {
                            count_chunk(cols, rids, *delta, &mut local);
                        }
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("histogram scan worker panicked"))
                .collect()
        });
        for partial in partials {
            for (tuple, n) in partial {
                *merged.entry(tuple).or_insert(0) += n;
            }
        }
    }
    let mut tuples: Vec<(Vec<u32>, u64)> = merged.into_iter().collect();
    tuples.sort_unstable();
    Histogram {
        tuples,
        chunks: chunks.len(),
    }
}

/// A histogram with per-column codes remapped to dense value-table
/// indices: `codes[c]` lists the distinct touched codes of column `c`
/// (ascending), and every tuple entry indexes into that list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Remapped {
    /// Distinct touched codes per referenced column, ascending.
    pub codes: Vec<Vec<u32>>,
    /// Tuples rewritten to value-table indices, with frequencies.
    pub tuples: Vec<(Vec<u32>, u64)>,
}

/// Collects the distinct codes of each column and rewrites the histogram
/// tuples to indices into those per-column lists — the value tables only
/// ever hold one entry per distinct touched ValueID.
pub fn remap_codes(ncols: usize, tuples: Vec<(Vec<u32>, u64)>) -> Remapped {
    let mut distinct: Vec<BTreeSet<u32>> = vec![BTreeSet::new(); ncols];
    for (tuple, _) in &tuples {
        for (c, &code) in tuple.iter().enumerate() {
            distinct[c].insert(code);
        }
    }
    let codes: Vec<Vec<u32>> = distinct
        .into_iter()
        .map(|s| s.into_iter().collect())
        .collect();
    let index: Vec<HashMap<u32, u32>> = codes
        .iter()
        .map(|list| {
            list.iter()
                .enumerate()
                .map(|(i, &code)| (code, i as u32))
                .collect()
        })
        .collect();
    let tuples = tuples
        .into_iter()
        .map(|(tuple, n)| {
            let mapped = tuple
                .iter()
                .enumerate()
                .map(|(c, code)| index[c][code])
                .collect();
            (mapped, n)
        })
        .collect();
    Remapped { codes, tuples }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rids(v: &[u32]) -> Vec<RecordId> {
        v.iter().map(|&i| RecordId(i)).collect()
    }

    #[test]
    fn histogram_counts_tuples_and_offsets_delta() {
        // Two columns over 6 main rows; delta rows get codes main_len + rid.
        let av_a = [0u32, 1, 0, 1, 0, 2];
        let av_b = [5u32, 5, 5, 6, 5, 6];
        let cols = [
            ColumnCodes {
                av: &av_a,
                main_len: 3,
            },
            ColumnCodes {
                av: &av_b,
                main_len: 7,
            },
        ];
        let h = build_histogram(
            &cols,
            &rids(&[0, 2, 3, 4]),
            &rids(&[0, 1]),
            Parallelism::Serial,
        );
        assert_eq!(
            h.tuples,
            vec![
                (vec![0, 5], 3), // rows 0, 2, 4
                (vec![1, 6], 1), // row 3
                (vec![3, 7], 1), // delta row 0 -> codes (3+0, 7+0)
                (vec![4, 8], 1), // delta row 1
            ]
        );
        assert_eq!(h.chunks, 2); // one main chunk + one delta chunk
    }

    #[test]
    fn parallel_histogram_matches_serial() {
        let av: Vec<u32> = (0..20_000).map(|i| i % 13).collect();
        let cols = [ColumnCodes {
            av: &av,
            main_len: 13,
        }];
        let all: Vec<RecordId> = (0..20_000).map(RecordId).collect();
        let serial = build_histogram(&cols, &all, &[], Parallelism::Serial);
        for threads in [2usize, 3, 8] {
            let parallel = build_histogram(&cols, &all, &[], Parallelism::Threads(threads));
            assert_eq!(serial, parallel, "threads = {threads}");
        }
        assert_eq!(serial.chunks, 20_000usize.div_ceil(CHUNK_ROWS));
    }

    #[test]
    fn zero_columns_still_counts_rows() {
        let h = build_histogram(&[], &rids(&[0, 1, 2]), &rids(&[0]), Parallelism::Serial);
        assert_eq!(h.tuples, vec![(vec![], 4)]);
    }

    #[test]
    fn remap_produces_dense_indices() {
        let tuples = vec![(vec![10, 100], 2), (vec![7, 100], 1), (vec![10, 90], 4)];
        let r = remap_codes(2, tuples);
        assert_eq!(r.codes, vec![vec![7, 10], vec![90, 100]]);
        assert_eq!(
            r.tuples,
            vec![(vec![1, 1], 2), (vec![0, 1], 1), (vec![1, 0], 4)]
        );
    }
}
