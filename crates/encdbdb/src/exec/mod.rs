//! The analytic query-execution subsystem: vectorized GROUP BY /
//! aggregates / ORDER BY / LIMIT over encrypted dictionaries.
//!
//! Dictionary encoding makes warehouse-style aggregation cheap without
//! extra decryption: grouping and frequency-weighted aggregation run
//! entirely on ValueIDs in untrusted memory, and the enclave is consulted
//! once per query with a batched request that decrypts each distinct
//! touched ValueID exactly once — the same small-TCB split the paper uses
//! for range search. See DESIGN.md §8 for the architecture and the
//! leakage discussion per repetition option.
//!
//! * [`plan`] — compiling the extended SELECT AST into logical plans.
//! * [`join`] — compiling two-table equi-join SELECTs into [`join::JoinPlan`]s
//!   (per-side scans + one `JoinBridge` ECALL + proxy-side post-processing).
//! * [`aggregate`] — the untrusted half: chunked attribute-vector scans
//!   reducing matching rows to a ValueID-tuple histogram.
//! * [`executor`] — the server-side driver wiring filter → histogram →
//!   (enclave | local) aggregation, with boundary accounting.
//! * [`ordering`] — proxy-side ORDER BY / LIMIT for plain row plans.

pub mod aggregate;
pub mod executor;
pub mod join;
pub mod ordering;
pub mod plan;
