//! ORDER BY / LIMIT application for plain row projections.
//!
//! Aggregate plans are sorted where their plaintexts live — inside the
//! enclave (see [`encdict::aggregate::sort_rows`]) or on the server for
//! all-PLAIN queries. Row projections of encrypted columns only exist as
//! ciphertexts on the server, so their ORDER BY runs here, in the trusted
//! proxy, *after* decryption (which also means a LIMIT cannot reduce
//! server-side work for row plans — documented in DESIGN.md §8).
//!
//! Row values compare bytewise, consistent with the range-query semantics
//! of the whole pipeline; ties are broken by the full row so the final
//! order is total and deterministic.

use encdict::aggregate::SortSpec;
use std::cmp::Ordering;

/// Sorts decrypted rows by the given keys (bytewise, full-row tiebreak).
/// A no-op when `sort` is empty, preserving the server's row order for
/// plain selects.
pub fn sort_rows(rows: &mut [Vec<Vec<u8>>], sort: &[SortSpec]) {
    if sort.is_empty() {
        return;
    }
    rows.sort_by(|a, b| {
        for key in sort {
            let ord = a[key.item].cmp(&b[key.item]);
            let ord = if key.desc { ord.reverse() } else { ord };
            if ord != Ordering::Equal {
                return ord;
            }
        }
        a.cmp(b)
    });
}

/// Applies ORDER BY and LIMIT to decrypted rows.
pub fn sort_and_limit(rows: &mut Vec<Vec<Vec<u8>>>, sort: &[SortSpec], limit: Option<usize>) {
    sort_rows(rows, sort);
    if let Some(n) = limit {
        rows.truncate(n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(a: &str, b: &str) -> Vec<Vec<u8>> {
        vec![a.as_bytes().to_vec(), b.as_bytes().to_vec()]
    }

    #[test]
    fn sorts_desc_with_tiebreak_and_limits() {
        let mut rows = vec![row("b", "1"), row("a", "2"), row("b", "0"), row("a", "1")];
        sort_and_limit(
            &mut rows,
            &[SortSpec {
                item: 0,
                desc: true,
            }],
            Some(3),
        );
        assert_eq!(rows, vec![row("b", "0"), row("b", "1"), row("a", "1")]);
    }

    #[test]
    fn empty_sort_preserves_order() {
        let mut rows = vec![row("z", "9"), row("a", "0")];
        sort_and_limit(&mut rows, &[], None);
        assert_eq!(rows, vec![row("z", "9"), row("a", "0")]);
        sort_and_limit(&mut rows, &[], Some(1));
        assert_eq!(rows, vec![row("z", "9")]);
    }
}
