//! The trusted proxy (paper Fig. 5, steps 5 and 14).
//!
//! The proxy sits between the application and the DBaaS server. It parses
//! SQL, converts every filter into a range select so the server cannot
//! distinguish query types, encrypts the range bounds under the column key
//! with fresh random IVs, forwards the query, and decrypts the returned
//! result columns — the whole process is transparent to the application.
//!
//! For range-partitioned tables the proxy is also the *router*: it alone
//! sees plaintext, so it computes which partition each inserted row
//! belongs to and which partitions a filter range can touch (the pruning
//! scope). Both hints deliberately reveal only shard residency — the
//! leakage DESIGN.md §10 analyzes — and nothing about values within a
//! shard.

use crate::error::DbError;
use crate::exec::join::{compile_join, resolve_side, JoinPlan, JoinPost, JoinSide};
use crate::exec::ordering;
use crate::exec::plan::{compile_select, resolve_single_table, AggregatePlan, SelectPlan};
use crate::obs::{Counter, Hist, SpanId};
use crate::schema::{ColumnSpec, DictChoice, TablePartitioning, TableSchema};
use crate::server::{
    CellValue, DbaasServer, JoinSideQuery, QueryOutcome, SelectResponse, ServerFilter, ServerQuery,
};
use crate::sql::{
    parse, ColumnRef, CompareOp, Filter, JoinClause, OrderKey, SelectItem, Statement,
};
use encdbdb_crypto::hkdf::derive_column_key;
use encdbdb_crypto::keys::Key128;
use encdbdb_crypto::Pae;
use encdict::aggregate::{AggFunc, AggPlanSpec, AggSpec, GroupPartials, OutputItem};
use encdict::enclave_ops::{decrypt_column_value, encrypt_value_for_column};
use encdict::{EncryptedRange, RangeBound, RangeQuery};
use rand::Rng;

/// A fully decrypted query result as handed to the application.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryResult {
    /// Result column names.
    pub columns: Vec<String>,
    /// Result rows; plaintext values in column order.
    pub rows: Vec<Vec<Vec<u8>>>,
}

impl QueryResult {
    /// Number of result rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Rows rendered as UTF-8 strings (lossy) — convenient for examples.
    pub fn rows_as_strings(&self) -> Vec<Vec<String>> {
        self.rows
            .iter()
            .map(|row| {
                row.iter()
                    .map(|v| String::from_utf8_lossy(v).into_owned())
                    .collect()
            })
            .collect()
    }
}

/// The trusted proxy. `Clone` shares the master key, so every reader
/// session can hold its own proxy handle.
#[derive(Debug, Clone)]
pub struct Proxy {
    skdb: Key128,
}

impl Proxy {
    /// Creates a proxy holding the master key (deployed out-of-band by the
    /// data owner, Fig. 5 step 2).
    pub fn new(skdb: Key128) -> Self {
        Proxy { skdb }
    }

    fn column_pae(&self, table: &str, column: &str) -> Pae {
        Pae::new(&derive_column_key(&self.skdb, table, column))
    }

    /// Converts an AST filter into a single plaintext range query —
    /// the w.l.o.g. conversion of Fig. 5 step 5.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::UnsupportedFilter`] for multi-column filters,
    /// contradictory conjunctions, or multi-value `IN` lists (which need
    /// the disjunctive [`Proxy::filter_to_ranges`] path).
    pub fn filter_to_range(filter: &Filter) -> Result<(String, RangeQuery), DbError> {
        let column = filter
            .column()
            .ok_or_else(|| {
                DbError::UnsupportedFilter("filters must target a single column".to_string())
            })?
            .to_string();
        let range = Self::range_of(filter)?;
        Ok((column, range))
    }

    /// Decomposes a (possibly multi-column) conjunctive filter into, per
    /// referenced column, a *disjunction* of plaintext ranges: comparisons
    /// and `BETWEEN` contribute one range, `IN (...)` one equality range
    /// per listed value; conjuncts on the same column intersect pairwise,
    /// and different columns produce separate entries whose RecordID
    /// results the server intersects (the step 12 prefiltering).
    ///
    /// References that differ in their qualifier stay separate entries
    /// even when the bare name matches — callers resolve qualifiers.
    ///
    /// # Errors
    ///
    /// Propagates intersection failures.
    pub fn filter_to_ranges(filter: &Filter) -> Result<Vec<(ColumnRef, Vec<RangeQuery>)>, DbError> {
        let mut leaves = Vec::new();
        collect_leaves(filter, &mut leaves);
        let mut out: Vec<(ColumnRef, Vec<RangeQuery>)> = Vec::new();
        for leaf in leaves {
            let (col, disjuncts) = leaf_ranges(leaf)?;
            merge_column_ranges(&mut out, col, disjuncts)?;
        }
        Ok(out)
    }

    fn range_of(filter: &Filter) -> Result<RangeQuery, DbError> {
        Ok(match filter {
            Filter::Compare { op, value, .. } => match op {
                CompareOp::Eq => RangeQuery::equals(value.clone()),
                CompareOp::Lt => RangeQuery::less_than(value.clone()),
                CompareOp::Le => RangeQuery::at_most(value.clone()),
                CompareOp::Gt => RangeQuery::greater_than(value.clone()),
                CompareOp::Ge => RangeQuery::at_least(value.clone()),
            },
            Filter::Between { low, high, .. } => RangeQuery::between(low.clone(), high.clone()),
            Filter::In { values, .. } => match values.as_slice() {
                [one] => RangeQuery::equals(one.clone()),
                _ => {
                    return Err(DbError::UnsupportedFilter(
                        "multi-value IN is a disjunction; use filter_to_ranges".to_string(),
                    ))
                }
            },
            Filter::And(a, b) => {
                let ra = Self::range_of(a)?;
                let rb = Self::range_of(b)?;
                intersect(ra, rb)?
            }
        })
    }

    /// Builds the server-side filter for one column's range disjunction,
    /// encrypting every bound for encrypted columns.
    fn server_filter<R: Rng + ?Sized>(
        &self,
        table: &str,
        spec: &ColumnSpec,
        ranges: Vec<RangeQuery>,
        rng: &mut R,
    ) -> ServerFilter {
        match spec.choice {
            DictChoice::Encrypted(_) => {
                let pae = self.column_pae(table, &spec.name);
                ServerFilter::Encrypted {
                    column: spec.name.clone(),
                    ranges: ranges
                        .into_iter()
                        .map(|r| EncryptedRange::encrypt(&pae, rng, &r))
                        .collect(),
                }
            }
            DictChoice::Plain => ServerFilter::Plain {
                column: spec.name.clone(),
                ranges,
            },
        }
    }

    /// Encrypts per-column range disjunctions into server filters and
    /// computes the partition scope the plaintext ranges imply (`None`
    /// when the table is unpartitioned or no filter targets the partition
    /// column — every partition is then in scope).
    fn encrypt_filters<R: Rng + ?Sized>(
        &self,
        schema: &TableSchema,
        table: &str,
        per_column: Vec<(String, Vec<RangeQuery>)>,
        rng: &mut R,
    ) -> Result<(Vec<ServerFilter>, Option<Vec<usize>>), DbError> {
        let mut scope = None;
        let mut out = Vec::with_capacity(per_column.len());
        for (col, ranges) in per_column {
            let (_, spec) = schema
                .column(&col)
                .ok_or_else(|| DbError::ColumnNotFound(col.clone()))?;
            // The pruning hint: computed on the *plaintext* ranges before
            // the bounds are encrypted away. A disjunction's scope is the
            // union of its per-range scopes.
            if let Some(part) = &schema.partitioning {
                if part.column == col {
                    let mut ids = std::collections::BTreeSet::new();
                    for r in &ranges {
                        ids.extend(part.overlapping(r));
                    }
                    scope = Some(ids.into_iter().collect());
                }
            }
            out.push(self.server_filter(table, spec, ranges, rng));
        }
        Ok((out, scope))
    }

    /// Builds the server-side filter conjunction for an optional
    /// single-table AST filter (qualifiers must name this table), plus the
    /// partition scope.
    fn build_server_filters<R: Rng + ?Sized>(
        &self,
        schema: &TableSchema,
        table: &str,
        filter: Option<&Filter>,
        rng: &mut R,
    ) -> Result<(Vec<ServerFilter>, Option<Vec<usize>>), DbError> {
        let Some(filter) = filter else {
            return Ok((Vec::new(), None));
        };
        // Qualifiers are resolved *before* conjuncts merge, so `t.a >= x
        // AND a < y` intersects into one filter (one search per shard)
        // rather than two filters on the same column.
        let mut leaves = Vec::new();
        collect_leaves(filter, &mut leaves);
        let mut merged: Vec<(ColumnRef, Vec<RangeQuery>)> = Vec::new();
        for leaf in leaves {
            let (col, disjuncts) = leaf_ranges(leaf)?;
            let bare = resolve_single_table(schema, &col)?;
            merge_column_ranges(&mut merged, ColumnRef::bare(bare), disjuncts)?;
        }
        let per_column = merged.into_iter().map(|(r, ranges)| (r.column, ranges));
        self.encrypt_filters(schema, table, per_column.collect(), rng)
    }

    /// Routes every row of an insert to its partition by the plaintext
    /// value of the partition column.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::ColumnNotFound`] if the partition column is not
    /// in the schema.
    fn route_insert(
        schema: &TableSchema,
        part: &TablePartitioning,
        rows: &[Vec<Vec<u8>>],
    ) -> Result<Vec<usize>, DbError> {
        let (idx, _) = schema
            .column(&part.column)
            .ok_or_else(|| DbError::ColumnNotFound(part.column.clone()))?;
        Ok(rows
            .iter()
            .map(|row| part.partition_of(&row[idx]))
            .collect())
    }

    /// Executes one SQL statement against the server.
    ///
    /// # Errors
    ///
    /// Propagates parse, lookup, and crypto failures.
    pub fn execute<R: Rng + ?Sized>(
        &self,
        server: &DbaasServer,
        sql: &str,
        rng: &mut R,
    ) -> Result<QueryResult, DbError> {
        let obs = server.obs().clone();
        let root = obs.span("query", "query", SpanId::NONE);
        let t0 = std::time::Instant::now();
        obs.add(Counter::QueriesTotal, 1);
        let parse_span = obs.span("parse", "query", root.id());
        let stmt = parse(sql)?;
        parse_span.finish();
        let result = self.dispatch(server, stmt, rng, &obs, root.id());
        obs.record(Hist::QueryNs, t0.elapsed().as_nanos() as u64);
        root.finish();
        result
    }

    /// Executes an already-parsed [`Statement`] against the server —
    /// identical to [`Proxy::execute`] minus the parse step. The net
    /// layer uses this to run a tenant-rewritten AST directly instead of
    /// re-rendering it to SQL (the `Display` round-trip is lossy for
    /// non-UTF-8 values).
    ///
    /// # Errors
    ///
    /// Propagates lookup and crypto failures.
    pub fn execute_statement<R: Rng + ?Sized>(
        &self,
        server: &DbaasServer,
        stmt: Statement,
        rng: &mut R,
    ) -> Result<QueryResult, DbError> {
        let obs = server.obs().clone();
        let root = obs.span("query", "query", SpanId::NONE);
        let t0 = std::time::Instant::now();
        obs.add(Counter::QueriesTotal, 1);
        let result = self.dispatch(server, stmt, rng, &obs, root.id());
        obs.record(Hist::QueryNs, t0.elapsed().as_nanos() as u64);
        root.finish();
        result
    }

    /// The shared statement dispatcher behind [`Proxy::execute`] and
    /// [`Proxy::execute_statement`].
    fn dispatch<R: Rng + ?Sized>(
        &self,
        server: &DbaasServer,
        stmt: Statement,
        rng: &mut R,
        obs: &crate::obs::Obs,
        root: SpanId,
    ) -> Result<QueryResult, DbError> {
        match stmt {
            Statement::CreateTable {
                name,
                columns,
                partition_by,
            } => {
                let specs = columns
                    .into_iter()
                    .map(|c| ColumnSpec {
                        name: c.name,
                        choice: c.choice,
                        max_len: c.max_len,
                        bs_max: c.bs_max.unwrap_or(crate::schema::DEFAULT_BS_MAX),
                    })
                    .collect();
                let mut schema = TableSchema::new(name, specs);
                if let Some(p) = partition_by {
                    schema =
                        schema.with_partitioning(TablePartitioning::new(p.column, p.split_points));
                }
                server.create_table(schema)?;
                Ok(QueryResult {
                    columns: vec![],
                    rows: vec![],
                })
            }
            Statement::Insert { table, rows } => {
                obs.add(Counter::InsertsTotal, 1);
                let plan_span = obs.span("plan", "query", root);
                let schema = server.schema(&table)?;
                for row in &rows {
                    if row.len() != schema.columns.len() {
                        return Err(DbError::ArityMismatch {
                            expected: schema.columns.len(),
                            got: row.len(),
                        });
                    }
                }
                // Partition routing happens here, on plaintext, before the
                // values are encrypted away.
                let partition_ids = match &schema.partitioning {
                    Some(part) => Some(Self::route_insert(&schema, part, &rows)?),
                    None => None,
                };
                let mut cells = Vec::with_capacity(rows.len());
                for row in rows {
                    let mut out = Vec::with_capacity(row.len());
                    for (spec, value) in schema.columns.iter().zip(row) {
                        if value.len() > spec.max_len {
                            return Err(DbError::ValueTooLong {
                                got: value.len(),
                                max: spec.max_len,
                            });
                        }
                        out.push(match spec.choice {
                            DictChoice::Encrypted(_) => {
                                let pae = self.column_pae(&table, &spec.name);
                                CellValue::Encrypted(
                                    encrypt_value_for_column(&pae, rng, &value).into_bytes(),
                                )
                            }
                            DictChoice::Plain => CellValue::Plain(value),
                        });
                    }
                    cells.push(out);
                }
                plan_span.finish();
                let outcome = server.execute_query_traced(
                    ServerQuery::Insert {
                        table,
                        rows: cells,
                        partition_ids,
                    },
                    root,
                )?;
                let QueryOutcome::Affected(n) = outcome else {
                    unreachable!("insert returns an affected count");
                };
                Ok(QueryResult {
                    columns: vec!["inserted".to_string()],
                    rows: vec![vec![n.to_string().into_bytes()]],
                })
            }
            Statement::Select {
                distinct,
                items,
                table,
                join,
                filter,
                group_by,
                order_by,
                limit,
            } => {
                if let Some(join) = join {
                    self.execute_join(
                        server,
                        &table,
                        &join,
                        distinct,
                        &items,
                        filter.as_ref(),
                        &group_by,
                        &order_by,
                        limit,
                        rng,
                        root,
                    )
                } else {
                    let plan_span = obs.span("plan", "query", root);
                    let schema = server.schema(&table)?;
                    let plan =
                        compile_select(&schema, distinct, &items, &group_by, &order_by, limit)?;
                    let (filters, scope) =
                        self.build_server_filters(&schema, &table, filter.as_ref(), rng)?;
                    plan_span.finish();
                    match plan {
                        SelectPlan::Rows {
                            columns,
                            sort,
                            limit,
                        } => {
                            obs.add(Counter::SelectsTotal, 1);
                            let outcome = server.execute_query_traced(
                                ServerQuery::Select {
                                    table: table.clone(),
                                    columns,
                                    filters,
                                    scope,
                                },
                                root,
                            )?;
                            let QueryOutcome::Rows(response) = outcome else {
                                unreachable!("select returns rows");
                            };
                            let mut result = self.decrypt_rows(&schema, &table, response)?;
                            // ORDER BY / LIMIT over row plans run here, after
                            // decryption — encrypted cells are not sortable on
                            // the server.
                            ordering::sort_and_limit(&mut result.rows, &sort, limit);
                            Ok(result)
                        }
                        SelectPlan::Aggregate(plan) => {
                            obs.add(Counter::AggregatesTotal, 1);
                            let outcome = server.execute_query_traced(
                                ServerQuery::Aggregate {
                                    table: table.clone(),
                                    plan: plan.clone(),
                                    filters,
                                    scope,
                                },
                                root,
                            )?;
                            let QueryOutcome::Rows(response) = outcome else {
                                unreachable!("aggregate returns rows");
                            };
                            self.decrypt_aggregate_rows(&schema, &table, &plan, response)
                        }
                    }
                }
            }
            Statement::Delete { table, filter } => {
                obs.add(Counter::DeletesTotal, 1);
                let plan_span = obs.span("plan", "query", root);
                let schema = server.schema(&table)?;
                let (filters, scope) =
                    self.build_server_filters(&schema, &table, filter.as_ref(), rng)?;
                plan_span.finish();
                let outcome = server.execute_query_traced(
                    ServerQuery::Delete {
                        table,
                        filters,
                        scope,
                    },
                    root,
                )?;
                let QueryOutcome::Affected(n) = outcome else {
                    unreachable!("delete returns an affected count");
                };
                Ok(QueryResult {
                    columns: vec!["deleted".to_string()],
                    rows: vec![vec![n.to_string().into_bytes()]],
                })
            }
        }
    }

    /// Executes a two-table equi-join: compile, split the WHERE
    /// conjunction per side, encrypt each side's bounds, hand the server
    /// one [`ServerQuery::Join`], then decrypt the joined rows and run the
    /// plan's post-processing (projection or GROUP BY / aggregation /
    /// DISTINCT, ORDER BY, LIMIT) here in the trusted proxy — joined
    /// cells of encrypted columns only exist as ciphertexts until step 14.
    #[allow(clippy::too_many_arguments)]
    fn execute_join<R: Rng + ?Sized>(
        &self,
        server: &DbaasServer,
        table: &str,
        join: &JoinClause,
        distinct: bool,
        items: &[SelectItem],
        filter: Option<&Filter>,
        group_by: &[ColumnRef],
        order_by: &[OrderKey],
        limit: Option<usize>,
        rng: &mut R,
        parent: SpanId,
    ) -> Result<QueryResult, DbError> {
        let obs = server.obs().clone();
        obs.add(Counter::JoinsTotal, 1);
        let plan_span = obs.span("plan", "query", parent);
        let lschema = server.schema(table)?;
        let rschema = server.schema(&join.table)?;
        let plan = compile_join(
            &lschema, &rschema, join, distinct, items, group_by, order_by, limit,
        )?;

        // Split the WHERE conjunction by side: each leaf targets a single
        // column, which resolves to exactly one of the two tables.
        let mut per_side: [Vec<(String, Vec<RangeQuery>)>; 2] = [Vec::new(), Vec::new()];
        if let Some(filter) = filter {
            let mut leaves = Vec::new();
            collect_leaves(filter, &mut leaves);
            let mut refs: [Vec<(ColumnRef, Vec<RangeQuery>)>; 2] = [Vec::new(), Vec::new()];
            for leaf in leaves {
                let (col, disjuncts) = leaf_ranges(leaf)?;
                let (side, bare) = resolve_side(&lschema, &rschema, &col)?;
                let slot = match side {
                    JoinSide::Left => &mut refs[0],
                    JoinSide::Right => &mut refs[1],
                };
                merge_column_ranges(&mut *slot, ColumnRef::bare(bare), disjuncts)?;
            }
            for (i, side_refs) in refs.into_iter().enumerate() {
                per_side[i] = side_refs
                    .into_iter()
                    .map(|(r, ranges)| (r.column, ranges))
                    .collect();
            }
        }
        let [lranges, rranges] = per_side;
        let (lfilters, lscope) = self.encrypt_filters(&lschema, table, lranges, rng)?;
        let (rfilters, rscope) = self.encrypt_filters(&rschema, &join.table, rranges, rng)?;
        plan_span.finish();

        let outcome = server.execute_query_traced(
            ServerQuery::Join {
                left: JoinSideQuery {
                    table: plan.left.table.clone(),
                    key: plan.left.key.clone(),
                    columns: plan.left.columns.clone(),
                    filters: lfilters,
                    scope: lscope,
                },
                right: JoinSideQuery {
                    table: plan.right.table.clone(),
                    key: plan.right.key.clone(),
                    columns: plan.right.columns.clone(),
                    filters: rfilters,
                    scope: rscope,
                },
            },
            parent,
        )?;
        let QueryOutcome::Rows(response) = outcome else {
            unreachable!("join returns rows");
        };
        let rows = self.decrypt_join_rows(&plan, &lschema, &rschema, response)?;
        self.post_process_join(&plan, rows)
    }

    /// Step 14 for joins: each combined-row cell decrypts under the key of
    /// the side and column it was rendered from.
    fn decrypt_join_rows(
        &self,
        plan: &JoinPlan,
        lschema: &TableSchema,
        rschema: &TableSchema,
        response: SelectResponse,
    ) -> Result<Vec<Vec<Vec<u8>>>, DbError> {
        let mut paes = Vec::new();
        for (side, name) in plan.combined_columns() {
            let (schema, table) = match side {
                JoinSide::Left => (lschema, &plan.left.table),
                JoinSide::Right => (rschema, &plan.right.table),
            };
            let (_, spec) = schema
                .column(name)
                .ok_or_else(|| DbError::ColumnNotFound(name.to_string()))?;
            paes.push(match spec.choice {
                DictChoice::Encrypted(_) => Some(self.column_pae(table, name)),
                DictChoice::Plain => None,
            });
        }
        decrypt_cells(response.rows, &paes)
    }

    /// Runs a join plan's post-processing over the decrypted combined
    /// rows: plain projection with proxy-side ORDER BY / LIMIT, or the
    /// grouped-aggregation path through the same trusted-core
    /// partial-aggregate machinery ([`GroupPartials`]) the enclave and the
    /// all-PLAIN executor use.
    fn post_process_join(
        &self,
        plan: &JoinPlan,
        rows: Vec<Vec<Vec<u8>>>,
    ) -> Result<QueryResult, DbError> {
        let rows = match &plan.post {
            JoinPost::Rows { projection } => {
                let mut projected: Vec<Vec<Vec<u8>>> = rows
                    .into_iter()
                    .map(|row| projection.iter().map(|&i| row[i].clone()).collect())
                    .collect();
                ordering::sort_and_limit(&mut projected, &plan.sort, plan.limit);
                projected
            }
            JoinPost::Aggregate {
                group_cols,
                aggregates,
                items,
            } => {
                // Reduce the joined rows to the same (value tables,
                // tuple histogram) shape the server-side scan produces,
                // then group/aggregate/sort/limit in the shared trusted
                // core.
                let ncols = plan.left.columns.len() + plan.right.columns.len();
                let mut tables: Vec<Vec<Vec<u8>>> = vec![Vec::new(); ncols];
                let mut index: Vec<std::collections::HashMap<Vec<u8>, u32>> =
                    vec![std::collections::HashMap::new(); ncols];
                let mut hist: std::collections::HashMap<Vec<u32>, u64> =
                    std::collections::HashMap::new();
                for row in rows {
                    let tuple: Vec<u32> = row
                        .into_iter()
                        .enumerate()
                        .map(|(c, value)| match index[c].get(&value) {
                            Some(&i) => i,
                            None => {
                                let i = tables[c].len() as u32;
                                index[c].insert(value.clone(), i);
                                tables[c].push(value);
                                i
                            }
                        })
                        .collect();
                    *hist.entry(tuple).or_insert(0) += 1;
                }
                let mut tuples: Vec<(Vec<u32>, u64)> = hist.into_iter().collect();
                tuples.sort_unstable();
                let spec = AggPlanSpec {
                    group_cols: group_cols.clone(),
                    aggregates: aggregates
                        .iter()
                        .map(|a| AggSpec {
                            func: a.func,
                            col: a.col,
                        })
                        .collect(),
                    items: items.clone(),
                    sort: plan.sort.clone(),
                    limit: plan.limit,
                };
                let mut partials = GroupPartials::new();
                partials.accumulate(&tables, &tuples, &spec)?;
                partials.finalize(&spec)?
            }
        };
        Ok(QueryResult {
            columns: plan.item_names.clone(),
            rows,
        })
    }

    /// Step 14 for row plans: decrypt every entry of each encrypted result
    /// column with the column-specific key.
    fn decrypt_rows(
        &self,
        schema: &TableSchema,
        table: &str,
        response: SelectResponse,
    ) -> Result<QueryResult, DbError> {
        let mut paes: Vec<Option<Pae>> = Vec::with_capacity(response.columns.len());
        for name in &response.columns {
            let (_, spec) = schema
                .column(name)
                .ok_or_else(|| DbError::ColumnNotFound(name.clone()))?;
            paes.push(match spec.choice {
                DictChoice::Encrypted(_) => Some(self.column_pae(table, name)),
                DictChoice::Plain => None,
            });
        }
        let rows = decrypt_cells(response.rows, &paes)?;
        Ok(QueryResult {
            columns: response.columns,
            rows,
        })
    }

    /// Step 14 for aggregate plans: each output item decrypts under the
    /// key of the column it derives from (group key → that column;
    /// SUM/MIN/MAX/AVG → the aggregated column; COUNT → plaintext).
    fn decrypt_aggregate_rows(
        &self,
        schema: &TableSchema,
        table: &str,
        plan: &AggregatePlan,
        response: SelectResponse,
    ) -> Result<QueryResult, DbError> {
        let mut paes: Vec<Option<Pae>> = Vec::with_capacity(plan.items.len());
        for item in &plan.items {
            let source = match item {
                OutputItem::Group(i) => Some(plan.group_cols[*i].as_str()),
                OutputItem::Agg(j) => {
                    let agg = &plan.aggregates[*j];
                    if agg.func == AggFunc::Count {
                        None
                    } else {
                        agg.column.as_deref()
                    }
                }
            };
            paes.push(match source {
                Some(name) => {
                    let (_, spec) = schema
                        .column(name)
                        .ok_or_else(|| DbError::ColumnNotFound(name.to_string()))?;
                    match spec.choice {
                        DictChoice::Encrypted(_) => Some(self.column_pae(table, name)),
                        DictChoice::Plain => None,
                    }
                }
                None => None,
            });
        }
        let rows = decrypt_cells(response.rows, &paes)?;
        Ok(QueryResult {
            columns: response.columns,
            rows,
        })
    }
}

/// Decrypts a cell matrix against per-column optional keys.
fn decrypt_cells(
    rows: Vec<Vec<CellValue>>,
    paes: &[Option<Pae>],
) -> Result<Vec<Vec<Vec<u8>>>, DbError> {
    let mut out_rows = Vec::with_capacity(rows.len());
    for row in rows {
        let mut out = Vec::with_capacity(row.len());
        for (cell, pae) in row.into_iter().zip(paes) {
            out.push(match (cell, pae) {
                (CellValue::Encrypted(ct), Some(pae)) => decrypt_column_value(pae, &ct)?,
                (CellValue::Plain(v), None) => v,
                _ => {
                    return Err(DbError::UnsupportedFilter(
                        "cell form does not match column protection".to_string(),
                    ))
                }
            });
        }
        out_rows.push(out);
    }
    Ok(out_rows)
}

/// Flattens an `AND` tree into its single-column leaves.
fn collect_leaves<'a>(f: &'a Filter, out: &mut Vec<&'a Filter>) {
    match f {
        Filter::And(a, b) => {
            collect_leaves(a, out);
            collect_leaves(b, out);
        }
        leaf => out.push(leaf),
    }
}

/// One leaf filter as a (column, range-disjunction) pair.
fn leaf_ranges(leaf: &Filter) -> Result<(ColumnRef, Vec<RangeQuery>), DbError> {
    Ok(match leaf {
        Filter::In { column, values } => {
            // One equality range per distinct listed value; each costs one
            // dictionary search, so duplicates are dropped up front.
            let distinct: std::collections::BTreeSet<&Vec<u8>> = values.iter().collect();
            (
                column.clone(),
                distinct
                    .into_iter()
                    .map(|v| RangeQuery::equals(v.clone()))
                    .collect(),
            )
        }
        other => {
            let range = Proxy::range_of(other)?;
            let column = other
                .column_ref()
                .expect("leaves target a single column")
                .clone();
            (column, vec![range])
        }
    })
}

/// Folds one leaf's disjunction into the per-column accumulator: a new
/// column appends; a repeated column intersects pairwise (`x IN (..) AND
/// x BETWEEN ..` stays a disjunction of tightened ranges). Provably empty
/// intersections and duplicates are dropped — every surviving range costs
/// a dictionary search, and an `IN ∧ IN` cross product would otherwise
/// degrade to n·m searches. A column whose ranges all vanish keeps an
/// empty disjunction: the filter provably matches nothing, and the server
/// answers it without a single search.
fn merge_column_ranges(
    acc: &mut Vec<(ColumnRef, Vec<RangeQuery>)>,
    col: ColumnRef,
    disjuncts: Vec<RangeQuery>,
) -> Result<(), DbError> {
    match acc.iter_mut().find(|(c, _)| c == &col) {
        None => acc.push((col, disjuncts)),
        Some((_, existing)) => {
            let mut combined: Vec<RangeQuery> = Vec::new();
            for a in existing.iter() {
                for b in &disjuncts {
                    let r = intersect(a.clone(), b.clone())?;
                    if !r.is_provably_empty() && !combined.contains(&r) {
                        combined.push(r);
                    }
                }
            }
            *existing = combined;
        }
    }
    Ok(())
}

/// Intersects two ranges from an `AND` conjunction on one column.
fn intersect(a: RangeQuery, b: RangeQuery) -> Result<RangeQuery, DbError> {
    fn tighter_start(a: RangeBound, b: RangeBound) -> RangeBound {
        match (a, b) {
            (RangeBound::Unbounded, other) | (other, RangeBound::Unbounded) => other,
            (x, y) => {
                let (vx, sx) = match &x {
                    RangeBound::Inclusive(v) => (v.clone(), false),
                    RangeBound::Exclusive(v) => (v.clone(), true),
                    RangeBound::Unbounded => unreachable!(),
                };
                let (vy, sy) = match &y {
                    RangeBound::Inclusive(v) => (v.clone(), false),
                    RangeBound::Exclusive(v) => (v.clone(), true),
                    RangeBound::Unbounded => unreachable!(),
                };
                match vx.cmp(&vy) {
                    std::cmp::Ordering::Greater => x,
                    std::cmp::Ordering::Less => y,
                    std::cmp::Ordering::Equal => {
                        if sx || sy {
                            RangeBound::Exclusive(vx)
                        } else {
                            x
                        }
                    }
                }
            }
        }
    }
    fn tighter_end(a: RangeBound, b: RangeBound) -> RangeBound {
        match (a, b) {
            (RangeBound::Unbounded, other) | (other, RangeBound::Unbounded) => other,
            (x, y) => {
                let (vx, sx) = match &x {
                    RangeBound::Inclusive(v) => (v.clone(), false),
                    RangeBound::Exclusive(v) => (v.clone(), true),
                    RangeBound::Unbounded => unreachable!(),
                };
                let (vy, sy) = match &y {
                    RangeBound::Inclusive(v) => (v.clone(), false),
                    RangeBound::Exclusive(v) => (v.clone(), true),
                    RangeBound::Unbounded => unreachable!(),
                };
                match vx.cmp(&vy) {
                    std::cmp::Ordering::Less => x,
                    std::cmp::Ordering::Greater => y,
                    std::cmp::Ordering::Equal => {
                        if sx || sy {
                            RangeBound::Exclusive(vx)
                        } else {
                            x
                        }
                    }
                }
            }
        }
    }
    Ok(RangeQuery {
        start: tighter_start(a.start, b.start),
        end: tighter_end(a.end, b.end),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sql::Filter;

    fn cmp(op: CompareOp, v: &str) -> Filter {
        Filter::Compare {
            column: "c".into(),
            op,
            value: v.as_bytes().to_vec(),
        }
    }

    #[test]
    fn filter_conversion_covers_all_shapes() {
        let (col, r) = Proxy::filter_to_range(&cmp(CompareOp::Eq, "x")).unwrap();
        assert_eq!(col, "c");
        assert_eq!(r, RangeQuery::equals("x"));
        let (_, r) = Proxy::filter_to_range(&cmp(CompareOp::Lt, "x")).unwrap();
        assert_eq!(r, RangeQuery::less_than("x"));
        let (_, r) = Proxy::filter_to_range(&cmp(CompareOp::Ge, "x")).unwrap();
        assert_eq!(r, RangeQuery::at_least("x"));
        let (_, r) = Proxy::filter_to_range(&Filter::Between {
            column: "c".into(),
            low: b"a".to_vec(),
            high: b"f".to_vec(),
        })
        .unwrap();
        assert_eq!(r, RangeQuery::between("a", "f"));
    }

    #[test]
    fn and_conjunction_intersects() {
        let f = Filter::And(
            Box::new(cmp(CompareOp::Ge, "b")),
            Box::new(cmp(CompareOp::Lt, "m")),
        );
        let (_, r) = Proxy::filter_to_range(&f).unwrap();
        assert_eq!(
            r,
            RangeQuery {
                start: RangeBound::Inclusive(b"b".to_vec()),
                end: RangeBound::Exclusive(b"m".to_vec()),
            }
        );
    }

    #[test]
    fn and_tighter_bound_wins() {
        let f = Filter::And(
            Box::new(cmp(CompareOp::Ge, "b")),
            Box::new(cmp(CompareOp::Gt, "c")),
        );
        let (_, r) = Proxy::filter_to_range(&f).unwrap();
        assert_eq!(r.start, RangeBound::Exclusive(b"c".to_vec()));
    }

    #[test]
    fn multi_column_and_rejected() {
        let f = Filter::And(
            Box::new(cmp(CompareOp::Ge, "b")),
            Box::new(Filter::Compare {
                column: "other".into(),
                op: CompareOp::Lt,
                value: b"m".to_vec(),
            }),
        );
        assert!(Proxy::filter_to_range(&f).is_err());
    }
}
