//! Error types for the EncDBDB DBMS layer.

use std::error::Error;
use std::fmt;

/// Errors produced by the DBMS layer.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DbError {
    /// SQL lexing/parsing failed.
    Parse(String),
    /// A referenced table does not exist.
    TableNotFound(String),
    /// A table with this name already exists.
    TableExists(String),
    /// A referenced column does not exist in the table.
    ColumnNotFound(String),
    /// An INSERT row has the wrong number of values.
    ArityMismatch {
        /// Columns in the table.
        expected: usize,
        /// Values supplied.
        got: usize,
    },
    /// A filter shape the pipeline cannot evaluate (e.g. a cell/filter
    /// form mismatching the column protection). Conjunctions across
    /// columns *are* supported (each conjunct must be single-column).
    UnsupportedFilter(String),
    /// The query is valid SQL but not a well-formed plan against the
    /// schema (e.g. a bare select item missing from GROUP BY, or an ORDER
    /// BY target outside the output).
    Plan(String),
    /// A value exceeded the column's fixed maximal length.
    ValueTooLong {
        /// Length of the offending value.
        got: usize,
        /// Column maximum.
        max: usize,
    },
    /// An encrypted-dictionary operation failed.
    Dict(encdict::EncdictError),
    /// A storage-substrate operation failed.
    Storage(colstore::ColstoreError),
    /// An enclave operation failed (attestation, provisioning).
    Enclave(enclave_sim::EnclaveError),
    /// A write or merge kept racing concurrent compaction publishes and
    /// exhausted its retries.
    MergeConflict(String),
    /// A range-partitioning violation: malformed split points, a
    /// partition index out of range, or an insert that cannot be routed.
    Partition(String),
    /// The concatenated main + delta code space of a column exceeds
    /// `u32`: a delta row's code `main_len + rid` would wrap and alias
    /// two distinct values into one histogram bucket.
    CodeSpaceOverflow {
        /// The main dictionary length (the delta code offset).
        main_len: usize,
        /// The offending delta RecordID.
        delta_rid: u32,
    },
    /// A durable-storage operation failed: a WAL append or snapshot
    /// persist hit an I/O error (or an injected crash point), or recovery
    /// found the on-disk state unusable.
    Durability(String),
    /// A sealed blob failed validation at unseal time: wrong enclave
    /// identity/platform, or the ciphertext was tampered with.
    Unseal {
        /// What was being unsealed (file or record description).
        context: String,
        /// The underlying enclave error.
        source: enclave_sim::EnclaveError,
    },
    /// A networked-deployment failure (DESIGN.md §16): socket I/O, a
    /// malformed or unexpected frame, an authentication rejection, or a
    /// server-side error relayed over the wire.
    Net(String),
    /// The server shed this request under admission control instead of
    /// queueing it unboundedly; retry after the indicated backoff.
    ServerBusy {
        /// Suggested client backoff before retrying.
        retry_after_ms: u64,
    },
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::Parse(msg) => write!(f, "sql parse error: {msg}"),
            DbError::TableNotFound(t) => write!(f, "table not found: {t}"),
            DbError::TableExists(t) => write!(f, "table already exists: {t}"),
            DbError::ColumnNotFound(c) => write!(f, "column not found: {c}"),
            DbError::ArityMismatch { expected, got } => {
                write!(
                    f,
                    "insert arity mismatch: table has {expected} columns, got {got} values"
                )
            }
            DbError::UnsupportedFilter(msg) => write!(f, "unsupported filter: {msg}"),
            DbError::Plan(msg) => write!(f, "plan error: {msg}"),
            DbError::ValueTooLong { got, max } => {
                write!(f, "value of {got} bytes exceeds column maximum of {max}")
            }
            DbError::Dict(e) => write!(f, "dictionary failure: {e}"),
            DbError::Storage(e) => write!(f, "storage failure: {e}"),
            DbError::Enclave(e) => write!(f, "enclave failure: {e}"),
            DbError::MergeConflict(msg) => write!(f, "merge conflict: {msg}"),
            DbError::Partition(msg) => write!(f, "partitioning error: {msg}"),
            DbError::CodeSpaceOverflow {
                main_len,
                delta_rid,
            } => {
                write!(
                    f,
                    "code space overflow: main dictionary length {main_len} + delta row \
                     {delta_rid} exceeds u32"
                )
            }
            DbError::Durability(msg) => write!(f, "durability failure: {msg}"),
            DbError::Unseal { context, source } => {
                write!(f, "unseal validation failed for {context}: {source}")
            }
            DbError::Net(msg) => write!(f, "network failure: {msg}"),
            DbError::ServerBusy { retry_after_ms } => {
                write!(f, "server busy: retry after {retry_after_ms} ms")
            }
        }
    }
}

impl Error for DbError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DbError::Dict(e) => Some(e),
            DbError::Storage(e) => Some(e),
            DbError::Enclave(e) => Some(e),
            DbError::Unseal { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<encdict::EncdictError> for DbError {
    fn from(e: encdict::EncdictError) -> Self {
        DbError::Dict(e)
    }
}

impl From<colstore::ColstoreError> for DbError {
    fn from(e: colstore::ColstoreError) -> Self {
        DbError::Storage(e)
    }
}

impl From<enclave_sim::EnclaveError> for DbError {
    fn from(e: enclave_sim::EnclaveError) -> Self {
        DbError::Enclave(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_sources() {
        let e = DbError::Parse("unexpected token".into());
        assert!(e.to_string().contains("unexpected token"));
        assert!(e.source().is_none());
        let e = DbError::from(encdict::EncdictError::KeyNotProvisioned);
        assert!(e.source().is_some());
    }
}
