//! SQL tokenizer.

use crate::error::DbError;

/// A SQL token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// Identifier or keyword (case preserved; keyword matching is
    /// case-insensitive in the parser).
    Ident(String),
    /// A single-quoted string literal (quotes stripped, `''` unescaped).
    Str(Vec<u8>),
    /// An unsigned integer literal.
    Int(u64),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `.` (table-qualified column names).
    Dot,
    /// `;`
    Semicolon,
    /// `*`
    Star,
    /// `=`
    Eq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// Tokenizes a SQL string.
///
/// # Errors
///
/// Returns [`DbError::Parse`] on unterminated strings or unexpected
/// characters.
pub fn tokenize(input: &str) -> Result<Vec<Token>, DbError> {
    let mut tokens = Vec::new();
    let bytes = input.as_bytes();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '(' => {
                tokens.push(Token::LParen);
                i += 1;
            }
            ')' => {
                tokens.push(Token::RParen);
                i += 1;
            }
            ',' => {
                tokens.push(Token::Comma);
                i += 1;
            }
            '.' => {
                tokens.push(Token::Dot);
                i += 1;
            }
            ';' => {
                tokens.push(Token::Semicolon);
                i += 1;
            }
            '*' => {
                tokens.push(Token::Star);
                i += 1;
            }
            '=' => {
                tokens.push(Token::Eq);
                i += 1;
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::Le);
                    i += 2;
                } else {
                    tokens.push(Token::Lt);
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::Ge);
                    i += 2;
                } else {
                    tokens.push(Token::Gt);
                    i += 1;
                }
            }
            '\'' => {
                let mut value = Vec::new();
                i += 1;
                loop {
                    match bytes.get(i) {
                        None => return Err(DbError::Parse("unterminated string literal".into())),
                        Some(b'\'') => {
                            if bytes.get(i + 1) == Some(&b'\'') {
                                value.push(b'\'');
                                i += 2;
                            } else {
                                i += 1;
                                break;
                            }
                        }
                        Some(&b) => {
                            value.push(b);
                            i += 1;
                        }
                    }
                }
                tokens.push(Token::Str(value));
            }
            '0'..='9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let n: u64 = input[start..i]
                    .parse()
                    .map_err(|_| DbError::Parse("integer literal too large".into()))?;
                tokens.push(Token::Int(n));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                tokens.push(Token::Ident(input[start..i].to_string()));
            }
            other => {
                return Err(DbError::Parse(format!("unexpected character: {other:?}")));
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_create_table() {
        let toks = tokenize("CREATE TABLE t1 (c1 ED7(12), c2 ED5(10, 20))").unwrap();
        assert_eq!(toks[0], Token::Ident("CREATE".into()));
        assert!(toks.contains(&Token::Int(12)));
        assert!(toks.contains(&Token::Int(20)));
    }

    #[test]
    fn tokenizes_operators() {
        let toks = tokenize("a >= 'x' AND a < 'y'").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Ident("a".into()),
                Token::Ge,
                Token::Str(b"x".to_vec()),
                Token::Ident("AND".into()),
                Token::Ident("a".into()),
                Token::Lt,
                Token::Str(b"y".to_vec()),
            ]
        );
    }

    #[test]
    fn string_escapes() {
        let toks = tokenize("'it''s'").unwrap();
        assert_eq!(toks, vec![Token::Str(b"it's".to_vec())]);
    }

    #[test]
    fn tokenizes_qualified_names() {
        let toks = tokenize("a.x = b.y").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Ident("a".into()),
                Token::Dot,
                Token::Ident("x".into()),
                Token::Eq,
                Token::Ident("b".into()),
                Token::Dot,
                Token::Ident("y".into()),
            ]
        );
    }

    #[test]
    fn unterminated_string_fails() {
        assert!(tokenize("'oops").is_err());
    }

    #[test]
    fn unexpected_character_fails() {
        assert!(tokenize("a ! b").is_err());
    }
}
