//! Recursive-descent SQL parser.

use super::ast::{
    ColumnDef, ColumnRef, CompareOp, Filter, JoinClause, OrderKey, OrderTarget, PartitionByDef,
    SelectItem, Statement,
};
use super::lexer::{tokenize, Token};
use crate::error::DbError;
use crate::schema::DictChoice;
use encdict::aggregate::AggFunc;
use encdict::EdKind;

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, msg: impl Into<String>) -> DbError {
        DbError::Parse(format!("{} (at token {})", msg.into(), self.pos))
    }

    fn expect(&mut self, token: &Token) -> Result<(), DbError> {
        match self.next() {
            Some(t) if &t == token => Ok(()),
            other => Err(self.err(format!("expected {token:?}, found {other:?}"))),
        }
    }

    /// Consumes a keyword (case-insensitive identifier).
    fn expect_keyword(&mut self, kw: &str) -> Result<(), DbError> {
        match self.next() {
            Some(Token::Ident(s)) if s.eq_ignore_ascii_case(kw) => Ok(()),
            other => Err(self.err(format!("expected keyword {kw}, found {other:?}"))),
        }
    }

    fn peek_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token::Ident(s)) if s.eq_ignore_ascii_case(kw))
    }

    fn ident(&mut self) -> Result<String, DbError> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s),
            other => Err(self.err(format!("expected identifier, found {other:?}"))),
        }
    }

    fn string(&mut self) -> Result<Vec<u8>, DbError> {
        match self.next() {
            Some(Token::Str(s)) => Ok(s),
            other => Err(self.err(format!("expected string literal, found {other:?}"))),
        }
    }

    fn int(&mut self) -> Result<u64, DbError> {
        match self.next() {
            Some(Token::Int(n)) => Ok(n),
            other => Err(self.err(format!("expected integer, found {other:?}"))),
        }
    }

    /// A possibly qualified column reference: `c` or `t.c`.
    fn column_ref(&mut self) -> Result<ColumnRef, DbError> {
        let first = self.ident()?;
        if self.peek() == Some(&Token::Dot) {
            self.next();
            let column = self.ident()?;
            Ok(ColumnRef::qualified(first, column))
        } else {
            Ok(ColumnRef::bare(first))
        }
    }

    fn statement(&mut self) -> Result<Statement, DbError> {
        let head = match self.peek() {
            Some(Token::Ident(s)) => s.to_ascii_uppercase(),
            other => return Err(self.err(format!("expected statement, found {other:?}"))),
        };
        let stmt = match head.as_str() {
            "CREATE" => self.create_table()?,
            "INSERT" => self.insert()?,
            "SELECT" => self.select()?,
            "DELETE" => self.delete()?,
            other => return Err(self.err(format!("unsupported statement: {other}"))),
        };
        // Optional trailing semicolon.
        if self.peek() == Some(&Token::Semicolon) {
            self.next();
        }
        if let Some(t) = self.peek() {
            return Err(self.err(format!("trailing input: {t:?}")));
        }
        Ok(stmt)
    }

    fn create_table(&mut self) -> Result<Statement, DbError> {
        self.expect_keyword("CREATE")?;
        self.expect_keyword("TABLE")?;
        let name = self.ident()?;
        self.expect(&Token::LParen)?;
        let mut columns = Vec::new();
        loop {
            let col_name = self.ident()?;
            let type_name = self.ident()?;
            let choice = if type_name.eq_ignore_ascii_case("plain") {
                DictChoice::Plain
            } else {
                let kind = EdKind::parse(&type_name)
                    .ok_or_else(|| self.err(format!("unknown column type: {type_name}")))?;
                DictChoice::Encrypted(kind)
            };
            self.expect(&Token::LParen)?;
            let max_len = self.int()? as usize;
            let bs_max = if self.peek() == Some(&Token::Comma) {
                self.next();
                Some(self.int()? as usize)
            } else {
                None
            };
            self.expect(&Token::RParen)?;
            columns.push(ColumnDef {
                name: col_name,
                choice,
                max_len,
                bs_max,
            });
            match self.next() {
                Some(Token::Comma) => continue,
                Some(Token::RParen) => break,
                other => return Err(self.err(format!("expected , or ), found {other:?}"))),
            }
        }
        let partition_by = if self.peek_keyword("PARTITION") {
            self.next();
            self.expect_keyword("BY")?;
            self.expect_keyword("RANGE")?;
            self.expect(&Token::LParen)?;
            let column = self.ident()?;
            self.expect(&Token::RParen)?;
            self.expect_keyword("SPLIT")?;
            self.expect(&Token::LParen)?;
            let mut split_points = Vec::new();
            loop {
                split_points.push(self.string()?);
                match self.next() {
                    Some(Token::Comma) => continue,
                    Some(Token::RParen) => break,
                    other => return Err(self.err(format!("expected , or ), found {other:?}"))),
                }
            }
            Some(PartitionByDef {
                column,
                split_points,
            })
        } else {
            None
        };
        Ok(Statement::CreateTable {
            name,
            columns,
            partition_by,
        })
    }

    fn insert(&mut self) -> Result<Statement, DbError> {
        self.expect_keyword("INSERT")?;
        self.expect_keyword("INTO")?;
        let table = self.ident()?;
        self.expect_keyword("VALUES")?;
        let mut rows = Vec::new();
        loop {
            self.expect(&Token::LParen)?;
            let mut row = Vec::new();
            loop {
                row.push(self.string()?);
                match self.next() {
                    Some(Token::Comma) => continue,
                    Some(Token::RParen) => break,
                    other => return Err(self.err(format!("expected , or ), found {other:?}"))),
                }
            }
            rows.push(row);
            if self.peek() == Some(&Token::Comma) {
                self.next();
                continue;
            }
            break;
        }
        Ok(Statement::Insert { table, rows })
    }

    /// One SELECT-list item: a column reference or an aggregate call.
    fn select_item(&mut self) -> Result<SelectItem, DbError> {
        let name = self.ident()?;
        // A qualified name is always a column reference (`t.c`).
        if self.peek() == Some(&Token::Dot) {
            self.next();
            let column = self.ident()?;
            return Ok(SelectItem::Column(ColumnRef::qualified(name, column)));
        }
        let func = AggFunc::parse(&name);
        if self.peek() != Some(&Token::LParen) {
            return Ok(SelectItem::Column(ColumnRef::bare(name)));
        }
        let Some(func) = func else {
            return Err(self.err(format!("unknown aggregate function: {name}")));
        };
        self.expect(&Token::LParen)?;
        let column = if func == AggFunc::Count {
            // The paper's count aggregation is `COUNT(*)` only.
            self.expect(&Token::Star)?;
            None
        } else {
            Some(self.column_ref()?)
        };
        self.expect(&Token::RParen)?;
        Ok(SelectItem::Aggregate { func, column })
    }

    fn select(&mut self) -> Result<Statement, DbError> {
        self.expect_keyword("SELECT")?;
        let distinct = if self.peek_keyword("DISTINCT") {
            self.next();
            true
        } else {
            false
        };
        let mut items = Vec::new();
        if self.peek() == Some(&Token::Star) {
            self.next();
        } else {
            loop {
                items.push(self.select_item()?);
                if self.peek() == Some(&Token::Comma) {
                    self.next();
                    continue;
                }
                break;
            }
        }
        self.expect_keyword("FROM")?;
        let table = self.ident()?;
        let join = if self.peek_keyword("JOIN") {
            self.next();
            let join_table = self.ident()?;
            self.expect_keyword("ON")?;
            let left = self.column_ref()?;
            self.expect(&Token::Eq)?;
            let right = self.column_ref()?;
            Some(Box::new(JoinClause {
                table: join_table,
                left,
                right,
            }))
        } else {
            None
        };
        let filter = if self.peek_keyword("WHERE") {
            self.next();
            Some(self.filter()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.peek_keyword("GROUP") {
            self.next();
            self.expect_keyword("BY")?;
            loop {
                group_by.push(self.column_ref()?);
                if self.peek() == Some(&Token::Comma) {
                    self.next();
                    continue;
                }
                break;
            }
        }
        let mut order_by = Vec::new();
        if self.peek_keyword("ORDER") {
            self.next();
            self.expect_keyword("BY")?;
            loop {
                order_by.push(self.order_key()?);
                if self.peek() == Some(&Token::Comma) {
                    self.next();
                    continue;
                }
                break;
            }
        }
        let limit = if self.peek_keyword("LIMIT") {
            self.next();
            Some(self.int()? as usize)
        } else {
            None
        };
        Ok(Statement::Select {
            distinct,
            items,
            table,
            join,
            filter,
            group_by,
            order_by,
            limit,
        })
    }

    /// One ORDER BY key: a 1-based output position or an output column
    /// name, optionally followed by ASC/DESC.
    fn order_key(&mut self) -> Result<OrderKey, DbError> {
        let target = match self.next() {
            Some(Token::Int(p)) => {
                if p == 0 {
                    return Err(self.err("ORDER BY positions are 1-based"));
                }
                OrderTarget::Position(p as usize)
            }
            Some(Token::Ident(c)) => {
                // A qualified key renders as the `t.c` output-column name.
                if self.peek() == Some(&Token::Dot) {
                    self.next();
                    let col = self.ident()?;
                    OrderTarget::Column(format!("{c}.{col}"))
                } else {
                    OrderTarget::Column(c)
                }
            }
            other => {
                return Err(self.err(format!("expected ORDER BY key, found {other:?}")));
            }
        };
        let desc = if self.peek_keyword("DESC") {
            self.next();
            true
        } else {
            if self.peek_keyword("ASC") {
                self.next();
            }
            false
        };
        Ok(OrderKey { target, desc })
    }

    fn delete(&mut self) -> Result<Statement, DbError> {
        self.expect_keyword("DELETE")?;
        self.expect_keyword("FROM")?;
        let table = self.ident()?;
        let filter = if self.peek_keyword("WHERE") {
            self.next();
            Some(self.filter()?)
        } else {
            None
        };
        Ok(Statement::Delete { table, filter })
    }

    fn filter(&mut self) -> Result<Filter, DbError> {
        let mut acc = self.predicate()?;
        while self.peek_keyword("AND") {
            self.next();
            let next = self.predicate()?;
            acc = Filter::And(Box::new(acc), Box::new(next));
        }
        Ok(acc)
    }

    fn predicate(&mut self) -> Result<Filter, DbError> {
        let column = self.column_ref()?;
        if self.peek_keyword("BETWEEN") {
            self.next();
            let low = self.string()?;
            self.expect_keyword("AND")?;
            let high = self.string()?;
            return Ok(Filter::Between { column, low, high });
        }
        if self.peek_keyword("IN") {
            self.next();
            self.expect(&Token::LParen)?;
            let mut values = Vec::new();
            loop {
                values.push(self.string()?);
                match self.next() {
                    Some(Token::Comma) => continue,
                    Some(Token::RParen) => break,
                    other => return Err(self.err(format!("expected , or ), found {other:?}"))),
                }
            }
            return Ok(Filter::In { column, values });
        }
        let op = match self.next() {
            Some(Token::Eq) => CompareOp::Eq,
            Some(Token::Lt) => CompareOp::Lt,
            Some(Token::Le) => CompareOp::Le,
            Some(Token::Gt) => CompareOp::Gt,
            Some(Token::Ge) => CompareOp::Ge,
            other => return Err(self.err(format!("expected comparison operator, found {other:?}"))),
        };
        let value = self.string()?;
        Ok(Filter::Compare { column, op, value })
    }
}

/// Parses one SQL statement.
///
/// # Errors
///
/// Returns [`DbError::Parse`] with a position-annotated message.
///
/// # Example
///
/// ```
/// use encdbdb::sql::parse;
/// let stmt = parse("SELECT FName FROM t1 WHERE FName < 'Ella'")?;
/// # Ok::<(), encdbdb::DbError>(())
/// ```
pub fn parse(sql: &str) -> Result<Statement, DbError> {
    let tokens = tokenize(sql)?;
    let mut parser = Parser { tokens, pos: 0 };
    parser.statement()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_create_table_with_ed_types() {
        let stmt = parse("CREATE TABLE t1 (c1 ED7(12), c2 ED5(10, 20), c3 PLAIN(8));").unwrap();
        match stmt {
            Statement::CreateTable {
                name,
                columns,
                partition_by,
            } => {
                assert_eq!(name, "t1");
                assert_eq!(columns.len(), 3);
                assert_eq!(columns[0].choice, DictChoice::Encrypted(EdKind::Ed7));
                assert_eq!(columns[0].max_len, 12);
                assert_eq!(columns[1].bs_max, Some(20));
                assert_eq!(columns[2].choice, DictChoice::Plain);
                assert_eq!(partition_by, None);
            }
            other => panic!("wrong statement: {other:?}"),
        }
    }

    #[test]
    fn parses_partition_by_range() {
        let stmt = parse(
            "CREATE TABLE t (v ED1(8), g PLAIN(8)) \
             PARTITION BY RANGE (v) SPLIT ('0030', '0060')",
        )
        .unwrap();
        match &stmt {
            Statement::CreateTable { partition_by, .. } => {
                assert_eq!(
                    partition_by,
                    &Some(PartitionByDef {
                        column: "v".into(),
                        split_points: vec![b"0030".to_vec(), b"0060".to_vec()],
                    })
                );
            }
            other => panic!("wrong statement: {other:?}"),
        }
        // Display round-trips the clause.
        let reparsed = parse(&stmt.to_string()).unwrap();
        assert_eq!(stmt, reparsed);
    }

    #[test]
    fn rejects_malformed_partition_clauses() {
        assert!(parse("CREATE TABLE t (v ED1(8)) PARTITION BY (v) SPLIT ('a')").is_err());
        assert!(parse("CREATE TABLE t (v ED1(8)) PARTITION BY RANGE (v)").is_err());
        assert!(parse("CREATE TABLE t (v ED1(8)) PARTITION BY RANGE (v) SPLIT ()").is_err());
        assert!(parse("CREATE TABLE t (v ED1(8)) PARTITION BY RANGE v SPLIT ('a')").is_err());
    }

    #[test]
    fn parses_insert_multiple_rows() {
        let stmt = parse("INSERT INTO t VALUES ('a', 'b'), ('c', 'd')").unwrap();
        match stmt {
            Statement::Insert { table, rows } => {
                assert_eq!(table, "t");
                assert_eq!(rows.len(), 2);
                assert_eq!(rows[1], vec![b"c".to_vec(), b"d".to_vec()]);
            }
            other => panic!("wrong statement: {other:?}"),
        }
    }

    #[test]
    fn parses_select_variants() {
        let stmt = parse("SELECT * FROM t").unwrap();
        assert!(matches!(
            stmt,
            Statement::Select { ref items, ref filter, .. } if items.is_empty() && filter.is_none()
        ));

        let stmt = parse("SELECT a, b FROM t WHERE a >= 'x' AND a < 'y'").unwrap();
        match stmt {
            Statement::Select { items, filter, .. } => {
                assert_eq!(
                    items,
                    vec![
                        SelectItem::Column("a".into()),
                        SelectItem::Column("b".into())
                    ]
                );
                assert_eq!(filter.unwrap().column(), Some("a"));
            }
            other => panic!("wrong statement: {other:?}"),
        }

        // The paper's example query.
        let stmt = parse("SELECT FName FROM t1 WHERE FName < 'Ella'").unwrap();
        match stmt {
            Statement::Select { filter, .. } => match filter.unwrap() {
                Filter::Compare { op, value, .. } => {
                    assert_eq!(op, CompareOp::Lt);
                    assert_eq!(value, b"Ella");
                }
                other => panic!("wrong filter: {other:?}"),
            },
            other => panic!("wrong statement: {other:?}"),
        }
    }

    #[test]
    fn parses_aggregate_select() {
        let stmt = parse(
            "SELECT region, SUM(price), COUNT(*) FROM sales WHERE price >= '100' \
             GROUP BY region ORDER BY 2 DESC, region ASC LIMIT 5",
        )
        .unwrap();
        match stmt {
            Statement::Select {
                items,
                group_by,
                order_by,
                limit,
                ..
            } => {
                assert_eq!(
                    items,
                    vec![
                        SelectItem::Column("region".into()),
                        SelectItem::Aggregate {
                            func: AggFunc::Sum,
                            column: Some("price".into())
                        },
                        SelectItem::Aggregate {
                            func: AggFunc::Count,
                            column: None
                        },
                    ]
                );
                assert_eq!(group_by, vec![ColumnRef::bare("region")]);
                assert_eq!(
                    order_by,
                    vec![
                        OrderKey {
                            target: OrderTarget::Position(2),
                            desc: true
                        },
                        OrderKey {
                            target: OrderTarget::Column("region".into()),
                            desc: false
                        },
                    ]
                );
                assert_eq!(limit, Some(5));
            }
            other => panic!("wrong statement: {other:?}"),
        }
    }

    #[test]
    fn display_parse_roundtrip_for_aggregates() {
        for sql in [
            "SELECT * FROM t",
            "SELECT COUNT(*) FROM t",
            "SELECT a, MIN(b), MAX(b), AVG(b) FROM t WHERE b BETWEEN 'a' AND 'z' GROUP BY a",
            "SELECT a, SUM(b) FROM t GROUP BY a ORDER BY 2 DESC LIMIT 10",
            "SELECT a FROM t ORDER BY a LIMIT 3",
        ] {
            let s1 = parse(sql).unwrap();
            let s2 = parse(&s1.to_string()).unwrap();
            assert_eq!(s1, s2, "round trip of {sql}");
        }
    }

    #[test]
    fn rejects_malformed_aggregates() {
        assert!(parse("SELECT COUNT(v) FROM t").is_err());
        assert!(parse("SELECT COUNT(* FROM t").is_err());
        assert!(parse("SELECT SUM(*) FROM t").is_err());
        assert!(parse("SELECT MEDIAN(v) FROM t").is_err());
        assert!(parse("SELECT v FROM t ORDER BY 0").is_err());
        assert!(parse("SELECT v FROM t LIMIT").is_err());
        assert!(parse("SELECT v FROM t GROUP v").is_err());
    }

    #[test]
    fn parses_between() {
        let stmt = parse("SELECT * FROM t WHERE c BETWEEN 'a' AND 'f'").unwrap();
        match stmt {
            Statement::Select { filter, .. } => {
                assert_eq!(
                    filter.unwrap(),
                    Filter::Between {
                        column: "c".into(),
                        low: b"a".to_vec(),
                        high: b"f".to_vec()
                    }
                );
            }
            other => panic!("wrong statement: {other:?}"),
        }
    }

    #[test]
    fn parses_delete() {
        let stmt = parse("DELETE FROM t WHERE c = 'x'").unwrap();
        assert!(matches!(stmt, Statement::Delete { .. }));
    }

    #[test]
    fn parses_join_with_qualified_columns() {
        let stmt = parse(
            "SELECT a.x, b.y FROM a JOIN b ON a.k = b.k \
             WHERE a.x >= 'm' AND b.y < 'q' ORDER BY a.x LIMIT 4",
        )
        .unwrap();
        match stmt {
            Statement::Select {
                items,
                table,
                join,
                filter,
                order_by,
                limit,
                ..
            } => {
                assert_eq!(table, "a");
                assert_eq!(
                    items,
                    vec![
                        SelectItem::Column(ColumnRef::qualified("a", "x")),
                        SelectItem::Column(ColumnRef::qualified("b", "y")),
                    ]
                );
                assert_eq!(
                    join,
                    Some(Box::new(JoinClause {
                        table: "b".into(),
                        left: ColumnRef::qualified("a", "k"),
                        right: ColumnRef::qualified("b", "k"),
                    }))
                );
                // A three-way AND chain parses (left fold).
                assert!(filter.is_some());
                assert_eq!(
                    order_by,
                    vec![OrderKey {
                        target: OrderTarget::Column("a.x".into()),
                        desc: false
                    }]
                );
                assert_eq!(limit, Some(4));
            }
            other => panic!("wrong statement: {other:?}"),
        }
        // Display round-trips the join shape.
        let stmt = parse("SELECT a.x, b.y FROM a JOIN b ON a.k = b.k").unwrap();
        assert_eq!(parse(&stmt.to_string()).unwrap(), stmt);
    }

    #[test]
    fn parses_in_predicate() {
        let stmt = parse("SELECT v FROM t WHERE v IN ('a', 'b', 'c')").unwrap();
        match stmt {
            Statement::Select { filter, .. } => {
                assert_eq!(
                    filter.unwrap(),
                    Filter::In {
                        column: "v".into(),
                        values: vec![b"a".to_vec(), b"b".to_vec(), b"c".to_vec()],
                    }
                );
            }
            other => panic!("wrong statement: {other:?}"),
        }
        // IN composes with other conjuncts and round-trips.
        let stmt = parse("SELECT v FROM t WHERE v IN ('a', 'b') AND g >= 'x'").unwrap();
        assert_eq!(parse(&stmt.to_string()).unwrap(), stmt);
        assert!(parse("SELECT v FROM t WHERE v IN ()").is_err());
        assert!(parse("SELECT v FROM t WHERE v IN ('a'").is_err());
    }

    #[test]
    fn parses_select_distinct() {
        let stmt = parse("SELECT DISTINCT v FROM t WHERE v >= 'b'").unwrap();
        match &stmt {
            Statement::Select {
                distinct, items, ..
            } => {
                assert!(distinct);
                assert_eq!(items, &vec![SelectItem::Column("v".into())]);
            }
            other => panic!("wrong statement: {other:?}"),
        }
        assert_eq!(parse(&stmt.to_string()).unwrap(), stmt);
    }

    #[test]
    fn three_conjunct_filters_parse() {
        let stmt = parse("SELECT * FROM t WHERE a >= 'b' AND a < 'm' AND g = 'x'").unwrap();
        match stmt {
            Statement::Select { filter, .. } => {
                // Left fold: ((a >= 'b' AND a < 'm') AND g = 'x').
                let Filter::And(left, right) = filter.unwrap() else {
                    panic!("expected AND");
                };
                assert!(matches!(*left, Filter::And(..)));
                assert!(matches!(*right, Filter::Compare { .. }));
            }
            other => panic!("wrong statement: {other:?}"),
        }
    }

    #[test]
    fn keywords_are_case_insensitive() {
        assert!(parse("select * from t").is_ok());
        assert!(parse("Select A From T Where A = 'v'").is_ok());
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("DROP TABLE t").is_err());
        assert!(parse("SELECT FROM").is_err());
        assert!(parse("CREATE TABLE t (c ED10(5))").is_err());
        assert!(parse("SELECT * FROM t WHERE").is_err());
        assert!(parse("SELECT * FROM t extra junk").is_err());
    }
}
