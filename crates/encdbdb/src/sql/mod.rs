//! A small SQL front end for EncDBDB.
//!
//! The supported subset mirrors what the paper's pipeline handles (Fig. 5
//! steps 5–6): `CREATE TABLE` with encrypted-dictionary column types,
//! `INSERT`, `SELECT` with single-column filters (equality, inequality,
//! greater/less than, `BETWEEN`), and `DELETE` with the same filters.

pub mod ast;
pub mod lexer;
pub mod parser;

pub use ast::{ColumnDef, CompareOp, Filter, Statement};
pub use parser::parse;
