//! A small SQL front end for EncDBDB.
//!
//! The supported subset mirrors what the paper's pipeline handles (Fig. 5
//! steps 5–6) plus the analytic extension of the `exec` engine:
//! `CREATE TABLE` with encrypted-dictionary column types and an optional
//! `PARTITION BY RANGE (col) SPLIT ('a', ...)` clause, `INSERT`,
//! `SELECT [DISTINCT]` with single-column filters (equality, inequality,
//! greater/less than, `BETWEEN`, `IN (...)`), two-table equi-joins
//! (`FROM a JOIN b ON a.k = b.k` with table-qualified column names),
//! aggregates (`COUNT(*)`, `SUM`, `MIN`, `MAX`, `AVG`), `GROUP BY`,
//! `ORDER BY ... [ASC|DESC]`, `LIMIT`, and `DELETE` with the same
//! filters.
//!
//! [`Statement`] implements [`std::fmt::Display`], producing canonical SQL
//! that parses back to an equal statement (property-tested in
//! `tests/sql_fuzz.rs`).

pub mod ast;
pub mod lexer;
pub mod parser;

pub use ast::{
    ColumnDef, ColumnRef, CompareOp, Filter, JoinClause, OrderKey, OrderTarget, PartitionByDef,
    SelectItem, Statement,
};
pub use parser::parse;
