//! SQL abstract syntax tree.

use crate::schema::DictChoice;
use encdict::aggregate::AggFunc;
use std::fmt;

/// A column definition in a `CREATE TABLE` statement, e.g. `c1 ED5(12)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnDef {
    /// Column name.
    pub name: String,
    /// Dictionary protection (ED1–ED9 or PLAIN).
    pub choice: DictChoice,
    /// Fixed maximal value length.
    pub max_len: usize,
    /// Optional bs_max (second argument in the type parentheses).
    pub bs_max: Option<usize>,
}

/// A possibly table-qualified column reference (`c` or `t.c`).
///
/// Single-table statements normally use bare references; join statements
/// qualify columns with their table so the planner can resolve each
/// reference to a side. `From<&str>` / `From<String>` build unqualified
/// references, so existing call sites keep reading naturally.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ColumnRef {
    /// Optional table qualifier.
    pub table: Option<String>,
    /// The column name.
    pub column: String,
}

impl ColumnRef {
    /// An unqualified reference.
    pub fn bare(column: impl Into<String>) -> Self {
        ColumnRef {
            table: None,
            column: column.into(),
        }
    }

    /// A table-qualified reference.
    pub fn qualified(table: impl Into<String>, column: impl Into<String>) -> Self {
        ColumnRef {
            table: Some(table.into()),
            column: column.into(),
        }
    }

    /// The bare column name, qualifier stripped.
    pub fn name(&self) -> &str {
        &self.column
    }
}

impl From<&str> for ColumnRef {
    fn from(s: &str) -> Self {
        ColumnRef::bare(s)
    }
}

impl From<String> for ColumnRef {
    fn from(s: String) -> Self {
        ColumnRef::bare(s)
    }
}

impl fmt::Display for ColumnRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.table {
            Some(t) => write!(f, "{t}.{}", self.column),
            None => f.write_str(&self.column),
        }
    }
}

/// A comparison operator in a filter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompareOp {
    /// `=`
    Eq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl fmt::Display for CompareOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CompareOp::Eq => "=",
            CompareOp::Lt => "<",
            CompareOp::Le => "<=",
            CompareOp::Gt => ">",
            CompareOp::Ge => ">=",
        })
    }
}

/// A filter over a single column.
///
/// The proxy converts every shape into range selects (Fig. 5 step 5),
/// so the server cannot distinguish query types. `IN` becomes one
/// equality range per listed value, unioned on the scan path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Filter {
    /// `col <op> 'value'`
    Compare {
        /// Filtered column.
        column: ColumnRef,
        /// Operator.
        op: CompareOp,
        /// Comparison value.
        value: Vec<u8>,
    },
    /// `col BETWEEN 'a' AND 'b'` (inclusive).
    Between {
        /// Filtered column.
        column: ColumnRef,
        /// Lower bound (inclusive).
        low: Vec<u8>,
        /// Upper bound (inclusive).
        high: Vec<u8>,
    },
    /// `col IN ('v1', 'v2', ...)` — membership in an explicit value list.
    In {
        /// Filtered column.
        column: ColumnRef,
        /// The listed values, in source order.
        values: Vec<Vec<u8>>,
    },
    /// Two filters joined by `AND`, e.g. `c >= 'a' AND c < 'b'`.
    And(Box<Filter>, Box<Filter>),
}

impl Filter {
    /// The single column this filter targets, if consistent (bare name;
    /// qualifiers must agree too — see [`Filter::column_ref`]).
    pub fn column(&self) -> Option<&str> {
        self.column_ref().map(ColumnRef::name)
    }

    /// The single column reference this filter targets, if consistent.
    pub fn column_ref(&self) -> Option<&ColumnRef> {
        match self {
            Filter::Compare { column, .. }
            | Filter::Between { column, .. }
            | Filter::In { column, .. } => Some(column),
            Filter::And(a, b) => {
                let ca = a.column_ref()?;
                let cb = b.column_ref()?;
                if ca == cb {
                    Some(ca)
                } else {
                    None
                }
            }
        }
    }
}

impl fmt::Display for Filter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Filter::Compare { column, op, value } => {
                write!(f, "{column} {op} {}", quote(value))
            }
            Filter::Between { column, low, high } => {
                write!(f, "{column} BETWEEN {} AND {}", quote(low), quote(high))
            }
            Filter::In { column, values } => {
                let vals: Vec<String> = values.iter().map(|v| quote(v)).collect();
                write!(f, "{column} IN ({})", vals.join(", "))
            }
            Filter::And(a, b) => write!(f, "{a} AND {b}"),
        }
    }
}

/// One item of a SELECT list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SelectItem {
    /// A (possibly qualified) column reference.
    Column(ColumnRef),
    /// An aggregate, e.g. `SUM(price)` or `COUNT(*)` (`column` is `None`
    /// only for `COUNT(*)`).
    Aggregate {
        /// The aggregate function.
        func: AggFunc,
        /// The aggregated column (`None` for `COUNT(*)`).
        column: Option<ColumnRef>,
    },
}

impl SelectItem {
    /// The output column name of this item (`count`, `sum(price)`,
    /// `a.x`, ...).
    pub fn output_name(&self) -> String {
        match self {
            SelectItem::Column(c) => c.to_string(),
            SelectItem::Aggregate {
                func: AggFunc::Count,
                ..
            } => "count".to_string(),
            SelectItem::Aggregate {
                func,
                column: Some(c),
            } => format!("{}({c})", func.to_string().to_lowercase()),
            SelectItem::Aggregate { func, column: None } => {
                format!("{}(*)", func.to_string().to_lowercase())
            }
        }
    }

    /// Whether this item is an aggregate.
    pub fn is_aggregate(&self) -> bool {
        matches!(self, SelectItem::Aggregate { .. })
    }
}

impl fmt::Display for SelectItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SelectItem::Column(c) => write!(f, "{c}"),
            SelectItem::Aggregate { func, column } => match column {
                Some(c) => write!(f, "{func}({c})"),
                None => write!(f, "{func}(*)"),
            },
        }
    }
}

/// What an ORDER BY key refers to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OrderTarget {
    /// A 1-based output position (`ORDER BY 2`).
    Position(usize),
    /// An output column by name (qualified names render as `t.c`).
    Column(String),
}

/// One ORDER BY key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OrderKey {
    /// The sort target.
    pub target: OrderTarget,
    /// Descending order if set (`DESC`); ascending otherwise.
    pub desc: bool,
}

impl fmt::Display for OrderKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.target {
            OrderTarget::Position(p) => write!(f, "{p}")?,
            OrderTarget::Column(c) => f.write_str(c)?,
        }
        if self.desc {
            f.write_str(" DESC")?;
        }
        Ok(())
    }
}

/// A `PARTITION BY RANGE` clause of a `CREATE TABLE` statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionByDef {
    /// The partition column.
    pub column: String,
    /// Strictly ascending split points (`SPLIT ('a', 'b', ...)`).
    pub split_points: Vec<Vec<u8>>,
}

/// The `JOIN b ON a.k = b.k` clause of a two-table SELECT.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinClause {
    /// The joined (right) table.
    pub table: String,
    /// Left operand of the ON equality.
    pub left: ColumnRef,
    /// Right operand of the ON equality.
    pub right: ColumnRef,
}

impl fmt::Display for JoinClause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JOIN {} ON {} = {}", self.table, self.left, self.right)
    }
}

/// A parsed SQL statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Statement {
    /// `CREATE TABLE t (c1 ED1(10), ...) [PARTITION BY RANGE (c1) SPLIT
    /// ('m', ...)]`
    CreateTable {
        /// Table name.
        name: String,
        /// Column definitions.
        columns: Vec<ColumnDef>,
        /// Optional range partitioning.
        partition_by: Option<PartitionByDef>,
    },
    /// `INSERT INTO t VALUES ('a', 'b'), ('c', 'd')`
    Insert {
        /// Target table.
        table: String,
        /// Rows of values.
        rows: Vec<Vec<Vec<u8>>>,
    },
    /// `SELECT [DISTINCT] a, SUM(b) FROM t [JOIN u ON t.k = u.k] WHERE
    /// c >= 'x' GROUP BY a ORDER BY 2 DESC LIMIT 10` — the analytic select
    /// shape. Plain selects are the special case with only
    /// [`SelectItem::Column`] items, no GROUP BY and no join.
    Select {
        /// `SELECT DISTINCT`: deduplicate the output rows.
        distinct: bool,
        /// Select-list items; empty means `*`.
        items: Vec<SelectItem>,
        /// Source (left) table.
        table: String,
        /// Optional equi-join with a second table.
        join: Option<Box<JoinClause>>,
        /// Optional filter.
        filter: Option<Filter>,
        /// GROUP BY columns (empty when absent).
        group_by: Vec<ColumnRef>,
        /// ORDER BY keys (empty when absent).
        order_by: Vec<OrderKey>,
        /// Optional LIMIT.
        limit: Option<usize>,
    },
    /// `DELETE FROM t WHERE c = 'x'`
    Delete {
        /// Target table.
        table: String,
        /// Optional filter (`None` deletes all rows).
        filter: Option<Filter>,
    },
}

/// Renders a value as a single-quoted SQL literal (doubling embedded
/// quotes). Values are shown as lossy UTF-8 — `Display` round-trips for
/// statements whose literals are valid UTF-8, which is what the grammar
/// tests generate.
fn quote(value: &[u8]) -> String {
    format!("'{}'", String::from_utf8_lossy(value).replace('\'', "''"))
}

fn join<T: fmt::Display>(items: &[T]) -> String {
    items
        .iter()
        .map(T::to_string)
        .collect::<Vec<_>>()
        .join(", ")
}

impl fmt::Display for Statement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Statement::CreateTable {
                name,
                columns,
                partition_by,
            } => {
                let cols: Vec<String> = columns
                    .iter()
                    .map(|c| match c.bs_max {
                        Some(bs) => format!("{} {}({}, {bs})", c.name, c.choice, c.max_len),
                        None => format!("{} {}({})", c.name, c.choice, c.max_len),
                    })
                    .collect();
                write!(f, "CREATE TABLE {name} ({})", cols.join(", "))?;
                if let Some(p) = partition_by {
                    let points: Vec<String> = p.split_points.iter().map(|s| quote(s)).collect();
                    write!(
                        f,
                        " PARTITION BY RANGE ({}) SPLIT ({})",
                        p.column,
                        points.join(", ")
                    )?;
                }
                Ok(())
            }
            Statement::Insert { table, rows } => {
                let rows: Vec<String> = rows
                    .iter()
                    .map(|r| {
                        format!(
                            "({})",
                            r.iter().map(|v| quote(v)).collect::<Vec<_>>().join(", ")
                        )
                    })
                    .collect();
                write!(f, "INSERT INTO {table} VALUES {}", rows.join(", "))
            }
            Statement::Select {
                distinct,
                items,
                table,
                join: join_clause,
                filter,
                group_by,
                order_by,
                limit,
            } => {
                let head = if *distinct {
                    "SELECT DISTINCT"
                } else {
                    "SELECT"
                };
                if items.is_empty() {
                    write!(f, "{head} * FROM {table}")?;
                } else {
                    write!(f, "{head} {} FROM {table}", join(items))?;
                }
                if let Some(j) = join_clause {
                    write!(f, " {j}")?;
                }
                if let Some(filter) = filter {
                    write!(f, " WHERE {filter}")?;
                }
                if !group_by.is_empty() {
                    write!(f, " GROUP BY {}", join(group_by))?;
                }
                if !order_by.is_empty() {
                    write!(f, " ORDER BY {}", join(order_by))?;
                }
                if let Some(n) = limit {
                    write!(f, " LIMIT {n}")?;
                }
                Ok(())
            }
            Statement::Delete { table, filter } => {
                write!(f, "DELETE FROM {table}")?;
                if let Some(filter) = filter {
                    write!(f, " WHERE {filter}")?;
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filter_column_consistency() {
        let f = Filter::And(
            Box::new(Filter::Compare {
                column: "c".into(),
                op: CompareOp::Ge,
                value: b"a".to_vec(),
            }),
            Box::new(Filter::Compare {
                column: "c".into(),
                op: CompareOp::Lt,
                value: b"m".to_vec(),
            }),
        );
        assert_eq!(f.column(), Some("c"));

        let mixed = Filter::And(
            Box::new(Filter::Compare {
                column: "c".into(),
                op: CompareOp::Ge,
                value: b"a".to_vec(),
            }),
            Box::new(Filter::Compare {
                column: "d".into(),
                op: CompareOp::Lt,
                value: b"m".to_vec(),
            }),
        );
        assert_eq!(mixed.column(), None);

        // Same bare name under different qualifiers is NOT one column.
        let cross = Filter::And(
            Box::new(Filter::Compare {
                column: ColumnRef::qualified("a", "k"),
                op: CompareOp::Ge,
                value: b"a".to_vec(),
            }),
            Box::new(Filter::Compare {
                column: ColumnRef::qualified("b", "k"),
                op: CompareOp::Lt,
                value: b"m".to_vec(),
            }),
        );
        assert_eq!(cross.column(), None);
    }

    #[test]
    fn display_renders_canonical_sql() {
        let stmt = Statement::Select {
            distinct: false,
            items: vec![
                SelectItem::Column("a".into()),
                SelectItem::Aggregate {
                    func: AggFunc::Sum,
                    column: Some("b".into()),
                },
            ],
            table: "t".into(),
            join: None,
            filter: Some(Filter::Between {
                column: "b".into(),
                low: b"x".to_vec(),
                high: b"y".to_vec(),
            }),
            group_by: vec!["a".into()],
            order_by: vec![OrderKey {
                target: OrderTarget::Position(2),
                desc: true,
            }],
            limit: Some(10),
        };
        assert_eq!(
            stmt.to_string(),
            "SELECT a, SUM(b) FROM t WHERE b BETWEEN 'x' AND 'y' \
             GROUP BY a ORDER BY 2 DESC LIMIT 10"
        );
    }

    #[test]
    fn display_renders_join_and_qualified_columns() {
        let stmt = Statement::Select {
            distinct: false,
            items: vec![
                SelectItem::Column(ColumnRef::qualified("a", "x")),
                SelectItem::Column(ColumnRef::qualified("b", "y")),
            ],
            table: "a".into(),
            join: Some(Box::new(JoinClause {
                table: "b".into(),
                left: ColumnRef::qualified("a", "k"),
                right: ColumnRef::qualified("b", "k"),
            })),
            filter: Some(Filter::In {
                column: ColumnRef::qualified("a", "x"),
                values: vec![b"u".to_vec(), b"v".to_vec()],
            }),
            group_by: vec![],
            order_by: vec![],
            limit: None,
        };
        assert_eq!(
            stmt.to_string(),
            "SELECT a.x, b.y FROM a JOIN b ON a.k = b.k WHERE a.x IN ('u', 'v')"
        );
    }

    #[test]
    fn display_renders_distinct() {
        let stmt = Statement::Select {
            distinct: true,
            items: vec![SelectItem::Column("v".into())],
            table: "t".into(),
            join: None,
            filter: None,
            group_by: vec![],
            order_by: vec![],
            limit: None,
        };
        assert_eq!(stmt.to_string(), "SELECT DISTINCT v FROM t");
    }

    #[test]
    fn display_quotes_embedded_quotes() {
        let stmt = Statement::Insert {
            table: "t".into(),
            rows: vec![vec![b"it's".to_vec()]],
        };
        assert_eq!(stmt.to_string(), "INSERT INTO t VALUES ('it''s')");
    }

    #[test]
    fn output_names() {
        assert_eq!(
            SelectItem::Aggregate {
                func: AggFunc::Count,
                column: None
            }
            .output_name(),
            "count"
        );
        assert_eq!(
            SelectItem::Aggregate {
                func: AggFunc::Avg,
                column: Some("p".into())
            }
            .output_name(),
            "avg(p)"
        );
        assert_eq!(SelectItem::Column("c".into()).output_name(), "c");
        assert_eq!(
            SelectItem::Column(ColumnRef::qualified("t", "c")).output_name(),
            "t.c"
        );
    }
}
