//! SQL abstract syntax tree.

use crate::schema::DictChoice;
use encdict::aggregate::AggFunc;
use std::fmt;

/// A column definition in a `CREATE TABLE` statement, e.g. `c1 ED5(12)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnDef {
    /// Column name.
    pub name: String,
    /// Dictionary protection (ED1–ED9 or PLAIN).
    pub choice: DictChoice,
    /// Fixed maximal value length.
    pub max_len: usize,
    /// Optional bs_max (second argument in the type parentheses).
    pub bs_max: Option<usize>,
}

/// A comparison operator in a filter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompareOp {
    /// `=`
    Eq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl fmt::Display for CompareOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CompareOp::Eq => "=",
            CompareOp::Lt => "<",
            CompareOp::Le => "<=",
            CompareOp::Gt => ">",
            CompareOp::Ge => ">=",
        })
    }
}

/// A filter over a single column.
///
/// The proxy converts every shape into one range select (Fig. 5 step 5),
/// so the server cannot distinguish query types.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Filter {
    /// `col <op> 'value'`
    Compare {
        /// Filtered column.
        column: String,
        /// Operator.
        op: CompareOp,
        /// Comparison value.
        value: Vec<u8>,
    },
    /// `col BETWEEN 'a' AND 'b'` (inclusive).
    Between {
        /// Filtered column.
        column: String,
        /// Lower bound (inclusive).
        low: Vec<u8>,
        /// Upper bound (inclusive).
        high: Vec<u8>,
    },
    /// Two comparisons on the same column joined by `AND`, e.g.
    /// `c >= 'a' AND c < 'b'`.
    And(Box<Filter>, Box<Filter>),
}

impl Filter {
    /// The single column this filter targets, if consistent.
    pub fn column(&self) -> Option<&str> {
        match self {
            Filter::Compare { column, .. } | Filter::Between { column, .. } => Some(column),
            Filter::And(a, b) => {
                let ca = a.column()?;
                let cb = b.column()?;
                if ca == cb {
                    Some(ca)
                } else {
                    None
                }
            }
        }
    }
}

impl fmt::Display for Filter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Filter::Compare { column, op, value } => {
                write!(f, "{column} {op} {}", quote(value))
            }
            Filter::Between { column, low, high } => {
                write!(f, "{column} BETWEEN {} AND {}", quote(low), quote(high))
            }
            Filter::And(a, b) => write!(f, "{a} AND {b}"),
        }
    }
}

/// One item of a SELECT list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SelectItem {
    /// A bare column reference.
    Column(String),
    /// An aggregate, e.g. `SUM(price)` or `COUNT(*)` (`column` is `None`
    /// only for `COUNT(*)`).
    Aggregate {
        /// The aggregate function.
        func: AggFunc,
        /// The aggregated column (`None` for `COUNT(*)`).
        column: Option<String>,
    },
}

impl SelectItem {
    /// The output column name of this item (`count`, `sum(price)`, ...).
    pub fn output_name(&self) -> String {
        match self {
            SelectItem::Column(c) => c.clone(),
            SelectItem::Aggregate {
                func: AggFunc::Count,
                ..
            } => "count".to_string(),
            SelectItem::Aggregate {
                func,
                column: Some(c),
            } => format!("{}({c})", func.to_string().to_lowercase()),
            SelectItem::Aggregate { func, column: None } => {
                format!("{}(*)", func.to_string().to_lowercase())
            }
        }
    }

    /// Whether this item is an aggregate.
    pub fn is_aggregate(&self) -> bool {
        matches!(self, SelectItem::Aggregate { .. })
    }
}

impl fmt::Display for SelectItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SelectItem::Column(c) => f.write_str(c),
            SelectItem::Aggregate { func, column } => match column {
                Some(c) => write!(f, "{func}({c})"),
                None => write!(f, "{func}(*)"),
            },
        }
    }
}

/// What an ORDER BY key refers to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OrderTarget {
    /// A 1-based output position (`ORDER BY 2`).
    Position(usize),
    /// An output column by name.
    Column(String),
}

/// One ORDER BY key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OrderKey {
    /// The sort target.
    pub target: OrderTarget,
    /// Descending order if set (`DESC`); ascending otherwise.
    pub desc: bool,
}

impl fmt::Display for OrderKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.target {
            OrderTarget::Position(p) => write!(f, "{p}")?,
            OrderTarget::Column(c) => f.write_str(c)?,
        }
        if self.desc {
            f.write_str(" DESC")?;
        }
        Ok(())
    }
}

/// A `PARTITION BY RANGE` clause of a `CREATE TABLE` statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionByDef {
    /// The partition column.
    pub column: String,
    /// Strictly ascending split points (`SPLIT ('a', 'b', ...)`).
    pub split_points: Vec<Vec<u8>>,
}

/// A parsed SQL statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Statement {
    /// `CREATE TABLE t (c1 ED1(10), ...) [PARTITION BY RANGE (c1) SPLIT
    /// ('m', ...)]`
    CreateTable {
        /// Table name.
        name: String,
        /// Column definitions.
        columns: Vec<ColumnDef>,
        /// Optional range partitioning.
        partition_by: Option<PartitionByDef>,
    },
    /// `INSERT INTO t VALUES ('a', 'b'), ('c', 'd')`
    Insert {
        /// Target table.
        table: String,
        /// Rows of values.
        rows: Vec<Vec<Vec<u8>>>,
    },
    /// `SELECT a, SUM(b) FROM t WHERE c >= 'x' GROUP BY a ORDER BY 2 DESC
    /// LIMIT 10` — the analytic select shape. Plain selects are the special
    /// case with only [`SelectItem::Column`] items and no GROUP BY.
    Select {
        /// Select-list items; empty means `*`.
        items: Vec<SelectItem>,
        /// Source table.
        table: String,
        /// Optional filter.
        filter: Option<Filter>,
        /// GROUP BY columns (empty when absent).
        group_by: Vec<String>,
        /// ORDER BY keys (empty when absent).
        order_by: Vec<OrderKey>,
        /// Optional LIMIT.
        limit: Option<usize>,
    },
    /// `DELETE FROM t WHERE c = 'x'`
    Delete {
        /// Target table.
        table: String,
        /// Optional filter (`None` deletes all rows).
        filter: Option<Filter>,
    },
}

/// Renders a value as a single-quoted SQL literal (doubling embedded
/// quotes). Values are shown as lossy UTF-8 — `Display` round-trips for
/// statements whose literals are valid UTF-8, which is what the grammar
/// tests generate.
fn quote(value: &[u8]) -> String {
    format!("'{}'", String::from_utf8_lossy(value).replace('\'', "''"))
}

fn join<T: fmt::Display>(items: &[T]) -> String {
    items
        .iter()
        .map(T::to_string)
        .collect::<Vec<_>>()
        .join(", ")
}

impl fmt::Display for Statement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Statement::CreateTable {
                name,
                columns,
                partition_by,
            } => {
                let cols: Vec<String> = columns
                    .iter()
                    .map(|c| match c.bs_max {
                        Some(bs) => format!("{} {}({}, {bs})", c.name, c.choice, c.max_len),
                        None => format!("{} {}({})", c.name, c.choice, c.max_len),
                    })
                    .collect();
                write!(f, "CREATE TABLE {name} ({})", cols.join(", "))?;
                if let Some(p) = partition_by {
                    let points: Vec<String> = p.split_points.iter().map(|s| quote(s)).collect();
                    write!(
                        f,
                        " PARTITION BY RANGE ({}) SPLIT ({})",
                        p.column,
                        points.join(", ")
                    )?;
                }
                Ok(())
            }
            Statement::Insert { table, rows } => {
                let rows: Vec<String> = rows
                    .iter()
                    .map(|r| {
                        format!(
                            "({})",
                            r.iter().map(|v| quote(v)).collect::<Vec<_>>().join(", ")
                        )
                    })
                    .collect();
                write!(f, "INSERT INTO {table} VALUES {}", rows.join(", "))
            }
            Statement::Select {
                items,
                table,
                filter,
                group_by,
                order_by,
                limit,
            } => {
                if items.is_empty() {
                    write!(f, "SELECT * FROM {table}")?;
                } else {
                    write!(f, "SELECT {} FROM {table}", join(items))?;
                }
                if let Some(filter) = filter {
                    write!(f, " WHERE {filter}")?;
                }
                if !group_by.is_empty() {
                    write!(f, " GROUP BY {}", group_by.join(", "))?;
                }
                if !order_by.is_empty() {
                    write!(f, " ORDER BY {}", join(order_by))?;
                }
                if let Some(n) = limit {
                    write!(f, " LIMIT {n}")?;
                }
                Ok(())
            }
            Statement::Delete { table, filter } => {
                write!(f, "DELETE FROM {table}")?;
                if let Some(filter) = filter {
                    write!(f, " WHERE {filter}")?;
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filter_column_consistency() {
        let f = Filter::And(
            Box::new(Filter::Compare {
                column: "c".into(),
                op: CompareOp::Ge,
                value: b"a".to_vec(),
            }),
            Box::new(Filter::Compare {
                column: "c".into(),
                op: CompareOp::Lt,
                value: b"m".to_vec(),
            }),
        );
        assert_eq!(f.column(), Some("c"));

        let mixed = Filter::And(
            Box::new(Filter::Compare {
                column: "c".into(),
                op: CompareOp::Ge,
                value: b"a".to_vec(),
            }),
            Box::new(Filter::Compare {
                column: "d".into(),
                op: CompareOp::Lt,
                value: b"m".to_vec(),
            }),
        );
        assert_eq!(mixed.column(), None);
    }

    #[test]
    fn display_renders_canonical_sql() {
        let stmt = Statement::Select {
            items: vec![
                SelectItem::Column("a".into()),
                SelectItem::Aggregate {
                    func: AggFunc::Sum,
                    column: Some("b".into()),
                },
            ],
            table: "t".into(),
            filter: Some(Filter::Between {
                column: "b".into(),
                low: b"x".to_vec(),
                high: b"y".to_vec(),
            }),
            group_by: vec!["a".into()],
            order_by: vec![OrderKey {
                target: OrderTarget::Position(2),
                desc: true,
            }],
            limit: Some(10),
        };
        assert_eq!(
            stmt.to_string(),
            "SELECT a, SUM(b) FROM t WHERE b BETWEEN 'x' AND 'y' \
             GROUP BY a ORDER BY 2 DESC LIMIT 10"
        );
    }

    #[test]
    fn display_quotes_embedded_quotes() {
        let stmt = Statement::Insert {
            table: "t".into(),
            rows: vec![vec![b"it's".to_vec()]],
        };
        assert_eq!(stmt.to_string(), "INSERT INTO t VALUES ('it''s')");
    }

    #[test]
    fn output_names() {
        assert_eq!(
            SelectItem::Aggregate {
                func: AggFunc::Count,
                column: None
            }
            .output_name(),
            "count"
        );
        assert_eq!(
            SelectItem::Aggregate {
                func: AggFunc::Avg,
                column: Some("p".into())
            }
            .output_name(),
            "avg(p)"
        );
        assert_eq!(SelectItem::Column("c".into()).output_name(), "c");
    }
}
