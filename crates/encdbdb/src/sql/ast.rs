//! SQL abstract syntax tree.

use crate::schema::DictChoice;

/// A column definition in a `CREATE TABLE` statement, e.g. `c1 ED5(12)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnDef {
    /// Column name.
    pub name: String,
    /// Dictionary protection (ED1–ED9 or PLAIN).
    pub choice: DictChoice,
    /// Fixed maximal value length.
    pub max_len: usize,
    /// Optional bs_max (second argument in the type parentheses).
    pub bs_max: Option<usize>,
}

/// A comparison operator in a filter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompareOp {
    /// `=`
    Eq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// A filter over a single column.
///
/// The proxy converts every shape into one range select (Fig. 5 step 5),
/// so the server cannot distinguish query types.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Filter {
    /// `col <op> 'value'`
    Compare {
        /// Filtered column.
        column: String,
        /// Operator.
        op: CompareOp,
        /// Comparison value.
        value: Vec<u8>,
    },
    /// `col BETWEEN 'a' AND 'b'` (inclusive).
    Between {
        /// Filtered column.
        column: String,
        /// Lower bound (inclusive).
        low: Vec<u8>,
        /// Upper bound (inclusive).
        high: Vec<u8>,
    },
    /// Two comparisons on the same column joined by `AND`, e.g.
    /// `c >= 'a' AND c < 'b'`.
    And(Box<Filter>, Box<Filter>),
}

impl Filter {
    /// The single column this filter targets, if consistent.
    pub fn column(&self) -> Option<&str> {
        match self {
            Filter::Compare { column, .. } | Filter::Between { column, .. } => Some(column),
            Filter::And(a, b) => {
                let ca = a.column()?;
                let cb = b.column()?;
                if ca == cb {
                    Some(ca)
                } else {
                    None
                }
            }
        }
    }
}

/// A parsed SQL statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Statement {
    /// `CREATE TABLE t (c1 ED1(10), ...)`
    CreateTable {
        /// Table name.
        name: String,
        /// Column definitions.
        columns: Vec<ColumnDef>,
    },
    /// `INSERT INTO t VALUES ('a', 'b'), ('c', 'd')`
    Insert {
        /// Target table.
        table: String,
        /// Rows of values.
        rows: Vec<Vec<Vec<u8>>>,
    },
    /// `SELECT a, b FROM t WHERE c >= 'x'`
    Select {
        /// Selected column names; empty means `*`.
        columns: Vec<String>,
        /// Source table.
        table: String,
        /// Optional filter.
        filter: Option<Filter>,
    },
    /// `SELECT COUNT(*) FROM t WHERE c >= 'x'` — the count aggregation the
    /// paper notes is "easier to support than range searches" (§4.2); the
    /// server counts matching RecordIDs without rendering any ciphertexts.
    SelectCount {
        /// Source table.
        table: String,
        /// Optional filter.
        filter: Option<Filter>,
    },
    /// `DELETE FROM t WHERE c = 'x'`
    Delete {
        /// Target table.
        table: String,
        /// Optional filter (`None` deletes all rows).
        filter: Option<Filter>,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filter_column_consistency() {
        let f = Filter::And(
            Box::new(Filter::Compare {
                column: "c".into(),
                op: CompareOp::Ge,
                value: b"a".to_vec(),
            }),
            Box::new(Filter::Compare {
                column: "c".into(),
                op: CompareOp::Lt,
                value: b"m".to_vec(),
            }),
        );
        assert_eq!(f.column(), Some("c"));

        let mixed = Filter::And(
            Box::new(Filter::Compare {
                column: "c".into(),
                op: CompareOp::Ge,
                value: b"a".to_vec(),
            }),
            Box::new(Filter::Compare {
                column: "d".into(),
                op: CompareOp::Lt,
                value: b"m".to_vec(),
            }),
        );
        assert_eq!(mixed.column(), None);
    }
}
