//! Table schemas: per-column encrypted-dictionary selection.
//!
//! Paper §5: "We implemented the nine encrypted dictionaries as SQL data
//! types in the frontend ... The encrypted dictionaries can be used in SQL
//! create table statements like any other data type, e.g.,
//! `CREATE TABLE t1 (c1 ED7, c2 ED5, ...)`." EncDBDB also supports
//! plaintext dictionaries, selected with the `PLAIN` type.

use encdict::EdKind;

/// The dictionary protection chosen for one column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DictChoice {
    /// One of the nine encrypted dictionaries.
    Encrypted(EdKind),
    /// An unencrypted dictionary (sorted; searched without the enclave).
    Plain,
}

impl std::fmt::Display for DictChoice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DictChoice::Encrypted(kind) => write!(f, "{kind}"),
            DictChoice::Plain => write!(f, "PLAIN"),
        }
    }
}

/// Default maximal bucket size for frequency-smoothing columns (the paper's
/// evaluation uses `bs_max = 10`).
pub const DEFAULT_BS_MAX: usize = 10;

/// One column definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnSpec {
    /// Column name.
    pub name: String,
    /// Dictionary protection.
    pub choice: DictChoice,
    /// Fixed maximal value length in bytes (like `VARCHAR(n)`).
    pub max_len: usize,
    /// Maximal bucket size for smoothing kinds (ED4–ED6).
    pub bs_max: usize,
}

impl ColumnSpec {
    /// Creates a column spec with the default `bs_max`.
    pub fn new(name: impl Into<String>, choice: DictChoice, max_len: usize) -> Self {
        ColumnSpec {
            name: name.into(),
            choice,
            max_len,
            bs_max: DEFAULT_BS_MAX,
        }
    }
}

/// A table schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableSchema {
    /// Table name.
    pub name: String,
    /// Column definitions in order.
    pub columns: Vec<ColumnSpec>,
}

impl TableSchema {
    /// Creates a schema.
    pub fn new(name: impl Into<String>, columns: Vec<ColumnSpec>) -> Self {
        TableSchema {
            name: name.into(),
            columns,
        }
    }

    /// Position and spec of a column by name.
    pub fn column(&self, name: &str) -> Option<(usize, &ColumnSpec)> {
        self.columns
            .iter()
            .enumerate()
            .find(|(_, c)| c.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_by_name() {
        let s = TableSchema::new(
            "t1",
            vec![
                ColumnSpec::new("a", DictChoice::Encrypted(EdKind::Ed1), 10),
                ColumnSpec::new("b", DictChoice::Plain, 20),
            ],
        );
        assert_eq!(s.column("b").unwrap().0, 1);
        assert!(s.column("missing").is_none());
    }

    #[test]
    fn display_choices() {
        assert_eq!(DictChoice::Encrypted(EdKind::Ed5).to_string(), "ED5");
        assert_eq!(DictChoice::Plain.to_string(), "PLAIN");
    }
}
