//! Table schemas: per-column encrypted-dictionary selection and range
//! partitioning.
//!
//! Paper §5: "We implemented the nine encrypted dictionaries as SQL data
//! types in the frontend ... The encrypted dictionaries can be used in SQL
//! create table statements like any other data type, e.g.,
//! `CREATE TABLE t1 (c1 ED7, c2 ED5, ...)`." EncDBDB also supports
//! plaintext dictionaries, selected with the `PLAIN` type.
//!
//! A schema may additionally declare **range partitioning**
//! ([`TablePartitioning`]): the data owner picks a partition column and
//! split points over its *plaintext* domain, and every partition carries
//! its own main store, delta stores and compaction state on the server
//! (DESIGN.md §10). The split points themselves are part of the schema the
//! server stores — the partitioning layout is public metadata, chosen by
//! the owner exactly because revealing *shard residency* of a query is an
//! acceptable leakage (strictly less than the per-row attribute-vector
//! leakage every query already exhibits).

use encdict::{EdKind, RangeBound, RangeQuery};

/// The dictionary protection chosen for one column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DictChoice {
    /// One of the nine encrypted dictionaries.
    Encrypted(EdKind),
    /// An unencrypted dictionary (sorted; searched without the enclave).
    Plain,
}

impl std::fmt::Display for DictChoice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DictChoice::Encrypted(kind) => write!(f, "{kind}"),
            DictChoice::Plain => write!(f, "PLAIN"),
        }
    }
}

/// Default maximal bucket size for frequency-smoothing columns (the paper's
/// evaluation uses `bs_max = 10`).
pub const DEFAULT_BS_MAX: usize = 10;

/// One column definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnSpec {
    /// Column name.
    pub name: String,
    /// Dictionary protection.
    pub choice: DictChoice,
    /// Fixed maximal value length in bytes (like `VARCHAR(n)`).
    pub max_len: usize,
    /// Maximal bucket size for smoothing kinds (ED4–ED6).
    pub bs_max: usize,
}

impl ColumnSpec {
    /// Creates a column spec with the default `bs_max`.
    pub fn new(name: impl Into<String>, choice: DictChoice, max_len: usize) -> Self {
        ColumnSpec {
            name: name.into(),
            choice,
            max_len,
            bs_max: DEFAULT_BS_MAX,
        }
    }
}

/// Range partitioning of a table: a partition column plus owner-chosen
/// split points over its plaintext domain.
///
/// With `k` split points `s_0 < s_1 < ... < s_{k-1}` the table has `k + 1`
/// partitions: partition `0` covers `(-∞, s_0)`, partition `i` covers
/// `[s_{i-1}, s_i)`, and partition `k` covers `[s_{k-1}, +∞)` — every
/// value belongs to exactly one partition. No split points means a single
/// partition (today's monolithic behavior).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TablePartitioning {
    /// The partition column (must exist in the schema).
    pub column: String,
    /// Strictly ascending split points over the column's plaintext domain.
    pub split_points: Vec<Vec<u8>>,
}

impl TablePartitioning {
    /// Creates a partitioning spec.
    pub fn new(column: impl Into<String>, split_points: Vec<Vec<u8>>) -> Self {
        TablePartitioning {
            column: column.into(),
            split_points,
        }
    }

    /// Number of partitions (`split_points.len() + 1`).
    pub fn partition_count(&self) -> usize {
        self.split_points.len() + 1
    }

    /// The partition a plaintext value belongs to.
    pub fn partition_of(&self, value: &[u8]) -> usize {
        self.split_points.partition_point(|s| s.as_slice() <= value)
    }

    /// The contiguous partition range a plaintext range query can touch —
    /// the pruning predicate: every partition outside the returned range
    /// provably holds no matching value.
    pub fn overlapping(&self, range: &RangeQuery) -> std::ops::RangeInclusive<usize> {
        let lo = match &range.start {
            RangeBound::Unbounded => 0,
            // For an exclusive start the matching values are > v, which
            // may still live in v's own partition — conservative is fine.
            RangeBound::Inclusive(v) | RangeBound::Exclusive(v) => self.partition_of(v),
        };
        let hi = match &range.end {
            RangeBound::Unbounded => self.partition_count() - 1,
            RangeBound::Inclusive(v) => self.partition_of(v),
            // Matching values are < v: the last candidate partition is the
            // one holding the largest value below v, i.e. the count of
            // split points strictly below v.
            RangeBound::Exclusive(v) => self
                .split_points
                .partition_point(|s| s.as_slice() < v.as_slice()),
        };
        lo..=hi.max(lo)
    }

    /// Validates the spec: at least one split point when declared, and
    /// strictly ascending points. Returns a human-readable violation.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violation.
    pub fn validate(&self) -> Result<(), String> {
        if self.split_points.is_empty() {
            return Err("a declared partitioning needs at least one split point \
                 (drop the clause for a single partition)"
                .to_string());
        }
        for w in self.split_points.windows(2) {
            if w[0] >= w[1] {
                return Err(format!(
                    "split points must be strictly ascending: {:?} !< {:?}",
                    String::from_utf8_lossy(&w[0]),
                    String::from_utf8_lossy(&w[1])
                ));
            }
        }
        Ok(())
    }
}

/// A table schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableSchema {
    /// Table name.
    pub name: String,
    /// Column definitions in order.
    pub columns: Vec<ColumnSpec>,
    /// Optional range partitioning (`None` = one partition).
    pub partitioning: Option<TablePartitioning>,
}

impl TableSchema {
    /// Creates an unpartitioned schema.
    pub fn new(name: impl Into<String>, columns: Vec<ColumnSpec>) -> Self {
        TableSchema {
            name: name.into(),
            columns,
            partitioning: None,
        }
    }

    /// Declares range partitioning on this schema.
    pub fn with_partitioning(mut self, partitioning: TablePartitioning) -> Self {
        self.partitioning = Some(partitioning);
        self
    }

    /// Number of range partitions (1 when unpartitioned).
    pub fn partition_count(&self) -> usize {
        self.partitioning
            .as_ref()
            .map_or(1, TablePartitioning::partition_count)
    }

    /// Position and spec of a column by name.
    pub fn column(&self, name: &str) -> Option<(usize, &ColumnSpec)> {
        self.columns
            .iter()
            .enumerate()
            .find(|(_, c)| c.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_by_name() {
        let s = TableSchema::new(
            "t1",
            vec![
                ColumnSpec::new("a", DictChoice::Encrypted(EdKind::Ed1), 10),
                ColumnSpec::new("b", DictChoice::Plain, 20),
            ],
        );
        assert_eq!(s.column("b").unwrap().0, 1);
        assert!(s.column("missing").is_none());
    }

    #[test]
    fn display_choices() {
        assert_eq!(DictChoice::Encrypted(EdKind::Ed5).to_string(), "ED5");
        assert_eq!(DictChoice::Plain.to_string(), "PLAIN");
    }

    fn parts() -> TablePartitioning {
        TablePartitioning::new("v", vec![b"0030".to_vec(), b"0060".to_vec()])
    }

    #[test]
    fn partition_of_respects_half_open_ranges() {
        let p = parts();
        assert_eq!(p.partition_count(), 3);
        assert_eq!(p.partition_of(b"0000"), 0);
        assert_eq!(p.partition_of(b"0029"), 0);
        assert_eq!(p.partition_of(b"0030"), 1, "split point opens its shard");
        assert_eq!(p.partition_of(b"0059"), 1);
        assert_eq!(p.partition_of(b"0060"), 2);
        assert_eq!(p.partition_of(b"9999"), 2);
    }

    #[test]
    fn overlapping_prunes_only_provably_missed_shards() {
        let p = parts();
        let r = |lo: &str, hi: &str| RangeQuery::between(lo, hi);
        assert_eq!(p.overlapping(&r("0000", "0010")), 0..=0);
        assert_eq!(p.overlapping(&r("0035", "0040")), 1..=1);
        assert_eq!(p.overlapping(&r("0010", "0070")), 0..=2);
        // Boundary semantics: an inclusive end on a split point reaches
        // the shard it opens; an exclusive end does not.
        assert_eq!(p.overlapping(&r("0000", "0030")), 0..=1);
        assert_eq!(p.overlapping(&RangeQuery::less_than("0030")), 0..=0);
        assert_eq!(p.overlapping(&RangeQuery::less_than("0031")), 0..=1);
        assert_eq!(p.overlapping(&RangeQuery::greater_than("0060")), 2..=2);
        assert_eq!(p.overlapping(&RangeQuery::at_least("0060")), 2..=2);
        assert_eq!(
            p.overlapping(&RangeQuery {
                start: encdict::RangeBound::Unbounded,
                end: encdict::RangeBound::Unbounded,
            }),
            0..=2
        );
    }

    #[test]
    fn validation_rejects_unsorted_split_points() {
        assert!(parts().validate().is_ok());
        let bad = TablePartitioning::new("v", vec![b"b".to_vec(), b"a".to_vec()]);
        assert!(bad.validate().is_err());
        let dup = TablePartitioning::new("v", vec![b"a".to_vec(), b"a".to_vec()]);
        assert!(dup.validate().is_err());
        let empty = TablePartitioning::new("v", vec![]);
        assert!(
            empty.validate().is_err(),
            "declared partitioning needs points"
        );
    }

    #[test]
    fn schema_partition_count() {
        let s = TableSchema::new("t", vec![ColumnSpec::new("v", DictChoice::Plain, 8)]);
        assert_eq!(s.partition_count(), 1);
        let s = s.with_partitioning(parts());
        assert_eq!(s.partition_count(), 3);
    }
}
