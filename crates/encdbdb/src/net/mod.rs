//! Networked multi-tenant service layer (DESIGN.md §16).
//!
//! Everything the in-process pipeline guarantees — decrypt-in-enclave,
//! leakage accounting, ECALL batching across concurrent readers — holds
//! unchanged behind a TCP front end:
//!
//! - `wire`: the length-prefixed binary protocol with versioned
//!   headers, request ids, and per-connection reusable buffers.
//! - `tenant`: table-namespace rewriting that confines each
//!   authenticated connection to its tenant's tables.
//! - `server`: the thread-pooled [`NetServer`] with bounded queues and
//!   two-level admission control (`BUSY` shedding).
//! - `client`: the thin blocking [`NetClient`] mirroring the
//!   in-process query API.
//!
//! The wire layer adds **zero** enclave transitions: frames are
//! decoded, namespaced, and handed to an ordinary `ReaderSession`, so a
//! query served over TCP produces a byte-identical result and an
//! identical leakage ledger to the same query run in-process (proven by
//! `tests/net_differential.rs`). What a *network* observer additionally
//! sees is frame timing and sizes — see DESIGN.md §16.6.

mod client;
mod server;
mod tenant;
mod wire;

pub use client::NetClient;
pub use server::{tenant_table_name, NetServer, NetServerConfig, NetServerHandle, TenantSpec};
