//! The length-prefixed binary wire protocol (DESIGN.md §16.1).
//!
//! Every frame is
//!
//! ```text
//! [u32 len LE][u8 version][u8 msg_type][u64 request_id LE][payload]
//! ```
//!
//! where `len` counts everything after the length field itself (so the
//! minimum frame is 10 bytes of header plus an empty payload). Request
//! ids let a client pipeline requests and match replies; the server
//! echoes the id of the request a frame answers. Strings and byte
//! strings are encoded as a `u32` little-endian length followed by the
//! raw bytes.
//!
//! [`FrameCodec`] owns one reusable encode buffer and one reusable
//! decode buffer per connection, so the hot path allocates nothing per
//! message once the buffers have grown to the connection's working set.
//! Decoding is an incremental state machine: [`FrameCodec::poll_recv`]
//! accepts partial reads (a read timeout used as a poll tick returns
//! [`Recv::Idle`] without losing buffered bytes), which is what lets
//! the server multiplex shutdown checks with blocking sockets.

use crate::error::DbError;
use std::io::{Read, Write};
use std::time::Instant;

/// Protocol version carried in every frame header.
pub(crate) const WIRE_VERSION: u8 = 1;

/// Frame header bytes after the length field: version + type + request id.
const HEADER_AFTER_LEN: usize = 1 + 1 + 8;

/// Hard ceiling on a frame's declared length — a malformed or malicious
/// length prefix must not drive an unbounded allocation.
const MAX_FRAME: usize = 256 << 20;

/// Error code: malformed or unexpected frame.
pub(crate) const ERR_PROTOCOL: u16 = 1;
/// Error code: authentication / provisioning rejection.
pub(crate) const ERR_AUTH: u16 = 2;
/// Error code: the query itself failed (relayed [`DbError`] text).
pub(crate) const ERR_QUERY: u16 = 3;
/// Error code: a per-tenant quota was exceeded.
pub(crate) const ERR_QUOTA: u16 = 4;

/// One protocol message (the decoded payload of a frame).
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Message {
    /// Client → server: authenticate as `tenant` with a provisioning
    /// token. Must be the first frame on a connection.
    Hello {
        /// The tenant namespace to bind this connection to.
        tenant: String,
        /// The tenant's shared provisioning token.
        token: String,
    },
    /// Server → client: handshake accepted.
    HelloOk,
    /// Client → server: execute one SQL statement.
    Query {
        /// The statement text.
        sql: String,
    },
    /// Server → client: a query's decrypted result set.
    Result {
        /// Result column names (tenant prefix already stripped).
        columns: Vec<String>,
        /// Result rows; plaintext cell values in column order.
        rows: Vec<Vec<Vec<u8>>>,
    },
    /// Server → client: the request failed.
    Error {
        /// One of the `ERR_*` codes.
        code: u16,
        /// Human-readable failure description.
        message: String,
    },
    /// Server → client: admission control shed this request; retry
    /// after the indicated backoff instead of queueing server-side.
    Busy {
        /// Suggested client backoff in milliseconds.
        retry_after_ms: u32,
    },
    /// Client → server: orderly connection close.
    Goodbye,
}

impl Message {
    fn type_byte(&self) -> u8 {
        match self {
            Message::Hello { .. } => 1,
            Message::HelloOk => 2,
            Message::Query { .. } => 3,
            Message::Result { .. } => 4,
            Message::Error { .. } => 5,
            Message::Busy { .. } => 6,
            Message::Goodbye => 7,
        }
    }

    fn encode_payload(&self, buf: &mut Vec<u8>) {
        match self {
            Message::Hello { tenant, token } => {
                put_bytes(buf, tenant.as_bytes());
                put_bytes(buf, token.as_bytes());
            }
            Message::HelloOk | Message::Goodbye => {}
            Message::Query { sql } => put_bytes(buf, sql.as_bytes()),
            Message::Result { columns, rows } => {
                put_u32(buf, columns.len() as u32);
                for c in columns {
                    put_bytes(buf, c.as_bytes());
                }
                put_u32(buf, rows.len() as u32);
                for row in rows {
                    put_u32(buf, row.len() as u32);
                    for cell in row {
                        put_bytes(buf, cell);
                    }
                }
            }
            Message::Error { code, message } => {
                buf.extend_from_slice(&code.to_le_bytes());
                put_bytes(buf, message.as_bytes());
            }
            Message::Busy { retry_after_ms } => put_u32(buf, *retry_after_ms),
        }
    }

    fn decode(msg_type: u8, payload: &[u8]) -> Result<Message, DbError> {
        let mut c = Cursor::new(payload);
        let msg = match msg_type {
            1 => Message::Hello {
                tenant: c.take_string()?,
                token: c.take_string()?,
            },
            2 => Message::HelloOk,
            3 => Message::Query {
                sql: c.take_string()?,
            },
            4 => {
                let ncols = c.take_u32()? as usize;
                let mut columns = Vec::with_capacity(ncols.min(1024));
                for _ in 0..ncols {
                    columns.push(c.take_string()?);
                }
                let nrows = c.take_u32()? as usize;
                let mut rows = Vec::with_capacity(nrows.min(4096));
                for _ in 0..nrows {
                    let ncells = c.take_u32()? as usize;
                    let mut row = Vec::with_capacity(ncells.min(1024));
                    for _ in 0..ncells {
                        row.push(c.take_bytes()?.to_vec());
                    }
                    rows.push(row);
                }
                Message::Result { columns, rows }
            }
            5 => Message::Error {
                code: c.take_u16()?,
                message: c.take_string()?,
            },
            6 => Message::Busy {
                retry_after_ms: c.take_u32()?,
            },
            7 => Message::Goodbye,
            other => {
                return Err(DbError::Net(format!("unknown message type {other}")));
            }
        };
        if !c.exhausted() {
            return Err(DbError::Net("trailing bytes after message payload".into()));
        }
        Ok(msg)
    }
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_bytes(buf: &mut Vec<u8>, v: &[u8]) {
    put_u32(buf, v.len() as u32);
    buf.extend_from_slice(v);
}

/// Bounds-checked payload reader.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DbError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.buf.len())
            .ok_or_else(|| DbError::Net("truncated message payload".into()))?;
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn take_u16(&mut self) -> Result<u16, DbError> {
        Ok(u16::from_le_bytes(
            self.take(2)?.try_into().expect("2 bytes"),
        ))
    }

    fn take_u32(&mut self) -> Result<u32, DbError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn take_bytes(&mut self) -> Result<&'a [u8], DbError> {
        let len = self.take_u32()? as usize;
        self.take(len)
    }

    fn take_string(&mut self) -> Result<String, DbError> {
        String::from_utf8(self.take_bytes()?.to_vec())
            .map_err(|_| DbError::Net("string field is not valid UTF-8".into()))
    }

    fn exhausted(&self) -> bool {
        self.pos == self.buf.len()
    }
}

/// What one [`FrameCodec::poll_recv`] call produced.
#[derive(Debug)]
pub(crate) enum Recv {
    /// A complete frame was decoded.
    Frame {
        /// The frame's request id.
        request_id: u64,
        /// The decoded message.
        msg: Message,
        /// Total frame size on the wire, length prefix included.
        frame_bytes: u64,
        /// First-byte-to-complete receive latency of this frame.
        recv_ns: u64,
    },
    /// No bytes available within the read timeout (poll tick elapsed).
    Idle,
    /// The peer closed the connection at a frame boundary.
    Eof,
}

/// Per-connection encoder/decoder with reusable buffers; see the module
/// docs for the frame layout.
#[derive(Debug, Default)]
pub(crate) struct FrameCodec {
    encode_buf: Vec<u8>,
    recv_buf: Vec<u8>,
    filled: usize,
    first_byte: Option<Instant>,
}

impl FrameCodec {
    pub(crate) fn new() -> Self {
        FrameCodec::default()
    }

    /// Encodes and writes one frame; returns the bytes written.
    pub(crate) fn send(
        &mut self,
        w: &mut impl Write,
        request_id: u64,
        msg: &Message,
    ) -> Result<u64, DbError> {
        let buf = &mut self.encode_buf;
        buf.clear();
        buf.extend_from_slice(&[0u8; 4]);
        buf.push(WIRE_VERSION);
        buf.push(msg.type_byte());
        buf.extend_from_slice(&request_id.to_le_bytes());
        msg.encode_payload(buf);
        let len = (buf.len() - 4) as u32;
        buf[0..4].copy_from_slice(&len.to_le_bytes());
        w.write_all(buf).map_err(net_io)?;
        Ok(buf.len() as u64)
    }

    /// Advances the incremental decoder with whatever bytes the stream
    /// has. With a read timeout set on the stream this doubles as a poll
    /// tick: a timeout surfaces as [`Recv::Idle`] with all buffered
    /// partial-frame bytes intact.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::Net`] for I/O failures, version mismatches,
    /// over-limit or malformed frames, and mid-frame disconnects.
    pub(crate) fn poll_recv(&mut self, r: &mut impl Read) -> Result<Recv, DbError> {
        loop {
            let target = if self.filled < 4 {
                4
            } else {
                let len =
                    u32::from_le_bytes(self.recv_buf[0..4].try_into().expect("4 bytes")) as usize;
                if !(HEADER_AFTER_LEN..=MAX_FRAME).contains(&len) {
                    return Err(DbError::Net(format!("invalid frame length {len}")));
                }
                4 + len
            };
            if self.filled >= 4 && self.filled == target {
                let version = self.recv_buf[4];
                if version != WIRE_VERSION {
                    return Err(DbError::Net(format!(
                        "unsupported protocol version {version} (expected {WIRE_VERSION})"
                    )));
                }
                let msg_type = self.recv_buf[5];
                let request_id =
                    u64::from_le_bytes(self.recv_buf[6..14].try_into().expect("8 bytes"));
                let msg = Message::decode(msg_type, &self.recv_buf[14..target])?;
                let recv_ns = self
                    .first_byte
                    .take()
                    .map_or(0, |t| t.elapsed().as_nanos() as u64);
                self.filled = 0;
                return Ok(Recv::Frame {
                    request_id,
                    msg,
                    frame_bytes: target as u64,
                    recv_ns,
                });
            }
            if self.recv_buf.len() < target {
                self.recv_buf.resize(target, 0);
            }
            match r.read(&mut self.recv_buf[self.filled..target]) {
                Ok(0) => {
                    return if self.filled == 0 {
                        Ok(Recv::Eof)
                    } else {
                        Err(DbError::Net("peer closed the connection mid-frame".into()))
                    };
                }
                Ok(n) => {
                    if self.filled == 0 {
                        self.first_byte = Some(Instant::now());
                    }
                    self.filled += n;
                }
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    return Ok(Recv::Idle);
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(net_io(e)),
            }
        }
    }
}

/// Wraps a socket I/O error as a [`DbError::Net`].
pub(crate) fn net_io(e: std::io::Error) -> DbError {
    DbError::Net(e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(msg: Message) -> (u64, Message) {
        let mut codec = FrameCodec::new();
        let mut wire = Vec::new();
        codec.send(&mut wire, 42, &msg).expect("encode");
        let mut reader = wire.as_slice();
        match codec.poll_recv(&mut reader).expect("decode") {
            Recv::Frame {
                request_id, msg, ..
            } => (request_id, msg),
            other => panic!("expected frame, got {other:?}"),
        }
    }

    #[test]
    fn all_message_shapes_roundtrip() {
        for msg in [
            Message::Hello {
                tenant: "acme".into(),
                token: "s3cret".into(),
            },
            Message::HelloOk,
            Message::Query {
                sql: "SELECT v FROM t WHERE v >= 'a'".into(),
            },
            Message::Result {
                columns: vec!["v".into(), "w".into()],
                rows: vec![
                    vec![b"one".to_vec(), vec![0u8, 255, 7]],
                    vec![Vec::new(), b"x".to_vec()],
                ],
            },
            Message::Error {
                code: ERR_QUERY,
                message: "table not found: t".into(),
            },
            Message::Busy { retry_after_ms: 15 },
            Message::Goodbye,
        ] {
            let (id, decoded) = roundtrip(msg.clone());
            assert_eq!(id, 42);
            assert_eq!(decoded, msg);
        }
    }

    #[test]
    fn non_utf8_cells_survive_the_wire() {
        let cell = vec![0u8, 1, 2, 0xFF, 0xFE, b'\'', b'"'];
        let (_, decoded) = roundtrip(Message::Result {
            columns: vec!["c".into()],
            rows: vec![vec![cell.clone()]],
        });
        let Message::Result { rows, .. } = decoded else {
            panic!("expected result");
        };
        assert_eq!(rows, vec![vec![cell]]);
    }

    #[test]
    fn partial_reads_reassemble_one_frame() {
        let mut codec = FrameCodec::new();
        let mut wire = Vec::new();
        codec
            .send(
                &mut wire,
                7,
                &Message::Query {
                    sql: "SELECT 1".into(),
                },
            )
            .expect("encode");
        // Feed the frame one byte at a time through a reader that yields
        // WouldBlock between bytes — the codec must keep partial state.
        struct Trickle<'a> {
            data: &'a [u8],
            pos: usize,
            just_served: bool,
        }
        impl Read for Trickle<'_> {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                if self.just_served {
                    self.just_served = false;
                    return Err(std::io::ErrorKind::WouldBlock.into());
                }
                if self.pos == self.data.len() {
                    return Ok(0);
                }
                buf[0] = self.data[self.pos];
                self.pos += 1;
                self.just_served = true;
                Ok(1)
            }
        }
        let mut trickle = Trickle {
            data: &wire,
            pos: 0,
            just_served: false,
        };
        let mut idles = 0usize;
        loop {
            match codec.poll_recv(&mut trickle).expect("poll") {
                Recv::Frame {
                    request_id, msg, ..
                } => {
                    assert_eq!(request_id, 7);
                    assert_eq!(
                        msg,
                        Message::Query {
                            sql: "SELECT 1".into()
                        }
                    );
                    // Every byte but the frame-completing one paused the
                    // decoder at least once.
                    assert_eq!(idles, wire.len() - 1);
                    return;
                }
                Recv::Idle => idles += 1,
                Recv::Eof => panic!("unexpected eof"),
            }
        }
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let mut codec = FrameCodec::new();
        let mut wire = Vec::new();
        codec.send(&mut wire, 1, &Message::HelloOk).expect("encode");
        wire[4] = 99;
        let mut reader = wire.as_slice();
        let err = codec.poll_recv(&mut reader).expect_err("bad version");
        assert!(matches!(err, DbError::Net(_)), "{err}");
        assert!(err.to_string().contains("version"));
    }

    #[test]
    fn oversized_and_undersized_lengths_are_rejected() {
        for bad_len in [0u32, 5, (MAX_FRAME as u32) + 1] {
            let mut codec = FrameCodec::new();
            let mut wire = Vec::new();
            codec.send(&mut wire, 1, &Message::HelloOk).expect("encode");
            wire[0..4].copy_from_slice(&bad_len.to_le_bytes());
            let mut reader = wire.as_slice();
            let err = codec.poll_recv(&mut reader).expect_err("bad length");
            assert!(err.to_string().contains("frame length"), "{err}");
        }
    }

    #[test]
    fn eof_at_boundary_vs_mid_frame() {
        let mut codec = FrameCodec::new();
        let mut empty: &[u8] = &[];
        assert!(matches!(codec.poll_recv(&mut empty).unwrap(), Recv::Eof));
        let mut wire = Vec::new();
        codec.send(&mut wire, 1, &Message::Goodbye).expect("encode");
        let mut truncated = &wire[..wire.len() - 3];
        let err = codec.poll_recv(&mut truncated).expect_err("mid-frame eof");
        assert!(err.to_string().contains("mid-frame"), "{err}");
    }

    #[test]
    fn truncated_payload_and_unknown_type_are_rejected() {
        assert!(Message::decode(3, &[5, 0, 0, 0, b'a']).is_err());
        assert!(Message::decode(200, &[]).is_err());
        // Trailing garbage after a well-formed payload is a protocol
        // error, not silently ignored.
        assert!(Message::decode(2, &[0]).is_err());
    }
}
