//! The thread-pooled TCP server (DESIGN.md §16.2, §16.4).
//!
//! Threading model: one acceptor thread pushes authenticated-to-be
//! connections onto a **bounded** queue; a fixed pool of worker threads
//! pops connections and owns each one to completion (handshake, request
//! loop, teardown). Admission control has two layers, both bounded:
//!
//! 1. **Connection admission** — when the pending-connection queue is
//!    full, the acceptor replies [`Message::Busy`] and closes instead of
//!    queueing unboundedly.
//! 2. **Query admission** — a global in-flight ceiling plus a per-tenant
//!    ceiling; a request over either limit gets [`Message::Busy`] with a
//!    `retry_after_ms` hint rather than a server-side queue slot.
//!
//! Workers read with a short timeout (`poll_interval_ms`) so a blocking
//! socket still observes the shutdown flag. [`NetServerHandle::shutdown`]
//! stops accepting, lets every worker finish the request it is serving,
//! then drains background compaction before handing the [`Session`]
//! back — so a durable session's WAL is never torn by the network layer.

use super::tenant::{namespaced, qualify_statement, strip_namespace, validate_tenant_name};
use super::wire::{
    net_io, FrameCodec, Message, Recv, ERR_AUTH, ERR_PROTOCOL, ERR_QUERY, ERR_QUOTA,
};
use crate::error::DbError;
use crate::obs::{Counter, Hist, Obs, SpanId};
use crate::server::lock;
use crate::session::{ReaderSession, Session};
use crate::sql::{parse, Statement};
use std::collections::{HashMap, VecDeque};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Provisioning record for one tenant admitted to a [`NetServer`].
#[derive(Debug, Clone)]
pub struct TenantSpec {
    /// Tenant name; becomes the table-namespace prefix. Must be
    /// non-empty and contain neither `__` nor `.`.
    pub name: String,
    /// Shared secret presented in the `HELLO` frame.
    pub token: String,
    /// Maximum number of tables this tenant may create.
    pub max_tables: usize,
    /// Maximum queries this tenant may have in flight at once.
    pub max_inflight: usize,
}

impl TenantSpec {
    /// A spec with generous defaults, for tests and examples.
    pub fn new(name: impl Into<String>, token: impl Into<String>) -> Self {
        TenantSpec {
            name: name.into(),
            token: token.into(),
            max_tables: 16,
            max_inflight: 8,
        }
    }
}

/// Tuning knobs for [`NetServer::start`].
#[derive(Debug, Clone)]
pub struct NetServerConfig {
    /// Bind address; use port 0 for an ephemeral port.
    pub addr: String,
    /// Worker threads (each owns one connection at a time).
    pub workers: usize,
    /// Bound on connections accepted but not yet claimed by a worker;
    /// overflow is shed with a `BUSY` frame.
    pub max_pending_conns: usize,
    /// Global bound on queries executing at once.
    pub max_inflight_queries: usize,
    /// Backoff hint carried in `BUSY` replies.
    pub retry_after_ms: u32,
    /// Worker read-timeout used as the shutdown poll tick.
    pub poll_interval_ms: u64,
}

impl Default for NetServerConfig {
    fn default() -> Self {
        NetServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 8,
            max_pending_conns: 64,
            max_inflight_queries: 32,
            retry_after_ms: 10,
            poll_interval_ms: 25,
        }
    }
}

struct TenantState {
    spec: TenantSpec,
    tables: Mutex<usize>,
    inflight: AtomicUsize,
}

struct Shared {
    session: Mutex<Session>,
    tenants: HashMap<String, TenantState>,
    inflight: AtomicUsize,
    stop: AtomicBool,
    queue: Mutex<VecDeque<TcpStream>>,
    queue_cv: Condvar,
    conn_seed: AtomicU64,
    obs: Obs,
    config: NetServerConfig,
}

/// The networked multi-tenant front end; see the module docs for the
/// threading and admission model.
#[derive(Debug)]
pub struct NetServer;

impl NetServer {
    /// Binds a listener, spawns the acceptor and worker pool, and serves
    /// `session` to the provisioned `tenants` until
    /// [`NetServerHandle::shutdown`].
    ///
    /// # Errors
    ///
    /// Fails on an invalid tenant roster (bad name, duplicate) or if the
    /// listener cannot bind.
    pub fn start(
        session: Session,
        tenants: Vec<TenantSpec>,
        config: NetServerConfig,
    ) -> Result<NetServerHandle, DbError> {
        let mut roster = HashMap::new();
        let existing = session.server().table_names();
        for spec in tenants {
            validate_tenant_name(&spec.name).map_err(DbError::Net)?;
            let prefix = format!("{}__", spec.name);
            let tables = existing.iter().filter(|n| n.starts_with(&prefix)).count();
            let state = TenantState {
                tables: Mutex::new(tables),
                inflight: AtomicUsize::new(0),
                spec,
            };
            if roster.insert(state.spec.name.clone(), state).is_some() {
                return Err(DbError::Net("duplicate tenant name in roster".into()));
            }
        }
        let obs = session.server().obs().clone();
        let listener = TcpListener::bind(&config.addr).map_err(net_io)?;
        let addr = listener.local_addr().map_err(net_io)?;
        let workers = config.workers.max(1);
        let shared = Arc::new(Shared {
            session: Mutex::new(session),
            tenants: roster,
            inflight: AtomicUsize::new(0),
            stop: AtomicBool::new(false),
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            conn_seed: AtomicU64::new(0x5EED_0001),
            obs,
            config,
        });
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("net-acceptor".into())
                .spawn(move || acceptor_loop(&shared, &listener))
                .map_err(net_io)?
        };
        let worker_handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("net-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .map_err(net_io)
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(NetServerHandle {
            addr,
            shared,
            acceptor,
            workers: worker_handles,
        })
    }
}

/// A running server: the bound address plus the thread handles needed to
/// stop it. Dropping the handle without calling
/// [`NetServerHandle::shutdown`] leaks the server threads.
#[derive(Debug)]
pub struct NetServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: JoinHandle<()>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for Shared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shared")
            .field("tenants", &self.tenants.len())
            .field("stop", &self.stop.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl NetServerHandle {
    /// The address the server is listening on (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Graceful shutdown: stop accepting, let each worker finish the
    /// request it is serving, join every thread, then drain background
    /// compaction so no write is torn mid-flight. Returns the
    /// [`Session`], whose metrics/ledger now include all served traffic.
    ///
    /// # Errors
    ///
    /// Propagates a compaction-drain failure; thread-join panics
    /// surface as [`DbError::Net`].
    pub fn shutdown(self) -> Result<Session, DbError> {
        self.shared.stop.store(true, Ordering::SeqCst);
        // The acceptor sits in a blocking accept(); poke it awake.
        let _ = TcpStream::connect(self.addr);
        self.acceptor
            .join()
            .map_err(|_| DbError::Net("acceptor thread panicked".into()))?;
        // Connections still queued were never claimed; close them now so
        // their clients see EOF rather than a hang, then wake the pool.
        lock(&self.shared.queue).clear();
        self.shared.queue_cv.notify_all();
        for w in self.workers {
            w.join()
                .map_err(|_| DbError::Net("worker thread panicked".into()))?;
        }
        let shared = Arc::try_unwrap(self.shared)
            .map_err(|_| DbError::Net("server state still referenced after join".into()))?;
        let session = shared
            .session
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        session.server().drain_background_work()?;
        Ok(session)
    }
}

fn acceptor_loop(shared: &Shared, listener: &TcpListener) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shared.stop.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        let mut queue = lock(&shared.queue);
        if queue.len() >= shared.config.max_pending_conns {
            drop(queue);
            shared.obs.add(Counter::NetConnectionsShedTotal, 1);
            let mut stream = stream;
            let _ = FrameCodec::new().send(
                &mut stream,
                0,
                &Message::Busy {
                    retry_after_ms: shared.config.retry_after_ms,
                },
            );
        } else {
            queue.push_back(stream);
            let depth = queue.len() as u64;
            drop(queue);
            shared.obs.add(Counter::NetConnectionsAcceptedTotal, 1);
            shared.obs.record(Hist::NetQueueDepth, depth);
            shared.queue_cv.notify_one();
        }
    }
}

fn worker_loop(shared: &Arc<Shared>) {
    let tick = Duration::from_millis(shared.config.poll_interval_ms.max(1));
    loop {
        let stream = {
            let mut queue = lock(&shared.queue);
            loop {
                if let Some(s) = queue.pop_front() {
                    break Some(s);
                }
                if shared.stop.load(Ordering::SeqCst) {
                    break None;
                }
                let (guard, _) = shared
                    .queue_cv
                    .wait_timeout(queue, tick)
                    .unwrap_or_else(|e| e.into_inner());
                queue = guard;
            }
        };
        match stream {
            Some(stream) => handle_connection(shared, stream),
            None => return,
        }
    }
}

/// Receives the next frame, accounting bytes-in and receive latency.
fn recv_frame(shared: &Shared, codec: &mut FrameCodec, stream: &mut TcpStream) -> RecvStep {
    loop {
        match codec.poll_recv(stream) {
            Ok(Recv::Frame {
                request_id,
                msg,
                frame_bytes,
                recv_ns,
            }) => {
                shared.obs.add(Counter::NetBytesInTotal, frame_bytes);
                shared.obs.record(Hist::NetRecvNs, recv_ns);
                shared
                    .obs
                    .span_arg("net.recv", "net", SpanId::NONE, frame_bytes)
                    .finish();
                return RecvStep::Frame { request_id, msg };
            }
            Ok(Recv::Idle) => {
                if shared.stop.load(Ordering::SeqCst) {
                    return RecvStep::Closed;
                }
            }
            Ok(Recv::Eof) => return RecvStep::Closed,
            Err(_) => return RecvStep::Broken,
        }
    }
}

enum RecvStep {
    Frame {
        request_id: u64,
        msg: Message,
    },
    /// Orderly end: EOF at a frame boundary, or shutdown requested.
    Closed,
    /// Protocol or I/O failure; the caller should tell the peer if the
    /// socket still works, then close.
    Broken,
}

fn send_reply(
    shared: &Shared,
    codec: &mut FrameCodec,
    stream: &mut TcpStream,
    request_id: u64,
    msg: &Message,
) -> bool {
    let span = shared.obs.span("net.send", "net", SpanId::NONE);
    let t0 = Instant::now();
    let sent = codec.send(stream, request_id, msg);
    shared
        .obs
        .record(Hist::NetSendNs, t0.elapsed().as_nanos() as u64);
    span.finish();
    match sent {
        Ok(bytes) => {
            shared.obs.add(Counter::NetBytesOutTotal, bytes);
            true
        }
        Err(_) => false,
    }
}

fn handle_connection(shared: &Arc<Shared>, mut stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(
        shared.config.poll_interval_ms.max(1),
    )));
    let mut codec = FrameCodec::new();

    // Handshake: the first frame must be a HELLO naming a provisioned
    // tenant with the right token.
    let tenant = match recv_frame(shared, &mut codec, &mut stream) {
        RecvStep::Frame {
            request_id,
            msg: Message::Hello { tenant, token },
        } => match shared.tenants.get(&tenant) {
            Some(state) if state.spec.token == token => {
                if !send_reply(
                    shared,
                    &mut codec,
                    &mut stream,
                    request_id,
                    &Message::HelloOk,
                ) {
                    return;
                }
                tenant
            }
            _ => {
                shared.obs.add(Counter::NetAuthFailuresTotal, 1);
                send_reply(
                    shared,
                    &mut codec,
                    &mut stream,
                    request_id,
                    &Message::Error {
                        code: ERR_AUTH,
                        message: "unknown tenant or bad token".into(),
                    },
                );
                return;
            }
        },
        RecvStep::Frame { request_id, .. } => {
            send_reply(
                shared,
                &mut codec,
                &mut stream,
                request_id,
                &Message::Error {
                    code: ERR_PROTOCOL,
                    message: "expected HELLO as the first frame".into(),
                },
            );
            return;
        }
        RecvStep::Closed => return,
        RecvStep::Broken => {
            send_reply(
                shared,
                &mut codec,
                &mut stream,
                0,
                &Message::Error {
                    code: ERR_PROTOCOL,
                    message: "malformed frame".into(),
                },
            );
            return;
        }
    };
    let state = &shared.tenants[&tenant];

    // Each connection gets its own ReaderSession (own proxy RNG), which
    // feeds the shared ECALL scheduler — so concurrent connections batch
    // their enclave transitions exactly like in-process readers.
    let seed = shared.conn_seed.fetch_add(1, Ordering::SeqCst);
    let mut reader = lock(&shared.session).reader(seed);

    loop {
        // Graceful shutdown drains the request *in flight*, not the
        // whole pipeline: once stop is set, the connection closes at the
        // next request boundary even if more frames are already queued.
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        match recv_frame(shared, &mut codec, &mut stream) {
            RecvStep::Frame {
                request_id,
                msg: Message::Query { sql },
            } => {
                shared.obs.add(Counter::NetRequestsTotal, 1);
                let reply = match AdmissionGuard::acquire(shared, state) {
                    Some(_guard) => execute_query(state, &tenant, &mut reader, &sql),
                    None => {
                        shared.obs.add(Counter::NetBusyRepliesTotal, 1);
                        Message::Busy {
                            retry_after_ms: shared.config.retry_after_ms,
                        }
                    }
                };
                if !send_reply(shared, &mut codec, &mut stream, request_id, &reply) {
                    return;
                }
            }
            RecvStep::Frame {
                msg: Message::Goodbye,
                ..
            }
            | RecvStep::Closed => return,
            RecvStep::Frame { request_id, .. } => {
                send_reply(
                    shared,
                    &mut codec,
                    &mut stream,
                    request_id,
                    &Message::Error {
                        code: ERR_PROTOCOL,
                        message: "expected QUERY or GOODBYE".into(),
                    },
                );
                return;
            }
            RecvStep::Broken => {
                send_reply(
                    shared,
                    &mut codec,
                    &mut stream,
                    0,
                    &Message::Error {
                        code: ERR_PROTOCOL,
                        message: "malformed frame".into(),
                    },
                );
                return;
            }
        }
    }
}

fn execute_query(
    state: &TenantState,
    tenant: &str,
    reader: &mut ReaderSession,
    sql: &str,
) -> Message {
    let mut stmt = match parse(sql) {
        Ok(stmt) => stmt,
        Err(e) => {
            return Message::Error {
                code: ERR_QUERY,
                message: e.to_string(),
            }
        }
    };
    if let Statement::CreateTable { .. } = &stmt {
        let tables = lock(&state.tables);
        if *tables >= state.spec.max_tables {
            return Message::Error {
                code: ERR_QUOTA,
                message: format!(
                    "tenant {tenant} is at its table quota ({})",
                    state.spec.max_tables
                ),
            };
        }
    }
    qualify_statement(&mut stmt, tenant);
    let created = matches!(stmt, Statement::CreateTable { .. });
    match reader.execute_statement(stmt) {
        Ok(result) => {
            if created {
                *lock(&state.tables) += 1;
            }
            Message::Result {
                columns: result
                    .columns
                    .iter()
                    .map(|c| strip_namespace(c, tenant))
                    .collect(),
                rows: result.rows,
            }
        }
        Err(e) => Message::Error {
            code: ERR_QUERY,
            message: e.to_string(),
        },
    }
}

/// Holds one slot of both the global and the per-tenant in-flight
/// budget; both are released on drop.
struct AdmissionGuard<'a> {
    global: &'a AtomicUsize,
    tenant: &'a AtomicUsize,
}

fn try_acquire(counter: &AtomicUsize, max: usize) -> bool {
    let prev = counter.fetch_add(1, Ordering::SeqCst);
    if prev >= max {
        counter.fetch_sub(1, Ordering::SeqCst);
        return false;
    }
    true
}

impl<'a> AdmissionGuard<'a> {
    fn acquire(shared: &'a Shared, state: &'a TenantState) -> Option<Self> {
        if !try_acquire(&shared.inflight, shared.config.max_inflight_queries) {
            return None;
        }
        if !try_acquire(&state.inflight, state.spec.max_inflight) {
            shared.inflight.fetch_sub(1, Ordering::SeqCst);
            return None;
        }
        Some(AdmissionGuard {
            global: &shared.inflight,
            tenant: &state.inflight,
        })
    }
}

impl Drop for AdmissionGuard<'_> {
    fn drop(&mut self) {
        self.tenant.fetch_sub(1, Ordering::SeqCst);
        self.global.fetch_sub(1, Ordering::SeqCst);
    }
}

/// The shared-namespace name the server stores `table` under for
/// `tenant` — exposed so operators (and benchmarks) can pre-load a
/// tenant's tables in-process before serving them.
pub fn tenant_table_name(tenant: &str, table: &str) -> String {
    namespaced(tenant, table)
}
