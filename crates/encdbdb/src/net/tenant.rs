//! Tenant table namespacing (DESIGN.md §16.3).
//!
//! Every networked connection is bound to one tenant at handshake time.
//! The server never trusts table names off the wire: after parsing, it
//! rewrites the statement so every table reference — the target table,
//! the join table, and every qualified column reference — is prefixed
//! with `"{tenant}__"`. A tenant therefore cannot *name* another
//! tenant's table, much less read it: the rewritten AST simply has no
//! way to escape the prefix. Result column names are stripped of the
//! prefix before they go back on the wire, so tenants see their own
//! names round-trip unchanged.
//!
//! Tenant names may not contain `__` or `.` (rejected at provisioning
//! and at handshake), which keeps the `{tenant}__{table}` mapping
//! injective: no pair of distinct `(tenant, table)` inputs can collide
//! in the shared namespace.

use crate::sql::{ColumnRef, Filter, OrderTarget, SelectItem, Statement};

/// The shared-namespace name of `table` owned by `tenant`.
pub(crate) fn namespaced(tenant: &str, table: &str) -> String {
    format!("{tenant}__{table}")
}

/// Validates a tenant name for use as a namespace prefix.
pub(crate) fn validate_tenant_name(name: &str) -> Result<(), String> {
    if name.is_empty() {
        return Err("tenant name must not be empty".into());
    }
    if name.contains("__") || name.contains('.') {
        return Err(format!(
            "tenant name {name:?} must not contain \"__\" or '.'"
        ));
    }
    Ok(())
}

fn qualify_column(col: &mut ColumnRef, tenant: &str) {
    if let Some(table) = col.table.take() {
        col.table = Some(namespaced(tenant, &table));
    }
}

fn qualify_filter(filter: &mut Filter, tenant: &str) {
    match filter {
        Filter::Compare { column, .. }
        | Filter::Between { column, .. }
        | Filter::In { column, .. } => qualify_column(column, tenant),
        Filter::And(a, b) => {
            qualify_filter(a, tenant);
            qualify_filter(b, tenant);
        }
    }
}

/// Rewrites every table reference in `stmt` into `tenant`'s namespace.
pub(crate) fn qualify_statement(stmt: &mut Statement, tenant: &str) {
    match stmt {
        Statement::CreateTable { name, .. } => *name = namespaced(tenant, name),
        Statement::Insert { table, .. } => *table = namespaced(tenant, table),
        Statement::Select {
            items,
            table,
            join,
            filter,
            group_by,
            order_by,
            ..
        } => {
            *table = namespaced(tenant, table);
            if let Some(j) = join {
                j.table = namespaced(tenant, &j.table);
                qualify_column(&mut j.left, tenant);
                qualify_column(&mut j.right, tenant);
            }
            for item in items {
                match item {
                    SelectItem::Column(c) => qualify_column(c, tenant),
                    SelectItem::Aggregate {
                        column: Some(c), ..
                    } => qualify_column(c, tenant),
                    SelectItem::Aggregate { column: None, .. } => {}
                }
            }
            if let Some(f) = filter {
                qualify_filter(f, tenant);
            }
            for c in group_by {
                qualify_column(c, tenant);
            }
            for key in order_by {
                if let OrderTarget::Column(name) = &mut key.target {
                    // An ORDER BY target naming an output column keeps a
                    // qualified "t.c" spelling as a flat string; prefix
                    // the table part so it still matches the (rewritten)
                    // output name.
                    if let Some((table, column)) = name.split_once('.') {
                        *name = format!("{}.{column}", namespaced(tenant, table));
                    }
                }
            }
        }
        Statement::Delete { table, filter } => {
            *table = namespaced(tenant, table);
            if let Some(f) = filter {
                qualify_filter(f, tenant);
            }
        }
    }
}

/// Strips `tenant`'s namespace prefix from a result column name, so
/// `"acme__t.v"` and `"sum(acme__t.v)"` read back as `"t.v"` and
/// `"sum(t.v)"`.
pub(crate) fn strip_namespace(name: &str, tenant: &str) -> String {
    name.replace(&format!("{tenant}__"), "")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sql::parse;

    fn rewrite(sql: &str, tenant: &str) -> Statement {
        let mut stmt = parse(sql).expect("parse");
        qualify_statement(&mut stmt, tenant);
        stmt
    }

    #[test]
    fn create_insert_delete_are_prefixed() {
        let Statement::CreateTable { name, .. } = rewrite("CREATE TABLE t (c ED2(8))", "acme")
        else {
            panic!("expected create");
        };
        assert_eq!(name, "acme__t");
        let Statement::Insert { table, .. } = rewrite("INSERT INTO t VALUES ('a')", "acme") else {
            panic!("expected insert");
        };
        assert_eq!(table, "acme__t");
        let Statement::Delete { table, filter } = rewrite("DELETE FROM t WHERE c = 'x'", "acme")
        else {
            panic!("expected delete");
        };
        assert_eq!(table, "acme__t");
        // Bare filter columns stay bare — they resolve against the
        // (already rewritten) target table.
        assert_eq!(filter.unwrap().column_ref().unwrap().table, None);
    }

    #[test]
    fn select_with_join_qualifies_every_table_reference() {
        let stmt = rewrite(
            "SELECT a.x, SUM(b.y) FROM a JOIN b ON a.k = b.k \
             WHERE a.x >= 'm' AND a.x < 'z' GROUP BY a.x ORDER BY a.x DESC",
            "acme",
        );
        let Statement::Select {
            items,
            table,
            join,
            filter,
            group_by,
            order_by,
            ..
        } = stmt
        else {
            panic!("expected select");
        };
        assert_eq!(table, "acme__a");
        let join = join.expect("join");
        assert_eq!(join.table, "acme__b");
        assert_eq!(join.left, ColumnRef::qualified("acme__a", "k"));
        assert_eq!(join.right, ColumnRef::qualified("acme__b", "k"));
        assert_eq!(
            items[0],
            SelectItem::Column(ColumnRef::qualified("acme__a", "x"))
        );
        let SelectItem::Aggregate {
            column: Some(agg_col),
            ..
        } = &items[1]
        else {
            panic!("expected aggregate");
        };
        assert_eq!(*agg_col, ColumnRef::qualified("acme__b", "y"));
        // Both conjuncts of the AND filter are rewritten.
        let Filter::And(a, b) = filter.expect("filter") else {
            panic!("expected AND");
        };
        assert_eq!(a.column_ref().unwrap().table.as_deref(), Some("acme__a"));
        assert_eq!(b.column_ref().unwrap().table.as_deref(), Some("acme__a"));
        assert_eq!(group_by[0], ColumnRef::qualified("acme__a", "x"));
        let OrderTarget::Column(target) = &order_by[0].target else {
            panic!("expected column order target");
        };
        assert_eq!(target, "acme__a.x");
    }

    #[test]
    fn positional_order_by_and_bare_columns_are_untouched() {
        let stmt = rewrite("SELECT c FROM t WHERE c = 'v' ORDER BY 1", "acme");
        let Statement::Select {
            items,
            table,
            order_by,
            ..
        } = stmt
        else {
            panic!("expected select");
        };
        assert_eq!(table, "acme__t");
        assert_eq!(items[0], SelectItem::Column(ColumnRef::bare("c")));
        assert_eq!(order_by[0].target, OrderTarget::Position(1));
    }

    #[test]
    fn strip_undoes_the_prefix_in_output_names() {
        for (wire, local) in [
            ("acme__t.v", "t.v"),
            ("sum(acme__t.v)", "sum(t.v)"),
            ("min(acme__a.x)", "min(a.x)"),
            ("count", "count"),
            ("v", "v"),
        ] {
            assert_eq!(strip_namespace(wire, "acme"), local);
        }
    }

    #[test]
    fn tenant_name_validation() {
        assert!(validate_tenant_name("acme").is_ok());
        assert!(validate_tenant_name("tenant-2").is_ok());
        assert!(validate_tenant_name("").is_err());
        assert!(validate_tenant_name("a__b").is_err());
        assert!(validate_tenant_name("a.b").is_err());
    }
}
