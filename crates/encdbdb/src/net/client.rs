//! Thin blocking client for the wire protocol (DESIGN.md §16.5).
//!
//! Mirrors the in-process `Session` query API: connect, authenticate as
//! a tenant, then [`NetClient::execute`] SQL and get a [`QueryResult`]
//! back. The socket stays blocking with no read timeout — the client has
//! nothing to poll for — and one [`FrameCodec`] is reused for the whole
//! connection, so steady-state querying does not allocate per message.

use super::wire::{net_io, FrameCodec, Message, Recv};
use crate::error::DbError;
use crate::proxy::QueryResult;
use std::net::{TcpStream, ToSocketAddrs};

/// A connected, authenticated wire-protocol client.
#[derive(Debug)]
pub struct NetClient {
    stream: TcpStream,
    codec: FrameCodec,
    next_id: u64,
}

impl NetClient {
    /// Connects to a [`super::NetServer`] and authenticates as `tenant`.
    ///
    /// # Errors
    ///
    /// Fails on socket errors, an authentication rejection, or a
    /// connection-level `BUSY` (the server shed this connection; retry
    /// after the indicated backoff).
    pub fn connect(
        addr: impl ToSocketAddrs,
        tenant: &str,
        token: &str,
    ) -> Result<NetClient, DbError> {
        let stream = TcpStream::connect(addr).map_err(net_io)?;
        stream.set_nodelay(true).map_err(net_io)?;
        let mut client = NetClient {
            stream,
            codec: FrameCodec::new(),
            next_id: 1,
        };
        match client.roundtrip(&Message::Hello {
            tenant: tenant.into(),
            token: token.into(),
        })? {
            Message::HelloOk => Ok(client),
            other => Err(reply_to_error(other)),
        }
    }

    /// Sends one request and blocks for the matching reply.
    fn roundtrip(&mut self, msg: &Message) -> Result<Message, DbError> {
        let id = self.next_id;
        self.next_id += 1;
        self.codec.send(&mut self.stream, id, msg)?;
        loop {
            match self.codec.poll_recv(&mut self.stream)? {
                Recv::Frame {
                    request_id, msg, ..
                } => {
                    // A connection-level BUSY shed at accept time carries
                    // id 0; anything else must echo our request id.
                    if request_id != id && !(request_id == 0 && matches!(msg, Message::Busy { .. }))
                    {
                        return Err(DbError::Net(format!(
                            "response id mismatch: sent {id}, got {request_id}"
                        )));
                    }
                    return Ok(msg);
                }
                // The socket is blocking with no read timeout, so Idle
                // is unreachable; treat it as a retry for robustness.
                Recv::Idle => {}
                Recv::Eof => {
                    return Err(DbError::Net("server closed the connection".into()));
                }
            }
        }
    }

    /// Executes one SQL statement on the server.
    ///
    /// # Errors
    ///
    /// [`DbError::ServerBusy`] when admission control shed the request
    /// (retry after the hinted backoff); [`DbError::Net`] for relayed
    /// server errors and transport failures.
    pub fn execute(&mut self, sql: &str) -> Result<QueryResult, DbError> {
        match self.roundtrip(&Message::Query { sql: sql.into() })? {
            Message::Result { columns, rows } => Ok(QueryResult { columns, rows }),
            other => Err(reply_to_error(other)),
        }
    }

    /// Closes the connection with an orderly `GOODBYE`.
    pub fn close(mut self) {
        let _ = self
            .codec
            .send(&mut self.stream, self.next_id, &Message::Goodbye);
    }
}

fn reply_to_error(msg: Message) -> DbError {
    match msg {
        Message::Busy { retry_after_ms } => DbError::ServerBusy {
            retry_after_ms: u64::from(retry_after_ms),
        },
        Message::Error { code, message } => DbError::Net(format!("server error {code}: {message}")),
        other => DbError::Net(format!("unexpected reply: {other:?}")),
    }
}
