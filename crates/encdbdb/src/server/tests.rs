//! Unit tests of the server core: table creation, partition
//! routing, and policy thresholds.

use super::*;
use crate::schema::{ColumnSpec, TablePartitioning};
use encdict::EdKind;

fn schema() -> TableSchema {
    TableSchema::new(
        "t",
        vec![
            ColumnSpec::new("name", DictChoice::Encrypted(EdKind::Ed1), 12),
            ColumnSpec::new("city", DictChoice::Plain, 12),
        ],
    )
}

#[test]
fn create_empty_table_and_count() {
    let server = DbaasServer::with_enclave(DictEnclave::with_seed(1));
    server.create_table(schema()).unwrap();
    assert_eq!(server.row_count("t").unwrap(), 0);
    assert!(server.create_table(schema()).is_err(), "duplicate rejected");
    assert!(server.row_count("missing").is_err());
    assert_eq!(server.epoch("t").unwrap(), 0);
    assert!(!server.merge_in_flight("t").unwrap());
}

#[test]
fn create_partitioned_table_has_one_state_per_shard() {
    let server = DbaasServer::with_enclave(DictEnclave::with_seed(9));
    let schema = schema().with_partitioning(TablePartitioning::new(
        "city",
        vec![b"g".to_vec(), b"p".to_vec()],
    ));
    server.create_table(schema).unwrap();
    let stats = server.compaction_stats("t").unwrap();
    assert_eq!(stats.partition_epochs, vec![0, 0, 0]);
    assert_eq!(server.row_count("t").unwrap(), 0);
}

#[test]
fn invalid_partitioning_specs_rejected() {
    let server = DbaasServer::with_enclave(DictEnclave::with_seed(10));
    let unsorted = schema().with_partitioning(TablePartitioning::new(
        "city",
        vec![b"p".to_vec(), b"g".to_vec()],
    ));
    assert!(matches!(
        server.create_table(unsorted),
        Err(DbError::Partition(_))
    ));
    let ghost = schema().with_partitioning(TablePartitioning::new("ghost", vec![b"g".to_vec()]));
    assert!(matches!(
        server.create_table(ghost),
        Err(DbError::ColumnNotFound(_))
    ));
    // A partitioned schema cannot take the single-set deploy path.
    let part = schema().with_partitioning(TablePartitioning::new("city", vec![b"g".to_vec()]));
    assert!(matches!(
        server.deploy_table(part, vec![]),
        Err(DbError::Partition(_))
    ));
}

#[test]
fn insert_requires_matching_arity_and_forms() {
    let server = DbaasServer::with_enclave(DictEnclave::with_seed(2));
    server.provision_direct(encdbdb_crypto::Key128::from_bytes([1; 16]));
    server.create_table(schema()).unwrap();
    // Wrong arity.
    let err = server
        .insert("t", &[vec![CellValue::Plain(b"x".to_vec())]])
        .unwrap_err();
    assert!(matches!(err, DbError::ArityMismatch { .. }));
    // Wrong form (plain cell for encrypted column).
    let err = server
        .insert(
            "t",
            &[vec![
                CellValue::Plain(b"x".to_vec()),
                CellValue::Plain(b"y".to_vec()),
            ]],
        )
        .unwrap_err();
    assert!(matches!(err, DbError::UnsupportedFilter(_)));
}

#[test]
fn compaction_policy_thresholds() {
    let policy = CompactionPolicy {
        max_delta_rows: 10,
        max_invalid_fraction: 0.5,
    };
    assert!(!policy.triggered(9, 100, 100));
    assert!(policy.triggered(10, 100, 100));
    assert!(!policy.triggered(0, 100, 51));
    assert!(policy.triggered(0, 100, 50));
    assert!(!policy.triggered(0, 0, 0), "empty table never triggers");
}

#[test]
fn plain_partition_column_routes_server_side() {
    let server = DbaasServer::with_enclave(DictEnclave::with_seed(3));
    server.provision_direct(encdbdb_crypto::Key128::from_bytes([2; 16]));
    let schema = TableSchema::new("r", vec![ColumnSpec::new("v", DictChoice::Plain, 8)])
        .with_partitioning(TablePartitioning::new("v", vec![b"m".to_vec()]));
    server.create_table(schema).unwrap();
    server
        .insert(
            "r",
            &[
                vec![CellValue::Plain(b"apple".to_vec())],
                vec![CellValue::Plain(b"zebra".to_vec())],
                vec![CellValue::Plain(b"m".to_vec())],
            ],
        )
        .unwrap();
    // Shard 0: < "m" (apple); shard 1: >= "m" (zebra, m).
    let t = server.table_handle("r").unwrap();
    assert_eq!(lock(&t.partitions[0].state).delta_rows, 1);
    assert_eq!(lock(&t.partitions[1].state).delta_rows, 2);
    assert_eq!(server.row_count("r").unwrap(), 3);
}

#[test]
fn encrypted_partition_column_requires_routing_ids() {
    let server = DbaasServer::with_enclave(DictEnclave::with_seed(4));
    server.provision_direct(encdbdb_crypto::Key128::from_bytes([3; 16]));
    let schema = TableSchema::new(
        "e",
        vec![ColumnSpec::new("v", DictChoice::Encrypted(EdKind::Ed9), 8)],
    )
    .with_partitioning(TablePartitioning::new("v", vec![b"m".to_vec()]));
    server.create_table(schema).unwrap();
    let err = server
        .insert("e", &[vec![CellValue::Encrypted(vec![0; 16])]])
        .unwrap_err();
    assert!(matches!(err, DbError::Partition(_)));
}

// Full end-to-end behaviour is covered by the proxy/session tests and
// the concurrent stress suite, which exercise deploy → select →
// insert → delete → merge, including background compactions across
// partitions.
