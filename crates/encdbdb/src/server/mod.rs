//! The untrusted DBaaS server: storage plus the query evaluation engine
//! (paper Fig. 5, steps 6–13).
//!
//! The server holds encrypted dictionaries, plaintext attribute vectors and
//! delta stores, hosts the dictionary enclaves, and evaluates decomposed
//! queries: it passes the encrypted range filter to the enclave (step 8),
//! scans the attribute vector for the returned ValueIDs (step 11), applies
//! validity, and renders result columns by *undoing the split*:
//! `eC = (eD_j | j = AV_i ∧ i ∈ rid)` (step 12). The server never sees a
//! plaintext of an encrypted column — values enter and leave as PAE
//! ciphertexts.
//!
//! # Partition layer (DESIGN.md §10)
//!
//! Every table is an ordered set of **range partitions** over a chosen
//! partition column's plaintext domain (the `partition` submodule):
//! owner-provisioned split points; the default of no split points is one
//! partition — the pre-partitioning behavior. Each partition carries its
//! own epoch-tagged main state, delta stores, validity vectors and
//! compaction trigger, so
//!
//! * scans and aggregates fan out across partitions on scoped threads
//!   (the `snapshot` submodule), one histogram and at most one
//!   search/`Aggregate` ECALL contribution per *non-empty* partition;
//! * partition pruning skips shards whose key range provably misses the
//!   filter (the proxy supplies the scope for encrypted partition
//!   columns; plaintext ones prune server-side);
//! * a background merge captures/rebuilds/publishes one partition at a
//!   time (the `compaction` submodule) while queries keep running against
//!   every other partition's live snapshot.
//!
//! # Concurrency model (DESIGN.md §9)
//!
//! [`DbaasServer`] is a cheaply clonable *handle*: every clone shares the
//! same storage, so any number of reader sessions can execute queries
//! concurrently. Each partition's main store is an immutable, epoch-tagged
//! [`MainSnapshot`](encdict::dynamic::MainSnapshot) published behind an
//! `Arc`; queries acquire an owned partition snapshot (Arc clone of the
//! main state plus a frozen copy of the small delta) under one short mutex
//! and then run entirely lock-free. Writes append to the owning
//! partition's delta store under the same short mutex.

mod compaction;
mod join;
mod partition;
mod scheduler;
mod snapshot;
mod stats;
mod storage;
mod table;

pub use compaction::CompactionPolicy;
pub use stats::{CompactionStats, DurabilityStats, QueryStats};
pub use storage::{DurabilityPolicy, FailPoint};

pub(crate) use partition::{ColumnDelta, MainColumn};
pub(crate) use scheduler::{BatchKey, CallClass, EcallScheduler};
pub(crate) use snapshot::{fan_out, matching_rids_multi, EnclaveCtx};
pub(crate) use table::ServerTable;

use crate::error::DbError;
use crate::obs::{Counter, Hist, Obs, SpanId};
use crate::schema::{DictChoice, TableSchema};
use colstore::dictionary::AttributeVector;
use encdict::avsearch::{Parallelism, SetSearchStrategy};
use encdict::{DictEnclave, EncryptedDictionary, EncryptedRange, PlainDictionary, RangeQuery};
use std::collections::HashMap;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex, MutexGuard, RwLock};
use std::time::Duration;

/// Locks a mutex, recovering the inner data if a panicking thread poisoned
/// it (a reader assertion failure must not cascade into every other
/// session).
pub(crate) fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// How often a merge or delete retries when compaction publishes race it.
pub(crate) const MERGE_RETRIES: usize = 8;

/// One value cell crossing the server boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CellValue {
    /// A PAE ciphertext (encrypted column).
    Encrypted(Vec<u8>),
    /// A plaintext value (PLAIN column).
    Plain(Vec<u8>),
}

/// A filter as seen by the server: the filtered column plus one or more
/// ranges in the form matching the column's protection. A single range is
/// the ordinary comparison/BETWEEN case; multiple ranges are a
/// *disjunction* on that one column (the `IN (...)` lowering — one
/// equality range per listed value, RecordID results unioned), while
/// separate [`ServerFilter`]s still intersect.
#[derive(Debug, Clone)]
pub enum ServerFilter {
    /// Encrypted range(s) for an encrypted column.
    Encrypted {
        /// Filtered column name.
        column: String,
        /// Encrypted ranges τ (disjunction; empty = the conjunction was
        /// provably contradictory, matching nothing without any search).
        ranges: Vec<EncryptedRange>,
    },
    /// Plaintext range(s) for a PLAIN column.
    Plain {
        /// Filtered column name.
        column: String,
        /// Plaintext ranges (disjunction; empty = provably matches
        /// nothing).
        ranges: Vec<RangeQuery>,
    },
}

impl ServerFilter {
    /// A single-range encrypted filter.
    pub fn encrypted(column: impl Into<String>, range: EncryptedRange) -> Self {
        ServerFilter::Encrypted {
            column: column.into(),
            ranges: vec![range],
        }
    }

    /// A single-range plaintext filter.
    pub fn plain(column: impl Into<String>, range: RangeQuery) -> Self {
        ServerFilter::Plain {
            column: column.into(),
            ranges: vec![range],
        }
    }

    pub(crate) fn column(&self) -> &str {
        match self {
            ServerFilter::Encrypted { column, .. } | ServerFilter::Plain { column, .. } => column,
        }
    }
}

/// A decomposed query as produced by the proxy.
///
/// `scope` / `partition_ids` carry the proxy's partition routing: the
/// proxy sees plaintext filter ranges and insert values, so *it* computes
/// which range partitions a query can touch and which shard each inserted
/// row belongs to. `None` means "no hint" — the server then scans every
/// partition (pruning plaintext partition columns itself) or routes by
/// plaintext value. Revealing the scope is the documented pruning leakage
/// (DESIGN.md §10).
#[derive(Debug, Clone)]
pub enum ServerQuery {
    /// Range select over one table with a conjunction of filters.
    Select {
        /// Source table.
        table: String,
        /// Projected columns; empty means all.
        columns: Vec<String>,
        /// Per-column filters (conjunction; empty selects everything).
        filters: Vec<ServerFilter>,
        /// Proxy-computed partition scope (`None` = all partitions).
        scope: Option<Vec<usize>>,
    },
    /// Grouped aggregation (the `exec` engine).
    Aggregate {
        /// Source table.
        table: String,
        /// The compiled aggregate plan.
        plan: crate::exec::plan::AggregatePlan,
        /// Per-column filters (conjunction; empty aggregates everything).
        filters: Vec<ServerFilter>,
        /// Proxy-computed partition scope (`None` = all partitions).
        scope: Option<Vec<usize>>,
    },
    /// Append rows (delta store).
    Insert {
        /// Target table.
        table: String,
        /// Rows of cells, one cell per column in schema order.
        rows: Vec<Vec<CellValue>>,
        /// Proxy-computed target partition per row (`None` = server
        /// routes; required when the partition column is encrypted).
        partition_ids: Option<Vec<usize>>,
    },
    /// Invalidate matching rows.
    Delete {
        /// Target table.
        table: String,
        /// Per-column filters (conjunction; empty deletes everything).
        filters: Vec<ServerFilter>,
        /// Proxy-computed partition scope (`None` = all partitions).
        scope: Option<Vec<usize>>,
    },
    /// Two-table equi-join (the `exec` engine's join pipeline).
    Join {
        /// The build side.
        left: JoinSideQuery,
        /// The probe side.
        right: JoinSideQuery,
    },
}

/// One side of a decomposed equi-join: which table to scan, how to filter
/// it, which column is the join key and which columns to render per
/// joined row. The proxy computes `scope` per side exactly like for
/// single-table selects.
#[derive(Debug, Clone)]
pub struct JoinSideQuery {
    /// The side's table.
    pub table: String,
    /// The join-key column.
    pub key: String,
    /// Columns rendered per joined row (bare names; the response
    /// qualifies them as `table.column`).
    pub columns: Vec<String>,
    /// Per-column filters (conjunction; empty scans everything).
    pub filters: Vec<ServerFilter>,
    /// Proxy-computed partition scope (`None` = all partitions).
    pub scope: Option<Vec<usize>>,
}

/// The server's reply to a [`ServerQuery`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryOutcome {
    /// Result rows of a select or aggregate.
    Rows(SelectResponse),
    /// Number of rows inserted or deleted.
    Affected(usize),
}

/// The server's reply to a select.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SelectResponse {
    /// Projected column names.
    pub columns: Vec<String>,
    /// One entry per result row; cells in `columns` order.
    pub rows: Vec<Vec<CellValue>>,
}

/// A deployed column as prepared by the data owner (step 3/4 of Fig. 5).
#[derive(Debug)]
pub enum DeployedColumn {
    /// Encrypted dictionary + attribute vector.
    Encrypted(EncryptedDictionary, AttributeVector),
    /// Plaintext dictionary + attribute vector.
    Plain(PlainDictionary, AttributeVector),
}

/// Shared, copy-on-read server configuration.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Config {
    pub(crate) parallelism: Parallelism,
    pub(crate) set_strategy: SetSearchStrategy,
    pub(crate) policy: Option<CompactionPolicy>,
    pub(crate) merge_throttle: Option<Duration>,
}

/// The DBaaS server — a cheaply clonable handle over shared state; see the
/// module docs for the concurrency model.
#[derive(Debug, Clone)]
pub struct DbaasServer {
    /// The enclave serving query-path ECALLs (search, re-encrypt,
    /// aggregate). Locked per ECALL.
    enclave: Arc<Mutex<DictEnclave>>,
    /// A second enclave instance (same measured code) dedicated to merges,
    /// so a long compaction ECALL never blocks the query path.
    merge_enclave: Arc<Mutex<DictEnclave>>,
    /// The cross-session ECALL batching scheduler fronting `enclave`
    /// (DESIGN.md §15): concurrent read-path calls coalesce into one
    /// transition per dispatch round.
    sched: Arc<EcallScheduler>,
    tables: Arc<RwLock<HashMap<String, Arc<ServerTable>>>>,
    config: Arc<Mutex<Config>>,
    last_stats: Arc<Mutex<QueryStats>>,
    /// Durable storage (DESIGN.md §12), attached via
    /// [`DbaasServer::attach_durability`] or [`DbaasServer::recover`];
    /// `None` runs the server purely in memory (the pre-§12 behavior).
    storage: Arc<Mutex<Option<Arc<storage::Storage>>>>,
    /// The observability domain (DESIGN.md §13): metrics registry, trace
    /// ring and ECALL leakage ledger, shared by every clone.
    obs: Obs,
}

impl DbaasServer {
    /// Creates a server with fresh enclaves.
    pub fn new() -> Self {
        Self::with_enclaves(DictEnclave::new(), DictEnclave::new())
    }

    /// Creates a server around an existing query enclave (e.g.
    /// deterministic); the merge enclave is OS-seeded.
    pub fn with_enclave(enclave: DictEnclave) -> Self {
        Self::with_enclaves(enclave, DictEnclave::new())
    }

    /// Creates a server around explicit query and merge enclaves.
    pub fn with_enclaves(query: DictEnclave, merge: DictEnclave) -> Self {
        let obs = Obs::new();
        let enclave = Arc::new(Mutex::new(query));
        DbaasServer {
            sched: Arc::new(EcallScheduler::new(Arc::clone(&enclave), obs.clone())),
            enclave,
            merge_enclave: Arc::new(Mutex::new(merge)),
            tables: Arc::new(RwLock::new(HashMap::new())),
            config: Arc::new(Mutex::new(Config {
                parallelism: Parallelism::Serial,
                set_strategy: SetSearchStrategy::PaperLinear,
                // A bounded delta by default: snapshots copy the delta
                // side, so it must not grow without limit.
                policy: Some(CompactionPolicy::default()),
                merge_throttle: None,
            })),
            last_stats: Arc::new(Mutex::new(QueryStats::default())),
            storage: Arc::new(Mutex::new(None)),
            obs,
        }
    }

    /// Turns cross-session ECALL batching on or off (on by default).
    /// When off, every read-path call takes the direct
    /// one-lock-acquisition-per-call path — the pre-scheduler behavior,
    /// used as the bypass leg of differential tests and benchmarks.
    pub fn set_ecall_batching(&self, on: bool) {
        self.sched.set_enabled(on);
    }

    /// Whether cross-session ECALL batching is currently on.
    pub fn ecall_batching(&self) -> bool {
        self.sched.enabled()
    }

    /// The shared ECALL scheduler fronting the query enclave.
    pub(crate) fn scheduler(&self) -> &EcallScheduler {
        &self.sched
    }

    /// This server's observability domain: metrics registry snapshots,
    /// trace-span export and the ECALL leakage ledger (DESIGN.md §13).
    /// Shared by all clones (and thus all reader sessions) of this
    /// server.
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Configures attribute-vector scan parallelism.
    pub fn set_parallelism(&self, parallelism: Parallelism) {
        lock(&self.config).parallelism = parallelism;
    }

    /// Configures the membership strategy for unsorted-kind results.
    pub fn set_set_strategy(&self, strategy: SetSearchStrategy) {
        lock(&self.config).set_strategy = strategy;
    }

    /// Installs (or removes) the threshold-driven compaction policy. The
    /// default is [`CompactionPolicy::default`] — read snapshots copy the
    /// delta side, so each partition's delta must stay bounded. `None`
    /// disables automatic merges entirely (deterministic single-threaded
    /// deployments; the caller then owns keeping the deltas small via
    /// [`DbaasServer::merge_table`]).
    pub fn set_compaction_policy(&self, policy: Option<CompactionPolicy>) {
        lock(&self.config).policy = policy;
    }

    /// Paces compaction: sleep this long after each column merge, bounding
    /// the rebuild's resource share (and, in tests, pinning a merge
    /// in-flight long enough to observe reader overlap).
    pub fn set_merge_throttle(&self, throttle: Option<Duration>) {
        lock(&self.config).merge_throttle = throttle;
    }

    /// Locks and returns the query enclave (attestation/provisioning and
    /// counter inspection pass-through).
    pub fn enclave(&self) -> MutexGuard<'_, DictEnclave> {
        lock(&self.enclave)
    }

    /// Locks and returns the merge enclave.
    pub fn merge_enclave(&self) -> MutexGuard<'_, DictEnclave> {
        lock(&self.merge_enclave)
    }

    /// Both enclave instances, for provisioning loops.
    pub(crate) fn enclave_handles(&self) -> [&Arc<Mutex<DictEnclave>>; 2] {
        [&self.enclave, &self.merge_enclave]
    }

    /// Installs `SK_DB` directly into both enclaves (trusted-setup
    /// variant, §4.2).
    pub fn provision_direct(&self, skdb: encdbdb_crypto::Key128) {
        self.enclave().provision_direct(skdb.clone());
        self.merge_enclave().provision_direct(skdb);
    }

    /// Latency breakdown of the most recent select on this handle's shared
    /// state. With concurrent readers, prefer per-query inspection through
    /// a single session at a time.
    pub fn last_stats(&self) -> QueryStats {
        *lock(&self.last_stats)
    }

    /// Deploys an unpartitioned encrypted table (Fig. 5 step 4).
    ///
    /// # Errors
    ///
    /// Returns [`DbError::TableExists`] on duplicates,
    /// [`DbError::ArityMismatch`] if columns don't match the schema, or
    /// [`DbError::Partition`] if the schema declares more than one
    /// partition (use [`DbaasServer::deploy_table_partitioned`]).
    pub fn deploy_table(
        &self,
        schema: TableSchema,
        columns: Vec<DeployedColumn>,
    ) -> Result<(), DbError> {
        if schema.partition_count() > 1 {
            return Err(DbError::Partition(format!(
                "table {} declares {} partitions; deploy one column set per partition",
                schema.name,
                schema.partition_count()
            )));
        }
        self.deploy_table_partitioned(schema, vec![columns])
    }

    /// Deploys a range-partitioned table: one deployed column set per
    /// partition, in partition order. The data owner splits the plaintext
    /// rows by the partition column and encrypts every shard separately
    /// (each shard gets its own dictionaries), so the server never learns
    /// more than shard residency — which the schema's split points make
    /// public by design.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::TableExists`] on duplicates,
    /// [`DbError::ArityMismatch`] / [`DbError::Partition`] on malformed
    /// column sets.
    pub fn deploy_table_partitioned(
        &self,
        schema: TableSchema,
        parts: Vec<Vec<DeployedColumn>>,
    ) -> Result<(), DbError> {
        let name = schema.name.clone();
        let table = Arc::new(ServerTable::build(schema, parts)?);
        let mut tables = self.tables.write().unwrap_or_else(|e| e.into_inner());
        if tables.contains_key(&name) {
            return Err(DbError::TableExists(name));
        }
        // With durable storage attached, a table must be recoverable from
        // the moment it accepts writes: persist the manifest, the epoch-0
        // snapshots and the WAL header under the tables write lock, and
        // fail the deploy if that fails.
        if let Some(storage) = lock(&self.storage).clone() {
            storage.persist_new_table(&table)?;
        }
        tables.insert(name, table);
        Ok(())
    }

    /// Registers an empty table (SQL `CREATE TABLE` path; all data arrives
    /// through inserts into the delta stores). A partitioned schema gets
    /// one empty partition per split range.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::TableExists`] on duplicates or
    /// [`DbError::Partition`] / [`DbError::ColumnNotFound`] for invalid
    /// partitioning specs.
    pub fn create_table(&self, schema: TableSchema) -> Result<(), DbError> {
        let empty_columns = || {
            schema
                .columns
                .iter()
                .map(|spec| match spec.choice {
                    DictChoice::Encrypted(kind) => {
                        let dict = table::empty_encrypted_dict(&schema.name, spec, kind);
                        DeployedColumn::Encrypted(dict, AttributeVector::new())
                    }
                    DictChoice::Plain => {
                        let dict = table::empty_plain_dict(spec.max_len);
                        DeployedColumn::Plain(dict, AttributeVector::new())
                    }
                })
                .collect::<Vec<_>>()
        };
        let parts = (0..schema.partition_count())
            .map(|_| empty_columns())
            .collect();
        self.deploy_table_partitioned(schema, parts)
    }

    /// The schema of a deployed table.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::TableNotFound`] if absent.
    pub fn schema(&self, table: &str) -> Result<TableSchema, DbError> {
        Ok(self.table_handle(table)?.schema.clone())
    }

    /// Total number of valid rows in a table, across all partitions.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::TableNotFound`] if absent.
    pub fn row_count(&self, table: &str) -> Result<usize, DbError> {
        let t = self.table_handle(table)?;
        Ok(t.partitions
            .iter()
            .map(|p| {
                let state = lock(&p.state);
                state.main_validity.count_valid() + state.delta_validity.count_valid()
            })
            .sum())
    }

    /// Storage size in bytes of one column's main representation
    /// (Table 6), summed over partitions.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::TableNotFound`]/[`DbError::ColumnNotFound`].
    pub fn column_storage_size(&self, table: &str, column: &str) -> Result<usize, DbError> {
        let t = self.table_handle(table)?;
        let (idx, _) = t
            .schema
            .column(column)
            .ok_or_else(|| DbError::ColumnNotFound(column.to_string()))?;
        let mut total = 0usize;
        for partition in &t.partitions {
            let snap = partition.snapshot();
            total += match (&snap.main.columns[idx], &snap.deltas[idx]) {
                (MainColumn::Encrypted(main), ColumnDelta::Encrypted(delta)) => {
                    main.dict().storage_size()
                        + main.av().packed_size(main.dict().len())
                        + delta.storage_size()
                }
                (MainColumn::Plain { dict, av }, _) => {
                    dict.storage_size() + av.packed_size(dict.len())
                }
                _ => unreachable!("schema/storage mismatch"),
            };
        }
        Ok(total)
    }

    /// The highest merge generation among a table's partitions (each
    /// partition publishes epochs independently; see
    /// [`DbaasServer::compaction_stats`] for the per-partition view).
    ///
    /// # Errors
    ///
    /// Returns [`DbError::TableNotFound`] if absent.
    pub fn epoch(&self, table: &str) -> Result<u64, DbError> {
        let t = self.table_handle(table)?;
        Ok(t.partitions.iter().map(|p| p.epoch()).max().unwrap_or(0))
    }

    /// Whether a compaction is currently rebuilding any partition of this
    /// table.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::TableNotFound`] if absent.
    pub fn merge_in_flight(&self, table: &str) -> Result<bool, DbError> {
        let t = self.table_handle(table)?;
        Ok(t.partitions.iter().any(|p| p.merge_in_flight()))
    }

    /// Compaction counters and live state of one table, including the
    /// per-partition epochs.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::TableNotFound`] if absent.
    pub fn compaction_stats(&self, table: &str) -> Result<CompactionStats, DbError> {
        let t = self.table_handle(table)?;
        let mut partition_epochs = Vec::with_capacity(t.partitions.len());
        let mut delta_rows = 0usize;
        let mut merge_in_flight = false;
        for p in &t.partitions {
            let state = lock(&p.state);
            partition_epochs.push(state.main.epoch);
            delta_rows += state.delta_rows;
            merge_in_flight |= state.merge_in_flight;
        }
        let last_error = lock(&t.last_error).clone();
        Ok(CompactionStats {
            epoch: partition_epochs.iter().copied().max().unwrap_or(0),
            partition_epochs,
            merges_completed: t.merges_completed.load(Ordering::SeqCst),
            merges_aborted: t.merges_aborted.load(Ordering::SeqCst),
            merges_failed: t.merges_failed.load(Ordering::SeqCst),
            rows_compacted: t.rows_compacted.load(Ordering::SeqCst),
            errors_total: t.errors_total.load(Ordering::SeqCst),
            delta_rows,
            merge_in_flight,
            last_error,
        })
    }

    /// Names of every deployed table, in unspecified order. The net
    /// layer uses this to seed per-tenant quota counters (tables are
    /// namespaced by tenant prefix) and to drain compaction on shutdown.
    pub fn table_names(&self) -> Vec<String> {
        self.tables
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .keys()
            .cloned()
            .collect()
    }

    /// Blocks until no compaction merge is running on any table — the
    /// storage half of graceful shutdown (DESIGN.md §16). The net server
    /// first joins its connection workers (draining in-flight queries),
    /// then calls this so no background rebuild is mid-publish when the
    /// process exits while WAL/snapshot files are being written.
    pub fn drain_background_work(&self) -> Result<(), DbError> {
        for name in self.table_names() {
            self.wait_for_compaction(&name)?;
        }
        Ok(())
    }

    /// Arms the ECALL scheduler's injected-leader-panic hook: the next
    /// batched dispatch round panics mid-transition. Test-only surface
    /// for the poisoned-round regression suite.
    #[doc(hidden)]
    pub fn arm_scheduler_panic(&self) {
        self.sched.arm_leader_panic();
    }

    pub(crate) fn table_handle(&self, name: &str) -> Result<Arc<ServerTable>, DbError> {
        self.tables
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(name)
            .cloned()
            .ok_or_else(|| DbError::TableNotFound(name.to_string()))
    }

    pub(crate) fn config(&self) -> Config {
        *lock(&self.config)
    }

    /// Publishes a completed query's [`QueryStats`] — the single
    /// query-path hook into the metrics registry. ECALL-level counters
    /// (`ecalls_total`, `values_decrypted_total`, …) are *not* derived
    /// from `stats` here: each enclave transition already recorded
    /// itself through [`Obs::ecall`], and double counting would break
    /// the ledger/registry agreement.
    pub(crate) fn store_stats(&self, stats: QueryStats) {
        self.obs
            .add(Counter::RowsReturnedTotal, stats.result_rows as u64);
        self.obs.add(
            Counter::PartitionsScannedTotal,
            stats.partitions_scanned as u64,
        );
        self.obs.add(
            Counter::PartitionsPrunedTotal,
            stats.partitions_pruned as u64,
        );
        // Latency components are recorded only when the query exercised
        // them, so each histogram's count stays the number of queries of
        // the matching shape (e.g. `aggregate_ns` counts aggregates).
        for (hist, ns) in [
            (Hist::DictSearchNs, stats.dict_search_ns),
            (Hist::AvScanNs, stats.av_search_ns),
            (Hist::AggregateNs, stats.aggregate_ns),
            (Hist::RenderNs, stats.render_ns),
            (Hist::BridgeNs, stats.bridge_ns),
        ] {
            if ns > 0 {
                self.obs.record(hist, ns);
            }
        }
        *lock(&self.last_stats) = stats;
    }

    /// Executes a decomposed [`ServerQuery`] — the single entry point the
    /// proxy routes all data-path queries through, including aggregate
    /// plans and the proxy's partition routing hints.
    ///
    /// # Errors
    ///
    /// Propagates lookup, arity and enclave failures.
    pub fn execute_query(&self, query: ServerQuery) -> Result<QueryOutcome, DbError> {
        self.execute_query_traced(query, SpanId::NONE)
    }

    /// [`DbaasServer::execute_query`] with an explicit trace parent —
    /// the proxy passes its per-query root span so server-side spans
    /// (snapshot acquire, per-partition scans, ECALLs, render) nest
    /// under it.
    pub(crate) fn execute_query_traced(
        &self,
        query: ServerQuery,
        parent: SpanId,
    ) -> Result<QueryOutcome, DbError> {
        match query {
            ServerQuery::Select {
                table,
                columns,
                filters,
                scope,
            } => Ok(QueryOutcome::Rows(self.select_inner(
                &table,
                &columns,
                &filters,
                scope.as_deref(),
                parent,
            )?)),
            ServerQuery::Aggregate {
                table,
                plan,
                filters,
                scope,
            } => Ok(QueryOutcome::Rows(self.aggregate_scoped(
                &table,
                &plan,
                &filters,
                scope.as_deref(),
                parent,
            )?)),
            ServerQuery::Insert {
                table,
                rows,
                partition_ids,
            } => Ok(QueryOutcome::Affected(self.insert_inner(
                &table,
                &rows,
                partition_ids.as_deref(),
                parent,
            )?)),
            ServerQuery::Delete {
                table,
                filters,
                scope,
            } => Ok(QueryOutcome::Affected(self.delete_inner(
                &table,
                &filters,
                scope.as_deref(),
                parent,
            )?)),
            ServerQuery::Join { left, right } => {
                Ok(QueryOutcome::Rows(self.join_inner(&left, &right, parent)?))
            }
        }
    }
}

impl Default for DbaasServer {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests;
