//! One range partition of a table: its own epoch-tagged main state, delta
//! stores, validity vectors and merge bookkeeping.
//!
//! A partition is the unit of both query fan-out and compaction: readers
//! snapshot partitions independently (one short lock each), and a
//! background merge captures/rebuilds/publishes exactly one partition
//! while every other partition keeps serving reads and writes from its
//! own state.

use super::lock;
use colstore::delta::{DeltaStore, ValidityVector};
use colstore::dictionary::AttributeVector;
use encdict::dynamic::{EncryptedDeltaStore, MainSnapshot};
use encdict::PlainDictionary;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// Per-column immutable main store within one partition epoch.
#[derive(Debug, Clone)]
pub(crate) enum MainColumn {
    /// Encrypted dictionary + attribute vector (epoch-tagged).
    Encrypted(MainSnapshot),
    /// Plaintext dictionary + attribute vector.
    Plain {
        dict: Arc<PlainDictionary>,
        av: Arc<AttributeVector>,
    },
}

impl MainColumn {
    /// The attribute-vector ValueIDs of the main store.
    pub(crate) fn av_slice(&self) -> &[u32] {
        match self {
            MainColumn::Encrypted(snap) => snap.av().as_slice(),
            MainColumn::Plain { av, .. } => av.as_slice(),
        }
    }

    /// The main dictionary length (= offset of the delta code space).
    pub(crate) fn main_len(&self) -> usize {
        match self {
            MainColumn::Encrypted(snap) => snap.dict().len(),
            MainColumn::Plain { dict, .. } => dict.len(),
        }
    }
}

/// The immutable main state of one partition: one generation, swapped
/// wholesale when a compaction publishes.
#[derive(Debug)]
pub(crate) struct MainState {
    pub(crate) epoch: u64,
    pub(crate) columns: Vec<MainColumn>,
    pub(crate) rows: usize,
}

/// One column's delta store. `Clone` freezes it as a snapshot.
#[derive(Debug, Clone)]
pub(crate) enum ColumnDelta {
    Encrypted(EncryptedDeltaStore),
    Plain(DeltaStore),
}

impl ColumnDelta {
    pub(crate) fn prefix(&self, n: usize) -> ColumnDelta {
        match self {
            ColumnDelta::Encrypted(d) => ColumnDelta::Encrypted(d.prefix(n)),
            ColumnDelta::Plain(d) => ColumnDelta::Plain(d.prefix(n)),
        }
    }

    pub(crate) fn drain_prefix(&mut self, n: usize) {
        match self {
            ColumnDelta::Encrypted(d) => d.drain_prefix(n),
            ColumnDelta::Plain(d) => d.drain_prefix(n),
        }
    }
}

/// An owned, consistent view of one partition: the Arc'd main generation
/// plus a frozen copy of the (small, threshold-bounded) delta side.
/// Everything a read query touches lives here, so queries never hold a
/// lock while searching, scanning or rendering.
#[derive(Debug)]
pub(crate) struct PartitionSnapshot {
    pub(crate) main: Arc<MainState>,
    pub(crate) main_validity: Arc<ValidityVector>,
    /// Valid main rows, captured O(1) under the snapshot lock — lets the
    /// executor skip search ECALLs on empty or fully-invalid partitions
    /// without a popcount.
    pub(crate) main_valid_rows: usize,
    pub(crate) deltas: Vec<ColumnDelta>,
    pub(crate) delta_rows: usize,
    pub(crate) delta_validity: ValidityVector,
    /// Valid delta rows, counted once at snapshot time.
    pub(crate) delta_valid_rows: usize,
}

impl PartitionSnapshot {
    /// The merge generation this snapshot was taken at.
    pub(crate) fn epoch(&self) -> u64 {
        self.main.epoch
    }

    /// Whether the partition holds no valid row at all — such a shard is
    /// skipped entirely: no search ECALL, no scan, no aggregate part.
    pub(crate) fn is_empty(&self) -> bool {
        self.main_valid_rows == 0 && self.delta_valid_rows == 0
    }
}

/// Mutable state of one partition, guarded by a short-held mutex.
#[derive(Debug)]
pub(crate) struct PartitionState {
    pub(crate) main: Arc<MainState>,
    /// Copy-on-write: snapshots and merge jobs clone the `Arc`; deletes
    /// (the rare path) pay the copy via `Arc::make_mut`.
    pub(crate) main_validity: Arc<ValidityVector>,
    /// Invalidated main rows — keeps the compaction-policy check O(1)
    /// instead of a popcount scan per write.
    pub(crate) main_invalid: usize,
    pub(crate) deltas: Vec<ColumnDelta>,
    pub(crate) delta_rows: usize,
    pub(crate) delta_validity: ValidityVector,
    pub(crate) merge_in_flight: bool,
    /// Delta rows below this watermark are being folded by the in-flight
    /// merge.
    pub(crate) merge_watermark: usize,
    /// Set when a delete touched rows the in-flight merge already read;
    /// the publish is then aborted and retried.
    pub(crate) deletes_during_merge: bool,
    /// Total delta rows ever folded into the main store by publishes —
    /// the base of the partition's *absolute* delta position space. A
    /// delta row at local index `i` has the stable absolute position
    /// `drained_total + i`, which is what WAL records address so replay
    /// can tell folded rows from live ones.
    pub(crate) drained_total: u64,
}

/// One range partition: state plus its own background-merge worker slot.
#[derive(Debug)]
pub(crate) struct Partition {
    /// Position within the table's partition order (shard id).
    pub(crate) index: usize,
    pub(crate) state: Mutex<PartitionState>,
    pub(crate) worker: Mutex<Option<JoinHandle<()>>>,
}

impl Partition {
    /// Wraps freshly deployed per-column stores as partition `index` at
    /// epoch 0.
    pub(crate) fn new(
        index: usize,
        columns: Vec<MainColumn>,
        deltas: Vec<ColumnDelta>,
        rows: usize,
    ) -> Self {
        Self::recovered(index, columns, deltas, rows, 0, 0)
    }

    /// Wraps per-column stores reloaded from a sealed snapshot: the
    /// partition resumes at the snapshot's published `epoch` with its
    /// absolute delta base `drained_total`, exactly as if the publishes
    /// had happened in this process.
    pub(crate) fn recovered(
        index: usize,
        columns: Vec<MainColumn>,
        deltas: Vec<ColumnDelta>,
        rows: usize,
        epoch: u64,
        drained_total: u64,
    ) -> Self {
        Partition {
            index,
            state: Mutex::new(PartitionState {
                main: Arc::new(MainState {
                    epoch,
                    columns,
                    rows,
                }),
                main_validity: Arc::new(ValidityVector::all_valid(rows)),
                main_invalid: 0,
                deltas,
                delta_rows: 0,
                delta_validity: ValidityVector::default(),
                merge_in_flight: false,
                merge_watermark: 0,
                deletes_during_merge: false,
                drained_total,
            }),
            worker: Mutex::new(None),
        }
    }

    /// Acquires a consistent read snapshot of this partition (one short
    /// lock).
    pub(crate) fn snapshot(&self) -> PartitionSnapshot {
        let state = lock(&self.state);
        let delta_validity = state.delta_validity.clone();
        PartitionSnapshot {
            main: Arc::clone(&state.main),
            main_validity: Arc::clone(&state.main_validity),
            main_valid_rows: state.main.rows - state.main_invalid,
            deltas: state.deltas.clone(),
            delta_rows: state.delta_rows,
            delta_valid_rows: delta_validity.count_valid(),
            delta_validity,
        }
    }

    /// This partition's published epoch.
    pub(crate) fn epoch(&self) -> u64 {
        lock(&self.state).main.epoch
    }

    /// Whether a merge is rebuilding this partition right now.
    pub(crate) fn merge_in_flight(&self) -> bool {
        lock(&self.state).merge_in_flight
    }
}
