//! The server-side equi-join executor: per-side filtered scans reduced to
//! join-key ValueIDs, one `JoinBridge` ECALL, then an untrusted hash
//! build/probe over opaque bridge ids (DESIGN.md §11).
//!
//! Both tables are snapshotted through the shared N-table acquisition
//! path ([`DbaasServer::snapshot_tables`]) so the join sees one point in
//! time; each side then fans out across its in-scope partitions on scoped
//! threads exactly like a single-table select. The enclave decrypts each
//! *distinct* join-key code at most once per side — the join analogue of
//! the one-`Aggregate`-ECALL design — and the build/probe phases never
//! touch a plaintext or a ciphertext of the key column again.
//!
//! Two paths skip the bridge ECALL entirely:
//!
//! * **All-PLAIN keys** — both key columns plaintext: values match
//!   locally, mirroring the all-PLAIN aggregate path.
//! * **Repetition-revealing self-joins** — same table, same key column,
//!   one partition in scope at one epoch, ED1–ED3 key, no delta rows:
//!   equal ValueIDs already mean equal values (the dictionary holds each
//!   value once), so the server matches ValueIDs directly. Frequency
//!   smoothing/hiding kinds never qualify — their dictionaries map one
//!   value to many entries, so only the bridge sees equality.

use super::scheduler::{BatchKey, CallClass};
use super::snapshot::{fan_out, matching_rids_multi, EnclaveCtx, TableSnapshot};
use super::{
    CellValue, ColumnDelta, DbaasServer, JoinSideQuery, MainColumn, QueryStats, SelectResponse,
};
use crate::error::DbError;
use crate::obs::{EcallIo, EcallKind, SpanId};
use crate::schema::DictChoice;
use colstore::dictionary::RecordId;
use encdict::batch::{OwnedDictCall, OwnedJoinBridgeCall, OwnedJoinKey, OwnedJoinSide, SegSource};
use encdict::enclave_ops::{bridge_key_tables, DictReply};
use encdict::RepetitionOption;
use std::collections::{BTreeSet, HashMap};

/// One scanned partition of one join side: its matching rows, each row's
/// join-key code (main ValueID or offset delta row), and the distinct
/// codes that go to the bridge.
struct SidePartScan {
    main_rids: Vec<RecordId>,
    delta_rids: Vec<RecordId>,
    /// Key code per matching row, main rows first, then delta rows.
    row_codes: Vec<u32>,
    /// Ascending distinct key codes of this partition.
    distinct: Vec<u32>,
    stats: QueryStats,
}

impl SidePartScan {
    fn rows(&self) -> usize {
        self.row_codes.len()
    }
}

/// Scans one side: filter each in-scope partition, then annotate every
/// matching row with its join-key code.
fn scan_side(
    server: &DbaasServer,
    ts: &TableSnapshot,
    q: &JoinSideQuery,
    parent: SpanId,
) -> Result<Vec<SidePartScan>, DbError> {
    let cfg = server.config();
    let obs = server.obs().clone();
    let obs_ref = &obs;
    let schema = &ts.table.schema;
    let (key_idx, _) = schema
        .column(&q.key)
        .ok_or_else(|| DbError::ColumnNotFound(q.key.clone()))?;
    let scans = fan_out(&ts.active, |pid, snap| {
        let pspan = obs_ref.span_arg("partition", "query", parent, pid as u64);
        let ctx = EnclaveCtx {
            sched: server.scheduler(),
            obs: obs_ref,
            parent: pspan.id(),
            part: pid as u64,
        };
        let (main_rids, delta_rids, mut stats) =
            matching_rids_multi(snap, schema, &ctx, &q.filters, &cfg)?;
        let av = snap.main.columns[key_idx].av_slice();
        let main_len = snap.main.columns[key_idx].main_len();
        // Delta rows get codes `main_len + rid`; prove up front that the
        // highest one fits in u32 so the append below cannot wrap and
        // alias two distinct keys into one code.
        if let Some(max_rid) = delta_rids.iter().map(|r| r.0).max() {
            if main_len as u64 + max_rid as u64 > u32::MAX as u64 {
                return Err(DbError::CodeSpaceOverflow {
                    main_len,
                    delta_rid: max_rid,
                });
            }
        }
        let main_len = main_len as u32;
        let mut row_codes = Vec::with_capacity(main_rids.len() + delta_rids.len());
        row_codes.extend(main_rids.iter().map(|rid| av[rid.0 as usize]));
        row_codes.extend(delta_rids.iter().map(|rid| main_len + rid.0));
        let distinct: Vec<u32> = row_codes
            .iter()
            .copied()
            .collect::<BTreeSet<u32>>()
            .into_iter()
            .collect();
        stats.snapshot_epoch = snap.epoch();
        Ok::<_, DbError>(SidePartScan {
            main_rids,
            delta_rids,
            row_codes,
            distinct,
            stats,
        })
    });
    scans.into_iter().collect()
}

/// Resolves the plaintext values of a PLAIN key column's distinct codes.
fn resolve_plain_keys(snap_col: &MainColumn, delta: &ColumnDelta, codes: &[u32]) -> Vec<Vec<u8>> {
    let (MainColumn::Plain { dict, .. }, ColumnDelta::Plain(delta)) = (snap_col, delta) else {
        unreachable!("caller checked the key protection");
    };
    codes
        .iter()
        .map(|&code| {
            if (code as usize) < dict.len() {
                dict.value(code as usize).to_vec()
            } else {
                delta.value(RecordId(code - dict.len() as u32)).to_vec()
            }
        })
        .collect()
}

/// Per-partition code→bridge-id maps of one side.
type SideMaps = Vec<HashMap<u32, u32>>;

impl DbaasServer {
    /// Executes a two-table equi-join (public wrapper over the
    /// [`ServerQuery::Join`](super::ServerQuery::Join) path).
    ///
    /// # Errors
    ///
    /// Propagates lookup and enclave failures.
    pub fn join(
        &self,
        left: &JoinSideQuery,
        right: &JoinSideQuery,
    ) -> Result<SelectResponse, DbError> {
        self.join_inner(left, right, SpanId::NONE)
    }

    pub(crate) fn join_inner(
        &self,
        left: &JoinSideQuery,
        right: &JoinSideQuery,
        parent: SpanId,
    ) -> Result<SelectResponse, DbError> {
        let obs = self.obs().clone();
        // Both tables under one tight acquisition pass.
        let snap_span = obs.span("snapshot", "query", parent);
        let mut snaps = self.snapshot_tables(&[
            (&left.table, &left.filters, left.scope.as_deref()),
            (&right.table, &right.filters, right.scope.as_deref()),
        ])?;
        snap_span.finish();
        let rts = snaps.pop().expect("two tables requested");
        let lts = snaps.pop().expect("two tables requested");

        let mut stats = QueryStats::default();
        lts.seed_stats(&mut stats);
        rts.seed_stats(&mut stats);

        // Per-side filtered scans, fanned out across partitions.
        let lscan_span = obs.span_arg("scan", "query", parent, lts.active.len() as u64);
        let lscan = scan_side(self, &lts, left, lscan_span.id())?;
        lscan_span.finish();
        let rscan_span = obs.span_arg("scan", "query", parent, rts.active.len() as u64);
        let rscan = scan_side(self, &rts, right, rscan_span.id())?;
        rscan_span.finish();
        for part in lscan.iter().chain(&rscan) {
            stats.absorb(&part.stats);
            // absorb() sums join counters; row totals are set below.
        }
        stats.join_build_rows = lscan.iter().map(SidePartScan::rows).sum();
        stats.join_probe_rows = rscan.iter().map(SidePartScan::rows).sum();

        // Build the per-partition code→bridge-id maps.
        let bridge_span = obs.span("bridge", "query", parent);
        let bridge_start = std::time::Instant::now();
        let (left_maps, right_maps) = self.bridge_keys(
            &lts,
            left,
            &lscan,
            &rts,
            right,
            &rscan,
            &mut stats,
            bridge_span.id(),
        )?;
        stats.bridge_ns = bridge_start.elapsed().as_nanos() as u64;
        bridge_span.finish();

        // Untrusted hash build over the left side's bridge ids...
        let mut build: HashMap<u32, Vec<(usize, usize)>> = HashMap::new();
        for (p, part) in lscan.iter().enumerate() {
            for (ord, code) in part.row_codes.iter().enumerate() {
                if let Some(&id) = left_maps[p].get(code) {
                    build.entry(id).or_default().push((p, ord));
                }
            }
        }

        // ...then probe with the right side's rows and render each joined
        // pair from the two snapshots.
        let lcols = column_indices(&lts, &left.columns)?;
        let rcols = column_indices(&rts, &right.columns)?;
        let render_span = obs.span("render", "query", parent);
        let render_start = std::time::Instant::now();
        let mut rows: Vec<Vec<CellValue>> = Vec::new();
        for (q, part) in rscan.iter().enumerate() {
            for (ord, code) in part.row_codes.iter().enumerate() {
                let Some(&id) = right_maps[q].get(code) else {
                    continue;
                };
                let Some(matches) = build.get(&id) else {
                    continue;
                };
                for &(p, l_ord) in matches {
                    let mut row = Vec::with_capacity(lcols.len() + rcols.len());
                    render_side_cells(&lts, &lscan[p], p, &lcols, l_ord, &mut row);
                    render_side_cells(&rts, part, q, &rcols, ord, &mut row);
                    rows.push(row);
                }
            }
        }
        stats.render_ns += render_start.elapsed().as_nanos() as u64;
        render_span.finish();
        stats.result_rows = rows.len();
        self.store_stats(stats);

        let columns = left
            .columns
            .iter()
            .map(|c| format!("{}.{c}", left.table))
            .chain(right.columns.iter().map(|c| format!("{}.{c}", right.table)))
            .collect();
        Ok(SelectResponse { columns, rows })
    }

    /// Produces the per-partition code→bridge-id maps of both sides:
    /// locally for all-PLAIN keys and for the repetition-revealing
    /// self-join shortcut, through one `JoinBridge` ECALL otherwise. An
    /// empty side short-circuits without entering the enclave.
    #[allow(clippy::too_many_arguments)]
    fn bridge_keys(
        &self,
        lts: &TableSnapshot,
        left: &JoinSideQuery,
        lscan: &[SidePartScan],
        rts: &TableSnapshot,
        right: &JoinSideQuery,
        rscan: &[SidePartScan],
        stats: &mut QueryStats,
        parent: SpanId,
    ) -> Result<(SideMaps, SideMaps), DbError> {
        let empty = (
            vec![HashMap::new(); lscan.len()],
            vec![HashMap::new(); rscan.len()],
        );
        // An empty side provably joins nothing — no ECALL (the join
        // analogue of the empty-shard no-op).
        if lscan.iter().all(|p| p.distinct.is_empty())
            || rscan.iter().all(|p| p.distinct.is_empty())
        {
            return Ok(empty);
        }
        let (lkey_idx, lkey_spec) = lts
            .table
            .schema
            .column(&left.key)
            .ok_or_else(|| DbError::ColumnNotFound(left.key.clone()))?;
        let (rkey_idx, rkey_spec) = rts
            .table
            .schema
            .column(&right.key)
            .ok_or_else(|| DbError::ColumnNotFound(right.key.clone()))?;

        // Resolve each PLAIN key side's distinct values up front: the
        // local all-PLAIN match and the mixed-protection bridge request
        // share these tables.
        let build_plain = |ts: &TableSnapshot,
                           key_idx: usize,
                           choice: &DictChoice,
                           scan: &[SidePartScan]|
         -> Option<Vec<Vec<Vec<u8>>>> {
            match choice {
                DictChoice::Plain => Some(
                    ts.active
                        .iter()
                        .zip(scan)
                        .map(|((_, snap), part)| {
                            resolve_plain_keys(
                                &snap.main.columns[key_idx],
                                &snap.deltas[key_idx],
                                &part.distinct,
                            )
                        })
                        .collect(),
                ),
                DictChoice::Encrypted(_) => None,
            }
        };
        let lplain = build_plain(lts, lkey_idx, &lkey_spec.choice, lscan);
        let rplain = build_plain(rts, rkey_idx, &rkey_spec.choice, rscan);

        // All-PLAIN keys: the same bridge core the enclave runs
        // (`encdict::enclave_ops::bridge_key_tables`), executed locally
        // with no shuffle — the server sees these plaintexts anyway.
        if let (Some(lvals), Some(rvals)) = (&lplain, &rplain) {
            let (lids, rids, entries) = bridge_key_tables(lvals, rvals, |_| {});
            stats.bridge_entries = entries;
            return Ok((to_maps(lscan, &lids), to_maps(rscan, &rids)));
        }

        // Repetition-revealing self-join shortcut: same table + key, one
        // partition in scope at one epoch, no delta codes — ValueID
        // equality IS value equality, so no decryption is needed at all.
        if left.table == right.table
            && left.key == right.key
            && matches!(lkey_spec.choice, DictChoice::Encrypted(kind)
                if kind.repetition() == RepetitionOption::Revealing)
            && lts.active.len() == 1
            && rts.active.len() == 1
            && lts.active[0].0 == rts.active[0].0
            && lts.active[0].1.epoch() == rts.active[0].1.epoch()
        {
            let main_len = lts.active[0].1.main.columns[lkey_idx].main_len() as u32;
            let no_delta_codes = |scan: &[SidePartScan]| {
                scan.iter()
                    .all(|p| p.distinct.iter().all(|&c| c < main_len))
            };
            if no_delta_codes(lscan) && no_delta_codes(rscan) {
                let lset: BTreeSet<u32> = lscan[0].distinct.iter().copied().collect();
                stats.bridge_entries = rscan[0]
                    .distinct
                    .iter()
                    .filter(|c| lset.contains(c))
                    .count();
                let identity = |scan: &[SidePartScan]| -> SideMaps {
                    scan.iter()
                        .map(|p| p.distinct.iter().map(|&c| (c, c)).collect())
                        .collect()
                };
                return Ok((identity(lscan), identity(rscan)));
            }
        }

        // The general case (mixed protections or both encrypted): one
        // JoinBridge ECALL for the whole query, built in owned form
        // (Arc'd main generations, copied delta segments) so it can ride
        // a combined transition of the cross-session scheduler.
        fn build_side(
            ts: &TableSnapshot,
            table: &str,
            key: &str,
            key_idx: usize,
            encrypted: bool,
            scan: &[SidePartScan],
            plain: &Option<Vec<Vec<Vec<u8>>>>,
            generation: &mut u64,
        ) -> OwnedJoinSide {
            let parts = if encrypted {
                ts.active
                    .iter()
                    .zip(scan)
                    .map(|((pid, snap), part)| {
                        let (MainColumn::Encrypted(main), ColumnDelta::Encrypted(delta)) =
                            (&snap.main.columns[key_idx], &snap.deltas[key_idx])
                        else {
                            unreachable!("schema says the key column is encrypted");
                        };
                        *generation = (*generation).max(snap.epoch());
                        OwnedJoinKey::Encrypted {
                            main: SegSource::Shared(main.dict_arc()),
                            delta: delta.owned_segment(),
                            codes: part.distinct.clone(),
                            cache: Some((*pid as u64, snap.epoch())),
                        }
                    })
                    .collect()
            } else {
                plain
                    .as_ref()
                    .expect("resolved above")
                    .iter()
                    .map(|values| OwnedJoinKey::Plain {
                        values: values.clone(),
                    })
                    .collect()
            };
            OwnedJoinSide {
                table_name: table.to_string(),
                col_name: encrypted.then(|| key.to_string()),
                parts,
            }
        }
        let mut generation = 0u64;
        let req = OwnedJoinBridgeCall {
            left: build_side(
                lts,
                &left.table,
                &left.key,
                lkey_idx,
                matches!(lkey_spec.choice, DictChoice::Encrypted(_)),
                lscan,
                &lplain,
                &mut generation,
            ),
            right: build_side(
                rts,
                &right.table,
                &right.key,
                rkey_idx,
                matches!(rkey_spec.choice, DictChoice::Encrypted(_)),
                rscan,
                &rplain,
                &mut generation,
            ),
        };
        // Request payload: 4 bytes per distinct encrypted code plus the
        // resolved plaintexts of a PLAIN side; reply payload: one 4-byte
        // bridge-id slot per distinct code of either side.
        let side_bytes = |side: &OwnedJoinSide| -> u64 {
            side.parts
                .iter()
                .map(|p| match p {
                    OwnedJoinKey::Encrypted { codes, .. } => 4 * codes.len() as u64,
                    OwnedJoinKey::Plain { values } => values.iter().map(|v| v.len() as u64).sum(),
                })
                .sum()
        };
        let bytes_in = side_bytes(&req.left) + side_bytes(&req.right);
        let outcome = self.scheduler().submit(
            OwnedDictCall::JoinBridge(req),
            BatchKey {
                class: CallClass::JoinBridge,
                generation,
            },
        );
        let batched = outcome.batched();
        let reply = match outcome.reply {
            DictReply::Bridged(Ok(reply)) => reply,
            DictReply::Bridged(Err(e)) => return Err(e.into()),
            _ => unreachable!("join-bridge call returns bridged reply"),
        };
        if !batched {
            let slots: usize = reply.left.iter().map(Vec::len).sum::<usize>()
                + reply.right.iter().map(Vec::len).sum::<usize>();
            self.obs().ecall(
                EcallKind::JoinBridge,
                EcallIo {
                    bytes_in,
                    bytes_out: 4 * slots as u64,
                    values_decrypted: reply.values_decrypted as u64,
                    untrusted_loads: outcome.untrusted_loads,
                    untrusted_bytes: outcome.untrusted_bytes,
                    cache_hits: outcome.cache_hits,
                    cache_misses: outcome.cache_misses,
                },
                outcome.start_ns,
                outcome.dur_ns,
                parent,
            );
        }
        stats.enclave_calls += 1;
        stats.values_decrypted += reply.values_decrypted;
        stats.cache_hits += outcome.cache_hits as usize;
        stats.ecall_wait_ns += outcome.wait_ns;
        stats.batch_peers += outcome.peers - 1;
        stats.bridge_entries = reply.bridge_entries;
        Ok((to_maps(lscan, &reply.left), to_maps(rscan, &reply.right)))
    }
}

/// Converts per-partition optional bridge ids (aligned index-for-index
/// with each partition's distinct codes) into code→id lookup maps.
fn to_maps(scan: &[SidePartScan], ids: &[Vec<Option<u32>>]) -> SideMaps {
    scan.iter()
        .zip(ids)
        .map(|(part, ids)| {
            part.distinct
                .iter()
                .zip(ids)
                .filter_map(|(&code, id)| id.map(|id| (code, id)))
                .collect()
        })
        .collect()
}

/// Resolves projected column names to schema indices.
fn column_indices(ts: &TableSnapshot, columns: &[String]) -> Result<Vec<usize>, DbError> {
    columns
        .iter()
        .map(|name| {
            ts.table
                .schema
                .column(name)
                .map(|(idx, _)| idx)
                .ok_or_else(|| DbError::ColumnNotFound(name.clone()))
        })
        .collect()
}

/// Renders one side's projected cells of a matched row into `row`.
fn render_side_cells(
    ts: &TableSnapshot,
    part: &SidePartScan,
    part_idx: usize,
    col_indices: &[usize],
    ord: usize,
    row: &mut Vec<CellValue>,
) {
    let (_, snap) = &ts.active[part_idx];
    for &idx in col_indices {
        row.push(if ord < part.main_rids.len() {
            super::snapshot::render_main_cell(&snap.main.columns[idx], part.main_rids[ord])
        } else {
            super::snapshot::render_delta_cell(
                &snap.deltas[idx],
                part.delta_rids[ord - part.main_rids.len()],
            )
        });
    }
}
