//! Per-partition compaction: threshold-driven background merges that
//! capture, rebuild and publish exactly one partition at a time.
//!
//! The three-phase protocol of DESIGN.md §9 is unchanged — capture at a
//! delta watermark under the partition lock, rebuild off the lock on the
//! dedicated merge enclave, atomically publish the next epoch — but the
//! unit shrank from the whole table to one range partition. A merge on
//! shard A holds only A's mutex (briefly, in phases 1 and 3); reads and
//! writes on every other shard proceed untouched, and the rebuild cost is
//! proportional to one shard, not the table.

use super::partition::{ColumnDelta, MainColumn, MainState, Partition};
use super::storage;
use super::table::ServerTable;
use super::{lock, Config, DbaasServer, MERGE_RETRIES};
use crate::error::DbError;
use crate::obs::{Counter, EcallIo, EcallKind, Hist, Obs, SpanId};
use crate::schema::{DictChoice, TableSchema};
use colstore::delta::ValidityVector;
use colstore::dictionary::AttributeVector;
use encdict::enclave_ops::MergeRequest;
use encdict::{DictEnclave, PlainDictionary};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// When the compaction scheduler rebuilds a partition's main store (§4.3's
/// "periodic merge", made threshold-driven and per-partition).
///
/// Either condition triggers a background merge of the touched partition
/// after an insert or delete. The trade-off is classic LSM-style: a small
/// `max_delta_rows` keeps the linearly scanned ED9 delta short (fast
/// reads) at the cost of frequent rebuilds; `max_invalid_fraction` bounds
/// the space and scan time wasted on deleted rows. Partitioning shrinks
/// the blast radius: each shard trips the thresholds on its own growth,
/// and a hot shard compacts without freezing cold ones.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompactionPolicy {
    /// Merge once a partition's delta store holds at least this many rows.
    pub max_delta_rows: usize,
    /// Merge once this fraction of a partition's main rows is invalidated.
    pub max_invalid_fraction: f64,
}

impl Default for CompactionPolicy {
    fn default() -> Self {
        CompactionPolicy {
            max_delta_rows: 4096,
            max_invalid_fraction: 0.3,
        }
    }
}

impl CompactionPolicy {
    /// Whether the observed partition state warrants a merge.
    pub fn triggered(&self, delta_rows: usize, main_rows: usize, main_valid: usize) -> bool {
        if delta_rows >= self.max_delta_rows.max(1) {
            return true;
        }
        if main_rows > 0 {
            let invalid = (main_rows - main_valid) as f64 / main_rows as f64;
            if invalid >= self.max_invalid_fraction {
                return true;
            }
        }
        false
    }
}

/// The outcome of one compaction attempt.
enum CompactionOutcome {
    /// A new epoch was published.
    Completed,
    /// Nothing to do: empty delta over a fully valid main store.
    Noop,
    /// A delete raced the rebuild; the result was discarded.
    Aborted,
    /// Another merge was already in flight on this partition.
    AlreadyRunning,
}

/// Everything a merge needs, captured at the watermark under one lock.
/// Crate-visible so WAL replay (`server/storage.rs`) can re-execute a
/// logged publish through the same rebuild path.
pub(crate) struct CompactionJob {
    pub(crate) epoch: u64,
    pub(crate) main: Arc<MainState>,
    pub(crate) main_validity: Arc<ValidityVector>,
    pub(crate) delta_prefixes: Vec<ColumnDelta>,
    pub(crate) delta_validity: ValidityVector,
    pub(crate) watermark: usize,
}

impl DbaasServer {
    /// Synchronously merges every partition's delta store into a freshly
    /// rebuilt main store and publishes the next epoch per partition
    /// (§4.3). Encrypted columns are rebuilt inside the merge enclave with
    /// fresh randomness; PLAIN columns are rebuilt locally. A no-op
    /// partition (empty delta, no deleted rows) is skipped without
    /// entering the enclave or bumping its epoch.
    ///
    /// # Errors
    ///
    /// Propagates enclave and build failures; returns
    /// [`DbError::MergeConflict`] if concurrent deletes keep aborting a
    /// publish.
    pub fn merge_table(&self, table: &str) -> Result<(), DbError> {
        let t = self.table_handle(table)?;
        for partition in &t.partitions {
            self.merge_partition_inner(&t, partition)?;
        }
        Ok(())
    }

    /// Synchronously merges one partition (see [`DbaasServer::merge_table`]).
    ///
    /// # Errors
    ///
    /// As [`DbaasServer::merge_table`]; [`DbError::Partition`] for an
    /// out-of-range index.
    pub fn merge_partition(&self, table: &str, partition: usize) -> Result<(), DbError> {
        let t = self.table_handle(table)?;
        let p = partition_handle(&t, partition)?;
        self.merge_partition_inner(&t, &p)
    }

    fn merge_partition_inner(
        &self,
        t: &Arc<ServerTable>,
        partition: &Arc<Partition>,
    ) -> Result<(), DbError> {
        for _attempt in 0..MERGE_RETRIES {
            self.wait_for_partition(partition);
            match self.run_compaction(t, partition)? {
                CompactionOutcome::Completed | CompactionOutcome::Noop => return Ok(()),
                CompactionOutcome::Aborted | CompactionOutcome::AlreadyRunning => continue,
            }
        }
        Err(DbError::MergeConflict(format!(
            "merge of {} partition {} kept racing concurrent deletes",
            t.schema.name, partition.index
        )))
    }

    /// Starts a background compaction on every partition of `table` that
    /// has work and no merge in flight. Returns whether any merge was
    /// started.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::TableNotFound`] if absent.
    pub fn spawn_compaction(&self, table: &str) -> Result<bool, DbError> {
        let t = self.table_handle(table)?;
        let mut any = false;
        for partition in &t.partitions {
            any |= self.spawn_compaction_inner(&t, partition);
        }
        Ok(any)
    }

    /// Starts a background compaction of one partition if it has work and
    /// none is running there. Returns whether a merge was started.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::TableNotFound`] / [`DbError::Partition`].
    pub fn spawn_partition_compaction(
        &self,
        table: &str,
        partition: usize,
    ) -> Result<bool, DbError> {
        let t = self.table_handle(table)?;
        let p = partition_handle(&t, partition)?;
        Ok(self.spawn_compaction_inner(&t, &p))
    }

    /// Blocks until no compaction is running on any partition of `table`
    /// (joining background workers).
    ///
    /// # Errors
    ///
    /// Returns [`DbError::TableNotFound`] if absent.
    pub fn wait_for_compaction(&self, table: &str) -> Result<(), DbError> {
        let t = self.table_handle(table)?;
        for partition in &t.partitions {
            self.wait_for_partition(partition);
        }
        Ok(())
    }

    fn wait_for_partition(&self, partition: &Partition) {
        if let Some(handle) = lock(&partition.worker).take() {
            let _ = handle.join();
        }
        while lock(&partition.state).merge_in_flight {
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    /// Fires a background merge of one partition when the policy's
    /// thresholds are crossed.
    pub(crate) fn maybe_compact(
        &self,
        t: &Arc<ServerTable>,
        partition: &Arc<Partition>,
        cfg: &Config,
    ) {
        let Some(policy) = cfg.policy else {
            return;
        };
        let (delta_rows, rows, valid, in_flight) = {
            let state = lock(&partition.state);
            (
                state.delta_rows,
                state.main.rows,
                state.main.rows - state.main_invalid,
                state.merge_in_flight,
            )
        };
        if !in_flight && policy.triggered(delta_rows, rows, valid) {
            self.spawn_compaction_inner(t, partition);
        }
    }

    fn spawn_compaction_inner(&self, t: &Arc<ServerTable>, partition: &Arc<Partition>) -> bool {
        // Hold the worker slot across begin + spawn + store: a concurrent
        // spawner serializes here, so the slot can never hand us the
        // handle of a *live* merge (which a reap-join would then block on
        // for the whole rebuild).
        let mut worker = lock(&partition.worker);
        let cap_span = self.obs().span("capture", "compaction", SpanId::NONE);
        let Some(job) = begin_compaction(partition) else {
            cap_span.finish();
            return false;
        };
        cap_span.finish();
        if let Some(old) = worker.take() {
            // `begin_compaction` succeeded, so no merge was in flight on
            // this partition: the stored worker has already cleared the
            // flag and is (at most) tearing down. Reap it.
            let _ = old.join();
        }
        let server = self.clone();
        let table = Arc::clone(t);
        let partition_arc = Arc::clone(partition);
        let handle = std::thread::spawn(move || {
            let mut job = job;
            // An aborted publish (a delete raced the rebuild) retries in
            // place against the fresh state — bounded; if deletes keep
            // winning, the in-flight flag is already cleared by the
            // aborted publish and the policy re-triggers on later writes.
            let mut attempt = 0;
            loop {
                let cfg = server.config();
                match execute_compaction(
                    &server.merge_enclave,
                    &table.schema,
                    &job,
                    &cfg,
                    server.obs(),
                    SpanId::NONE,
                ) {
                    Ok(columns) => {
                        if publish_compaction(&server, &table, &partition_arc, job, columns) {
                            return;
                        }
                        attempt += 1;
                        if attempt >= MERGE_RETRIES {
                            return;
                        }
                        let cap = server.obs().span("capture", "compaction", SpanId::NONE);
                        let next = begin_compaction(&partition_arc);
                        cap.finish();
                        match next {
                            Some(next) => job = next,
                            None => return,
                        }
                    }
                    Err(e) => {
                        fail_compaction(server.obs(), &table, &partition_arc, &e);
                        return;
                    }
                }
            }
        });
        *worker = Some(handle);
        true
    }

    /// One synchronous compaction attempt on one partition.
    fn run_compaction(
        &self,
        t: &Arc<ServerTable>,
        partition: &Arc<Partition>,
    ) -> Result<CompactionOutcome, DbError> {
        let cap_span = self.obs().span("capture", "compaction", SpanId::NONE);
        let job = begin_compaction(partition);
        cap_span.finish();
        let Some(job) = job else {
            // Either a merge is in flight or there is nothing to do;
            // disambiguate for the caller.
            let state = lock(&partition.state);
            return Ok(if state.merge_in_flight {
                CompactionOutcome::AlreadyRunning
            } else {
                CompactionOutcome::Noop
            });
        };
        let cfg = self.config();
        match execute_compaction(
            &self.merge_enclave,
            &t.schema,
            &job,
            &cfg,
            self.obs(),
            SpanId::NONE,
        ) {
            Ok(columns) => Ok(if publish_compaction(self, t, partition, job, columns) {
                CompactionOutcome::Completed
            } else {
                CompactionOutcome::Aborted
            }),
            Err(e) => {
                fail_compaction(self.obs(), t, partition, &e);
                Err(e)
            }
        }
    }
}

fn partition_handle(t: &Arc<ServerTable>, partition: usize) -> Result<Arc<Partition>, DbError> {
    t.partitions.get(partition).cloned().ok_or_else(|| {
        DbError::Partition(format!(
            "partition {partition} outside {} partitions of {}",
            t.partitions.len(),
            t.schema.name
        ))
    })
}

/// Phase 1 of a compaction: under one short lock, capture the merge input
/// at the current watermark and mark the merge in flight. Returns `None`
/// when a merge is already running on this partition or there is nothing
/// to compact.
fn begin_compaction(partition: &Partition) -> Option<CompactionJob> {
    let mut state = lock(&partition.state);
    if state.merge_in_flight {
        return None;
    }
    let watermark = state.delta_rows;
    if watermark == 0 && state.main_invalid == 0 {
        // Empty delta over a fully valid main store: nothing to rebuild.
        return None;
    }
    state.merge_in_flight = true;
    state.merge_watermark = watermark;
    state.deletes_during_merge = false;
    Some(CompactionJob {
        epoch: state.main.epoch,
        main: Arc::clone(&state.main),
        main_validity: Arc::clone(&state.main_validity),
        delta_prefixes: state.deltas.iter().map(|d| d.prefix(watermark)).collect(),
        delta_validity: state.delta_validity.prefix(watermark),
        watermark,
    })
}

/// Phase 2: rebuild every column of the partition off the query path (no
/// storage lock held; the merge enclave is locked per column ECALL).
pub(crate) fn execute_compaction(
    merge_enclave: &Mutex<DictEnclave>,
    schema: &TableSchema,
    job: &CompactionJob,
    cfg: &Config,
    obs: &Obs,
    parent: SpanId,
) -> Result<(Vec<MainColumn>, usize), DbError> {
    let rebuild_span = obs.span_arg("rebuild", "compaction", parent, job.epoch);
    let mut new_columns = Vec::with_capacity(job.main.columns.len());
    let mut new_rows = None;
    for ((spec, main_col), delta_col) in schema
        .columns
        .iter()
        .zip(&job.main.columns)
        .zip(&job.delta_prefixes)
    {
        match (main_col, delta_col) {
            (MainColumn::Encrypted(main), ColumnDelta::Encrypted(delta)) => {
                let kind = match spec.choice {
                    DictChoice::Encrypted(kind) => kind,
                    DictChoice::Plain => unreachable!("schema/storage mismatch"),
                };
                let dict = main.dict();
                let delta_seg = delta.segment_ref();
                let req = MergeRequest {
                    table_name: dict.table_name(),
                    col_name: dict.col_name(),
                    max_len: dict.max_len(),
                    kind,
                    bs_max: spec.bs_max,
                    main_head: dict.head_mem(),
                    main_tail: dict.tail_mem(),
                    main_len: dict.len(),
                    main_av: main.av().as_slice(),
                    main_valid: &job.main_validity,
                    delta_head: delta_seg.head,
                    delta_tail: delta_seg.tail,
                    delta_len: delta.len(),
                    delta_valid: &job.delta_validity,
                };
                // Merge traffic is dominated by the streamed dictionary
                // reads; bytes_out approximates the published AV payload.
                let start_ns = obs.now_ns();
                let t0 = std::time::Instant::now();
                let mut enclave = lock(merge_enclave);
                let before = enclave.enclave().counters();
                let (new_dict, new_av) = enclave.merge(req)?;
                let after = enclave.enclave().counters();
                drop(enclave);
                let dur_ns = t0.elapsed().as_nanos() as u64;
                let loads = after.untrusted_loads - before.untrusted_loads;
                let bytes = after.untrusted_bytes - before.untrusted_bytes;
                obs.ecall(
                    EcallKind::Merge,
                    EcallIo {
                        bytes_in: bytes,
                        bytes_out: 4 * new_av.len() as u64,
                        values_decrypted: loads / 2,
                        untrusted_loads: loads,
                        untrusted_bytes: bytes,
                        cache_hits: 0,
                        cache_misses: 0,
                    },
                    start_ns,
                    dur_ns,
                    rebuild_span.id(),
                );
                obs.record(Hist::CompactionMergeNs, dur_ns);
                let rows = new_av.len();
                match new_rows {
                    None => new_rows = Some(rows),
                    Some(r) => debug_assert_eq!(r, rows, "columns must stay row-aligned"),
                }
                new_columns.push(MainColumn::Encrypted(
                    main.next_generation(new_dict, new_av),
                ));
            }
            (MainColumn::Plain { dict, av }, ColumnDelta::Plain(delta)) => {
                // Rebuild the plain column: valid main + valid delta rows.
                let mut column = colstore::column::Column::new(&spec.name, spec.max_len);
                for (j, &vid) in av.as_slice().iter().enumerate() {
                    if job.main_validity.is_valid(j) {
                        column.push(dict.value(vid as usize))?;
                    }
                }
                for (rid, v) in delta.iter_valid() {
                    if job.delta_validity.is_valid(rid.0 as usize) {
                        column.push(v)?;
                    }
                }
                let rows = column.len();
                match new_rows {
                    None => new_rows = Some(rows),
                    Some(r) => debug_assert_eq!(r, rows, "columns must stay row-aligned"),
                }
                let (new_dict, new_av) = rebuild_plain(&column)?;
                new_columns.push(MainColumn::Plain {
                    dict: Arc::new(new_dict),
                    av: Arc::new(new_av),
                });
            }
            _ => unreachable!("schema/storage mismatch"),
        }
        if let Some(throttle) = cfg.merge_throttle {
            std::thread::sleep(throttle);
        }
    }
    rebuild_span.finish();
    Ok((new_columns, new_rows.unwrap_or(0)))
}

/// Phase 3: atomically publish the rebuilt partition epoch, unless a
/// delete raced the rebuild (then the result is discarded and the attempt
/// counts as aborted). Returns whether the publish happened.
///
/// With durable storage attached the publish is logged **before** it is
/// applied: the WAL mutex is taken first (lock order: WAL → partition
/// state, same as the write path), a merge record is appended, and only
/// then is the new epoch swapped in. An append failure discards the
/// rebuilt epoch like an abort, so memory never runs ahead of the log.
/// The sealed snapshot file of the new epoch is persisted after both
/// locks are released; a persist failure is reported (stats +
/// `last_error`) but never unpublishes — recovery re-derives the epoch
/// from the previous snapshot plus the merge record.
fn publish_compaction(
    server: &DbaasServer,
    t: &ServerTable,
    partition: &Partition,
    job: CompactionJob,
    (columns, rows): (Vec<MainColumn>, usize),
) -> bool {
    let obs = server.obs().clone();
    let span = obs.span_arg(
        "publish",
        "compaction",
        SpanId::NONE,
        partition.index as u64,
    );
    let discard = |e: &DbError| {
        let mut state = lock(&partition.state);
        state.merge_in_flight = false;
        state.deletes_during_merge = false;
        drop(state);
        t.merges_failed.fetch_add(1, Ordering::SeqCst);
        t.errors_total.fetch_add(1, Ordering::SeqCst);
        server.obs().add(Counter::CompactionErrorsTotal, 1);
        *lock(&t.last_error) = Some(e.to_string());
        false
    };
    let storage = server.storage();
    let wal = match &storage {
        Some(s) => match s.wal_handle(&t.schema.name) {
            Ok(w) => Some(w),
            Err(e) => return discard(&e),
        },
        None => None,
    };
    let mut wal_guard = wal.as_ref().map(|w| lock(w));
    let mut state = lock(&partition.state);
    state.merge_in_flight = false;
    if state.deletes_during_merge {
        // A delete invalidated rows this merge already folded in as valid;
        // publishing would resurrect them. Discard and let the caller (or
        // the next policy trigger) retry against the fresh state.
        state.deletes_during_merge = false;
        drop(state);
        drop(wal_guard);
        t.merges_aborted.fetch_add(1, Ordering::SeqCst);
        obs.add(Counter::CompactionsAbortedTotal, 1);
        obs.span("abort", "compaction", span.id()).finish();
        return false;
    }
    debug_assert_eq!(
        state.main.epoch, job.epoch,
        "merges are serialized per partition"
    );
    let watermark_abs = state.drained_total + job.watermark as u64;
    if let (Some(s), Some(guard)) = (&storage, wal_guard.as_mut()) {
        let record = storage::encode_merge(partition.index, job.epoch, watermark_abs);
        if let Err(e) = s.append_record(guard, &record) {
            drop(state);
            return discard(&e);
        }
    }
    state.main = Arc::new(MainState {
        epoch: job.epoch + 1,
        columns,
        rows,
    });
    state.main_validity = Arc::new(ValidityVector::all_valid(rows));
    state.main_invalid = 0;
    for delta in &mut state.deltas {
        delta.drain_prefix(job.watermark);
    }
    state.delta_validity = state.delta_validity.suffix(job.watermark);
    state.delta_rows -= job.watermark;
    state.drained_total = watermark_abs;
    let persist = storage
        .as_ref()
        .map(|s| (Arc::clone(s), Arc::clone(&state.main), state.drained_total));
    drop(state);
    drop(wal_guard);
    t.merges_completed.fetch_add(1, Ordering::SeqCst);
    t.rows_compacted
        .fetch_add(job.watermark as u64, Ordering::SeqCst);
    obs.add(Counter::CompactionsCompletedTotal, 1);
    if let Some((s, main, drained)) = persist {
        if let Err(e) = s.persist_snapshot(&t.schema, partition.index, &main, drained) {
            s.note_snapshot_persist_failure();
            t.errors_total.fetch_add(1, Ordering::SeqCst);
            obs.add(Counter::CompactionErrorsTotal, 1);
            *lock(&t.last_error) = Some(e.to_string());
        }
    }
    span.finish();
    true
}

/// Error path shared by sync and background merges: clear the in-flight
/// flag, leaving the old store and the delta untouched and queryable.
fn fail_compaction(obs: &Obs, t: &ServerTable, partition: &Partition, e: &DbError) {
    let abort_span = obs.span("abort", "compaction", SpanId::NONE);
    let mut state = lock(&partition.state);
    state.merge_in_flight = false;
    drop(state);
    t.merges_failed.fetch_add(1, Ordering::SeqCst);
    t.errors_total.fetch_add(1, Ordering::SeqCst);
    obs.add(Counter::CompactionErrorsTotal, 1);
    *lock(&t.last_error) = Some(e.to_string());
    abort_span.finish();
}

/// Rebuilds a plain (sorted) dictionary from a column.
fn rebuild_plain(
    column: &colstore::column::Column,
) -> Result<(PlainDictionary, AttributeVector), DbError> {
    let mut rng = rand::rngs::mock::StepRng::new(0, 1);
    Ok(encdict::build::build_plain(
        column,
        encdict::EdKind::Ed1,
        &Default::default(),
        &mut rng,
    )?)
}
