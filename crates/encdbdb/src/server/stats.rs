//! Observable execution and compaction statistics.

/// Execution statistics for one query (latency breakdowns for the
/// Figure 8 harness, plus the `exec` engine's boundary accounting and the
/// partition layer's pruning accounting).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Nanoseconds spent in the enclave dictionary search.
    pub dict_search_ns: u64,
    /// Nanoseconds spent scanning the attribute vector (including the
    /// histogram scan of aggregate queries).
    pub av_search_ns: u64,
    /// Nanoseconds spent in the enclave aggregation ECALL (or the local
    /// aggregation for all-PLAIN queries).
    pub aggregate_ns: u64,
    /// Nanoseconds spent rendering the result columns.
    pub render_ns: u64,
    /// Number of result rows (groups for aggregate queries).
    pub result_rows: usize,
    /// Number of [`CHUNK_ROWS`](crate::exec::aggregate::CHUNK_ROWS)-row
    /// chunks scanned by the vectorized histogram executor.
    pub chunks_scanned: usize,
    /// Number of enclave ECALLs issued while evaluating the query.
    pub enclave_calls: usize,
    /// Number of dictionary values decrypted inside the enclave — bounded
    /// by the distinct touched ValueIDs, never by the row count.
    pub values_decrypted: usize,
    /// The highest merge generation (epoch) among the partition snapshots
    /// the query executed against. Monotone per table: compactions only
    /// ever increment partition epochs.
    pub snapshot_epoch: u64,
    /// Number of range partitions the table has.
    pub partitions_total: usize,
    /// Partitions actually searched: in scope and non-empty.
    pub partitions_scanned: usize,
    /// Partitions skipped because their key range provably misses the
    /// filter (the pruning leakage documented in DESIGN.md §10).
    pub partitions_pruned: usize,
    /// Matching rows on the build (left) side of an equi-join.
    pub join_build_rows: usize,
    /// Matching rows on the probe (right) side of an equi-join.
    pub join_probe_rows: usize,
    /// Distinct join keys present on both sides (the size of the
    /// ValueID↔ValueID bridge the `JoinBridge` ECALL returned).
    pub bridge_entries: usize,
    /// Nanoseconds spent building the join-key bridge (the `JoinBridge`
    /// ECALL, or the local match for all-PLAIN keys).
    pub bridge_ns: u64,
}

impl QueryStats {
    /// Folds another partition's (or filter's) stats into this one —
    /// latencies and counters add; the snapshot epoch takes the maximum.
    pub(crate) fn absorb(&mut self, other: &QueryStats) {
        self.dict_search_ns += other.dict_search_ns;
        self.av_search_ns += other.av_search_ns;
        self.aggregate_ns += other.aggregate_ns;
        self.render_ns += other.render_ns;
        self.chunks_scanned += other.chunks_scanned;
        self.enclave_calls += other.enclave_calls;
        self.values_decrypted += other.values_decrypted;
        self.snapshot_epoch = self.snapshot_epoch.max(other.snapshot_epoch);
        self.join_build_rows += other.join_build_rows;
        self.join_probe_rows += other.join_probe_rows;
        self.bridge_entries += other.bridge_entries;
        self.bridge_ns += other.bridge_ns;
    }
}

/// Observable counters of the durable-storage layer (DESIGN.md §12):
/// WAL traffic, snapshot persistence, and everything recovery detected —
/// torn tails, rejected files, fallbacks to older epochs.
///
/// Corruption is *reported* here, never panicked on: a recovery that had
/// to discard a snapshot or truncate a WAL tail completes (on the older
/// epoch + longer replay) and leaves the evidence in these counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DurabilityStats {
    /// WAL records appended (insert, delete, merge and checkpoint frames).
    pub wal_records_appended: u64,
    /// Bytes appended to WALs, framing included.
    pub wal_bytes_appended: u64,
    /// `fsync` calls issued on WAL files.
    pub wal_fsyncs: u64,
    /// WAL truncations performed by successful checkpoints.
    pub wal_truncations: u64,
    /// Sealed snapshot files written (tmp-write + rename publishes).
    pub snapshots_persisted: u64,
    /// Snapshot persists that failed (I/O error or injected crash). The
    /// in-memory publish stands; recovery falls back to the previous
    /// epoch's file plus a longer WAL replay.
    pub snapshot_persist_failures: u64,
    /// Obsolete snapshot files pruned past the configured history.
    pub snapshots_pruned: u64,
    /// Checkpoints that skipped WAL truncation because the table was not
    /// quiescent (live delta rows, main deletes, or a missing snapshot).
    pub checkpoints_skipped: u64,
    /// Snapshot files loaded successfully during recovery.
    pub snapshots_loaded: u64,
    /// Snapshot files rejected during recovery: framing/checksum damage,
    /// unseal failure, or embedded identity not matching the filename.
    pub snapshots_rejected: u64,
    /// Partitions recovered from an older epoch because a newer snapshot
    /// file was rejected.
    pub snapshot_fallbacks: u64,
    /// WAL records replayed into partition state during recovery.
    pub wal_records_replayed: u64,
    /// WAL records skipped during recovery because the loaded snapshot
    /// already contains their effect.
    pub wal_records_skipped: u64,
    /// WAL records dropped as undecodable (unseal or decode failure past
    /// a valid frame — corruption within a sealed payload).
    pub wal_records_rejected: u64,
    /// Torn or corrupt WAL tails truncated during recovery.
    pub wal_torn_tails: u64,
    /// Bytes removed by WAL tail truncations.
    pub wal_torn_tail_bytes: u64,
    /// Compactions re-executed during replay (merge records whose epoch
    /// publish had not reached a persisted snapshot).
    pub merges_replayed: u64,
    /// Injected [`FailPoint`](crate::FailPoint) crashes that fired.
    pub injected_crashes: u64,
}

/// Observable compaction state of one table, across all its partitions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompactionStats {
    /// Highest merge generation among the table's partitions.
    pub epoch: u64,
    /// Per-partition merge generations, in partition order — each
    /// partition merges (and bumps its epoch) independently.
    pub partition_epochs: Vec<u64>,
    /// Completed merges (partition epoch publishes), table-wide.
    pub merges_completed: u64,
    /// Merges discarded because a delete raced the rebuild.
    pub merges_aborted: u64,
    /// Merges that failed inside the enclave.
    pub merges_failed: u64,
    /// Delta rows folded into main stores so far.
    pub rows_compacted: u64,
    /// Rows currently waiting in delta stores, summed over partitions.
    pub delta_rows: usize,
    /// Whether a background merge is running on any partition right now.
    pub merge_in_flight: bool,
    /// The error message of the most recent failed background merge.
    pub last_error: Option<String>,
}
