//! Observable execution and compaction statistics.

/// Execution statistics for one query (latency breakdowns for the
/// Figure 8 harness, plus the `exec` engine's boundary accounting and the
/// partition layer's pruning accounting).
///
/// # Fold-additive vs. set-once fields
///
/// A query's stats are assembled in two ways, and every field belongs to
/// exactly one class:
///
/// * **Fold-additive** — summed by `QueryStats::absorb` when
///   per-partition (or per-join-side) contributions fold into the query
///   total: the latency components (`dict_search_ns`, `av_search_ns`,
///   `aggregate_ns`, `render_ns`, `bridge_ns`), the boundary counters
///   (`chunks_scanned`, `enclave_calls`, `values_decrypted`), the join
///   counters (`join_build_rows`, `join_probe_rows`, `bridge_entries`),
///   and `snapshot_epoch` (which folds by *maximum*, not sum).
/// * **Set-once** — assigned exactly once at the top level of the query
///   and deliberately **not** folded, because per-side values would
///   double-count or are meaningless to add: `result_rows` (joined rows
///   ≠ left rows + right rows), and `partitions_total` /
///   `partitions_scanned` / `partitions_pruned` (the join path reports
///   the *sum over both sides*, set after both scans complete).
///
/// When adding a field, extend `QueryStats::absorb`: its exhaustive
/// destructuring makes the compiler flag the new field, forcing an
/// explicit fold-additive-or-set-once decision.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Nanoseconds spent in the enclave dictionary search.
    pub dict_search_ns: u64,
    /// Nanoseconds spent scanning the attribute vector (including the
    /// histogram scan of aggregate queries).
    pub av_search_ns: u64,
    /// Nanoseconds spent in the enclave aggregation ECALL (or the local
    /// aggregation for all-PLAIN queries).
    pub aggregate_ns: u64,
    /// Nanoseconds spent rendering the result columns.
    pub render_ns: u64,
    /// Number of result rows (groups for aggregate queries).
    pub result_rows: usize,
    /// Number of [`CHUNK_ROWS`](crate::exec::aggregate::CHUNK_ROWS)-row
    /// chunks scanned by the vectorized histogram executor.
    pub chunks_scanned: usize,
    /// Number of enclave ECALLs issued while evaluating the query.
    pub enclave_calls: usize,
    /// Number of dictionary values decrypted inside the enclave — bounded
    /// by the distinct touched ValueIDs, never by the row count.
    pub values_decrypted: usize,
    /// Entries served from the in-enclave decrypted-value cache while
    /// evaluating the query (each hit replaced one decrypt and two
    /// untrusted loads; see DESIGN.md §14 for the leakage semantics).
    pub cache_hits: usize,
    /// The highest merge generation (epoch) among the partition snapshots
    /// the query executed against. Monotone per table: compactions only
    /// ever increment partition epochs.
    pub snapshot_epoch: u64,
    /// Number of range partitions the table has.
    pub partitions_total: usize,
    /// Partitions actually searched: in scope and non-empty.
    pub partitions_scanned: usize,
    /// Partitions skipped because their key range provably misses the
    /// filter (the pruning leakage documented in DESIGN.md §10).
    pub partitions_pruned: usize,
    /// Matching rows on the build (left) side of an equi-join.
    pub join_build_rows: usize,
    /// Matching rows on the probe (right) side of an equi-join.
    pub join_probe_rows: usize,
    /// Distinct join keys present on both sides (the size of the
    /// ValueID↔ValueID bridge the `JoinBridge` ECALL returned).
    pub bridge_entries: usize,
    /// Nanoseconds spent building the join-key bridge (the `JoinBridge`
    /// ECALL, or the local match for all-PLAIN keys).
    pub bridge_ns: u64,
    /// Nanoseconds this query's enclave calls spent queued in the
    /// cross-session ECALL scheduler before their transition started
    /// (DESIGN.md §15). Zero when every call took the bypass path.
    pub ecall_wait_ns: u64,
    /// Total number of *other* sessions' requests that shared enclave
    /// transitions with this query's calls: the sum over this query's
    /// calls of (batch occupancy − 1). Zero means every call ran alone.
    pub batch_peers: usize,
}

impl QueryStats {
    /// Folds another partition's (or join side's) stats into this one —
    /// fold-additive fields sum, `snapshot_epoch` takes the maximum, and
    /// the set-once fields (`result_rows`, `partitions_*`) are
    /// *deliberately discarded*: the caller assigns them once at the top
    /// level (see the struct docs for the field classification).
    ///
    /// `other` is destructured exhaustively so that adding a field to
    /// [`QueryStats`] fails to compile here until the new field is
    /// classified.
    pub(crate) fn absorb(&mut self, other: &QueryStats) {
        let QueryStats {
            dict_search_ns,
            av_search_ns,
            aggregate_ns,
            render_ns,
            chunks_scanned,
            enclave_calls,
            values_decrypted,
            cache_hits,
            snapshot_epoch,
            join_build_rows,
            join_probe_rows,
            bridge_entries,
            bridge_ns,
            ecall_wait_ns,
            batch_peers,
            // Set-once fields: assigned by the top-level query path,
            // never folded (see struct docs).
            result_rows: _,
            partitions_total: _,
            partitions_scanned: _,
            partitions_pruned: _,
        } = *other;
        self.dict_search_ns += dict_search_ns;
        self.av_search_ns += av_search_ns;
        self.aggregate_ns += aggregate_ns;
        self.render_ns += render_ns;
        self.chunks_scanned += chunks_scanned;
        self.enclave_calls += enclave_calls;
        self.values_decrypted += values_decrypted;
        self.cache_hits += cache_hits;
        self.snapshot_epoch = self.snapshot_epoch.max(snapshot_epoch);
        self.join_build_rows += join_build_rows;
        self.join_probe_rows += join_probe_rows;
        self.bridge_entries += bridge_entries;
        self.bridge_ns += bridge_ns;
        self.ecall_wait_ns += ecall_wait_ns;
        self.batch_peers += batch_peers;
    }
}

/// Observable counters of the durable-storage layer (DESIGN.md §12):
/// WAL traffic, snapshot persistence, and everything recovery detected —
/// torn tails, rejected files, fallbacks to older epochs.
///
/// Corruption is *reported* here, never panicked on: a recovery that had
/// to discard a snapshot or truncate a WAL tail completes (on the older
/// epoch + longer replay) and leaves the evidence in these counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DurabilityStats {
    /// WAL records appended (insert, delete, merge and checkpoint frames).
    pub wal_records_appended: u64,
    /// Bytes appended to WALs, framing included.
    pub wal_bytes_appended: u64,
    /// `fsync` calls issued on WAL files.
    pub wal_fsyncs: u64,
    /// WAL truncations performed by successful checkpoints.
    pub wal_truncations: u64,
    /// Sealed snapshot files written (tmp-write + rename publishes).
    pub snapshots_persisted: u64,
    /// Snapshot persists that failed (I/O error or injected crash). The
    /// in-memory publish stands; recovery falls back to the previous
    /// epoch's file plus a longer WAL replay.
    pub snapshot_persist_failures: u64,
    /// Obsolete snapshot files pruned past the configured history.
    pub snapshots_pruned: u64,
    /// Checkpoints that skipped WAL truncation because the table was not
    /// quiescent (live delta rows, main deletes, or a missing snapshot).
    pub checkpoints_skipped: u64,
    /// Snapshot files loaded successfully during recovery.
    pub snapshots_loaded: u64,
    /// Snapshot files rejected during recovery: framing/checksum damage,
    /// unseal failure, or embedded identity not matching the filename.
    pub snapshots_rejected: u64,
    /// Partitions recovered from an older epoch because a newer snapshot
    /// file was rejected.
    pub snapshot_fallbacks: u64,
    /// WAL records replayed into partition state during recovery.
    pub wal_records_replayed: u64,
    /// WAL records skipped during recovery because the loaded snapshot
    /// already contains their effect.
    pub wal_records_skipped: u64,
    /// WAL records dropped as undecodable (unseal or decode failure past
    /// a valid frame — corruption within a sealed payload).
    pub wal_records_rejected: u64,
    /// Torn or corrupt WAL tails truncated during recovery.
    pub wal_torn_tails: u64,
    /// Bytes removed by WAL tail truncations.
    pub wal_torn_tail_bytes: u64,
    /// Compactions re-executed during replay (merge records whose epoch
    /// publish had not reached a persisted snapshot).
    pub merges_replayed: u64,
    /// Injected [`FailPoint`](crate::FailPoint) crashes that fired.
    pub injected_crashes: u64,
}

/// Observable compaction state of one table, across all its partitions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompactionStats {
    /// Highest merge generation among the table's partitions.
    pub epoch: u64,
    /// Per-partition merge generations, in partition order — each
    /// partition merges (and bumps its epoch) independently.
    pub partition_epochs: Vec<u64>,
    /// Completed merges (partition epoch publishes), table-wide.
    pub merges_completed: u64,
    /// Merges discarded because a delete raced the rebuild.
    pub merges_aborted: u64,
    /// Merges that failed inside the enclave.
    pub merges_failed: u64,
    /// Delta rows folded into main stores so far.
    pub rows_compacted: u64,
    /// Monotone count of background-merge errors, table-wide: every
    /// enclave-side merge failure and every failed snapshot persist of a
    /// published epoch bumps this, so intermittent failures are
    /// *countable* even though [`CompactionStats::last_error`] only
    /// keeps the most recent message (and is racily overwritten under
    /// concurrency). Mirrored into the metrics registry as
    /// `compaction_errors_total`.
    pub errors_total: u64,
    /// Rows currently waiting in delta stores, summed over partitions.
    pub delta_rows: usize,
    /// Whether a background merge is running on any partition right now.
    pub merge_in_flight: bool,
    /// The error message of the most recent failed background merge.
    pub last_error: Option<String>,
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A stats value with every field set to a distinct non-zero value,
    /// so a dropped or double-counted field shows up in assertions.
    fn dense(seed: u64) -> QueryStats {
        QueryStats {
            dict_search_ns: seed,
            av_search_ns: seed + 1,
            aggregate_ns: seed + 2,
            render_ns: seed + 3,
            result_rows: (seed + 4) as usize,
            chunks_scanned: (seed + 5) as usize,
            enclave_calls: (seed + 6) as usize,
            values_decrypted: (seed + 7) as usize,
            snapshot_epoch: seed + 8,
            partitions_total: (seed + 9) as usize,
            partitions_scanned: (seed + 10) as usize,
            partitions_pruned: (seed + 11) as usize,
            join_build_rows: (seed + 12) as usize,
            join_probe_rows: (seed + 13) as usize,
            bridge_entries: (seed + 14) as usize,
            bridge_ns: seed + 15,
            cache_hits: (seed + 16) as usize,
            ecall_wait_ns: seed + 17,
            batch_peers: (seed + 18) as usize,
        }
    }

    /// Pins the join-path merge contract: folding one side's stats into
    /// the query total sums exactly the fold-additive fields, maxes the
    /// epoch, and leaves every set-once field untouched for the
    /// top-level assignment. If `absorb` gains or loses a field, this
    /// test (or the exhaustive destructuring inside `absorb` itself)
    /// fails.
    #[test]
    fn absorb_folds_additive_fields_and_preserves_set_once() {
        let mut total = dense(100);
        let side = dense(1000);
        let before = total;
        total.absorb(&side);

        // Fold-additive: sums.
        assert_eq!(
            total.dict_search_ns,
            before.dict_search_ns + side.dict_search_ns
        );
        assert_eq!(total.av_search_ns, before.av_search_ns + side.av_search_ns);
        assert_eq!(total.aggregate_ns, before.aggregate_ns + side.aggregate_ns);
        assert_eq!(total.render_ns, before.render_ns + side.render_ns);
        assert_eq!(
            total.chunks_scanned,
            before.chunks_scanned + side.chunks_scanned
        );
        assert_eq!(
            total.enclave_calls,
            before.enclave_calls + side.enclave_calls
        );
        assert_eq!(
            total.values_decrypted,
            before.values_decrypted + side.values_decrypted
        );
        assert_eq!(total.cache_hits, before.cache_hits + side.cache_hits);
        assert_eq!(
            total.join_build_rows,
            before.join_build_rows + side.join_build_rows
        );
        assert_eq!(
            total.join_probe_rows,
            before.join_probe_rows + side.join_probe_rows
        );
        assert_eq!(
            total.bridge_entries,
            before.bridge_entries + side.bridge_entries
        );
        assert_eq!(total.bridge_ns, before.bridge_ns + side.bridge_ns);
        assert_eq!(
            total.ecall_wait_ns,
            before.ecall_wait_ns + side.ecall_wait_ns
        );
        assert_eq!(total.batch_peers, before.batch_peers + side.batch_peers);

        // Fold-by-max.
        assert_eq!(
            total.snapshot_epoch,
            before.snapshot_epoch.max(side.snapshot_epoch)
        );

        // Set-once: untouched by the fold (the join path assigns these
        // after both sides are absorbed).
        assert_eq!(total.result_rows, before.result_rows);
        assert_eq!(total.partitions_total, before.partitions_total);
        assert_eq!(total.partitions_scanned, before.partitions_scanned);
        assert_eq!(total.partitions_pruned, before.partitions_pruned);
    }

    #[test]
    fn absorb_into_default_reproduces_additive_fields() {
        let mut total = QueryStats::default();
        let side = dense(5);
        total.absorb(&side);
        assert_eq!(total.dict_search_ns, side.dict_search_ns);
        assert_eq!(total.snapshot_epoch, side.snapshot_epoch);
        assert_eq!(total.result_rows, 0, "set-once field must not fold");
        assert_eq!(total.partitions_scanned, 0, "set-once field must not fold");
    }
}
