//! The lock-free read path: per-partition filter evaluation against
//! consistent snapshots, fanned out across partitions on scoped threads.
//!
//! Every query first resolves its partition *scope* (pruning — see
//! DESIGN.md §10), snapshots each in-scope partition under one short lock,
//! and then evaluates entirely lock-free. Empty or fully-invalid
//! partitions are skipped without a single ECALL, mirroring the
//! empty-delta no-op: a search over a shard that provably holds no valid
//! row never enters the enclave.

use super::partition::{ColumnDelta, MainColumn, PartitionSnapshot};
use super::scheduler::{BatchKey, CallClass, EcallScheduler, SchedOutcome};
use super::table::intersect_sorted;
use super::{CellValue, Config, DbaasServer, QueryStats, SelectResponse, ServerFilter};
use crate::error::DbError;
use crate::obs::{EcallIo, EcallKind, Obs, SpanId};
use crate::schema::TableSchema;
use colstore::dictionary::RecordId;
use encdict::avsearch;
use encdict::batch::{OwnedDictCall, OwnedSearchCall, SegSource};
use encdict::enclave_ops::DictReply;
use encdict::plain::search_plain;
use encdict::search::DictSearchResult;
use encdict::{CacheTag, EncryptedRange};

/// The scheduler handle bundled with its observability context: every
/// search ECALL issued through the scan path goes through the
/// cross-session batching scheduler and (when it ran unbatched) records
/// itself into the ledger/trace with `parent` as the enclosing span
/// (typically the per-partition scan span).
pub(crate) struct EnclaveCtx<'a> {
    pub(crate) sched: &'a EcallScheduler,
    pub(crate) obs: &'a Obs,
    pub(crate) parent: SpanId,
    /// Partition discriminator for the in-enclave decrypted-value cache
    /// (the partition index of the scanned snapshot). Paired with the
    /// snapshot epoch it forms the [`encdict::CacheTag`]; see DESIGN.md
    /// §14.
    pub(crate) part: u64,
}

/// Reply payload size of one search result: each present ValueID range is
/// a `(start, end)` pair of u32s; an explicit id list (unsorted kinds) is
/// 4 bytes per ValueID.
fn search_result_bytes(result: &DictSearchResult) -> u64 {
    match result {
        DictSearchResult::Ranges(ranges) => 8 * ranges.iter().flatten().count() as u64,
        DictSearchResult::Ids(ids) => 4 * ids.len() as u64,
    }
}

/// Submits one search (main or delta dictionary, covering the whole
/// disjunction in `ranges`) through the cross-session scheduler and
/// unwraps the reply. The scheduler captures this sub-call's exact
/// counter deltas even when the transition was shared (the enclave tags
/// each coalesced sub-call's traffic separately), so ledger records stay
/// per-call-precise. The caller records the native ledger entry via
/// [`record_native_search`] when the call ran unbatched; a batched run
/// was already recorded by the round leader as one `EcallKind::Batch`
/// entry.
fn sched_search(
    ctx: &EnclaveCtx<'_>,
    dict: SegSource,
    ranges: &[EncryptedRange],
    tag: CacheTag,
    generation: u64,
) -> Result<(Vec<DictSearchResult>, SchedOutcome), DbError> {
    let outcome = ctx.sched.submit(
        OwnedDictCall::Search(OwnedSearchCall {
            dict,
            ranges: ranges.to_vec(),
            cache: Some(tag),
        }),
        BatchKey {
            class: CallClass::Search,
            generation,
        },
    );
    match outcome.reply {
        DictReply::Search(Ok(results)) => Ok((
            results,
            SchedOutcome {
                reply: DictReply::Search(Ok(Vec::new())),
                ..outcome
            },
        )),
        DictReply::Search(Err(e)) => Err(e.into()),
        _ => unreachable!("search call returns search reply"),
    }
}

/// Records the ledger/trace entry of an *unbatched* search transition,
/// byte-identical to the pre-scheduler accounting.
///
/// `values_decrypted` is derived as `untrusted_loads / 2`: every
/// dictionary entry the enclave examines costs one head and one tail
/// load (see `enclave::memory`), and each examined entry is decrypted
/// once. Cache hits cost neither loads nor decrypts, so the identity
/// holds with or without caching.
fn record_native_search(
    ctx: &EnclaveCtx<'_>,
    ranges: &[EncryptedRange],
    bytes_out: u64,
    outcome: &SchedOutcome,
) {
    debug_assert!(!outcome.batched());
    ctx.obs.ecall(
        EcallKind::Search,
        EcallIo {
            bytes_in: ranges
                .iter()
                .map(|r| (r.tau_s.as_bytes().len() + r.tau_e.as_bytes().len()) as u64)
                .sum(),
            bytes_out,
            values_decrypted: outcome.untrusted_loads / 2,
            untrusted_loads: outcome.untrusted_loads,
            untrusted_bytes: outcome.untrusted_bytes,
            cache_hits: outcome.cache_hits,
            cache_misses: outcome.cache_misses,
        },
        outcome.start_ns,
        outcome.dur_ns,
        ctx.parent,
    );
}

/// Folds one scheduler outcome into a query's stats: search latency, the
/// logical enclave-call count (per request, batched or not), cache hits,
/// queue wait and the number of peer requests that shared the transition.
fn absorb_outcome(stats: &mut QueryStats, outcome: &SchedOutcome) {
    stats.dict_search_ns += outcome.dur_ns;
    stats.enclave_calls += 1;
    stats.cache_hits += outcome.cache_hits as usize;
    stats.ecall_wait_ns += outcome.wait_ns;
    stats.batch_peers += outcome.peers - 1;
}

/// Runs `work` over every listed partition snapshot — sequentially for a
/// single partition, on scoped threads otherwise (the partition-parallel
/// fan-out). Results come back in partition order.
pub(crate) fn fan_out<T, F>(parts: &[(usize, PartitionSnapshot)], work: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, &PartitionSnapshot) -> T + Sync,
{
    if parts.len() <= 1 {
        return parts.iter().map(|(pid, snap)| work(*pid, snap)).collect();
    }
    std::thread::scope(|scope| {
        let handles: Vec<_> = parts
            .iter()
            .map(|(pid, snap)| scope.spawn(|| work(*pid, snap)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("partition scan worker panicked"))
            .collect()
    })
}

/// Linear-merge union of two ascending RecordID lists (the `IN`
/// disjunction combiner — the dual of
/// [`intersect_sorted`](super::table::intersect_sorted)).
pub(crate) fn union_sorted(a: &[RecordId], b: &[RecordId]) -> Vec<RecordId> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].0.cmp(&b[j].0) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// An owned, consistent view of one table for one query: the resolved
/// partition scope plus every in-scope partition's snapshot, empties
/// already filtered out (they are skipped without a single ECALL).
#[derive(Debug)]
pub(crate) struct TableSnapshot {
    pub(crate) table: std::sync::Arc<super::table::ServerTable>,
    /// The resolved scope (pruning already applied).
    pub(crate) scope_len: usize,
    /// In-scope non-empty partitions, in partition order.
    pub(crate) active: Vec<(usize, PartitionSnapshot)>,
}

impl TableSnapshot {
    /// Seeds the pruning/partition accounting of a query over this
    /// snapshot.
    pub(crate) fn seed_stats(&self, stats: &mut QueryStats) {
        stats.partitions_total += self.table.partitions.len();
        stats.partitions_scanned += self.active.len();
        stats.partitions_pruned += self.table.partitions.len() - self.scope_len;
    }
}

/// One table's snapshot request: name, filters (for server-side scope
/// resolution) and the proxy-provided scope hint.
pub(crate) type SnapshotWant<'a> = (&'a str, &'a [ServerFilter], Option<&'a [usize]>);

impl DbaasServer {
    /// Acquires snapshots of N tables in one tight pass: scope resolution
    /// first, then every in-scope partition's short lock back to back with
    /// no query work in between. Multi-table plans (equi-joins) go through
    /// here so both sides are captured at one point in time; per-partition
    /// snapshots remain the consistency unit (exactly as within one
    /// table — see the module docs of [`super`]).
    ///
    /// # Errors
    ///
    /// Returns [`DbError::TableNotFound`] for an unknown table.
    pub(crate) fn snapshot_tables(
        &self,
        wants: &[SnapshotWant<'_>],
    ) -> Result<Vec<TableSnapshot>, DbError> {
        let handles = wants
            .iter()
            .map(|(name, _, _)| self.table_handle(name))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(handles
            .into_iter()
            .zip(wants)
            .map(|(table, (_, filters, scope))| {
                let scope = table.resolve_scope(filters, *scope);
                let active = table
                    .snapshot_scope(&scope)
                    .into_iter()
                    .filter(|(_, snap)| !snap.is_empty())
                    .collect();
                TableSnapshot {
                    table,
                    scope_len: scope.len(),
                    active,
                }
            })
            .collect())
    }
}

/// Conjunction of filters against one partition snapshot: intersects the
/// per-filter RecordID lists (all are ascending, so the intersection is a
/// linear merge).
pub(crate) fn matching_rids_multi(
    snap: &PartitionSnapshot,
    schema: &TableSchema,
    ctx: &EnclaveCtx<'_>,
    filters: &[ServerFilter],
    cfg: &Config,
) -> Result<(Vec<RecordId>, Vec<RecordId>, QueryStats), DbError> {
    if filters.len() <= 1 {
        return matching_rids(snap, schema, ctx, filters.first(), cfg);
    }
    let mut acc: Option<(Vec<RecordId>, Vec<RecordId>)> = None;
    let mut stats = QueryStats::default();
    for f in filters {
        let (main, delta, s) = matching_rids(snap, schema, ctx, Some(f), cfg)?;
        stats.absorb(&s);
        acc = Some(match acc {
            None => (main, delta),
            Some((am, ad)) => (intersect_sorted(&am, &main), intersect_sorted(&ad, &delta)),
        });
    }
    let (main, delta) = acc.unwrap_or_default();
    Ok((main, delta, stats))
}

/// Computes the valid matching RecordIDs in main and delta stores of one
/// partition snapshot. Empty dictionaries and fully-invalid stores are
/// answered without entering the enclave.
fn matching_rids(
    snap: &PartitionSnapshot,
    schema: &TableSchema,
    ctx: &EnclaveCtx<'_>,
    filter: Option<&ServerFilter>,
    cfg: &Config,
) -> Result<(Vec<RecordId>, Vec<RecordId>, QueryStats), DbError> {
    let mut stats = QueryStats::default();
    let Some(filter) = filter else {
        // Unfiltered: all valid rows.
        let main = (0..snap.main.rows as u32)
            .map(RecordId)
            .filter(|r| snap.main_validity.is_valid(r.0 as usize))
            .collect();
        let delta = (0..snap.delta_rows as u32)
            .map(RecordId)
            .filter(|r| snap.delta_validity.is_valid(r.0 as usize))
            .collect();
        return Ok((main, delta, stats));
    };

    let (idx, _) = schema
        .column(filter.column())
        .ok_or_else(|| DbError::ColumnNotFound(filter.column().to_string()))?;

    let (main_rids, delta_rids) = match (&snap.main.columns[idx], &snap.deltas[idx], filter) {
        (
            MainColumn::Encrypted(main),
            ColumnDelta::Encrypted(delta),
            ServerFilter::Encrypted { ranges, .. },
        ) => {
            let dict = main.dict();
            // An empty or fully-invalid main store provably matches
            // nothing — skip the search ECALL (the partition-layer
            // analogue of the PR 3 empty-delta no-op). The whole
            // disjunction (`IN` / multi-range) is batched into *one*
            // ECALL per store; the per-range results are unioned in one
            // combined AV pass.
            let main_rids = if dict.is_empty() || snap.main_valid_rows == 0 || ranges.is_empty() {
                Vec::new()
            } else {
                let tag = CacheTag {
                    part: ctx.part,
                    epoch: snap.epoch(),
                    delta: false,
                };
                let (results, outcome) = sched_search(
                    ctx,
                    SegSource::Shared(main.dict_arc()),
                    ranges,
                    tag,
                    snap.epoch(),
                )?;
                if !outcome.batched() {
                    let bytes_out = results.iter().map(search_result_bytes).sum();
                    record_native_search(ctx, ranges, bytes_out, &outcome);
                }
                absorb_outcome(&mut stats, &outcome);
                let av_start = std::time::Instant::now();
                let rids = avsearch::search_union(
                    main.av(),
                    &results,
                    dict.len(),
                    cfg.set_strategy,
                    cfg.parallelism,
                );
                stats.av_search_ns += av_start.elapsed().as_nanos() as u64;
                rids
            };
            // The empty (or fully-deleted) delta needs no ECALL either.
            let delta_rids = if delta.is_empty() || snap.delta_valid_rows == 0 || ranges.is_empty()
            {
                Vec::new()
            } else {
                let tag = CacheTag {
                    part: ctx.part,
                    epoch: snap.epoch(),
                    delta: true,
                };
                // The delta searches as a self-contained ED9 dictionary
                // built from its own (small, snapshot-frozen) bytes: the
                // request owns its segment copy, so it stays valid no
                // matter when the scheduler dispatches it.
                let (delta_dict, _) = delta.as_dictionary()?;
                let (results, outcome) = sched_search(
                    ctx,
                    SegSource::Owned(Box::new(delta_dict)),
                    ranges,
                    tag,
                    snap.epoch(),
                )?;
                let rids = delta.filter_results(&results);
                if !outcome.batched() {
                    record_native_search(ctx, ranges, 4 * rids.len() as u64, &outcome);
                }
                absorb_outcome(&mut stats, &outcome);
                rids
            };
            (main_rids, delta_rids)
        }
        (
            MainColumn::Plain { dict, av },
            ColumnDelta::Plain(delta),
            ServerFilter::Plain { ranges, .. },
        ) => {
            let mut main_rids: Vec<RecordId> = Vec::new();
            for range in ranges {
                let dict_start = std::time::Instant::now();
                let result = search_plain(dict, range)?;
                stats.dict_search_ns += dict_start.elapsed().as_nanos() as u64;
                let av_start = std::time::Instant::now();
                let rids =
                    avsearch::search(av, &result, dict.len(), cfg.set_strategy, cfg.parallelism);
                stats.av_search_ns += av_start.elapsed().as_nanos() as u64;
                main_rids = if main_rids.is_empty() {
                    rids
                } else {
                    union_sorted(&main_rids, &rids)
                };
            }
            let delta_rids = delta
                .iter_valid()
                .filter(|(_, v)| ranges.iter().any(|r| r.contains(v)))
                .map(|(rid, _)| rid)
                .collect();
            (main_rids, delta_rids)
        }
        _ => {
            return Err(DbError::UnsupportedFilter(
                "filter form does not match column protection".to_string(),
            ))
        }
    };
    let main = main_rids
        .into_iter()
        .filter(|r| snap.main_validity.is_valid(r.0 as usize))
        .collect();
    let delta = delta_rids
        .into_iter()
        .filter(|r| snap.delta_validity.is_valid(r.0 as usize))
        .collect();
    Ok((main, delta, stats))
}

pub(crate) fn render_main_cell(col: &MainColumn, rid: RecordId) -> CellValue {
    match col {
        MainColumn::Encrypted(main) => {
            let vid = main.av().value_id(rid);
            CellValue::Encrypted(main.dict().ciphertext(vid.0 as usize).to_vec())
        }
        MainColumn::Plain { dict, av } => {
            let vid = av.value_id(rid);
            CellValue::Plain(dict.value(vid.0 as usize).to_vec())
        }
    }
}

pub(crate) fn render_delta_cell(col: &ColumnDelta, rid: RecordId) -> CellValue {
    match col {
        ColumnDelta::Encrypted(delta) => CellValue::Encrypted(delta.ciphertext(rid).to_vec()),
        ColumnDelta::Plain(delta) => CellValue::Plain(delta.value(rid).to_vec()),
    }
}

impl DbaasServer {
    /// Executes a select (Fig. 5 steps 6–13).
    ///
    /// # Errors
    ///
    /// Propagates lookup and enclave failures.
    pub fn select(
        &self,
        table: &str,
        columns: &[String],
        filter: Option<&ServerFilter>,
    ) -> Result<SelectResponse, DbError> {
        self.select_multi(
            table,
            columns,
            filter.map(std::slice::from_ref).unwrap_or(&[]),
        )
    }

    /// Executes a select with a *conjunction* of single-column filters —
    /// the prefiltering the paper sketches in step 12 ("rid would be used
    /// to prefilter other columns in the same table"). Each filter runs its
    /// own dictionary + attribute-vector search; the RecordID lists are
    /// intersected. Partitioned tables evaluate partition by partition,
    /// each against its own consistent snapshot, in parallel on scoped
    /// threads.
    ///
    /// # Errors
    ///
    /// Propagates lookup and enclave failures.
    pub fn select_multi(
        &self,
        table: &str,
        columns: &[String],
        filters: &[ServerFilter],
    ) -> Result<SelectResponse, DbError> {
        self.select_inner(table, columns, filters, None, SpanId::NONE)
    }

    pub(crate) fn select_inner(
        &self,
        table: &str,
        columns: &[String],
        filters: &[ServerFilter],
        scope: Option<&[usize]>,
        parent: SpanId,
    ) -> Result<SelectResponse, DbError> {
        let obs = self.obs().clone();
        let cfg = self.config();
        let snap_span = obs.span("snapshot", "query", parent);
        let ts = self
            .snapshot_tables(&[(table, filters, scope)])?
            .pop()
            .expect("one table requested");
        snap_span.finish();
        let t = &ts.table;
        let projected: Vec<String> = if columns.is_empty() {
            t.schema.columns.iter().map(|c| c.name.clone()).collect()
        } else {
            columns.to_vec()
        };
        let mut col_indices = Vec::with_capacity(projected.len());
        for name in &projected {
            let (idx, _) = t
                .schema
                .column(name)
                .ok_or_else(|| DbError::ColumnNotFound(name.clone()))?;
            col_indices.push(idx);
        }
        let active = &ts.active;

        // Per-partition: search + render against that partition's
        // snapshot. One search ECALL per filtered dictionary of each
        // non-empty in-scope partition.
        let col_indices = &col_indices;
        let scan_span = obs.span_arg("scan", "query", parent, active.len() as u64);
        let obs_ref = &obs;
        let per_partition = fan_out(active, |pid, snap| {
            let pspan = obs_ref.span_arg("partition", "query", scan_span.id(), pid as u64);
            let ctx = EnclaveCtx {
                sched: self.scheduler(),
                obs: obs_ref,
                parent: pspan.id(),
                part: pid as u64,
            };
            let (main_rids, delta_rids, mut stats) =
                matching_rids_multi(snap, &t.schema, &ctx, filters, &cfg)?;
            let render_span = obs_ref.span("render", "query", pspan.id());
            let render_start = std::time::Instant::now();
            let mut rows = Vec::with_capacity(main_rids.len() + delta_rids.len());
            for &rid in &main_rids {
                let mut row = Vec::with_capacity(col_indices.len());
                for &idx in col_indices {
                    row.push(render_main_cell(&snap.main.columns[idx], rid));
                }
                rows.push(row);
            }
            for &rid in &delta_rids {
                let mut row = Vec::with_capacity(col_indices.len());
                for &idx in col_indices {
                    row.push(render_delta_cell(&snap.deltas[idx], rid));
                }
                rows.push(row);
            }
            render_span.finish();
            stats.render_ns = render_start.elapsed().as_nanos() as u64;
            stats.snapshot_epoch = snap.epoch();
            Ok::<_, DbError>((rows, stats))
        });
        scan_span.finish();

        let mut rows = Vec::new();
        let mut stats = QueryStats::default();
        ts.seed_stats(&mut stats);
        for result in per_partition {
            let (part_rows, part_stats) = result?;
            stats.absorb(&part_stats);
            rows.extend(part_rows);
        }
        stats.result_rows = rows.len();
        self.store_stats(stats);
        Ok(SelectResponse {
            columns: projected,
            rows,
        })
    }

    /// Counts matching valid rows without rendering result columns — a
    /// thin wrapper over [`DbaasServer::count_multi`] (the count
    /// aggregation the paper notes is easier than range search).
    ///
    /// # Errors
    ///
    /// Propagates lookup and enclave failures.
    pub fn count(&self, table: &str, filter: Option<&ServerFilter>) -> Result<usize, DbError> {
        self.count_multi(table, filter.map(std::slice::from_ref).unwrap_or(&[]))
    }

    /// Counts rows matching a conjunction of filters, across all in-scope
    /// partitions.
    ///
    /// # Errors
    ///
    /// Propagates lookup and enclave failures.
    pub fn count_multi(&self, table: &str, filters: &[ServerFilter]) -> Result<usize, DbError> {
        let cfg = self.config();
        let ts = self
            .snapshot_tables(&[(table, filters, None)])?
            .pop()
            .expect("one table requested");
        let obs = self.obs();
        let counts = fan_out(&ts.active, |pid, snap| {
            let ctx = EnclaveCtx {
                sched: self.scheduler(),
                obs,
                parent: SpanId::NONE,
                part: pid as u64,
            };
            let (main, delta, _) =
                matching_rids_multi(snap, &ts.table.schema, &ctx, filters, &cfg)?;
            Ok::<_, DbError>(main.len() + delta.len())
        });
        let mut total = 0usize;
        for c in counts {
            total += c?;
        }
        Ok(total)
    }
}
