//! The per-table layer: an ordered set of range partitions plus
//! table-wide compaction counters, partition routing for writes and
//! range pruning for reads.

use super::partition::{ColumnDelta, MainColumn, Partition, PartitionSnapshot};
use super::storage;
use super::{lock, CellValue, DbaasServer, DeployedColumn, ServerFilter, MERGE_RETRIES};
use crate::error::DbError;
use crate::obs::{Counter, EcallIo, EcallKind, SpanId};
use crate::schema::{DictChoice, TableSchema};
use colstore::delta::DeltaStore;
use colstore::dictionary::RecordId;
use encdict::dynamic::{EncryptedDeltaStore, MainSnapshot};
use encdict::{EncryptedDictionary, PlainDictionary};
use std::sync::atomic::AtomicU64;
use std::sync::{Arc, Mutex};

/// A deployed table: schema, ordered range partitions, and table-wide
/// merge counters (partitions merge independently but report together).
#[derive(Debug)]
pub(crate) struct ServerTable {
    pub(crate) schema: TableSchema,
    pub(crate) partitions: Vec<Arc<Partition>>,
    pub(crate) merges_completed: AtomicU64,
    pub(crate) merges_aborted: AtomicU64,
    pub(crate) merges_failed: AtomicU64,
    pub(crate) rows_compacted: AtomicU64,
    /// Monotone count of background-merge errors (enclave merge failures
    /// plus failed snapshot persists of published epochs); unlike
    /// [`ServerTable::last_error`] it never loses intermittent failures.
    pub(crate) errors_total: AtomicU64,
    pub(crate) last_error: Mutex<Option<String>>,
}

impl ServerTable {
    /// Builds a table from per-partition deployed columns.
    pub(crate) fn build(
        schema: TableSchema,
        parts: Vec<Vec<DeployedColumn>>,
    ) -> Result<Self, DbError> {
        if let Some(p) = &schema.partitioning {
            p.validate().map_err(DbError::Partition)?;
            if schema.column(&p.column).is_none() {
                return Err(DbError::ColumnNotFound(p.column.clone()));
            }
        }
        if parts.len() != schema.partition_count() {
            return Err(DbError::Partition(format!(
                "schema declares {} partitions, got {} column sets",
                schema.partition_count(),
                parts.len()
            )));
        }
        let partitions = parts
            .into_iter()
            .enumerate()
            .map(|(i, columns)| Ok(Arc::new(build_partition(&schema, i, columns)?)))
            .collect::<Result<Vec<_>, DbError>>()?;
        Ok(ServerTable {
            schema,
            partitions,
            merges_completed: AtomicU64::new(0),
            merges_aborted: AtomicU64::new(0),
            merges_failed: AtomicU64::new(0),
            rows_compacted: AtomicU64::new(0),
            errors_total: AtomicU64::new(0),
            last_error: Mutex::new(None),
        })
    }

    /// Wraps partitions reloaded from sealed snapshots (crash recovery).
    /// The table-wide merge counters restart at zero — they are process
    /// statistics, not durable state.
    pub(crate) fn from_parts(schema: TableSchema, partitions: Vec<Arc<Partition>>) -> Self {
        ServerTable {
            schema,
            partitions,
            merges_completed: AtomicU64::new(0),
            merges_aborted: AtomicU64::new(0),
            merges_failed: AtomicU64::new(0),
            rows_compacted: AtomicU64::new(0),
            errors_total: AtomicU64::new(0),
            last_error: Mutex::new(None),
        }
    }

    /// Resolves the partition scope of a query: a proxy-provided scope
    /// wins (the proxy knows the plaintext ranges of *encrypted* filters);
    /// otherwise plaintext filters on the partition column prune
    /// server-side; otherwise every partition is in scope.
    ///
    /// The result is an ordered, deduplicated list of partition indices.
    /// What this reveals to the server — which shards a query can touch —
    /// is the pruning leakage analyzed in DESIGN.md §10.
    pub(crate) fn resolve_scope(
        &self,
        filters: &[ServerFilter],
        provided: Option<&[usize]>,
    ) -> Vec<usize> {
        let total = self.partitions.len();
        if let Some(ids) = provided {
            let mut scope: Vec<usize> = ids.iter().copied().filter(|&i| i < total).collect();
            scope.sort_unstable();
            scope.dedup();
            return scope;
        }
        if let Some(part) = &self.schema.partitioning {
            // Per filter, the scope is the exact *union* of its range
            // disjunction's shards (an `IN` on the partition column skips
            // the shards between its values); across filters, scopes
            // intersect — matching the proxy-side computation.
            let mut scope: Option<std::collections::BTreeSet<usize>> = None;
            for f in filters {
                if let ServerFilter::Plain { column, ranges } = f {
                    if column == &part.column {
                        let mut ids = std::collections::BTreeSet::new();
                        for range in ranges {
                            ids.extend(part.overlapping(range));
                        }
                        scope = Some(match scope {
                            None => ids,
                            Some(acc) => acc.intersection(&ids).copied().collect(),
                        });
                    }
                }
            }
            return match scope {
                Some(ids) => ids.into_iter().collect(),
                None => (0..total).collect(),
            };
        }
        (0..total).collect()
    }

    /// Snapshots every in-scope partition (one short lock each; snapshots
    /// of different partitions are *not* mutually atomic — each is
    /// internally consistent, which is the guarantee readers rely on).
    pub(crate) fn snapshot_scope(&self, scope: &[usize]) -> Vec<(usize, PartitionSnapshot)> {
        scope
            .iter()
            .map(|&pid| (pid, self.partitions[pid].snapshot()))
            .collect()
    }

    /// The partition a plaintext value of the partition column routes to.
    pub(crate) fn route_value(&self, value: &[u8]) -> usize {
        self.schema
            .partitioning
            .as_ref()
            .map_or(0, |p| p.partition_of(value))
    }
}

fn build_partition(
    schema: &TableSchema,
    index: usize,
    columns: Vec<DeployedColumn>,
) -> Result<Partition, DbError> {
    if columns.len() != schema.columns.len() {
        return Err(DbError::ArityMismatch {
            expected: schema.columns.len(),
            got: columns.len(),
        });
    }
    let mut rows = None;
    let mut main_columns = Vec::with_capacity(columns.len());
    let mut deltas = Vec::with_capacity(columns.len());
    for (spec, deployed) in schema.columns.iter().zip(columns) {
        let check_rows = |rows: &mut Option<usize>, got: usize| match *rows {
            None => {
                *rows = Some(got);
                Ok(())
            }
            Some(r) if r == got => Ok(()),
            Some(r) => Err(DbError::ArityMismatch { expected: r, got }),
        };
        match deployed {
            DeployedColumn::Encrypted(dict, av) => {
                check_rows(&mut rows, av.len())?;
                deltas.push(ColumnDelta::Encrypted(EncryptedDeltaStore::new(
                    schema.name.clone(),
                    spec.name.clone(),
                    spec.max_len,
                )));
                main_columns.push(MainColumn::Encrypted(MainSnapshot::new(0, dict, av)));
            }
            DeployedColumn::Plain(dict, av) => {
                check_rows(&mut rows, av.len())?;
                deltas.push(ColumnDelta::Plain(DeltaStore::new(spec.max_len)));
                main_columns.push(MainColumn::Plain {
                    dict: Arc::new(dict),
                    av: Arc::new(av),
                });
            }
        }
    }
    Ok(Partition::new(
        index,
        main_columns,
        deltas,
        rows.unwrap_or(0),
    ))
}

/// Builds an empty encrypted dictionary placeholder for `CREATE TABLE`.
pub(crate) fn empty_encrypted_dict(
    table: &str,
    spec: &crate::schema::ColumnSpec,
    kind: encdict::EdKind,
) -> EncryptedDictionary {
    // An empty column encrypts to an empty dictionary; no key material is
    // needed since there are zero ciphertexts.
    let column = colstore::column::Column::new(&spec.name, spec.max_len);
    let params = encdict::build::BuildParams {
        table_name: table.to_string(),
        col_name: spec.name.clone(),
        bs_max: spec.bs_max.max(1),
    };
    let throwaway = encdbdb_crypto::Key128::from_bytes([0u8; 16]);
    let mut rng = rand::rngs::mock::StepRng::new(0, 1);
    let (dict, _) = encdict::build::build_encrypted(&column, kind, &params, &throwaway, &mut rng)
        .expect("empty column always builds");
    dict
}

pub(crate) fn empty_plain_dict(max_len: usize) -> PlainDictionary {
    let column = colstore::column::Column::new("c", max_len);
    let mut rng = rand::rngs::mock::StepRng::new(0, 1);
    let (dict, _) =
        encdict::build::build_plain(&column, encdict::EdKind::Ed1, &Default::default(), &mut rng)
            .expect("empty column always builds");
    dict
}

impl DbaasServer {
    /// Appends rows to a table's delta stores (§4.3). Encrypted cells are
    /// re-encrypted by the enclave *before* any storage lock is taken, so
    /// the append itself is atomic per partition with respect to
    /// concurrent snapshots.
    ///
    /// For range-partitioned tables the rows must be routable: either the
    /// partition column is PLAIN (the server routes by value), or the
    /// caller supplies per-row partition ids through
    /// [`ServerQuery::Insert`](super::ServerQuery::Insert) — the trusted
    /// proxy does the latter, since only it sees the plaintext of an
    /// encrypted partition column.
    ///
    /// # Errors
    ///
    /// Propagates lookup, arity, routing and enclave failures.
    pub fn insert(&self, table: &str, rows: &[Vec<CellValue>]) -> Result<usize, DbError> {
        self.insert_inner(table, rows, None, SpanId::NONE)
    }

    pub(crate) fn insert_inner(
        &self,
        table: &str,
        rows: &[Vec<CellValue>],
        partition_ids: Option<&[usize]>,
        parent: SpanId,
    ) -> Result<usize, DbError> {
        let obs = self.obs().clone();
        let span = obs.span_arg("insert", "query", parent, rows.len() as u64);
        let cfg = self.config();
        let t = self.table_handle(table)?;
        // Route every row before touching any lock (the plaintext of the
        // partition column is only visible here for PLAIN columns).
        let pids = route_rows(&t, rows, partition_ids)?;
        // Step 1 (no storage lock): validate and re-encrypt every cell.
        let mut prepared: Vec<Vec<CellValue>> = Vec::with_capacity(rows.len());
        for row in rows {
            if row.len() != t.schema.columns.len() {
                return Err(DbError::ArityMismatch {
                    expected: t.schema.columns.len(),
                    got: row.len(),
                });
            }
            let mut out = Vec::with_capacity(row.len());
            for (spec, cell) in t.schema.columns.iter().zip(row) {
                match (&spec.choice, cell) {
                    (DictChoice::Encrypted(_), CellValue::Encrypted(ct)) => {
                        // One ECALL per encrypted cell: the enclave
                        // decrypts the owner ciphertext and re-encrypts
                        // it under the delta-entry regime.
                        let start_ns = obs.now_ns();
                        let t0 = std::time::Instant::now();
                        let mut enclave = self.enclave();
                        let before = enclave.enclave().counters();
                        let fresh = enclave.reencrypt(&t.schema.name, &spec.name, ct)?;
                        let after = enclave.enclave().counters();
                        drop(enclave);
                        obs.ecall(
                            EcallKind::Reencrypt,
                            EcallIo {
                                bytes_in: ct.len() as u64,
                                bytes_out: fresh.as_bytes().len() as u64,
                                values_decrypted: 1,
                                untrusted_loads: after.untrusted_loads - before.untrusted_loads,
                                untrusted_bytes: after.untrusted_bytes - before.untrusted_bytes,
                                cache_hits: 0,
                                cache_misses: 0,
                            },
                            start_ns,
                            t0.elapsed().as_nanos() as u64,
                            span.id(),
                        );
                        out.push(CellValue::Encrypted(fresh.into_bytes()));
                    }
                    (DictChoice::Plain, CellValue::Plain(v)) => {
                        if v.len() > spec.max_len {
                            return Err(DbError::ValueTooLong {
                                got: v.len(),
                                max: spec.max_len,
                            });
                        }
                        out.push(CellValue::Plain(v.clone()));
                    }
                    _ => {
                        return Err(DbError::UnsupportedFilter(
                            "cell form does not match column protection".to_string(),
                        ))
                    }
                }
            }
            prepared.push(out);
        }
        // Step 2: group rows per partition, then one short lock per
        // touched partition. A write to shard A never takes shard B's
        // lock.
        let mut per_partition: Vec<Vec<Vec<CellValue>>> = vec![Vec::new(); t.partitions.len()];
        for (pid, row) in pids.iter().zip(prepared) {
            per_partition[*pid].push(row);
        }
        // Log-then-apply (DESIGN.md §12): with durable storage attached,
        // the whole insert is appended to the table's WAL as *one* record
        // before any partition state changes. Every writer (inserts,
        // deletes, epoch publishes) serializes on the WAL mutex, so the
        // absolute delta positions read here stay valid until the groups
        // are applied below, and a failed append leaves memory and log
        // identically untouched.
        let storage = self.storage();
        let wal = match &storage {
            Some(s) => Some(s.wal_handle(table)?),
            None => None,
        };
        let mut wal_guard = wal.as_ref().map(|w| lock(w));
        if let (Some(s), Some(guard)) = (&storage, wal_guard.as_mut()) {
            let mut groups = Vec::new();
            for (pid, rows) in per_partition.iter().enumerate() {
                if rows.is_empty() {
                    continue;
                }
                let state = lock(&t.partitions[pid].state);
                groups.push(storage::InsertGroup {
                    pid,
                    base_abs: state.drained_total + state.delta_rows as u64,
                    rows,
                });
            }
            s.append_record(guard, &storage::encode_insert(&groups))?;
        }
        let mut touched = Vec::new();
        for (pid, rows) in per_partition.into_iter().enumerate() {
            if rows.is_empty() {
                continue;
            }
            let partition = &t.partitions[pid];
            {
                let mut state = lock(&partition.state);
                for row in rows {
                    for (delta, cell) in state.deltas.iter_mut().zip(row) {
                        match (delta, cell) {
                            (ColumnDelta::Encrypted(d), CellValue::Encrypted(ct)) => {
                                d.push_reencrypted(&ct);
                            }
                            (ColumnDelta::Plain(d), CellValue::Plain(v)) => {
                                d.insert(&v).map_err(|e| match e {
                                    colstore::ColstoreError::ValueTooLong { got, max } => {
                                        DbError::ValueTooLong { got, max }
                                    }
                                    other => DbError::Storage(other),
                                })?;
                            }
                            _ => unreachable!("prepared cells match the schema"),
                        }
                    }
                    state.delta_rows += 1;
                    state.delta_validity.push(true);
                }
            }
            touched.push(pid);
        }
        drop(wal_guard);
        for pid in touched {
            self.maybe_compact(&t, &t.partitions[pid], &cfg);
        }
        obs.add(Counter::RowsInsertedTotal, rows.len() as u64);
        span.finish();
        Ok(rows.len())
    }

    /// Deletes rows matching a conjunction of filters.
    ///
    /// Per partition, the matching RecordIDs are computed against a
    /// snapshot; if a compaction publishes a new epoch in between
    /// (renumbering rows), the delete retries against the fresh state of
    /// that partition only.
    ///
    /// # Errors
    ///
    /// Propagates lookup and enclave failures; returns
    /// [`DbError::MergeConflict`] if compactions keep racing the delete.
    pub fn delete_multi(&self, table: &str, filters: &[ServerFilter]) -> Result<usize, DbError> {
        self.delete_inner(table, filters, None, SpanId::NONE)
    }

    pub(crate) fn delete_inner(
        &self,
        table: &str,
        filters: &[ServerFilter],
        scope: Option<&[usize]>,
        parent: SpanId,
    ) -> Result<usize, DbError> {
        let obs = self.obs().clone();
        let span = obs.span("delete", "query", parent);
        let cfg = self.config();
        let t = self.table_handle(table)?;
        let storage = self.storage();
        let wal = match &storage {
            Some(s) => Some(s.wal_handle(table)?),
            None => None,
        };
        let scope = t.resolve_scope(filters, scope);
        let mut deleted = 0usize;
        'partitions: for pid in scope {
            let partition = &t.partitions[pid];
            for _attempt in 0..MERGE_RETRIES {
                let snap = partition.snapshot();
                if snap.is_empty() {
                    continue 'partitions;
                }
                let pspan = obs.span_arg("partition", "query", span.id(), pid as u64);
                let ctx = super::snapshot::EnclaveCtx {
                    sched: self.scheduler(),
                    obs: &obs,
                    parent: pspan.id(),
                    part: pid as u64,
                };
                let (main_rids, delta_rids, _) =
                    super::snapshot::matching_rids_multi(&snap, &t.schema, &ctx, filters, &cfg)?;
                pspan.finish();
                {
                    // Lock order: WAL → partition state, as everywhere.
                    let mut wal_guard = wal.as_ref().map(|w| lock(w));
                    let mut state = lock(&partition.state);
                    if state.main.epoch != snap.main.epoch {
                        continue; // A merge published mid-delete; recompute.
                    }
                    // The epoch check passed under both locks, so the
                    // RecordIDs are valid for the state the record's epoch
                    // names — log before flipping (some candidates may be
                    // already-invalid; replay re-checks validity bits).
                    if let (Some(s), Some(guard)) = (&storage, wal_guard.as_mut()) {
                        if !main_rids.is_empty() || !delta_rids.is_empty() {
                            let record = storage::encode_delete(
                                pid,
                                state.main.epoch,
                                &main_rids,
                                state.drained_total,
                                &delta_rids,
                            );
                            s.append_record(guard, &record)?;
                        }
                    }
                    // Count (and conflict-flag) only rows whose validity
                    // bit actually flips: a racing delete of the same rows
                    // must not double-report or abort a merge for nothing.
                    let mut flipped_main = 0usize;
                    if !main_rids.is_empty() {
                        let validity = Arc::make_mut(&mut state.main_validity);
                        for rid in &main_rids {
                            if validity.is_valid(rid.0 as usize) {
                                validity.invalidate(rid.0 as usize);
                                flipped_main += 1;
                            }
                        }
                        state.main_invalid += flipped_main;
                    }
                    let mut flipped_merged_delta = 0usize;
                    let mut flipped_delta = 0usize;
                    for rid in &delta_rids {
                        if state.delta_validity.is_valid(rid.0 as usize) {
                            state.delta_validity.invalidate(rid.0 as usize);
                            flipped_delta += 1;
                            if (rid.0 as usize) < state.merge_watermark {
                                flipped_merged_delta += 1;
                            }
                        }
                    }
                    if state.merge_in_flight && (flipped_main > 0 || flipped_merged_delta > 0) {
                        state.deletes_during_merge = true;
                    }
                    deleted += flipped_main + flipped_delta;
                }
                self.maybe_compact(&t, partition, &cfg);
                continue 'partitions;
            }
            return Err(DbError::MergeConflict(format!(
                "delete on {table} kept racing compaction publishes"
            )));
        }
        obs.add(Counter::RowsDeletedTotal, deleted as u64);
        span.finish();
        Ok(deleted)
    }

    /// Invalidates matching rows (§4.3: "deletions are realizable by an
    /// update on the validity bit") — a thin wrapper over
    /// [`DbaasServer::delete_multi`].
    ///
    /// # Errors
    ///
    /// Propagates lookup and enclave failures.
    pub fn delete(&self, table: &str, filter: Option<&ServerFilter>) -> Result<usize, DbError> {
        self.delete_multi(table, filter.map(std::slice::from_ref).unwrap_or(&[]))
    }
}

/// Resolves the target partition of every row: caller-provided ids win
/// (the proxy routes rows whose partition column is encrypted); otherwise
/// a PLAIN partition column routes by value; an unpartitioned table takes
/// partition 0.
fn route_rows(
    t: &ServerTable,
    rows: &[Vec<CellValue>],
    provided: Option<&[usize]>,
) -> Result<Vec<usize>, DbError> {
    let total = t.partitions.len();
    if let Some(ids) = provided {
        if ids.len() != rows.len() {
            return Err(DbError::Partition(format!(
                "{} partition ids for {} rows",
                ids.len(),
                rows.len()
            )));
        }
        for &pid in ids {
            if pid >= total {
                return Err(DbError::Partition(format!(
                    "partition id {pid} outside {total} partitions"
                )));
            }
        }
        return Ok(ids.to_vec());
    }
    let Some(part) = &t.schema.partitioning else {
        return Ok(vec![0; rows.len()]);
    };
    let (idx, spec) = t
        .schema
        .column(&part.column)
        .ok_or_else(|| DbError::ColumnNotFound(part.column.clone()))?;
    match spec.choice {
        DictChoice::Plain => rows
            .iter()
            .map(|row| match row.get(idx) {
                Some(CellValue::Plain(v)) => Ok(t.route_value(v)),
                _ => Err(DbError::UnsupportedFilter(
                    "cell form does not match column protection".to_string(),
                )),
            })
            .collect(),
        DictChoice::Encrypted(_) => Err(DbError::Partition(format!(
            "table {} is partitioned on encrypted column {}; inserts must carry \
             proxy-computed partition ids",
            t.schema.name, part.column
        ))),
    }
}

/// Linear-merge intersection of two ascending RecordID lists.
pub(crate) fn intersect_sorted(a: &[RecordId], b: &[RecordId]) -> Vec<RecordId> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].0.cmp(&b[j].0) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}
