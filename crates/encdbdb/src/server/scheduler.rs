//! The cross-session ECALL batching scheduler (DESIGN.md §15).
//!
//! Every read-path enclave call — dictionary search, aggregate
//! finalization, join-key bridging — goes through one [`EcallScheduler`]
//! per server. The scheduler is a *flat-combining* front of the query
//! enclave's mutex:
//!
//! * A session that finds the enclave idle claims **leadership** and
//!   executes its own call directly — the bypass path, so single-client
//!   latency does not regress (one state-mutex touch, no queueing).
//! * A session that finds a leader active **enqueues** its owned request
//!   ([`encdict::batch::OwnedDictCall`]) with a reply slot and blocks on
//!   the slot's condvar.
//! * When the leader's transition completes it drains every compatible
//!   request pending at that moment into one combined
//!   [`DictCall::Batch`](encdict::enclave_ops::DictCall) — **one**
//!   enclave transition for the whole round — and demultiplexes the
//!   per-sub-call replies (each tagged by the enclave with its own
//!   counter deltas) back to the waiting sessions. It keeps running
//!   rounds until the queue is empty, then resigns; under the state
//!   mutex, so no request is ever orphaned.
//!
//! Compatibility is a [`BatchKey`]: call class (search / aggregate /
//! join-bridge) plus store generation. Requests pinned to different
//! snapshot epochs never share a round — a compaction publish mid-batch
//! splits the queue at the epoch flip instead of mixing generations.
//! (Correctness never depends on this: every request *owns* its segment
//! data via `Arc`s or copies, so it always executes against the snapshot
//! it was built from. The key is dispatch policy, keeping a round's
//! combined payload describable as "K requests against one store
//! generation" for the leakage analysis.)
//!
//! Accounting: a round of one records nothing here — the session records
//! its native [`EcallKind`] exactly as the unbatched code did, so
//! single-session ledgers and leakage audits are byte-for-byte
//! unchanged. A round of K ≥ 2 is recorded once by the leader as an
//! [`EcallKind::Batch`] ledger entry whose payload totals are the sums
//! over the coalesced requests, plus `ecall_batches_total` /
//! `batched_calls_total` and the batch-occupancy histogram; per-session
//! queue wait lands in `ecall_wait_ns`.
//!
//! Crash-safety: a leader that panics mid-round (an enclave bug, or the
//! injected test hook) must not wedge its followers' condvar waits. The
//! round is wrapped in a [`RoundGuard`] whose `Drop` — running during
//! unwind — resigns leadership and fills every undelivered slot (the
//! round's own plus everything still queued) with an
//! [`EncdictError::Poisoned`] reply, so followers fail their query
//! instead of blocking forever. Poisoned requests were never executed:
//! no transition happened for them, so no ledger entry is recorded (the
//! error reply propagates out of the search/aggregate/bridge unwrap
//! before any native accounting).

use super::lock;
use crate::obs::{EcallIo, EcallKind, Hist, Obs, SpanId};
use encdict::batch::OwnedDictCall;
use encdict::enclave_ops::{AggCell, BatchItemReply, DictCall, DictReply};
use encdict::{DictEnclave, EncdictError};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// The batchable call classes. Re-encrypt and merge keep their dedicated
/// paths (inserts batch at the storage layer; merges own a separate
/// enclave).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum CallClass {
    /// Dictionary search (main or delta store).
    Search,
    /// Grouped aggregation.
    Aggregate,
    /// Join-key bridging.
    JoinBridge,
}

/// Dispatch-compatibility key: only requests with equal keys coalesce
/// into one combined transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct BatchKey {
    /// The call class.
    pub(crate) class: CallClass,
    /// The store generation the request is pinned to (snapshot epoch;
    /// multi-partition requests use the maximum epoch in scope).
    pub(crate) generation: u64,
}

/// What a session gets back from [`EcallScheduler::submit`]: its own
/// sub-call's reply plus everything needed to account for the (possibly
/// shared) transition.
#[derive(Debug)]
pub(crate) struct SchedOutcome {
    /// This request's reply.
    pub(crate) reply: DictReply,
    /// Untrusted loads attributable to this sub-call alone.
    pub(crate) untrusted_loads: u64,
    /// Untrusted bytes attributable to this sub-call alone.
    pub(crate) untrusted_bytes: u64,
    /// Value-cache hits scored by this sub-call.
    pub(crate) cache_hits: u64,
    /// Value-cache misses charged to this sub-call.
    pub(crate) cache_misses: u64,
    /// Obs-clock start of the enclave transition.
    pub(crate) start_ns: u64,
    /// Wall-clock duration of the enclave transition.
    pub(crate) dur_ns: u64,
    /// Submit-to-dispatch queue wait.
    pub(crate) wait_ns: u64,
    /// Batch occupancy of the transition (1 = ran alone).
    pub(crate) peers: usize,
}

impl SchedOutcome {
    /// Whether the transition was shared — if so the leader already
    /// recorded the [`EcallKind::Batch`] ledger entry and the session
    /// must *not* record a native one (the transition count is 1, not K).
    pub(crate) fn batched(&self) -> bool {
        self.peers > 1
    }
}

/// One queued request: the owned call, its compatibility key, the reply
/// slot its session is blocked on, and its enqueue time.
struct Pending {
    call: OwnedDictCall,
    key: BatchKey,
    slot: Arc<ReplySlot>,
    enqueued: Instant,
}

/// A one-shot reply mailbox.
#[derive(Default)]
struct ReplySlot {
    filled: Mutex<Option<SchedOutcome>>,
    cv: Condvar,
}

impl ReplySlot {
    fn fill(&self, outcome: SchedOutcome) {
        *lock(&self.filled) = Some(outcome);
        self.cv.notify_one();
    }

    fn wait(&self) -> SchedOutcome {
        let mut guard = lock(&self.filled);
        loop {
            if let Some(outcome) = guard.take() {
                return outcome;
            }
            guard = self
                .cv
                .wait(guard)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }
}

#[derive(Default)]
struct SchedState {
    /// Requests awaiting dispatch, in arrival order.
    queue: Vec<Pending>,
    /// Whether a leader currently owns dispatch. Enqueueing is only
    /// legal while true — the leader re-checks the queue under the
    /// state mutex before resigning, so no request is orphaned.
    leader_active: bool,
}

/// The shared enclave scheduler; see the module docs.
#[derive(Debug)]
pub(crate) struct EcallScheduler {
    enclave: Arc<Mutex<DictEnclave>>,
    state: Mutex<SchedState>,
    obs: Obs,
    /// Batching switch. Off = every submit takes the direct path
    /// (today's lock-per-call convoy), for differential tests and the
    /// bypass leg of the concurrency bench.
    enabled: AtomicBool,
    /// Test hook: when set, the next leader round panics right after
    /// acquiring the enclave lock (then auto-disarms). Exercises the
    /// poisoned-round unwind path from real integration tests.
    panic_armed: AtomicBool,
}

impl std::fmt::Debug for SchedState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SchedState")
            .field("queued", &self.queue.len())
            .field("leader_active", &self.leader_active)
            .finish()
    }
}

impl EcallScheduler {
    pub(crate) fn new(enclave: Arc<Mutex<DictEnclave>>, obs: Obs) -> Self {
        EcallScheduler {
            enclave,
            state: Mutex::new(SchedState::default()),
            obs,
            enabled: AtomicBool::new(true),
            panic_armed: AtomicBool::new(false),
        }
    }

    /// Arms the injected-leader-panic test hook: the next batched round's
    /// leader panics after taking the enclave lock, exercising the
    /// [`RoundGuard`] poisoning path end-to-end.
    pub(crate) fn arm_leader_panic(&self) {
        self.panic_armed.store(true, Ordering::SeqCst);
    }

    /// Turns cross-session batching on or off (on by default).
    pub(crate) fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::SeqCst);
    }

    /// Whether batching is currently on.
    pub(crate) fn enabled(&self) -> bool {
        self.enabled.load(Ordering::SeqCst)
    }

    /// Submits one owned call and blocks until its reply is available —
    /// either by executing it (as leader, possibly coalescing peers) or
    /// by waiting for the active leader to dispatch it.
    pub(crate) fn submit(&self, call: OwnedDictCall, key: BatchKey) -> SchedOutcome {
        let t0 = Instant::now();
        if !self.enabled() {
            // Bypass: the pre-scheduler behavior, one enclave lock
            // acquisition per call with no coordination.
            return self.execute_alone(&call, t0);
        }
        let mut state = lock(&self.state);
        if state.leader_active {
            let slot = Arc::new(ReplySlot::default());
            state.queue.push(Pending {
                call,
                key,
                slot: Arc::clone(&slot),
                enqueued: t0,
            });
            drop(state);
            return slot.wait();
        }
        state.leader_active = true;
        drop(state);
        self.lead(call, key, t0)
    }

    /// Leader loop: run the own call's round, then keep draining rounds
    /// until the queue is empty, then resign.
    fn lead(&self, call: OwnedDictCall, key: BatchKey, t0: Instant) -> SchedOutcome {
        // First round: the leader's own call plus every compatible
        // request already queued (possible when the previous leader
        // resigned between a follower's enqueue decision and ours).
        let mut round = {
            let mut state = lock(&self.state);
            let mut round = drain_matching(&mut state.queue, key);
            round.push(Pending {
                call,
                key,
                slot: Arc::new(ReplySlot::default()),
                enqueued: t0,
            });
            round
        };
        let my_slot = Arc::clone(&round.last().expect("own call just pushed").slot);
        loop {
            self.execute_round(round);
            let mut state = lock(&self.state);
            if state.queue.is_empty() {
                state.leader_active = false;
                break;
            }
            let next_key = state.queue[0].key;
            round = drain_matching(&mut state.queue, next_key);
        }
        my_slot.wait()
    }

    /// Executes one round — ONE enclave transition for however many
    /// requests it carries — and demultiplexes the replies.
    ///
    /// The round is held by a [`RoundGuard`] for the duration: if the
    /// transition panics, the guard's unwind path resigns leadership and
    /// poisons every undelivered reply slot instead of leaving the
    /// followers wedged on their condvars.
    fn execute_round(&self, round: Vec<Pending>) {
        let peers = round.len();
        let start_ns = self.obs.now_ns();
        let started = Instant::now();
        let waits_ns: Vec<u64> = round
            .iter()
            .map(|p| p.enqueued.elapsed().as_nanos() as u64)
            .collect();
        let mut guard = RoundGuard { sched: self, round };
        let mut enclave = lock(&self.enclave);
        if self.panic_armed.swap(false, Ordering::SeqCst) {
            panic!("injected leader panic (scheduler test hook)");
        }
        let calls: Vec<DictCall<'_>> = guard.round.iter().map(|p| p.call.borrow()).collect();
        let items = enclave.batch(calls);
        drop(enclave);
        let dur_ns = started.elapsed().as_nanos() as u64;
        debug_assert_eq!(items.len(), peers, "one reply per coalesced request");

        if peers > 1 {
            // The leader records the shared transition once: a Batch
            // ledger entry whose payload totals are the union (sum) of
            // the coalesced requests. Parentless span — the transition
            // belongs to K queries at once.
            let mut io = EcallIo::default();
            for (pending, item) in guard.round.iter().zip(&items) {
                io.bytes_in += request_payload_bytes(&pending.call);
                io.bytes_out += reply_payload_bytes(&item.reply);
                io.values_decrypted += item_values_decrypted(item);
                io.untrusted_loads += item.untrusted_loads;
                io.untrusted_bytes += item.untrusted_bytes;
                io.cache_hits += item.cache_hits;
                io.cache_misses += item.cache_misses;
            }
            self.obs.ecall_batched(
                EcallKind::Batch,
                io,
                start_ns,
                dur_ns,
                SpanId::NONE,
                peers as u64,
            );
        }
        // Drain leaves the guard's round empty, so its Drop is a no-op
        // on the normal path.
        for ((pending, item), wait_ns) in guard.round.drain(..).zip(items).zip(waits_ns) {
            self.obs.record(Hist::EcallWaitNs, wait_ns);
            pending.slot.fill(SchedOutcome {
                reply: item.reply,
                untrusted_loads: item.untrusted_loads,
                untrusted_bytes: item.untrusted_bytes,
                cache_hits: item.cache_hits,
                cache_misses: item.cache_misses,
                start_ns,
                dur_ns,
                wait_ns,
                peers,
            });
        }
    }

    /// The disabled-scheduler path: one lock acquisition, one
    /// single-call transition, no shared state touched.
    fn execute_alone(&self, call: &OwnedDictCall, t0: Instant) -> SchedOutcome {
        let start_ns = self.obs.now_ns();
        let started = Instant::now();
        let mut enclave = lock(&self.enclave);
        let wait_ns = t0.elapsed().as_nanos() as u64;
        let mut items = enclave.batch(vec![call.borrow()]);
        drop(enclave);
        let dur_ns = started.elapsed().as_nanos() as u64;
        self.obs.record(Hist::EcallWaitNs, wait_ns);
        let item = items.pop().expect("one reply for one call");
        SchedOutcome {
            reply: item.reply,
            untrusted_loads: item.untrusted_loads,
            untrusted_bytes: item.untrusted_bytes,
            cache_hits: item.cache_hits,
            cache_misses: item.cache_misses,
            start_ns,
            dur_ns,
            wait_ns,
            peers: 1,
        }
    }
}

/// Owns a dispatching round for the duration of its enclave transition.
///
/// On the normal path `execute_round` drains the round to fill every
/// reply slot and the guard's `Drop` sees an empty vector. If the leader
/// panics mid-round, `Drop` runs during unwind: it resigns leadership,
/// takes every request still queued (no leader remains to ever dispatch
/// them), and fills all undelivered slots with a poisoned-round error so
/// the blocked followers wake and fail their queries instead of hanging.
struct RoundGuard<'a> {
    sched: &'a EcallScheduler,
    round: Vec<Pending>,
}

impl Drop for RoundGuard<'_> {
    fn drop(&mut self) {
        if !std::thread::panicking() {
            debug_assert!(self.round.is_empty(), "normal exit drains the round");
            return;
        }
        let orphaned = {
            let mut state = lock(&self.sched.state);
            state.leader_active = false;
            std::mem::take(&mut state.queue)
        };
        for pending in self.round.drain(..).chain(orphaned) {
            let class = pending.key.class;
            pending.slot.fill(poisoned_outcome(class));
        }
    }
}

/// The reply delivered to a request whose round leader died before
/// dispatching it. The request never executed: zero transition cost,
/// `peers: 1` so no session mistakes it for a batched run.
fn poisoned_outcome(class: CallClass) -> SchedOutcome {
    const MSG: &str = "round leader panicked before this request was dispatched";
    let reply = match class {
        CallClass::Search => DictReply::Search(Err(EncdictError::Poisoned(MSG))),
        CallClass::Aggregate => DictReply::Aggregated(Err(EncdictError::Poisoned(MSG))),
        CallClass::JoinBridge => DictReply::Bridged(Err(EncdictError::Poisoned(MSG))),
    };
    SchedOutcome {
        reply,
        untrusted_loads: 0,
        untrusted_bytes: 0,
        cache_hits: 0,
        cache_misses: 0,
        start_ns: 0,
        dur_ns: 0,
        wait_ns: 0,
        peers: 1,
    }
}

/// Removes every queued request whose key equals `key`, preserving
/// arrival order; incompatible requests stay queued for a later round.
fn drain_matching(queue: &mut Vec<Pending>, key: BatchKey) -> Vec<Pending> {
    let mut round = Vec::new();
    let mut rest = Vec::with_capacity(queue.len());
    for pending in queue.drain(..) {
        if pending.key == key {
            round.push(pending);
        } else {
            rest.push(pending);
        }
    }
    *queue = rest;
    round
}

/// Generic request payload size, mirroring the native per-kind
/// accounting (DESIGN.md §13.3): encrypted ranges' τ bytes for a search,
/// 4 bytes per code / tuple slot plus plain values for an aggregate,
/// per-side codes/values for a bridge.
fn request_payload_bytes(call: &OwnedDictCall) -> u64 {
    use encdict::batch::{OwnedAggColumn, OwnedJoinKey, OwnedJoinSide};
    let side_bytes = |side: &OwnedJoinSide| -> u64 {
        side.parts
            .iter()
            .map(|p| match p {
                OwnedJoinKey::Encrypted { codes, .. } => 4 * codes.len() as u64,
                OwnedJoinKey::Plain { values } => values.iter().map(|v| v.len() as u64).sum(),
            })
            .sum()
    };
    match call {
        OwnedDictCall::Search(s) => s
            .ranges
            .iter()
            .map(|r| (r.tau_s.as_bytes().len() + r.tau_e.as_bytes().len()) as u64)
            .sum(),
        OwnedDictCall::Aggregate(a) => a
            .parts
            .iter()
            .map(|p| {
                let cols: u64 = p
                    .columns
                    .iter()
                    .map(|c| match c {
                        OwnedAggColumn::Encrypted { codes, .. } => 4 * codes.len() as u64,
                        OwnedAggColumn::Plain { values } => {
                            values.iter().map(|v| v.len() as u64).sum()
                        }
                    })
                    .sum();
                cols + 4 * p.tuples.len() as u64
            })
            .sum(),
        OwnedDictCall::JoinBridge(j) => side_bytes(&j.left) + side_bytes(&j.right),
    }
}

/// Generic reply payload size (errors cross as zero-payload).
fn reply_payload_bytes(reply: &DictReply) -> u64 {
    match reply {
        DictReply::Search(Ok(results)) => results
            .iter()
            .map(|r| match r {
                encdict::DictSearchResult::Ranges(ranges) => {
                    8 * ranges.iter().flatten().count() as u64
                }
                encdict::DictSearchResult::Ids(ids) => 4 * ids.len() as u64,
            })
            .sum(),
        DictReply::Aggregated(Ok(r)) => r
            .rows
            .iter()
            .map(|row| {
                row.iter()
                    .map(|cell| match cell {
                        AggCell::Encrypted(b) | AggCell::Plain(b) => b.len() as u64,
                    })
                    .sum::<u64>()
            })
            .sum(),
        DictReply::Bridged(Ok(r)) => {
            4 * (r.left.iter().map(Vec::len).sum::<usize>()
                + r.right.iter().map(Vec::len).sum::<usize>()) as u64
        }
        _ => 0,
    }
}

/// Values decrypted by one sub-call, by the same per-kind conventions
/// the native records use (search derives loads/2; aggregate and bridge
/// report exactly).
fn item_values_decrypted(item: &BatchItemReply) -> u64 {
    match &item.reply {
        DictReply::Search(_) => item.untrusted_loads / 2,
        DictReply::Aggregated(Ok(r)) => r.values_decrypted as u64,
        DictReply::Bridged(Ok(r)) => r.values_decrypted as u64,
        _ => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use encdict::batch::SegSource;
    use encdict::search::DictSearchResult;
    use encdict::VidRange;

    fn pending(class: CallClass, generation: u64) -> Pending {
        // An empty delta store materializes as an empty ED9 dictionary —
        // the cheapest owned dictionary obtainable through public API.
        let (dict, _) = encdict::dynamic::EncryptedDeltaStore::new("t", "c", 0)
            .as_dictionary()
            .expect("empty ED9 dictionary");
        Pending {
            call: OwnedDictCall::Search(encdict::batch::OwnedSearchCall {
                dict: SegSource::Owned(Box::new(dict)),
                ranges: Vec::new(),
                cache: None,
            }),
            key: BatchKey { class, generation },
            slot: Arc::new(ReplySlot::default()),
            enqueued: Instant::now(),
        }
    }

    #[test]
    fn drain_matching_splits_by_class_and_generation() {
        let mut queue = vec![
            pending(CallClass::Search, 3),
            pending(CallClass::Aggregate, 3),
            pending(CallClass::Search, 4),
            pending(CallClass::Search, 3),
        ];
        let round = drain_matching(
            &mut queue,
            BatchKey {
                class: CallClass::Search,
                generation: 3,
            },
        );
        // Same class, same generation only: requests pinned to another
        // store generation (epoch 4) or another class stay queued.
        assert_eq!(round.len(), 2);
        assert_eq!(queue.len(), 2);
        assert!(round
            .iter()
            .all(|p| p.key.class == CallClass::Search && p.key.generation == 3));
        assert_eq!(queue[0].key.class, CallClass::Aggregate);
        assert_eq!(queue[1].key.generation, 4);
    }

    #[test]
    fn drain_matching_preserves_arrival_order() {
        let mut queue = vec![
            pending(CallClass::JoinBridge, 1),
            pending(CallClass::Search, 1),
            pending(CallClass::JoinBridge, 1),
        ];
        let key = queue[0].key;
        let before: Vec<*const ReplySlot> = queue
            .iter()
            .filter(|p| p.key == key)
            .map(|p| Arc::as_ptr(&p.slot))
            .collect();
        let round = drain_matching(&mut queue, key);
        let after: Vec<*const ReplySlot> = round.iter().map(|p| Arc::as_ptr(&p.slot)).collect();
        assert_eq!(before, after);
        assert_eq!(queue.len(), 1);
    }

    #[test]
    fn search_reply_bytes_match_native_formulas() {
        // Ranges: 8 bytes per present pair; Ids: 4 bytes per id.
        let ranges = DictReply::Search(Ok(vec![DictSearchResult::Ranges([
            VidRange::new(0, 4),
            VidRange::new(9, 7),
        ])]));
        assert_eq!(reply_payload_bytes(&ranges), 8);
        let ids = DictReply::Search(Ok(vec![DictSearchResult::Ids(vec![1, 2, 3])]));
        assert_eq!(reply_payload_bytes(&ids), 12);
    }

    #[test]
    fn error_replies_cross_with_zero_payload() {
        let err = DictReply::Search(Err(encdict::EncdictError::CorruptDictionary("test")));
        assert_eq!(reply_payload_bytes(&err), 0);
    }

    #[test]
    fn poisoned_outcome_matches_call_class() {
        // Each class gets the error wrapped in its own reply shape, so
        // the per-class unwrap sites see it without an unreachable! arm.
        let search = poisoned_outcome(CallClass::Search);
        assert!(matches!(
            search.reply,
            DictReply::Search(Err(EncdictError::Poisoned(_)))
        ));
        assert!(!search.batched());
        assert_eq!(reply_payload_bytes(&search.reply), 0);
        assert!(matches!(
            poisoned_outcome(CallClass::Aggregate).reply,
            DictReply::Aggregated(Err(EncdictError::Poisoned(_)))
        ));
        assert!(matches!(
            poisoned_outcome(CallClass::JoinBridge).reply,
            DictReply::Bridged(Err(EncdictError::Poisoned(_)))
        ));
    }

    #[test]
    fn round_guard_poisons_round_and_queue_on_panic() {
        let enclave = Arc::new(Mutex::new(DictEnclave::new()));
        let sched = EcallScheduler::new(enclave, Obs::new());
        // Simulate a leader holding a two-request round while two more
        // requests sit queued, then panic inside the guarded section.
        let round = vec![pending(CallClass::Search, 1), pending(CallClass::Search, 1)];
        let slots: Vec<Arc<ReplySlot>> = round.iter().map(|p| Arc::clone(&p.slot)).collect();
        let queued = pending(CallClass::Aggregate, 1);
        let queued_slot = Arc::clone(&queued.slot);
        {
            let mut state = lock(&sched.state);
            state.leader_active = true;
            state.queue.push(queued);
        }
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = RoundGuard {
                sched: &sched,
                round,
            };
            panic!("boom");
        }));
        assert!(result.is_err());
        for slot in slots {
            assert!(matches!(
                slot.wait().reply,
                DictReply::Search(Err(EncdictError::Poisoned(_)))
            ));
        }
        assert!(matches!(
            queued_slot.wait().reply,
            DictReply::Aggregated(Err(EncdictError::Poisoned(_)))
        ));
        let state = lock(&sched.state);
        assert!(!state.leader_active, "leadership resigned during unwind");
        assert!(state.queue.is_empty(), "no request left orphaned");
    }
}
