//! Durable storage: sealed epoch snapshots, a delta write-ahead log and
//! crash recovery (DESIGN.md §12).
//!
//! The paper's in-memory DBMS "stores all data on disk for persistency and
//! additionally loads it into main memory" (Fig. 5 step 4). This module
//! wires that through the epoch machinery of §9/§10:
//!
//! * Every published [`MainState`] is persisted as one **sealed, CRC-framed
//!   snapshot file per partition**, the epoch in the filename
//!   (`<table>/p<pid>-e<epoch>.snap`), written tmp-file + atomic rename.
//!   The payload embeds the table name, partition index and epoch so a
//!   file swapped between partitions or tables is rejected at load even
//!   though all snapshots share one sealing key.
//! * Every delta insert/delete (and every epoch publish) appends one
//!   record to a per-table **write-ahead log** (`<table>/wal.log`):
//!   length-prefixed CRC frames around sealed payloads, fsync'd per append
//!   or in batches per [`DurabilityPolicy`].
//! * **Recovery** loads the newest valid snapshot per partition (falling
//!   back to an older epoch when a file is damaged), replays the WAL
//!   suffix past the loaded epochs — re-executing logged merges so the
//!   epoch timeline matches the crashed process — and truncates torn
//!   tails. Everything detected lands in [`DurabilityStats`].
//!
//! # Commit protocol
//!
//! Writes are **log-then-apply** under the per-table WAL mutex (lock
//! order: WAL → partition state → enclave). A record that fails to append
//! is *not* applied in memory, so the log never lags the applied state:
//! replaying a prefix of the WAL always reproduces a state the crashed
//! process actually exposed. Delta rows are addressed by their *absolute
//! position* (`PartitionState::drained_total` + local index), which stays
//! stable across merges because publishes fold exactly a delta prefix.
//!
//! # Crash injection
//!
//! [`FailPoint`]s model a crash at the vulnerable spots: the storage
//! writes exactly what a killed process would have left behind (a half
//! frame, an un-fsynced record, an orphaned tmp file), then poisons
//! itself — every later operation fails like the process is gone — and
//! the test recovers from disk.

use super::compaction::{execute_compaction, CompactionJob};
use super::partition::{ColumnDelta, MainColumn, MainState, Partition};
use super::table::ServerTable;
use super::{lock, CellValue, DbaasServer, MERGE_RETRIES};
use crate::error::DbError;
use crate::obs::{Counter, Hist, Obs, SpanId};
use crate::schema::{ColumnSpec, DictChoice, TablePartitioning, TableSchema};
use crate::server::stats::DurabilityStats;
use colstore::delta::{DeltaStore, ValidityVector};
use colstore::persist::{frame, read_frames, FrameTail};
use encdict::dynamic::{EncryptedDeltaStore, MainSnapshot};
use encdict::{DictEnclave, EdKind};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

/// How eagerly the durable layer trades write latency for persistence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DurabilityPolicy {
    /// `fsync` the WAL after every batch of this many appended records.
    /// `1` (the default) syncs every append — a committed write survives
    /// an OS crash. Larger batches amortize the sync cost and bound the
    /// loss window to the unsynced tail (process crashes lose nothing
    /// either way: the bytes are in the page cache).
    pub wal_fsync_batch: usize,
    /// Sealed snapshot epochs kept per partition (at least 1). Keeping 2
    /// lets recovery fall back one epoch when the newest file is damaged,
    /// re-deriving the lost epoch from the WAL's merge record.
    pub snapshot_history: usize,
}

impl Default for DurabilityPolicy {
    fn default() -> Self {
        DurabilityPolicy {
            wal_fsync_batch: 1,
            snapshot_history: 2,
        }
    }
}

/// An injectable crash point: the storage performs the partial work a
/// crash at that spot would leave on disk, then fails the operation and
/// poisons itself (every later durable operation errors) so tests can
/// only continue by recovering from disk, exactly like a killed process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailPoint {
    /// Crash mid-append: half a WAL frame reaches the file, no fsync.
    WalTornAppend,
    /// Crash between a complete WAL append and its fsync: the frame is in
    /// the page cache (visible after an in-process restart) but the
    /// caller never saw the operation commit.
    WalAppendNoFsync,
    /// Crash mid-write of a snapshot tmp file: a torn `.tmp` orphan.
    SnapshotTornWrite,
    /// Crash between a complete snapshot tmp write and its rename: the
    /// published epoch has no snapshot file; recovery falls back to the
    /// previous epoch and replays the merge record.
    SnapshotNoRename,
    /// Crash between a checkpoint's snapshot verification and its WAL
    /// truncation: the full WAL survives and replays over the snapshots.
    CheckpointNoTruncate,
}

const WAL_VERSION: u8 = 1;
const REC_HEADER: u8 = 0;
const REC_INSERT: u8 = 1;
const REC_DELETE: u8 = 2;
const REC_MERGE: u8 = 3;
const REC_CHECKPOINT: u8 = 4;

const SNAPSHOT_MAGIC: &[u8; 8] = b"ENCDBSN1";
const MANIFEST_MAGIC: &[u8; 8] = b"ENCDBMF1";

const CELL_ENCRYPTED: u8 = 0;
const CELL_PLAIN: u8 = 1;

/// One open per-table WAL file plus its fsync-batching counter.
#[derive(Debug)]
pub(crate) struct WalFile {
    file: File,
    path: PathBuf,
    pending_syncs: usize,
}

/// The durable half of a [`DbaasServer`]: directory layout, WAL handles,
/// sealing (through the query enclave's identity), crash injection and
/// counters. Shared behind an `Arc` by every server clone.
#[derive(Debug)]
pub(crate) struct Storage {
    dir: PathBuf,
    policy: DurabilityPolicy,
    /// The sealing identity: both server enclaves run the same measured
    /// code on the same platform, so sealing through the query enclave
    /// produces blobs any same-identity enclave (including a freshly
    /// started one after a restart) can unseal.
    enclave: Arc<Mutex<DictEnclave>>,
    rng: Mutex<StdRng>,
    wals: Mutex<HashMap<String, Arc<Mutex<WalFile>>>>,
    stats: Mutex<DurabilityStats>,
    armed: Mutex<Option<FailPoint>>,
    /// Set once a fail point fires: the simulated process is dead.
    crashed: AtomicBool,
    /// The owning server's observability sink (WAL/snapshot counters,
    /// latency histograms and durability spans).
    obs: Obs,
}

impl Storage {
    pub(crate) fn new(
        dir: &Path,
        policy: DurabilityPolicy,
        enclave: Arc<Mutex<DictEnclave>>,
        obs: Obs,
    ) -> Result<Self, DbError> {
        std::fs::create_dir_all(dir).map_err(|e| {
            DbError::Durability(format!("creating storage dir {}: {e}", dir.display()))
        })?;
        Ok(Storage {
            dir: dir.to_path_buf(),
            policy: DurabilityPolicy {
                wal_fsync_batch: policy.wal_fsync_batch.max(1),
                snapshot_history: policy.snapshot_history.max(1),
            },
            enclave,
            rng: Mutex::new(StdRng::from_entropy()),
            wals: Mutex::new(HashMap::new()),
            stats: Mutex::new(DurabilityStats::default()),
            armed: Mutex::new(None),
            crashed: AtomicBool::new(false),
            obs,
        })
    }

    pub(crate) fn stats(&self) -> DurabilityStats {
        *lock(&self.stats)
    }

    pub(crate) fn arm(&self, point: FailPoint) {
        *lock(&self.armed) = Some(point);
    }

    fn with_stats(&self, f: impl FnOnce(&mut DurabilityStats)) {
        f(&mut lock(&self.stats));
    }

    /// Counts a failed snapshot persist (the publish itself stands; see
    /// [`DurabilityStats::snapshot_persist_failures`]).
    pub(crate) fn note_snapshot_persist_failure(&self) {
        self.with_stats(|s| s.snapshot_persist_failures += 1);
    }

    /// Fails if the simulated process already crashed, or fires `point` if
    /// it is the armed one (leaving whatever partial on-disk state the
    /// caller produced before asking).
    fn fire(&self, point: FailPoint) -> Result<(), DbError> {
        self.check_alive()?;
        if *lock(&self.armed) == Some(point) {
            *lock(&self.armed) = None;
            self.crashed.store(true, Ordering::SeqCst);
            self.with_stats(|s| s.injected_crashes += 1);
            return Err(DbError::Durability(format!(
                "injected crash at {point:?}; recover from disk to continue"
            )));
        }
        Ok(())
    }

    fn check_alive(&self) -> Result<(), DbError> {
        if self.crashed.load(Ordering::SeqCst) {
            return Err(DbError::Durability(
                "storage crashed at an injected fail point; recover from disk".to_string(),
            ));
        }
        Ok(())
    }

    fn table_dir(&self, table: &str) -> Result<PathBuf, DbError> {
        if table.is_empty()
            || !table
                .bytes()
                .all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'-')
        {
            return Err(DbError::Durability(format!(
                "table name {table:?} is not a safe directory name"
            )));
        }
        Ok(self.dir.join(table))
    }

    fn seal(&self, payload: &[u8]) -> Vec<u8> {
        let mut enclave = lock(&self.enclave);
        let mut rng = lock(&self.rng);
        enclave.enclave_mut().seal_data(&mut *rng, payload)
    }

    fn unseal(&self, blob: &[u8], context: &str) -> Result<Vec<u8>, DbError> {
        lock(&self.enclave)
            .enclave_mut()
            .unseal_data(blob)
            .map_err(|source| DbError::Unseal {
                context: context.to_string(),
                source,
            })
    }

    // -- WAL ---------------------------------------------------------------

    /// The WAL handle of a table, opening (and header-stamping) the file
    /// on first use. Lookup and creation happen atomically under the map
    /// lock: two racing callers must share one handle, because two
    /// mutexes over one file would break the writer serialization that
    /// absolute delta positions rely on — and both would stamp a header
    /// into an empty file, which replay rejects as a duplicate.
    pub(crate) fn wal_handle(&self, table: &str) -> Result<Arc<Mutex<WalFile>>, DbError> {
        self.check_alive()?;
        let mut wals = lock(&self.wals);
        if let Some(w) = wals.get(table) {
            return Ok(Arc::clone(w));
        }
        let dir = self.table_dir(table)?;
        std::fs::create_dir_all(&dir)
            .map_err(|e| DbError::Durability(format!("creating {}: {e}", dir.display())))?;
        let path = dir.join("wal.log");
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| DbError::Durability(format!("opening {}: {e}", path.display())))?;
        let is_empty = file
            .metadata()
            .map_err(|e| DbError::Durability(format!("stat {}: {e}", path.display())))?
            .len()
            == 0;
        let mut wal = WalFile {
            file,
            path,
            pending_syncs: 0,
        };
        if is_empty {
            let mut header = vec![WAL_VERSION, REC_HEADER];
            put_bytes(&mut header, table.as_bytes());
            self.append_record(&mut wal, &header)?;
        }
        let handle = Arc::new(Mutex::new(wal));
        wals.insert(table.to_string(), Arc::clone(&handle));
        Ok(handle)
    }

    /// Seals, frames and appends one record; fsync per the policy batch.
    /// Log-then-apply: callers append **before** mutating memory, so an
    /// error here (including an injected crash) means the operation simply
    /// did not happen.
    pub(crate) fn append_record(&self, wal: &mut WalFile, payload: &[u8]) -> Result<(), DbError> {
        self.check_alive()?;
        let span = self.obs.span("wal.append", "durability", SpanId::NONE);
        let t0 = std::time::Instant::now();
        let framed = frame(&self.seal(payload));
        if *lock(&self.armed) == Some(FailPoint::WalTornAppend) {
            // A crash mid-write: half the frame reaches the file.
            let _ = wal.file.write_all(&framed[..framed.len() / 2]);
            return self.fire(FailPoint::WalTornAppend);
        }
        wal.file.write_all(&framed).map_err(|e| {
            DbError::Durability(format!("appending to {}: {e}", wal.path.display()))
        })?;
        self.fire(FailPoint::WalAppendNoFsync)?;
        wal.pending_syncs += 1;
        if wal.pending_syncs >= self.policy.wal_fsync_batch {
            let fsync_span = self.obs.span("wal.fsync", "durability", span.id());
            let f0 = std::time::Instant::now();
            wal.file.sync_data().map_err(|e| {
                DbError::Durability(format!("fsync of {}: {e}", wal.path.display()))
            })?;
            self.obs
                .record(Hist::WalFsyncNs, f0.elapsed().as_nanos() as u64);
            fsync_span.finish();
            wal.pending_syncs = 0;
            self.obs.add(Counter::WalFsyncsTotal, 1);
            self.with_stats(|s| s.wal_fsyncs += 1);
        }
        self.with_stats(|s| {
            s.wal_records_appended += 1;
            s.wal_bytes_appended += framed.len() as u64;
        });
        self.obs.add(Counter::WalRecordsTotal, 1);
        self.obs
            .record(Hist::WalAppendNs, t0.elapsed().as_nanos() as u64);
        span.finish();
        Ok(())
    }

    /// Checkpoint epilogue: drops every logged record (their effects are
    /// in the verified snapshots), restamps the header and logs the
    /// checkpoint floor so recovery can detect a snapshot regressing
    /// behind the truncated log.
    fn truncate_wal(
        &self,
        table: &str,
        wal: &mut WalFile,
        floors: &[(u32, u64, u64)],
    ) -> Result<(), DbError> {
        self.check_alive()?;
        wal.file
            .set_len(0)
            .map_err(|e| DbError::Durability(format!("truncating {}: {e}", wal.path.display())))?;
        wal.pending_syncs = 0;
        self.with_stats(|s| s.wal_truncations += 1);
        let mut header = vec![WAL_VERSION, REC_HEADER];
        put_bytes(&mut header, table.as_bytes());
        self.append_record(wal, &header)?;
        let mut ckpt = vec![WAL_VERSION, REC_CHECKPOINT];
        put_u32(&mut ckpt, floors.len() as u32);
        for &(pid, epoch, drained) in floors {
            put_u32(&mut ckpt, pid);
            put_u64(&mut ckpt, epoch);
            put_u64(&mut ckpt, drained);
        }
        self.append_record(wal, &ckpt)?;
        wal.file
            .sync_data()
            .map_err(|e| DbError::Durability(format!("fsync of {}: {e}", wal.path.display())))?;
        Ok(())
    }

    // -- Sealed snapshots --------------------------------------------------

    fn snapshot_path(&self, table: &str, pid: usize, epoch: u64) -> Result<PathBuf, DbError> {
        Ok(self.table_dir(table)?.join(format!("p{pid}-e{epoch}.snap")))
    }

    /// Persists one partition's published main state as a sealed snapshot
    /// file (tmp write + atomic rename), then prunes history.
    pub(crate) fn persist_snapshot(
        &self,
        schema: &TableSchema,
        pid: usize,
        main: &MainState,
        drained_total: u64,
    ) -> Result<(), DbError> {
        self.check_alive()?;
        let span = self
            .obs
            .span_arg("snapshot.persist", "durability", SpanId::NONE, pid as u64);
        let t0 = std::time::Instant::now();
        let payload = encode_snapshot(schema, pid, main, drained_total)?;
        let framed = frame(&self.seal(&payload));
        let dir = self.table_dir(&schema.name)?;
        std::fs::create_dir_all(&dir)
            .map_err(|e| DbError::Durability(format!("creating {}: {e}", dir.display())))?;
        let path = self.snapshot_path(&schema.name, pid, main.epoch)?;
        let tmp = dir.join(format!("p{pid}-e{}.snap.tmp", main.epoch));
        let write_tmp = |bytes: &[u8]| -> Result<(), DbError> {
            let mut f = File::create(&tmp)
                .map_err(|e| DbError::Durability(format!("creating {}: {e}", tmp.display())))?;
            f.write_all(bytes)
                .map_err(|e| DbError::Durability(format!("writing {}: {e}", tmp.display())))?;
            f.sync_data()
                .map_err(|e| DbError::Durability(format!("fsync of {}: {e}", tmp.display())))?;
            Ok(())
        };
        if *lock(&self.armed) == Some(FailPoint::SnapshotTornWrite) {
            let _ = write_tmp(&framed[..framed.len() / 2]);
            return self.fire(FailPoint::SnapshotTornWrite);
        }
        write_tmp(&framed)?;
        self.fire(FailPoint::SnapshotNoRename)?;
        std::fs::rename(&tmp, &path).map_err(|e| {
            DbError::Durability(format!("publishing snapshot {}: {e}", path.display()))
        })?;
        self.with_stats(|s| s.snapshots_persisted += 1);
        self.obs.add(Counter::SnapshotsPersistedTotal, 1);
        self.obs
            .record(Hist::SnapshotPersistNs, t0.elapsed().as_nanos() as u64);
        self.prune_snapshots(&schema.name, pid, main.epoch, self.policy.snapshot_history)?;
        span.finish();
        Ok(())
    }

    /// Persists the snapshot only if its file is not already on disk —
    /// heals an earlier persist failure before a checkpoint truncates the
    /// WAL records that could otherwise re-derive the epoch.
    fn ensure_snapshot(
        &self,
        schema: &TableSchema,
        pid: usize,
        main: &MainState,
        drained_total: u64,
    ) -> Result<(), DbError> {
        if self.snapshot_path(&schema.name, pid, main.epoch)?.exists() {
            return Ok(());
        }
        self.persist_snapshot(schema, pid, main, drained_total)
    }

    /// Removes snapshot files of `pid` older than `keep` epochs behind
    /// `newest` (and stale tmp orphans of pruned epochs).
    fn prune_snapshots(
        &self,
        table: &str,
        pid: usize,
        newest: u64,
        keep: usize,
    ) -> Result<(), DbError> {
        let floor = newest.saturating_sub(keep.max(1) as u64 - 1);
        for (epoch, path) in self.list_snapshots(table, pid)? {
            if epoch < floor && std::fs::remove_file(&path).is_ok() {
                self.with_stats(|s| s.snapshots_pruned += 1);
            }
        }
        Ok(())
    }

    /// Snapshot files of one partition, newest epoch first.
    fn list_snapshots(&self, table: &str, pid: usize) -> Result<Vec<(u64, PathBuf)>, DbError> {
        let dir = self.table_dir(table)?;
        let prefix = format!("p{pid}-e");
        let mut out = Vec::new();
        let entries = match std::fs::read_dir(&dir) {
            Ok(entries) => entries,
            Err(_) => return Ok(out),
        };
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(rest) = name.strip_prefix(&prefix) else {
                continue;
            };
            let Some(epoch_str) = rest.strip_suffix(".snap") else {
                continue;
            };
            if let Ok(epoch) = epoch_str.parse::<u64>() {
                out.push((epoch, entry.path()));
            }
        }
        out.sort_by_key(|&(epoch, _)| std::cmp::Reverse(epoch));
        Ok(out)
    }

    /// Loads the newest valid snapshot of one partition, walking back
    /// through history when files are damaged (framing, unseal or embedded
    /// identity failures), and reporting everything in the stats.
    fn load_partition_snapshot(
        &self,
        schema: &TableSchema,
        pid: usize,
    ) -> Result<LoadedPartition, DbError> {
        let candidates = self.list_snapshots(&schema.name, pid)?;
        let mut rejected = 0usize;
        for (epoch, path) in &candidates {
            match self.try_load_snapshot(schema, pid, *epoch, path) {
                Ok(loaded) => {
                    self.with_stats(|s| {
                        s.snapshots_loaded += 1;
                        if rejected > 0 {
                            s.snapshot_fallbacks += 1;
                        }
                    });
                    return Ok(loaded);
                }
                Err(_) => {
                    rejected += 1;
                    self.with_stats(|s| s.snapshots_rejected += 1);
                }
            }
        }
        Err(DbError::Durability(format!(
            "partition {pid} of {}: no valid sealed snapshot among {} candidate file(s)",
            schema.name,
            candidates.len()
        )))
    }

    fn try_load_snapshot(
        &self,
        schema: &TableSchema,
        pid: usize,
        epoch: u64,
        path: &Path,
    ) -> Result<LoadedPartition, DbError> {
        let bytes = std::fs::read(path)
            .map_err(|e| DbError::Durability(format!("reading {}: {e}", path.display())))?;
        let (frames, tail) = read_frames(&bytes);
        if frames.len() != 1 || tail != FrameTail::Clean {
            return Err(DbError::Durability(format!(
                "snapshot {} is not one clean frame",
                path.display()
            )));
        }
        let payload = self.unseal(frames[0], &format!("snapshot {}", path.display()))?;
        decode_snapshot(schema, pid, epoch, &payload)
    }

    // -- Manifest ----------------------------------------------------------

    /// Writes the sealed table manifest (schema + partitioning); failure
    /// here fails the deploy — a table the server cannot recover must not
    /// silently accept writes.
    fn persist_manifest(&self, schema: &TableSchema) -> Result<(), DbError> {
        self.check_alive()?;
        let dir = self.table_dir(&schema.name)?;
        std::fs::create_dir_all(&dir)
            .map_err(|e| DbError::Durability(format!("creating {}: {e}", dir.display())))?;
        let framed = frame(&self.seal(&encode_manifest(schema)));
        let path = dir.join("table.manifest");
        let tmp = dir.join("table.manifest.tmp");
        std::fs::write(&tmp, &framed)
            .map_err(|e| DbError::Durability(format!("writing {}: {e}", tmp.display())))?;
        std::fs::rename(&tmp, &path)
            .map_err(|e| DbError::Durability(format!("publishing {}: {e}", path.display())))?;
        Ok(())
    }

    fn load_manifest(&self, table: &str) -> Result<TableSchema, DbError> {
        let path = self.table_dir(table)?.join("table.manifest");
        let bytes = std::fs::read(&path)
            .map_err(|e| DbError::Durability(format!("reading {}: {e}", path.display())))?;
        let (frames, tail) = read_frames(&bytes);
        if frames.len() != 1 || tail != FrameTail::Clean {
            return Err(DbError::Durability(format!(
                "manifest {} is not one clean frame",
                path.display()
            )));
        }
        let payload = self.unseal(frames[0], &format!("manifest {}", path.display()))?;
        let schema = decode_manifest(&payload)?;
        if schema.name != table {
            return Err(DbError::Durability(format!(
                "manifest in {table}/ describes table {}",
                schema.name
            )));
        }
        Ok(schema)
    }

    /// Makes a freshly deployed (or durably attached) table recoverable:
    /// manifest, one sealed snapshot per partition at its current epoch,
    /// and a header-stamped WAL.
    pub(crate) fn persist_new_table(&self, t: &ServerTable) -> Result<(), DbError> {
        self.persist_manifest(&t.schema)?;
        for p in &t.partitions {
            let (main, drained) = {
                let state = lock(&p.state);
                (Arc::clone(&state.main), state.drained_total)
            };
            self.ensure_snapshot(&t.schema, p.index, &main, drained)?;
        }
        self.wal_handle(&t.schema.name)?;
        Ok(())
    }

    /// Errors when the directory already holds a previous incarnation's
    /// durable state (a table manifest or WAL). Attaching a *fresh*
    /// deployment over it would append to the old WAL (whose header is
    /// only stamped into an empty file) and mix snapshot generations,
    /// leaving a directory recovery can only partially replay — such a
    /// directory must be reopened with [`DbaasServer::recover`] /
    /// `Session::open` instead.
    fn refuse_existing_state(&self) -> Result<(), DbError> {
        let entries = match std::fs::read_dir(&self.dir) {
            Ok(entries) => entries,
            Err(_) => return Ok(()),
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if !path.is_dir() {
                continue;
            }
            for marker in ["table.manifest", "wal.log"] {
                if path.join(marker).exists() {
                    return Err(DbError::Durability(format!(
                        "{} already holds durable state ({}); reopen it with \
                         recover()/Session::open instead of attaching a fresh deployment",
                        self.dir.display(),
                        path.join(marker).display()
                    )));
                }
            }
        }
        Ok(())
    }

    /// Table names found in the storage directory (dirs with a manifest).
    fn stored_tables(&self) -> Result<Vec<String>, DbError> {
        let mut out = Vec::new();
        let entries = std::fs::read_dir(&self.dir)
            .map_err(|e| DbError::Durability(format!("reading {}: {e}", self.dir.display())))?;
        for entry in entries.flatten() {
            if !entry.path().is_dir() || !entry.path().join("table.manifest").exists() {
                continue;
            }
            if let Some(name) = entry.file_name().to_str() {
                out.push(name.to_string());
            }
        }
        out.sort();
        Ok(out)
    }
}

/// A partition reloaded from its sealed snapshot.
struct LoadedPartition {
    epoch: u64,
    drained_total: u64,
    rows: usize,
    columns: Vec<MainColumn>,
}

// ---------------------------------------------------------------------------
// Record / snapshot / manifest encodings (inside the sealed payloads)
// ---------------------------------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    put_u32(out, bytes.len() as u32);
    out.extend_from_slice(bytes);
}

/// Bounds-checked little-endian reader over a decoded payload.
struct Dec<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Dec { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DbError> {
        if self.bytes.len() - self.pos < n {
            return Err(DbError::Durability("truncated durable payload".to_string()));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, DbError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, DbError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, DbError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn bytes_field(&mut self) -> Result<&'a [u8], DbError> {
        let len = self.u32()? as usize;
        self.take(len)
    }

    fn str_field(&mut self) -> Result<String, DbError> {
        String::from_utf8(self.bytes_field()?.to_vec())
            .map_err(|_| DbError::Durability("durable payload string not utf-8".to_string()))
    }

    fn finish(&self) -> Result<(), DbError> {
        if self.pos != self.bytes.len() {
            return Err(DbError::Durability(
                "trailing bytes in durable payload".to_string(),
            ));
        }
        Ok(())
    }
}

/// One per-partition group of an insert record.
pub(crate) struct InsertGroup<'a> {
    pub(crate) pid: usize,
    /// Absolute delta position of the group's first row.
    pub(crate) base_abs: u64,
    pub(crate) rows: &'a [Vec<CellValue>],
}

pub(crate) fn encode_insert(groups: &[InsertGroup<'_>]) -> Vec<u8> {
    let mut out = vec![WAL_VERSION, REC_INSERT];
    put_u32(&mut out, groups.len() as u32);
    for g in groups {
        put_u32(&mut out, g.pid as u32);
        put_u64(&mut out, g.base_abs);
        put_u32(&mut out, g.rows.len() as u32);
        for row in g.rows {
            put_u32(&mut out, row.len() as u32);
            for cell in row {
                match cell {
                    CellValue::Encrypted(ct) => {
                        out.push(CELL_ENCRYPTED);
                        put_bytes(&mut out, ct);
                    }
                    CellValue::Plain(v) => {
                        out.push(CELL_PLAIN);
                        put_bytes(&mut out, v);
                    }
                }
            }
        }
    }
    out
}

pub(crate) fn encode_delete(
    pid: usize,
    epoch: u64,
    main_rids: &[colstore::dictionary::RecordId],
    drained_total: u64,
    delta_rids: &[colstore::dictionary::RecordId],
) -> Vec<u8> {
    let mut out = vec![WAL_VERSION, REC_DELETE];
    put_u32(&mut out, pid as u32);
    put_u64(&mut out, epoch);
    put_u32(&mut out, main_rids.len() as u32);
    for rid in main_rids {
        put_u32(&mut out, rid.0);
    }
    put_u32(&mut out, delta_rids.len() as u32);
    for rid in delta_rids {
        put_u64(&mut out, drained_total + rid.0 as u64);
    }
    out
}

pub(crate) fn encode_merge(pid: usize, old_epoch: u64, watermark_abs: u64) -> Vec<u8> {
    let mut out = vec![WAL_VERSION, REC_MERGE];
    put_u32(&mut out, pid as u32);
    put_u64(&mut out, old_epoch);
    put_u64(&mut out, watermark_abs);
    out
}

fn encode_snapshot(
    schema: &TableSchema,
    pid: usize,
    main: &MainState,
    drained_total: u64,
) -> Result<Vec<u8>, DbError> {
    let mut out = Vec::new();
    out.extend_from_slice(SNAPSHOT_MAGIC);
    put_bytes(&mut out, schema.name.as_bytes());
    put_u32(&mut out, pid as u32);
    put_u64(&mut out, main.epoch);
    put_u64(&mut out, drained_total);
    put_u64(&mut out, main.rows as u64);
    put_u32(&mut out, main.columns.len() as u32);
    for column in &main.columns {
        match column {
            MainColumn::Encrypted(snap) => {
                out.push(CELL_ENCRYPTED);
                let body = encdict::persist::to_bytes(snap.dict(), snap.av());
                put_u64(&mut out, body.len() as u64);
                out.extend_from_slice(&body);
            }
            MainColumn::Plain { dict, av } => {
                out.push(CELL_PLAIN);
                let body = encdict::persist::plain_to_bytes(dict, av);
                put_u64(&mut out, body.len() as u64);
                out.extend_from_slice(&body);
            }
        }
    }
    Ok(out)
}

fn decode_snapshot(
    schema: &TableSchema,
    expect_pid: usize,
    expect_epoch: u64,
    payload: &[u8],
) -> Result<LoadedPartition, DbError> {
    let corrupt = |msg: &str| DbError::Durability(format!("snapshot payload: {msg}"));
    let mut d = Dec::new(payload);
    if d.take(8)? != SNAPSHOT_MAGIC {
        return Err(corrupt("bad magic"));
    }
    let table = d.str_field()?;
    let pid = d.u32()? as usize;
    let epoch = d.u64()?;
    // The embedded identity must match both the schema and the filename:
    // with one shared sealing key, this is what rejects a snapshot file
    // swapped between partitions, epochs or tables.
    if table != schema.name || pid != expect_pid || epoch != expect_epoch {
        return Err(corrupt("embedded identity does not match the file"));
    }
    let drained_total = d.u64()?;
    let rows = d.u64()? as usize;
    let ncols = d.u32()? as usize;
    if ncols != schema.columns.len() {
        return Err(corrupt("column count does not match the schema"));
    }
    let mut columns = Vec::with_capacity(ncols);
    for spec in &schema.columns {
        let tag = d.u8()?;
        let body_len = d.u64()? as usize;
        let body = d.take(body_len)?;
        match (tag, &spec.choice) {
            (CELL_ENCRYPTED, DictChoice::Encrypted(_)) => {
                let (dict, av) = encdict::persist::from_bytes(body)?;
                if av.len() != rows {
                    return Err(corrupt("column is not row-aligned"));
                }
                columns.push(MainColumn::Encrypted(MainSnapshot::new(epoch, dict, av)));
            }
            (CELL_PLAIN, DictChoice::Plain) => {
                let (dict, av) = encdict::persist::plain_from_bytes(body)?;
                if av.len() != rows {
                    return Err(corrupt("column is not row-aligned"));
                }
                columns.push(MainColumn::Plain {
                    dict: Arc::new(dict),
                    av: Arc::new(av),
                });
            }
            _ => return Err(corrupt("column protection does not match the schema")),
        }
    }
    d.finish()?;
    Ok(LoadedPartition {
        epoch,
        drained_total,
        rows,
        columns,
    })
}

fn encode_manifest(schema: &TableSchema) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(MANIFEST_MAGIC);
    put_bytes(&mut out, schema.name.as_bytes());
    put_u32(&mut out, schema.columns.len() as u32);
    for spec in &schema.columns {
        put_bytes(&mut out, spec.name.as_bytes());
        out.push(match spec.choice {
            DictChoice::Plain => 0,
            DictChoice::Encrypted(kind) => kind.number(),
        });
        put_u64(&mut out, spec.max_len as u64);
        put_u64(&mut out, spec.bs_max as u64);
    }
    match &schema.partitioning {
        None => out.push(0),
        Some(p) => {
            out.push(1);
            put_bytes(&mut out, p.column.as_bytes());
            put_u32(&mut out, p.split_points.len() as u32);
            for split in &p.split_points {
                put_bytes(&mut out, split);
            }
        }
    }
    out
}

fn decode_manifest(payload: &[u8]) -> Result<TableSchema, DbError> {
    let corrupt = |msg: &str| DbError::Durability(format!("manifest payload: {msg}"));
    let mut d = Dec::new(payload);
    if d.take(8)? != MANIFEST_MAGIC {
        return Err(corrupt("bad magic"));
    }
    let name = d.str_field()?;
    let ncols = d.u32()? as usize;
    let mut columns = Vec::with_capacity(ncols);
    for _ in 0..ncols {
        let col_name = d.str_field()?;
        let choice = match d.u8()? {
            0 => DictChoice::Plain,
            n => DictChoice::Encrypted(kind_from_number(n).ok_or_else(|| corrupt("bad kind"))?),
        };
        let max_len = d.u64()? as usize;
        let bs_max = d.u64()? as usize;
        columns.push(ColumnSpec {
            name: col_name,
            choice,
            max_len,
            bs_max,
        });
    }
    let mut schema = TableSchema::new(name, columns);
    match d.u8()? {
        0 => {}
        1 => {
            let column = d.str_field()?;
            let nsplits = d.u32()? as usize;
            let mut split_points = Vec::with_capacity(nsplits);
            for _ in 0..nsplits {
                split_points.push(d.bytes_field()?.to_vec());
            }
            schema = schema.with_partitioning(TablePartitioning {
                column,
                split_points,
            });
        }
        _ => return Err(corrupt("bad partitioning flag")),
    }
    d.finish()?;
    Ok(schema)
}

fn kind_from_number(n: u8) -> Option<EdKind> {
    EdKind::ALL.into_iter().find(|k| k.number() == n)
}

// ---------------------------------------------------------------------------
// DbaasServer durability surface
// ---------------------------------------------------------------------------

impl DbaasServer {
    /// The attached durable storage, if any.
    pub(crate) fn storage(&self) -> Option<Arc<Storage>> {
        lock(&self.storage).clone()
    }

    /// Attaches durable storage under `dir` to a running server: every
    /// already-deployed table is first folded to quiescence (deltas
    /// merged, deletions compacted away — the sealed snapshot format
    /// captures exactly a published epoch, so persisting a partition with
    /// live delta rows or invalidated main rows would lose the former and
    /// resurrect the latter on recovery), then persisted (manifest +
    /// sealed snapshots at the current epochs + WAL). From here on every
    /// insert, delete and epoch publish is logged/persisted.
    ///
    /// `dir` must not hold a previous deployment's durable state — reopen
    /// such a directory with [`DbaasServer::recover`] instead. Writes
    /// racing the attach are not guaranteed a spot in the initial
    /// snapshots; quiesce writers around this call.
    ///
    /// # Errors
    ///
    /// [`DbError::Durability`] if storage is already attached, `dir`
    /// already holds durable state, the initial persistence fails, or
    /// concurrent writes keep the tables from reaching quiescence; merge
    /// errors propagate.
    pub fn attach_durability(
        &self,
        dir: impl AsRef<Path>,
        policy: DurabilityPolicy,
    ) -> Result<(), DbError> {
        if lock(&self.storage).is_some() {
            return Err(DbError::Durability(
                "durable storage is already attached".to_string(),
            ));
        }
        for _attempt in 0..MERGE_RETRIES {
            // Fold outside the storage lock: the publish path of these
            // merges takes it to look for a WAL.
            let names: Vec<String> = {
                let tables = self.tables.read().unwrap_or_else(|e| e.into_inner());
                tables.keys().cloned().collect()
            };
            for name in &names {
                self.merge_table(name)?;
            }
            let mut slot = lock(&self.storage);
            if slot.is_some() {
                return Err(DbError::Durability(
                    "durable storage is already attached".to_string(),
                ));
            }
            // Hold the tables write lock across the quiescence check and
            // the initial persistence so no deploy or new write slips
            // between "snapshotted" and "logged".
            let tables = self.tables.write().unwrap_or_else(|e| e.into_inner());
            let quiescent = tables.values().all(|t| {
                t.partitions.iter().all(|p| {
                    let state = lock(&p.state);
                    state.delta_rows == 0 && state.main_invalid == 0 && !state.merge_in_flight
                })
            });
            if !quiescent {
                continue; // A write raced the fold above; merge again.
            }
            let storage = Arc::new(Storage::new(
                dir.as_ref(),
                policy,
                Arc::clone(&self.enclave),
                self.obs().clone(),
            )?);
            storage.refuse_existing_state()?;
            for t in tables.values() {
                storage.persist_new_table(t)?;
            }
            *slot = Some(storage);
            return Ok(());
        }
        Err(DbError::Durability(
            "attach_durability kept racing concurrent writes; quiesce writers and retry"
                .to_string(),
        ))
    }

    /// Rebuilds this (empty, provisioned) server from a storage directory:
    /// loads the newest valid sealed snapshot of every partition, replays
    /// the WAL suffix past the loaded epochs (re-executing logged merges),
    /// truncates torn WAL tails and attaches the storage for further
    /// writes. Damaged files trigger fallback to older epochs and are
    /// reported in [`DbaasServer::durability_stats`]; only a partition
    /// with **no** valid snapshot at all fails the recovery.
    ///
    /// Both enclaves must already be provisioned (the data owner
    /// re-attests and re-provisions `SK_DB`; see `Session::open`) —
    /// unsealing needs no key, but replaying a logged merge rebuilds
    /// dictionaries inside the merge enclave.
    ///
    /// # Errors
    ///
    /// [`DbError::Durability`] on unusable on-disk state (or a non-empty
    /// server), [`DbError::Unseal`] never escapes — unseal failures are
    /// per-file fallbacks.
    pub fn recover(&self, dir: impl AsRef<Path>, policy: DurabilityPolicy) -> Result<(), DbError> {
        let mut slot = lock(&self.storage);
        if slot.is_some() {
            return Err(DbError::Durability(
                "durable storage is already attached".to_string(),
            ));
        }
        let storage = Arc::new(Storage::new(
            dir.as_ref(),
            policy,
            Arc::clone(&self.enclave),
            self.obs().clone(),
        )?);
        let mut tables = self.tables.write().unwrap_or_else(|e| e.into_inner());
        if !tables.is_empty() {
            return Err(DbError::Durability(
                "recover requires a server with no deployed tables".to_string(),
            ));
        }
        let obs = self.obs().clone();
        let span = obs.span("recover", "durability", SpanId::NONE);
        let t0 = std::time::Instant::now();
        for name in storage.stored_tables()? {
            let table = self.recover_table(&storage, &name, span.id())?;
            tables.insert(name, table);
        }
        *slot = Some(storage);
        obs.add(Counter::RecoveriesTotal, 1);
        obs.record(Hist::RecoveryNs, t0.elapsed().as_nanos() as u64);
        span.finish();
        Ok(())
    }

    fn recover_table(
        &self,
        storage: &Storage,
        name: &str,
        parent: SpanId,
    ) -> Result<Arc<ServerTable>, DbError> {
        let schema = storage.load_manifest(name)?;
        let load_span = self.obs().span("recovery.load", "durability", parent);
        let mut partitions = Vec::with_capacity(schema.partition_count());
        for pid in 0..schema.partition_count() {
            let loaded = storage.load_partition_snapshot(&schema, pid)?;
            let deltas = schema
                .columns
                .iter()
                .map(|spec| match spec.choice {
                    DictChoice::Encrypted(_) => ColumnDelta::Encrypted(EncryptedDeltaStore::new(
                        schema.name.clone(),
                        spec.name.clone(),
                        spec.max_len,
                    )),
                    DictChoice::Plain => ColumnDelta::Plain(DeltaStore::new(spec.max_len)),
                })
                .collect();
            partitions.push(Arc::new(Partition::recovered(
                pid,
                loaded.columns,
                deltas,
                loaded.rows,
                loaded.epoch,
                loaded.drained_total,
            )));
        }
        load_span.finish();
        let table = Arc::new(ServerTable::from_parts(schema, partitions));
        let replay_span = self.obs().span("recovery.replay", "durability", parent);
        self.replay_wal(storage, &table)?;
        replay_span.finish();
        Ok(table)
    }

    /// Replays a table's WAL over its loaded snapshots, in append order.
    /// Stops at (and truncates) a torn or corrupt tail; a record whose
    /// sealed payload fails to unseal or decode past a valid CRC frame is
    /// targeted corruption — replay also stops there, keeping the applied
    /// state a consistent prefix of the log.
    fn replay_wal(&self, storage: &Storage, t: &ServerTable) -> Result<(), DbError> {
        let path = storage.table_dir(&t.schema.name)?.join("wal.log");
        let bytes = match std::fs::read(&path) {
            Ok(bytes) => bytes,
            Err(_) => return Ok(()), // No WAL yet: snapshots are the state.
        };
        let (frames, tail) = read_frames(&bytes);
        let mut valid_prefix = tail.valid_prefix(bytes.len());
        let mut consumed = 0usize;
        for (i, sealed) in frames.iter().enumerate() {
            let framed_len = sealed.len() + colstore::persist::FRAME_HEADER_BYTES;
            let record = match storage
                .unseal(sealed, &format!("WAL record {i} of {}", t.schema.name))
                .and_then(|payload| self.replay_record(storage, t, i, &payload))
            {
                Ok(()) => {
                    consumed += framed_len;
                    continue;
                }
                Err(e) => e,
            };
            match record {
                // Unusable on-disk state detected *by* replay (checkpoint
                // floor above the loaded snapshots) is unrecoverable.
                DbError::Durability(msg) if msg.starts_with("unrecoverable") => {
                    return Err(DbError::Durability(msg));
                }
                _ => {
                    storage.with_stats(|s| s.wal_records_rejected += 1);
                    valid_prefix = valid_prefix.min(consumed);
                    break;
                }
            }
        }
        if valid_prefix < bytes.len() {
            let file = OpenOptions::new()
                .write(true)
                .open(&path)
                .map_err(|e| DbError::Durability(format!("truncating {}: {e}", path.display())))?;
            file.set_len(valid_prefix as u64)
                .map_err(|e| DbError::Durability(format!("truncating {}: {e}", path.display())))?;
            storage.with_stats(|s| {
                s.wal_torn_tails += 1;
                s.wal_torn_tail_bytes += (bytes.len() - valid_prefix) as u64;
            });
        }
        Ok(())
    }

    fn replay_record(
        &self,
        storage: &Storage,
        t: &ServerTable,
        index: usize,
        payload: &[u8],
    ) -> Result<(), DbError> {
        let corrupt = |msg: &str| DbError::Durability(format!("WAL record: {msg}"));
        let mut d = Dec::new(payload);
        if d.u8()? != WAL_VERSION {
            return Err(corrupt("unknown version"));
        }
        match d.u8()? {
            REC_HEADER => {
                let table = d.str_field()?;
                d.finish()?;
                if table != t.schema.name {
                    return Err(DbError::Durability(format!(
                        "unrecoverable: WAL of {} found in {}/ (file swap?)",
                        table, t.schema.name
                    )));
                }
                if index != 0 {
                    return Err(corrupt("header record past the start"));
                }
                Ok(())
            }
            REC_INSERT => self.replay_insert(storage, t, &mut d),
            REC_DELETE => self.replay_delete(storage, t, &mut d),
            REC_MERGE => self.replay_merge(storage, t, &mut d),
            REC_CHECKPOINT => {
                let nparts = d.u32()? as usize;
                for _ in 0..nparts {
                    let pid = d.u32()? as usize;
                    let epoch = d.u64()?;
                    let drained = d.u64()?;
                    let p = t
                        .partitions
                        .get(pid)
                        .ok_or_else(|| corrupt("checkpoint pid out of range"))?;
                    let state = lock(&p.state);
                    // The checkpoint truncated every record that could
                    // advance an older snapshot to this floor; a loaded
                    // snapshot below it cannot be caught up.
                    if state.main.epoch != epoch || state.drained_total != drained {
                        return Err(DbError::Durability(format!(
                            "unrecoverable: partition {pid} of {} recovered at epoch {} \
                             but the WAL was truncated at checkpoint epoch {epoch}",
                            t.schema.name, state.main.epoch
                        )));
                    }
                }
                d.finish()?;
                storage.with_stats(|s| s.wal_records_replayed += 1);
                Ok(())
            }
            _ => Err(corrupt("unknown record type")),
        }
    }

    fn replay_insert(
        &self,
        storage: &Storage,
        t: &ServerTable,
        d: &mut Dec<'_>,
    ) -> Result<(), DbError> {
        let corrupt = |msg: &str| DbError::Durability(format!("WAL insert record: {msg}"));
        // Decode and validate the *whole* record before touching any
        // partition: rejecting a record must leave zero of its rows
        // applied, or the recovered memory state would run ahead of the
        // durable log it is supposed to equal.
        struct Group<'a> {
            pid: usize,
            apply: bool,
            rows: Vec<Vec<(u8, &'a [u8])>>,
        }
        let ngroups = d.u32()? as usize;
        let mut groups: Vec<Group<'_>> = Vec::new();
        // Per-partition delta tails as the apply phase would advance them.
        let mut tails: HashMap<usize, u64> = HashMap::new();
        for _ in 0..ngroups {
            let pid = d.u32()? as usize;
            let base_abs = d.u64()?;
            let nrows = d.u32()? as usize;
            let p = t
                .partitions
                .get(pid)
                .ok_or_else(|| corrupt("pid out of range"))?;
            let (drained_total, live_pos) = {
                let state = lock(&p.state);
                (
                    state.drained_total,
                    state.drained_total + state.delta_rows as u64,
                )
            };
            let pos = *tails.entry(pid).or_insert(live_pos);
            let apply = if base_abs == pos {
                tails.insert(pid, pos + nrows as u64);
                true
            } else if base_abs + nrows as u64 <= drained_total {
                false // Fully folded into the loaded snapshot.
            } else {
                return Err(corrupt("group position does not meet the delta tail"));
            };
            let mut rows = Vec::new();
            for _ in 0..nrows {
                let ncells = d.u32()? as usize;
                if ncells != t.schema.columns.len() {
                    return Err(corrupt("cell arity does not match the schema"));
                }
                let mut cells = Vec::with_capacity(ncells);
                for spec in &t.schema.columns {
                    let tag = d.u8()?;
                    let bytes = d.bytes_field()?;
                    match (tag, &spec.choice) {
                        (CELL_ENCRYPTED, DictChoice::Encrypted(_)) => {}
                        (CELL_PLAIN, DictChoice::Plain) => {
                            if bytes.len() > spec.max_len {
                                return Err(corrupt("cell longer than the column maximum"));
                            }
                        }
                        _ => return Err(corrupt("cell form does not match the column")),
                    }
                    cells.push((tag, bytes));
                }
                rows.push(cells);
            }
            groups.push(Group { pid, apply, rows });
        }
        d.finish()?;
        // Apply phase. Everything below was validated above, and recovery
        // is single-threaded, so the tails the validation simulated still
        // hold — nothing here can reject the record anymore.
        let mut replayed = false;
        for g in &groups {
            if !g.apply {
                continue;
            }
            let mut state = lock(&t.partitions[g.pid].state);
            for row in &g.rows {
                for (col, &(tag, bytes)) in row.iter().enumerate() {
                    match (tag, &mut state.deltas[col]) {
                        (CELL_ENCRYPTED, ColumnDelta::Encrypted(delta)) => {
                            delta.push_reencrypted(bytes);
                        }
                        (CELL_PLAIN, ColumnDelta::Plain(delta)) => {
                            delta.insert(bytes).map_err(DbError::Storage)?;
                        }
                        _ => unreachable!("cell tags validated against the schema above"),
                    }
                }
                state.delta_rows += 1;
                state.delta_validity.push(true);
            }
            replayed = true;
        }
        storage.with_stats(|s| {
            if replayed {
                s.wal_records_replayed += 1;
            } else {
                s.wal_records_skipped += 1;
            }
        });
        Ok(())
    }

    fn replay_delete(
        &self,
        storage: &Storage,
        t: &ServerTable,
        d: &mut Dec<'_>,
    ) -> Result<(), DbError> {
        let corrupt = |msg: &str| DbError::Durability(format!("WAL delete record: {msg}"));
        let pid = d.u32()? as usize;
        let epoch = d.u64()?;
        let p = t
            .partitions
            .get(pid)
            .ok_or_else(|| corrupt("pid out of range"))?;
        let mut state = lock(&p.state);
        if epoch > state.main.epoch {
            return Err(corrupt("record epoch ahead of the replayed timeline"));
        }
        let mut applied = false;
        let n_main = d.u32()? as usize;
        for _ in 0..n_main {
            let rid = d.u32()? as usize;
            // Flips at an older epoch are already folded into the loaded
            // (or merge-replayed) main store; at the current epoch they
            // re-apply idempotently.
            if epoch != state.main.epoch {
                continue;
            }
            if rid >= state.main.rows {
                return Err(corrupt("main rid out of range"));
            }
            if state.main_validity.is_valid(rid) {
                Arc::make_mut(&mut state.main_validity).invalidate(rid);
                state.main_invalid += 1;
                applied = true;
            }
        }
        let n_delta = d.u32()? as usize;
        for _ in 0..n_delta {
            let abs = d.u64()?;
            if abs < state.drained_total {
                continue; // Folded by a merge the timeline already passed.
            }
            let local = (abs - state.drained_total) as usize;
            if local >= state.delta_rows {
                return Err(corrupt("delta position out of range"));
            }
            if state.delta_validity.is_valid(local) {
                state.delta_validity.invalidate(local);
                applied = true;
            }
        }
        d.finish()?;
        storage.with_stats(|s| {
            if applied {
                s.wal_records_replayed += 1;
            } else {
                s.wal_records_skipped += 1;
            }
        });
        Ok(())
    }

    /// Re-executes a logged epoch publish. The merge enclave reassembles
    /// rows deterministically (valid main rows in row order, then valid
    /// delta rows in order), so the rebuilt store is row-for-row identical
    /// to the one the crashed process published — only the ciphertext
    /// randomness differs, which nothing downstream depends on.
    fn replay_merge(
        &self,
        storage: &Storage,
        t: &ServerTable,
        d: &mut Dec<'_>,
    ) -> Result<(), DbError> {
        let corrupt = |msg: &str| DbError::Durability(format!("WAL merge record: {msg}"));
        let pid = d.u32()? as usize;
        let old_epoch = d.u64()?;
        let watermark_abs = d.u64()?;
        d.finish()?;
        let p = t
            .partitions
            .get(pid)
            .ok_or_else(|| corrupt("pid out of range"))?;
        let job = {
            let state = lock(&p.state);
            if old_epoch < state.main.epoch {
                // The loaded snapshot already contains this publish.
                storage.with_stats(|s| s.wal_records_skipped += 1);
                return Ok(());
            }
            if old_epoch > state.main.epoch || watermark_abs < state.drained_total {
                return Err(corrupt("record epoch ahead of the replayed timeline"));
            }
            let watermark = (watermark_abs - state.drained_total) as usize;
            if watermark > state.delta_rows {
                return Err(corrupt("watermark past the replayed delta"));
            }
            CompactionJob {
                epoch: state.main.epoch,
                main: Arc::clone(&state.main),
                main_validity: Arc::clone(&state.main_validity),
                delta_prefixes: state.deltas.iter().map(|d| d.prefix(watermark)).collect(),
                delta_validity: state.delta_validity.prefix(watermark),
                watermark,
            }
        };
        let mut cfg = self.config();
        cfg.merge_throttle = None; // Replay at full speed.
        let (columns, rows) = execute_compaction(
            &self.merge_enclave,
            &t.schema,
            &job,
            &cfg,
            self.obs(),
            SpanId::NONE,
        )?;
        let mut state = lock(&p.state);
        state.main = Arc::new(MainState {
            epoch: job.epoch + 1,
            columns,
            rows,
        });
        state.main_validity = Arc::new(ValidityVector::all_valid(rows));
        state.main_invalid = 0;
        for delta in &mut state.deltas {
            delta.drain_prefix(job.watermark);
        }
        state.delta_validity = state.delta_validity.suffix(job.watermark);
        state.delta_rows -= job.watermark;
        state.drained_total = watermark_abs;
        drop(state);
        storage.with_stats(|s| {
            s.wal_records_replayed += 1;
            s.merges_replayed += 1;
        });
        Ok(())
    }

    /// Folds every delta into the main stores, verifies each partition's
    /// current epoch has a sealed snapshot on disk (persisting any missing
    /// one), then truncates the table's WAL and prunes older snapshots.
    /// Returns `false` (leaving the WAL alone) when the table is not
    /// quiescent — concurrent writes landed after the merge.
    ///
    /// # Errors
    ///
    /// [`DbError::Durability`] without attached storage, on I/O failure or
    /// at an injected crash point; merge errors propagate.
    pub fn checkpoint(&self, table: &str) -> Result<bool, DbError> {
        let Some(storage) = self.storage() else {
            return Err(DbError::Durability(
                "no durable storage attached".to_string(),
            ));
        };
        self.merge_table(table)?;
        let t = self.table_handle(table)?;
        let wal = storage.wal_handle(table)?;
        let mut wal_guard = lock(&wal);
        let mut floors = Vec::with_capacity(t.partitions.len());
        for p in &t.partitions {
            let (main, drained) = {
                let state = lock(&p.state);
                if state.delta_rows > 0 || state.main_invalid > 0 || state.merge_in_flight {
                    storage.with_stats(|s| s.checkpoints_skipped += 1);
                    return Ok(false);
                }
                (Arc::clone(&state.main), state.drained_total)
            };
            // Writers are blocked on the WAL mutex we hold, so the
            // quiescence verified above cannot be invalidated here.
            storage.ensure_snapshot(&t.schema, p.index, &main, drained)?;
            floors.push((p.index as u32, main.epoch, drained));
        }
        storage.fire(FailPoint::CheckpointNoTruncate)?;
        storage.truncate_wal(table, &mut wal_guard, &floors)?;
        drop(wal_guard);
        for &(pid, epoch, _) in &floors {
            storage.prune_snapshots(table, pid as usize, epoch, 1)?;
        }
        Ok(true)
    }

    /// Counters of the durable layer, or `None` when storage is not
    /// attached.
    pub fn durability_stats(&self) -> Option<super::stats::DurabilityStats> {
        self.storage().map(|s| s.stats())
    }

    /// Arms a one-shot crash injection (see [`FailPoint`]): the next
    /// operation reaching that point leaves the partial on-disk state a
    /// real crash would, fails, and poisons the storage.
    ///
    /// # Errors
    ///
    /// [`DbError::Durability`] without attached storage.
    pub fn arm_fail_point(&self, point: FailPoint) -> Result<(), DbError> {
        let Some(storage) = self.storage() else {
            return Err(DbError::Durability(
                "no durable storage attached".to_string(),
            ));
        };
        storage.arm(point);
        Ok(())
    }
}
