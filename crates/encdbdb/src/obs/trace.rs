//! Hierarchical trace spans in a bounded ring buffer.
//!
//! Span parentage is threaded *explicitly* (a [`SpanId`] parameter)
//! rather than through thread-locals: the query path fans out across
//! scoped worker threads (`server::snapshot::fan_out`), where implicit
//! ambient context would silently detach children. Completed spans are
//! pushed as [`TraceEvent`]s into a fixed-capacity ring — when full,
//! the oldest event is dropped and a registry counter
//! (`trace_events_dropped_total`) records the loss, so the hot path
//! never blocks on trace growth and truncation is observable.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Capacity of the trace ring. Roughly: a partition-parallel join emits
/// a few dozen events, so this holds on the order of a hundred recent
/// queries before evicting.
const TRACE_CAPACITY: usize = 8192;

/// Identifier of a live or completed span. `SpanId::NONE` (0) marks a
/// root: an event whose `parent` is 0 has no enclosing span.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpanId(pub(crate) u64);

impl SpanId {
    /// The absent parent: events with this parent are trace roots.
    pub const NONE: SpanId = SpanId(0);

    /// The raw numeric id (0 for [`SpanId::NONE`]).
    pub fn raw(self) -> u64 {
        self.0
    }
}

/// One completed span, in the "complete event" shape of the Chrome
/// trace format (`ph: "X"`): a start timestamp plus a duration.
#[derive(Debug, Clone, Copy)]
pub struct TraceEvent {
    /// Unique id of this span within the [`crate::obs::Obs`] instance.
    pub id: u64,
    /// Id of the enclosing span, or 0 for roots.
    pub parent: u64,
    /// Span name, e.g. `"partition"` or `"ecall.search"`.
    pub name: &'static str,
    /// Span category: `"query"`, `"ecall"`, `"compaction"` or
    /// `"durability"`.
    pub cat: &'static str,
    /// Start offset in nanoseconds since the `Obs` epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// A compact hash of the recording thread's id (Chrome trace `tid`).
    pub tid: u64,
    /// One free-form numeric argument (partition id, byte count, …);
    /// meaning depends on `name`.
    pub arg: u64,
}

/// The bounded ring of completed [`TraceEvent`]s.
#[derive(Debug)]
pub(crate) struct TraceBuffer {
    next_id: AtomicU64,
    events: Mutex<VecDeque<TraceEvent>>,
    capacity: usize,
}

impl TraceBuffer {
    pub(crate) fn new() -> Self {
        TraceBuffer {
            // Ids start at 1 so 0 stays reserved for SpanId::NONE.
            next_id: AtomicU64::new(1),
            events: Mutex::new(VecDeque::with_capacity(128)),
            capacity: TRACE_CAPACITY,
        }
    }

    pub(crate) fn fresh_id(&self) -> SpanId {
        SpanId(self.next_id.fetch_add(1, Ordering::Relaxed))
    }

    /// Pushes one completed event; returns `true` if an old event was
    /// evicted to make room (the caller counts drops in the registry).
    pub(crate) fn push(&self, ev: TraceEvent) -> bool {
        let mut events = self.events.lock().unwrap_or_else(|e| e.into_inner());
        let dropped = events.len() >= self.capacity;
        if dropped {
            events.pop_front();
        }
        events.push_back(ev);
        dropped
    }

    pub(crate) fn snapshot(&self) -> Vec<TraceEvent> {
        let events = self.events.lock().unwrap_or_else(|e| e.into_inner());
        events.iter().copied().collect()
    }
}

/// A compact per-thread id for Chrome trace rows: the std `ThreadId`
/// hashed down to 16 bits (collisions only blur row assignment in the
/// viewer, never correctness).
pub(crate) fn current_tid() -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    std::thread::current().id().hash(&mut h);
    h.finish() & 0xffff
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(id: u64) -> TraceEvent {
        TraceEvent {
            id,
            parent: 0,
            name: "t",
            cat: "query",
            start_ns: id,
            dur_ns: 1,
            tid: 0,
            arg: 0,
        }
    }

    #[test]
    fn ring_evicts_oldest_and_reports_drops() {
        let buf = TraceBuffer::new();
        let mut drops = 0u64;
        for i in 0..(TRACE_CAPACITY as u64 + 10) {
            if buf.push(ev(i)) {
                drops += 1;
            }
        }
        assert_eq!(drops, 10);
        let snap = buf.snapshot();
        assert_eq!(snap.len(), TRACE_CAPACITY);
        assert_eq!(snap.first().expect("non-empty").id, 10);
    }

    #[test]
    fn ids_are_unique_and_never_none() {
        let buf = TraceBuffer::new();
        let a = buf.fresh_id();
        let b = buf.fresh_id();
        assert_ne!(a, b);
        assert_ne!(a, SpanId::NONE);
        assert_ne!(b.raw(), 0);
    }
}
