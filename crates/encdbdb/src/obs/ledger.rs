//! The ECALL leakage ledger: one record per enclave transition.
//!
//! Everything the untrusted server learns from the enclave crosses the
//! ECALL boundary, so the ledger *is* the observable leakage surface:
//! per call it records the call kind, payload bytes in/out, the number
//! of distinct values decrypted inside the enclave, and the untrusted
//! memory traffic the enclave generated (loads and bytes, from
//! `enclave::EcallCounters`). Security tests replay a fixed query set
//! per ED kind and assert these observations against the bounds in
//! DESIGN.md §2/§10/§11 — the leakage tables as checked invariants
//! rather than prose.
//!
//! Counter deltas are captured while the caller still holds the enclave
//! mutex, so a record's loads/bytes are exactly the traffic of its own
//! call even when other threads share the enclave.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Bound on retained per-call records; kind totals are unbounded
/// atomics, so evicting old records never loses aggregate counts.
const LEDGER_CAPACITY: usize = 65_536;

/// The kind of an enclave transition, one per `DictCall` wrapper on
/// `encdict::DictEnclave`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EcallKind {
    /// Dictionary range/point search (main or delta dictionary).
    Search,
    /// Re-encryption of one inserted value into a delta entry.
    Reencrypt,
    /// Batched aggregate finalization (decrypt each distinct group/agg
    /// value once).
    Aggregate,
    /// Join bridge construction (ValueID↔ValueID match table).
    JoinBridge,
    /// Compaction merge (rebuild one column's main dictionary).
    Merge,
    /// A cross-session batched transition: several sessions' read calls
    /// coalesced into one enclave entry by the ECALL scheduler. The
    /// record's `batch_size` says how many sub-calls rode along; its
    /// payload totals are the union (sum) of the coalesced requests.
    Batch,
}

impl EcallKind {
    /// Every kind, in declaration (= report) order.
    pub const ALL: [EcallKind; 6] = [
        EcallKind::Search,
        EcallKind::Reencrypt,
        EcallKind::Aggregate,
        EcallKind::JoinBridge,
        EcallKind::Merge,
        EcallKind::Batch,
    ];

    /// Stable lowercase name used in JSON exports.
    pub fn name(self) -> &'static str {
        match self {
            EcallKind::Search => "search",
            EcallKind::Reencrypt => "reencrypt",
            EcallKind::Aggregate => "aggregate",
            EcallKind::JoinBridge => "join_bridge",
            EcallKind::Merge => "merge",
            EcallKind::Batch => "batch",
        }
    }

    /// The trace-span name emitted for this kind (`cat: "ecall"`).
    pub(crate) fn span_name(self) -> &'static str {
        match self {
            EcallKind::Search => "ecall.search",
            EcallKind::Reencrypt => "ecall.reencrypt",
            EcallKind::Aggregate => "ecall.aggregate",
            EcallKind::JoinBridge => "ecall.join_bridge",
            EcallKind::Merge => "ecall.merge",
            EcallKind::Batch => "ecall.batch",
        }
    }

    fn index(self) -> usize {
        self as usize
    }
}

/// One recorded enclave transition. Payload accounting per kind is
/// documented in DESIGN.md §13.3.
#[derive(Debug, Clone, Copy)]
pub struct EcallRecord {
    /// Monotone sequence number (order of completion).
    pub seq: u64,
    /// Which enclave entry point was called.
    pub kind: EcallKind,
    /// Request payload bytes crossing into the enclave.
    pub bytes_in: u64,
    /// Reply payload bytes crossing back out.
    pub bytes_out: u64,
    /// Distinct ciphertext values decrypted inside the enclave during
    /// this call.
    pub values_decrypted: u64,
    /// Untrusted-memory load operations issued by the enclave.
    pub untrusted_loads: u64,
    /// Untrusted-memory bytes read by the enclave.
    pub untrusted_bytes: u64,
    /// Values served from the in-enclave decrypted-value cache during
    /// this call (each hit saved two untrusted loads and one decrypt).
    pub cache_hits: u64,
    /// Wall-clock duration of the call, in nanoseconds.
    pub dur_ns: u64,
    /// Coalesced sub-calls executed in this transition: 1 for a native
    /// call, ≥ 2 for an [`EcallKind::Batch`] record.
    pub batch_size: u64,
}

#[derive(Debug, Default)]
struct KindCell {
    calls: AtomicU64,
    bytes_in: AtomicU64,
    bytes_out: AtomicU64,
    values_decrypted: AtomicU64,
    untrusted_loads: AtomicU64,
    untrusted_bytes: AtomicU64,
    cache_hits: AtomicU64,
}

/// Aggregate totals for one [`EcallKind`], as reported by
/// [`LedgerReport`]. All fields are monotone.
#[derive(Debug, Clone, Copy)]
pub struct KindTotals {
    /// The kind these totals cover.
    pub kind: EcallKind,
    /// Number of calls of this kind.
    pub calls: u64,
    /// Total request payload bytes.
    pub bytes_in: u64,
    /// Total reply payload bytes.
    pub bytes_out: u64,
    /// Total distinct values decrypted.
    pub values_decrypted: u64,
    /// Total untrusted-memory loads.
    pub untrusted_loads: u64,
    /// Total untrusted-memory bytes read.
    pub untrusted_bytes: u64,
    /// Total in-enclave decrypted-value cache hits.
    pub cache_hits: u64,
}

/// The ledger itself: per-kind atomic totals plus a bounded ring of
/// recent [`EcallRecord`]s.
#[derive(Debug)]
pub(crate) struct Ledger {
    seq: AtomicU64,
    kinds: [KindCell; 6],
    records: Mutex<VecDeque<EcallRecord>>,
}

impl Ledger {
    pub(crate) fn new() -> Self {
        Ledger {
            seq: AtomicU64::new(0),
            kinds: Default::default(),
            records: Mutex::new(VecDeque::with_capacity(128)),
        }
    }

    /// Appends one record, assigning its sequence number.
    pub(crate) fn append(&self, mut record: EcallRecord) -> EcallRecord {
        record.seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let cell = &self.kinds[record.kind.index()];
        cell.calls.fetch_add(1, Ordering::Relaxed);
        cell.bytes_in.fetch_add(record.bytes_in, Ordering::Relaxed);
        cell.bytes_out
            .fetch_add(record.bytes_out, Ordering::Relaxed);
        cell.values_decrypted
            .fetch_add(record.values_decrypted, Ordering::Relaxed);
        cell.untrusted_loads
            .fetch_add(record.untrusted_loads, Ordering::Relaxed);
        cell.untrusted_bytes
            .fetch_add(record.untrusted_bytes, Ordering::Relaxed);
        cell.cache_hits
            .fetch_add(record.cache_hits, Ordering::Relaxed);
        let mut records = self.records.lock().unwrap_or_else(|e| e.into_inner());
        if records.len() >= LEDGER_CAPACITY {
            records.pop_front();
        }
        records.push_back(record);
        record
    }

    pub(crate) fn report(&self) -> LedgerReport {
        LedgerReport {
            kinds: EcallKind::ALL
                .iter()
                .map(|&kind| {
                    let c = &self.kinds[kind.index()];
                    KindTotals {
                        kind,
                        calls: c.calls.load(Ordering::Relaxed),
                        bytes_in: c.bytes_in.load(Ordering::Relaxed),
                        bytes_out: c.bytes_out.load(Ordering::Relaxed),
                        values_decrypted: c.values_decrypted.load(Ordering::Relaxed),
                        untrusted_loads: c.untrusted_loads.load(Ordering::Relaxed),
                        untrusted_bytes: c.untrusted_bytes.load(Ordering::Relaxed),
                        cache_hits: c.cache_hits.load(Ordering::Relaxed),
                    }
                })
                .collect(),
        }
    }

    pub(crate) fn records(&self) -> Vec<EcallRecord> {
        let records = self.records.lock().unwrap_or_else(|e| e.into_inner());
        records.iter().copied().collect()
    }
}

/// A point-in-time snapshot of the ledger's per-kind totals. Totals are
/// monotone, so differential tests take a report before and after a
/// query set and subtract with [`LedgerReport::since`].
#[derive(Debug, Clone)]
pub struct LedgerReport {
    /// Per-kind totals in [`EcallKind::ALL`] order.
    pub kinds: Vec<KindTotals>,
}

impl LedgerReport {
    /// The totals for one kind.
    pub fn kind(&self, kind: EcallKind) -> KindTotals {
        self.kinds[kind.index()]
    }

    /// Total enclave transitions across all kinds.
    pub fn total_calls(&self) -> u64 {
        self.kinds.iter().map(|k| k.calls).sum()
    }

    /// The per-kind difference `self - earlier`, for differential
    /// leakage assertions over a bounded workload.
    pub fn since(&self, earlier: &LedgerReport) -> LedgerReport {
        LedgerReport {
            kinds: self
                .kinds
                .iter()
                .zip(&earlier.kinds)
                .map(|(now, then)| {
                    debug_assert_eq!(now.kind, then.kind);
                    KindTotals {
                        kind: now.kind,
                        calls: now.calls - then.calls,
                        bytes_in: now.bytes_in - then.bytes_in,
                        bytes_out: now.bytes_out - then.bytes_out,
                        values_decrypted: now.values_decrypted - then.values_decrypted,
                        untrusted_loads: now.untrusted_loads - then.untrusted_loads,
                        untrusted_bytes: now.untrusted_bytes - then.untrusted_bytes,
                        cache_hits: now.cache_hits - then.cache_hits,
                    }
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(kind: EcallKind, vd: u64) -> EcallRecord {
        EcallRecord {
            seq: 0,
            kind,
            bytes_in: 10,
            bytes_out: 20,
            values_decrypted: vd,
            untrusted_loads: 4,
            untrusted_bytes: 64,
            cache_hits: 0,
            dur_ns: 100,
            batch_size: 1,
        }
    }

    #[test]
    fn totals_accumulate_per_kind_and_diff() {
        let ledger = Ledger::new();
        ledger.append(rec(EcallKind::Search, 3));
        let before = ledger.report();
        ledger.append(rec(EcallKind::Search, 5));
        ledger.append(rec(EcallKind::Merge, 7));
        let delta = ledger.report().since(&before);
        assert_eq!(delta.kind(EcallKind::Search).calls, 1);
        assert_eq!(delta.kind(EcallKind::Search).values_decrypted, 5);
        assert_eq!(delta.kind(EcallKind::Merge).calls, 1);
        assert_eq!(delta.kind(EcallKind::Aggregate).calls, 0);
        assert_eq!(delta.total_calls(), 2);
    }

    #[test]
    fn records_are_sequenced_in_completion_order() {
        let ledger = Ledger::new();
        ledger.append(rec(EcallKind::Search, 1));
        ledger.append(rec(EcallKind::Reencrypt, 1));
        let records = ledger.records();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].seq, 0);
        assert_eq!(records[1].seq, 1);
        assert_eq!(records[1].kind, EcallKind::Reencrypt);
    }
}
