//! End-to-end observability: a lock-free metrics registry, hierarchical
//! trace spans, and an ECALL leakage ledger, shared by every clone of a
//! server handle.
//!
//! One [`Obs`] instance lives on each [`crate::server::DbaasServer`]
//! (and is therefore shared by all its clones, reader sessions, the
//! background compactor, and attached durable storage). It bundles
//! three sinks:
//!
//! * [`registry`] — monotone atomic counters plus log₂-bucketed
//!   nanosecond histograms, snapshotted as a [`MetricsReport`];
//! * [`trace`] — per-query and per-background-op spans in a bounded
//!   ring, exportable as Chrome trace JSON (`Session::export_trace`);
//! * [`ledger`] — one record per enclave transition, the observable
//!   leakage surface checked by `tests/security.rs`.
//!
//! Every ECALL is recorded through `Obs::ecall`, which appends the
//! ledger record, bumps the registry, **and** emits the matching
//! `"ecall.*"` trace span in one call — so a trace's ECALL span count
//! always equals the ledger's call count over the same interval.
//!
//! See DESIGN.md §13 for the span taxonomy, ledger field semantics and
//! the leakage-audit methodology.

pub mod export;
pub mod ledger;
pub mod registry;
pub mod trace;

pub use ledger::{EcallKind, EcallRecord, KindTotals, LedgerReport};
pub use registry::{Counter, Hist, HistogramSummary, MetricsReport};
pub use trace::{SpanId, TraceEvent};

use std::sync::Arc;
use std::time::Instant;

/// Cheap-clonable handle to one observability domain (registry +
/// trace ring + ledger). All methods are safe to call from any thread.
#[derive(Debug, Clone)]
pub struct Obs {
    inner: Arc<ObsInner>,
}

#[derive(Debug)]
struct ObsInner {
    /// Zero point of every `start_ns` timestamp in traces.
    epoch: Instant,
    registry: registry::MetricsRegistry,
    trace: trace::TraceBuffer,
    ledger: ledger::Ledger,
}

impl Default for Obs {
    fn default() -> Self {
        Obs::new()
    }
}

impl Obs {
    /// Creates an empty observability domain; its trace epoch is now.
    pub fn new() -> Self {
        Obs {
            inner: Arc::new(ObsInner {
                epoch: Instant::now(),
                registry: registry::MetricsRegistry::new(),
                trace: trace::TraceBuffer::new(),
                ledger: ledger::Ledger::new(),
            }),
        }
    }

    /// Nanoseconds since this domain's epoch (the `start_ns` clock).
    pub(crate) fn now_ns(&self) -> u64 {
        self.inner.epoch.elapsed().as_nanos() as u64
    }

    /// Adds `n` to a registry counter.
    pub(crate) fn add(&self, key: Counter, n: u64) {
        self.inner.registry.add(key, n);
    }

    /// Records one nanosecond sample into a registry histogram.
    pub(crate) fn record(&self, key: Hist, ns: u64) {
        self.inner.registry.record(key, ns);
    }

    /// Opens a span; it is recorded into the trace ring when the guard
    /// is dropped (or [`SpanGuard::finish`]ed). Pass
    /// [`SpanId::NONE`] for a root span.
    pub(crate) fn span(&self, name: &'static str, cat: &'static str, parent: SpanId) -> SpanGuard {
        self.span_arg(name, cat, parent, 0)
    }

    /// [`Obs::span`] with a numeric argument (partition id, row count …).
    pub(crate) fn span_arg(
        &self,
        name: &'static str,
        cat: &'static str,
        parent: SpanId,
        arg: u64,
    ) -> SpanGuard {
        SpanGuard {
            obs: self.clone(),
            id: self.inner.trace.fresh_id(),
            parent,
            name,
            cat,
            arg,
            start_ns: self.now_ns(),
            start: Instant::now(),
            done: false,
        }
    }

    fn push_event(&self, ev: TraceEvent) {
        if self.inner.trace.push(ev) {
            self.add(Counter::TraceEventsDroppedTotal, 1);
        }
    }

    /// Records one completed enclave transition: appends the ledger
    /// record, bumps the ECALL registry counters and histogram, and
    /// emits the matching `"ecall.*"` trace span (so trace span counts
    /// and ledger call counts always agree).
    pub(crate) fn ecall(
        &self,
        kind: EcallKind,
        io: EcallIo,
        start_ns: u64,
        dur_ns: u64,
        parent: SpanId,
    ) {
        self.ecall_batched(kind, io, start_ns, dur_ns, parent, 1);
    }

    /// [`Obs::ecall`] for a transition that coalesced `batch_size`
    /// sub-calls (the cross-session ECALL scheduler). Still ONE ledger
    /// record, ONE `ecalls_total` increment and ONE trace span — the
    /// whole point is that the transition count stays 1 — but the record
    /// carries the batch size and the batch counters/occupancy histogram
    /// are bumped so batching stays auditable.
    pub(crate) fn ecall_batched(
        &self,
        kind: EcallKind,
        io: EcallIo,
        start_ns: u64,
        dur_ns: u64,
        parent: SpanId,
        batch_size: u64,
    ) {
        self.inner.ledger.append(EcallRecord {
            seq: 0,
            kind,
            bytes_in: io.bytes_in,
            bytes_out: io.bytes_out,
            values_decrypted: io.values_decrypted,
            untrusted_loads: io.untrusted_loads,
            untrusted_bytes: io.untrusted_bytes,
            cache_hits: io.cache_hits,
            dur_ns,
            batch_size,
        });
        if batch_size > 1 {
            self.add(Counter::EcallBatchesTotal, 1);
            self.add(Counter::BatchedCallsTotal, batch_size);
            self.record(Hist::BatchOccupancy, batch_size);
        }
        self.add(Counter::EcallsTotal, 1);
        self.add(Counter::ValuesDecryptedTotal, io.values_decrypted);
        self.add(Counter::UntrustedLoadsTotal, io.untrusted_loads);
        self.add(Counter::UntrustedBytesTotal, io.untrusted_bytes);
        self.add(Counter::ValueCacheHitsTotal, io.cache_hits);
        self.add(Counter::ValueCacheMissesTotal, io.cache_misses);
        self.record(Hist::EcallNs, dur_ns);
        self.push_event(TraceEvent {
            id: self.inner.trace.fresh_id().raw(),
            parent: parent.raw(),
            name: kind.span_name(),
            cat: "ecall",
            start_ns,
            dur_ns,
            tid: trace::current_tid(),
            arg: io.values_decrypted,
        });
    }

    /// Snapshots every counter and histogram.
    pub fn metrics_report(&self) -> MetricsReport {
        self.inner.registry.report()
    }

    /// Snapshots the ledger's per-kind totals.
    pub fn ledger_report(&self) -> LedgerReport {
        self.inner.ledger.report()
    }

    /// The retained per-call ledger records, oldest first (bounded; see
    /// [`ledger`] docs).
    pub fn ledger_records(&self) -> Vec<EcallRecord> {
        self.inner.ledger.records()
    }

    /// The completed spans currently in the trace ring, oldest first.
    pub fn trace_events(&self) -> Vec<TraceEvent> {
        self.inner.trace.snapshot()
    }

    /// Renders the trace ring as Chrome-trace-format JSON (load in
    /// `chrome://tracing` or Perfetto).
    pub fn export_trace(&self) -> String {
        export::chrome_trace_json(&self.trace_events())
    }
}

/// Per-call payload/traffic observations handed to [`Obs::ecall`].
/// Field semantics per kind are documented in DESIGN.md §13.3.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct EcallIo {
    pub(crate) bytes_in: u64,
    pub(crate) bytes_out: u64,
    pub(crate) values_decrypted: u64,
    pub(crate) untrusted_loads: u64,
    pub(crate) untrusted_bytes: u64,
    pub(crate) cache_hits: u64,
    pub(crate) cache_misses: u64,
}

/// An open span. Dropping (or [`SpanGuard::finish`]ing) the guard
/// records the completed interval into the trace ring; children created
/// with this guard's [`SpanGuard::id`] as parent therefore always close
/// before it does.
#[derive(Debug)]
pub struct SpanGuard {
    obs: Obs,
    id: SpanId,
    parent: SpanId,
    name: &'static str,
    cat: &'static str,
    arg: u64,
    start_ns: u64,
    start: Instant,
    done: bool,
}

impl SpanGuard {
    /// This span's id, for parenting child spans.
    pub fn id(&self) -> SpanId {
        self.id
    }

    /// Sets the span's numeric argument (recorded at close).
    pub fn set_arg(&mut self, arg: u64) {
        self.arg = arg;
    }

    /// Closes the span now (equivalent to dropping it).
    pub fn finish(self) {}
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.done {
            return;
        }
        self.done = true;
        let ev = TraceEvent {
            id: self.id.raw(),
            parent: self.parent.raw(),
            name: self.name,
            cat: self.cat,
            start_ns: self.start_ns,
            dur_ns: self.start.elapsed().as_nanos() as u64,
            tid: trace::current_tid(),
            arg: self.arg,
        };
        self.obs.push_event(ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_close_child_first() {
        let obs = Obs::new();
        let root = obs.span("query", "query", SpanId::NONE);
        let child = obs.span_arg("partition", "query", root.id(), 3);
        let root_id = root.id().raw();
        let child_id = child.id().raw();
        child.finish();
        root.finish();
        let events = obs.trace_events();
        assert_eq!(events.len(), 2);
        // Child closes first, so it is recorded first.
        assert_eq!(events[0].id, child_id);
        assert_eq!(events[0].parent, root_id);
        assert_eq!(events[0].arg, 3);
        assert_eq!(events[1].parent, 0);
        // The child's interval lies within the parent's.
        assert!(events[0].start_ns >= events[1].start_ns);
        assert!(
            events[0].start_ns + events[0].dur_ns <= events[1].start_ns + events[1].dur_ns,
            "child must end before its parent"
        );
    }

    #[test]
    fn ecall_keeps_trace_and_ledger_in_lockstep() {
        let obs = Obs::new();
        for i in 0..5 {
            obs.ecall(
                EcallKind::Search,
                EcallIo {
                    bytes_in: 64,
                    bytes_out: 16,
                    values_decrypted: i,
                    untrusted_loads: 2 * i,
                    untrusted_bytes: 128,
                    cache_hits: i,
                    cache_misses: 1,
                },
                obs.now_ns(),
                10,
                SpanId::NONE,
            );
        }
        let ledger = obs.ledger_report();
        assert_eq!(ledger.kind(EcallKind::Search).calls, 5);
        assert_eq!(ledger.kind(EcallKind::Search).values_decrypted, 10);
        assert_eq!(ledger.kind(EcallKind::Search).cache_hits, 10);
        let ecall_spans = obs
            .trace_events()
            .iter()
            .filter(|e| e.cat == "ecall")
            .count() as u64;
        assert_eq!(ecall_spans, ledger.total_calls());
        let report = obs.metrics_report();
        assert_eq!(report.counter("ecalls_total"), 5);
        assert_eq!(report.histogram("ecall_ns").expect("hist").count, 5);
        assert_eq!(report.counter("value_cache_hits_total"), 10);
        assert_eq!(report.counter("value_cache_misses_total"), 5);
    }

    #[test]
    fn export_trace_is_wellformed_json_shape() {
        let obs = Obs::new();
        obs.span("query", "query", SpanId::NONE).finish();
        let json = obs.export_trace();
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"name\":\"query\""));
    }
}
