//! Lock-free metrics registry: a fixed set of atomic counters plus
//! log₂-bucketed nanosecond histograms, cheap enough for the query hot
//! path (one relaxed `fetch_add` per update) and snapshotted on demand
//! as a [`MetricsReport`].
//!
//! The key space is closed: every counter and histogram is an enum
//! variant declared here, so adding a metric is a one-line change and
//! the report layout is stable across runs (declaration order).

use std::sync::atomic::{AtomicU64, Ordering};

macro_rules! metric_keys {
    ($(#[$em:meta])* $enum_name:ident, $all:ident, $names:ident; $($variant:ident => $name:literal,)+) => {
        $(#[$em])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
        pub enum $enum_name {
            $(#[doc = concat!("`", $name, "`")] $variant,)+
        }

        /// Every key, in declaration (= report) order.
        pub const $all: &[$enum_name] = &[$($enum_name::$variant,)+];
        const $names: &[&str] = &[$($name,)+];

        impl $enum_name {
            /// The stable string name used in reports and JSON exports.
            pub fn name(self) -> &'static str {
                $names[self as usize]
            }
        }
    };
}

metric_keys! {
    /// Keys of the monotone counters kept by the registry.
    Counter, COUNTERS, COUNTER_NAMES;
    QueriesTotal => "queries_total",
    SelectsTotal => "selects_total",
    AggregatesTotal => "aggregates_total",
    JoinsTotal => "joins_total",
    InsertsTotal => "inserts_total",
    DeletesTotal => "deletes_total",
    RowsReturnedTotal => "rows_returned_total",
    RowsInsertedTotal => "rows_inserted_total",
    RowsDeletedTotal => "rows_deleted_total",
    EcallsTotal => "ecalls_total",
    ValuesDecryptedTotal => "values_decrypted_total",
    UntrustedLoadsTotal => "untrusted_loads_total",
    UntrustedBytesTotal => "untrusted_bytes_total",
    PartitionsScannedTotal => "partitions_scanned_total",
    PartitionsPrunedTotal => "partitions_pruned_total",
    CompactionsCompletedTotal => "compactions_completed_total",
    CompactionsAbortedTotal => "compactions_aborted_total",
    CompactionErrorsTotal => "compaction_errors_total",
    WalRecordsTotal => "wal_records_total",
    WalFsyncsTotal => "wal_fsyncs_total",
    SnapshotsPersistedTotal => "snapshots_persisted_total",
    RecoveriesTotal => "recoveries_total",
    TraceEventsDroppedTotal => "trace_events_dropped_total",
    ValueCacheHitsTotal => "value_cache_hits_total",
    ValueCacheMissesTotal => "value_cache_misses_total",
    EcallBatchesTotal => "ecall_batches_total",
    BatchedCallsTotal => "batched_calls_total",
    NetConnectionsAcceptedTotal => "net_connections_accepted_total",
    NetConnectionsShedTotal => "net_connections_shed_total",
    NetAuthFailuresTotal => "net_auth_failures_total",
    NetRequestsTotal => "net_requests_total",
    NetBusyRepliesTotal => "net_busy_replies_total",
    NetBytesInTotal => "net_bytes_in_total",
    NetBytesOutTotal => "net_bytes_out_total",
}

metric_keys! {
    /// Keys of the nanosecond histograms kept by the registry.
    Hist, HISTS, HIST_NAMES;
    QueryNs => "query_ns",
    DictSearchNs => "dict_search_ns",
    AvScanNs => "av_scan_ns",
    AggregateNs => "aggregate_ns",
    RenderNs => "render_ns",
    BridgeNs => "bridge_ns",
    EcallNs => "ecall_ns",
    CompactionMergeNs => "compaction_merge_ns",
    WalAppendNs => "wal_append_ns",
    WalFsyncNs => "wal_fsync_ns",
    SnapshotPersistNs => "snapshot_persist_ns",
    RecoveryNs => "recovery_ns",
    EcallWaitNs => "ecall_wait_ns",
    BatchOccupancy => "batch_occupancy",
    NetRecvNs => "net_recv_ns",
    NetSendNs => "net_send_ns",
    NetQueueDepth => "net_queue_depth",
}

/// Number of log₂ buckets: bucket `i` holds samples whose value `v`
/// satisfies `floor(log2(max(v, 1))) == i`, i.e. `2^i ≤ v < 2^(i+1)`
/// (bucket 0 also takes `v = 0`). 64 buckets cover the whole `u64` range.
const BUCKETS: usize = 64;

#[derive(Debug)]
struct HistCell {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl HistCell {
    fn new() -> Self {
        HistCell {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    fn record(&self, v: u64) {
        let bucket = (v | 1).ilog2() as usize;
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
    }

    fn summary(&self, key: Hist) -> HistogramSummary {
        // Counts are read bucket-by-bucket while writers may be active;
        // each load is atomic (never torn) and every bucket is monotone,
        // so the summary is a consistent *lower bound* snapshot.
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count: u64 = buckets.iter().sum();
        let quantile = |q_num: u64, q_den: u64| -> u64 {
            if count == 0 {
                return 0;
            }
            let rank = (count * q_num).div_ceil(q_den).max(1);
            let mut seen = 0u64;
            for (i, &c) in buckets.iter().enumerate() {
                seen += c;
                if seen >= rank {
                    return bucket_upper_bound(i);
                }
            }
            u64::MAX
        };
        let max_ns = buckets
            .iter()
            .rposition(|&c| c > 0)
            .map_or(0, bucket_upper_bound);
        HistogramSummary {
            name: key.name(),
            count,
            sum_ns: self.sum.load(Ordering::Relaxed),
            p50_ns: quantile(1, 2),
            p95_ns: quantile(19, 20),
            max_ns,
        }
    }
}

/// Inclusive upper bound of log₂ bucket `i` (`2^(i+1) - 1`), the value
/// quantiles resolve to — a histogram quantile is an upper bound on the
/// true sample quantile, never an underestimate.
fn bucket_upper_bound(i: usize) -> u64 {
    if i >= 63 {
        u64::MAX
    } else {
        (1u64 << (i + 1)) - 1
    }
}

/// The process-wide metric store. All methods are lock-free; see module
/// docs for the consistency model of snapshots.
#[derive(Debug)]
pub(crate) struct MetricsRegistry {
    counters: Vec<AtomicU64>,
    hists: Vec<HistCell>,
}

impl MetricsRegistry {
    pub(crate) fn new() -> Self {
        MetricsRegistry {
            counters: (0..COUNTERS.len()).map(|_| AtomicU64::new(0)).collect(),
            hists: (0..HISTS.len()).map(|_| HistCell::new()).collect(),
        }
    }

    pub(crate) fn add(&self, key: Counter, n: u64) {
        self.counters[key as usize].fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn get(&self, key: Counter) -> u64 {
        self.counters[key as usize].load(Ordering::Relaxed)
    }

    pub(crate) fn record(&self, key: Hist, ns: u64) {
        self.hists[key as usize].record(ns);
    }

    pub(crate) fn report(&self) -> MetricsReport {
        MetricsReport {
            counters: COUNTERS.iter().map(|&c| (c.name(), self.get(c))).collect(),
            histograms: HISTS
                .iter()
                .map(|&h| self.hists[h as usize].summary(h))
                .collect(),
        }
    }
}

/// A point-in-time snapshot of every registry counter and histogram.
///
/// Produced by [`crate::server::DbaasServer::obs`] /
/// `Session::metrics_report`. Counters are monotone, so two reports can
/// be compared field-by-field to measure an interval.
#[derive(Debug, Clone)]
pub struct MetricsReport {
    /// `(name, value)` for every counter, in declaration order.
    pub counters: Vec<(&'static str, u64)>,
    /// One summary per histogram, in declaration order.
    pub histograms: Vec<HistogramSummary>,
}

impl MetricsReport {
    /// The value of the counter named `name` (0 if unknown — counter
    /// names are stable, so a typo reads as zero rather than panicking
    /// inside monitoring code).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map_or(0, |&(_, v)| v)
    }

    /// The summary of the histogram named `name`, if it exists.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSummary> {
        self.histograms.iter().find(|h| h.name == name)
    }
}

/// Summary of one log₂-bucketed nanosecond histogram. Quantiles are
/// bucket upper bounds: `p95_ns` is at most 2× the true p95 sample, and
/// never below it.
#[derive(Debug, Clone, Copy)]
pub struct HistogramSummary {
    /// Stable histogram name (see [`Hist`]).
    pub name: &'static str,
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of all recorded samples, in nanoseconds.
    pub sum_ns: u64,
    /// Upper bound on the median sample.
    pub p50_ns: u64,
    /// Upper bound on the 95th-percentile sample.
    pub p95_ns: u64,
    /// Upper bound on the largest sample.
    pub max_ns: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_report_by_name() {
        let r = MetricsRegistry::new();
        r.add(Counter::QueriesTotal, 2);
        r.add(Counter::QueriesTotal, 3);
        r.add(Counter::EcallsTotal, 7);
        let rep = r.report();
        assert_eq!(rep.counter("queries_total"), 5);
        assert_eq!(rep.counter("ecalls_total"), 7);
        assert_eq!(rep.counter("no_such_counter"), 0);
        assert_eq!(rep.counters.len(), COUNTERS.len());
    }

    #[test]
    fn histogram_quantiles_bound_samples() {
        let r = MetricsRegistry::new();
        // 19 fast samples (~1µs) and one slow outlier (~1ms).
        for _ in 0..19 {
            r.record(Hist::QueryNs, 1_000);
        }
        r.record(Hist::QueryNs, 1_000_000);
        let h = *r.report().histogram("query_ns").expect("histogram");
        assert_eq!(h.count, 20);
        assert_eq!(h.sum_ns, 19_000 + 1_000_000);
        // p50 must bound 1000 from above without reaching the outlier.
        assert!(h.p50_ns >= 1_000 && h.p50_ns < 1_000_000, "{h:?}");
        // p95 at rank 19 of 20 is still in the fast bucket; max covers
        // the outlier.
        assert!(h.p95_ns < 1_000_000, "{h:?}");
        assert!(h.max_ns >= 1_000_000, "{h:?}");
    }

    #[test]
    fn histogram_handles_zero_and_extremes() {
        let r = MetricsRegistry::new();
        r.record(Hist::EcallNs, 0);
        r.record(Hist::EcallNs, u64::MAX);
        let h = *r.report().histogram("ecall_ns").expect("histogram");
        assert_eq!(h.count, 2);
        assert_eq!(h.max_ns, u64::MAX);
        assert!(h.p50_ns >= 1);
    }

    #[test]
    fn counter_and_hist_names_are_unique() {
        let mut names: Vec<&str> = COUNTERS.iter().map(|c| c.name()).collect();
        names.extend(HISTS.iter().map(|h| h.name()));
        let total = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), total, "duplicate metric name");
    }
}
