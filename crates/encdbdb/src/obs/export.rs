//! JSON exporters: Chrome-trace-format span dumps plus plain-JSON
//! metric and ledger reports. Hand-rolled emitters (the workspace is
//! offline; no serde) — every string that reaches the output is either
//! a `&'static str` identifier from this crate or passed through
//! `escape_json`.

use super::ledger::LedgerReport;
use super::registry::MetricsReport;
use super::trace::TraceEvent;

/// Escapes a string for inclusion in a JSON string literal.
pub(crate) fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders completed spans as a Chrome trace (the `chrome://tracing` /
/// Perfetto "JSON object" form): one complete event (`ph: "X"`) per
/// span, timestamps and durations in microseconds as the format
/// requires, with span ids, parentage, and the numeric argument under
/// `args`.
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    let mut out = String::with_capacity(events.len() * 160 + 64);
    out.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
    for (i, ev) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        // Integer-microsecond timestamps would collapse sub-µs spans to
        // zero width; the format allows fractional ts/dur.
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\
             \"ts\":{}.{:03},\"dur\":{}.{:03},\
             \"args\":{{\"id\":{},\"parent\":{},\"arg\":{}}}}}",
            escape_json(ev.name),
            escape_json(ev.cat),
            ev.tid,
            ev.start_ns / 1_000,
            ev.start_ns % 1_000,
            ev.dur_ns / 1_000,
            ev.dur_ns % 1_000,
            ev.id,
            ev.parent,
            ev.arg,
        ));
    }
    out.push_str("]}");
    out
}

impl MetricsReport {
    /// Renders the report as a JSON object:
    /// `{"counters": {...}, "histograms": {name: {count, sum_ns, ...}}}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{name}\":{value}"));
        }
        out.push_str("},\"histograms\":{");
        for (i, h) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\"{}\":{{\"count\":{},\"sum_ns\":{},\"p50_ns\":{},\"p95_ns\":{},\"max_ns\":{}}}",
                h.name, h.count, h.sum_ns, h.p50_ns, h.p95_ns, h.max_ns
            ));
        }
        out.push_str("}}");
        out
    }
}

impl LedgerReport {
    /// Renders the per-kind totals as a JSON object keyed by kind name.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (i, k) in self.kinds.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\"{}\":{{\"calls\":{},\"bytes_in\":{},\"bytes_out\":{},\
                 \"values_decrypted\":{},\"untrusted_loads\":{},\"untrusted_bytes\":{}}}",
                k.kind.name(),
                k.calls,
                k.bytes_in,
                k.bytes_out,
                k.values_decrypted,
                k.untrusted_loads,
                k.untrusted_bytes
            ));
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_handles_quotes_and_controls() {
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
    }

    #[test]
    fn chrome_trace_shape_is_wellformed() {
        let events = [TraceEvent {
            id: 3,
            parent: 1,
            name: "ecall.search",
            cat: "ecall",
            start_ns: 1_500,
            dur_ns: 250,
            tid: 7,
            arg: 2,
        }];
        let json = chrome_trace_json(&events);
        assert!(json.starts_with("{\"displayTimeUnit\":\"ns\",\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ts\":1.500"));
        assert!(json.contains("\"dur\":0.250"));
        assert!(json.contains("\"parent\":1"));
        assert!(json.ends_with("]}"));
    }

    #[test]
    fn empty_trace_is_valid() {
        assert_eq!(
            chrome_trace_json(&[]),
            "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[]}"
        );
    }
}
