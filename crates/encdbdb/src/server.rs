//! The untrusted DBaaS server: storage plus the query evaluation engine
//! (paper Fig. 5, steps 6–13).
//!
//! The server holds encrypted dictionaries, plaintext attribute vectors and
//! delta stores, hosts the dictionary enclaves, and evaluates decomposed
//! queries: it passes the encrypted range filter to the enclave (step 8),
//! scans the attribute vector for the returned ValueIDs (step 11), applies
//! validity, and renders result columns by *undoing the split*:
//! `eC = (eD_j | j = AV_i ∧ i ∈ rid)` (step 12). The server never sees a
//! plaintext of an encrypted column — values enter and leave as PAE
//! ciphertexts.
//!
//! # Concurrency model (DESIGN.md §9)
//!
//! [`DbaasServer`] is a cheaply clonable *handle*: every clone shares the
//! same storage, so any number of reader sessions can execute queries
//! concurrently. Each table's main store is an immutable, epoch-tagged
//! [`MainSnapshot`] published behind an `Arc`; queries acquire an owned
//! `TableSnapshot` (Arc clone of the main state plus a frozen copy of the
//! small delta) under a short mutex and then run entirely lock-free against
//! it. Writes append to the delta store under the same short mutex.
//!
//! Compaction (§4.3's protected merge) runs *off the query path*: a
//! dedicated merge enclave rebuilds the main store from a delta prefix
//! captured at a watermark, then atomically publishes the next epoch.
//! Readers that hold the old snapshot drain on it; new readers pick up the
//! rebuilt store. A [`CompactionPolicy`] triggers background merges by
//! delta row count or invalid-row fraction.

use crate::error::DbError;
use crate::schema::{DictChoice, TableSchema};
use colstore::delta::{DeltaStore, ValidityVector};
use colstore::dictionary::{AttributeVector, RecordId};
use encdict::avsearch::{self, Parallelism, SetSearchStrategy};
use encdict::dynamic::{EncryptedDeltaStore, MainSnapshot};
use encdict::enclave_ops::MergeRequest;
use encdict::plain::search_plain;
use encdict::{DictEnclave, EncryptedDictionary, EncryptedRange, PlainDictionary, RangeQuery};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, RwLock};
use std::thread::JoinHandle;
use std::time::Duration;

/// Locks a mutex, recovering the inner data if a panicking thread poisoned
/// it (a reader assertion failure must not cascade into every other
/// session).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// One value cell crossing the server boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CellValue {
    /// A PAE ciphertext (encrypted column).
    Encrypted(Vec<u8>),
    /// A plaintext value (PLAIN column).
    Plain(Vec<u8>),
}

/// A filter as seen by the server: the filtered column plus the range in
/// the form matching the column's protection.
#[derive(Debug, Clone)]
pub enum ServerFilter {
    /// Encrypted range for an encrypted column.
    Encrypted {
        /// Filtered column name.
        column: String,
        /// Encrypted range τ.
        range: EncryptedRange,
    },
    /// Plaintext range for a PLAIN column.
    Plain {
        /// Filtered column name.
        column: String,
        /// Plaintext range.
        range: RangeQuery,
    },
}

impl ServerFilter {
    fn column(&self) -> &str {
        match self {
            ServerFilter::Encrypted { column, .. } | ServerFilter::Plain { column, .. } => column,
        }
    }
}

/// A decomposed query as produced by the proxy.
#[derive(Debug, Clone)]
pub enum ServerQuery {
    /// Range select over one table with a conjunction of filters.
    Select {
        /// Source table.
        table: String,
        /// Projected columns; empty means all.
        columns: Vec<String>,
        /// Per-column filters (conjunction; empty selects everything).
        filters: Vec<ServerFilter>,
    },
    /// Grouped aggregation (the `exec` engine).
    Aggregate {
        /// Source table.
        table: String,
        /// The compiled aggregate plan.
        plan: crate::exec::plan::AggregatePlan,
        /// Per-column filters (conjunction; empty aggregates everything).
        filters: Vec<ServerFilter>,
    },
    /// Append rows (delta store).
    Insert {
        /// Target table.
        table: String,
        /// Rows of cells, one cell per column in schema order.
        rows: Vec<Vec<CellValue>>,
    },
    /// Invalidate matching rows.
    Delete {
        /// Target table.
        table: String,
        /// Per-column filters (conjunction; empty deletes everything).
        filters: Vec<ServerFilter>,
    },
}

/// The server's reply to a [`ServerQuery`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryOutcome {
    /// Result rows of a select or aggregate.
    Rows(SelectResponse),
    /// Number of rows inserted or deleted.
    Affected(usize),
}

/// The server's reply to a select.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SelectResponse {
    /// Projected column names.
    pub columns: Vec<String>,
    /// One entry per result row; cells in `columns` order.
    pub rows: Vec<Vec<CellValue>>,
}

/// Execution statistics for one query (latency breakdowns for the
/// Figure 8 harness, plus the `exec` engine's boundary accounting).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Nanoseconds spent in the enclave dictionary search.
    pub dict_search_ns: u64,
    /// Nanoseconds spent scanning the attribute vector (including the
    /// histogram scan of aggregate queries).
    pub av_search_ns: u64,
    /// Nanoseconds spent in the enclave aggregation ECALL (or the local
    /// aggregation for all-PLAIN queries).
    pub aggregate_ns: u64,
    /// Nanoseconds spent rendering the result columns.
    pub render_ns: u64,
    /// Number of result rows (groups for aggregate queries).
    pub result_rows: usize,
    /// Number of [`CHUNK_ROWS`](crate::exec::aggregate::CHUNK_ROWS)-row
    /// chunks scanned by the vectorized histogram executor.
    pub chunks_scanned: usize,
    /// Number of enclave ECALLs issued while evaluating the query.
    pub enclave_calls: usize,
    /// Number of dictionary values decrypted inside the enclave — bounded
    /// by the distinct touched ValueIDs, never by the row count.
    pub values_decrypted: usize,
    /// The merge generation (epoch) of the main-store snapshot the query
    /// executed against. Monotone per table: compactions only ever
    /// increment it.
    pub snapshot_epoch: u64,
}

/// When the compaction scheduler rebuilds a table's main store (§4.3's
/// "periodic merge", made threshold-driven).
///
/// Either condition triggers a background merge after an insert or delete.
/// The trade-off is classic LSM-style: a small `max_delta_rows` keeps the
/// linearly scanned ED9 delta short (fast reads) at the cost of frequent
/// rebuilds; `max_invalid_fraction` bounds the space and scan time wasted
/// on deleted rows.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompactionPolicy {
    /// Merge once the delta store holds at least this many rows.
    pub max_delta_rows: usize,
    /// Merge once this fraction of main-store rows is invalidated.
    pub max_invalid_fraction: f64,
}

impl Default for CompactionPolicy {
    fn default() -> Self {
        CompactionPolicy {
            max_delta_rows: 4096,
            max_invalid_fraction: 0.3,
        }
    }
}

impl CompactionPolicy {
    /// Whether the observed table state warrants a merge.
    pub fn triggered(&self, delta_rows: usize, main_rows: usize, main_valid: usize) -> bool {
        if delta_rows >= self.max_delta_rows.max(1) {
            return true;
        }
        if main_rows > 0 {
            let invalid = (main_rows - main_valid) as f64 / main_rows as f64;
            if invalid >= self.max_invalid_fraction {
                return true;
            }
        }
        false
    }
}

/// Observable compaction state of one table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompactionStats {
    /// Current merge generation of the published main store.
    pub epoch: u64,
    /// Completed merges (epoch publishes).
    pub merges_completed: u64,
    /// Merges discarded because a delete raced the rebuild.
    pub merges_aborted: u64,
    /// Merges that failed inside the enclave.
    pub merges_failed: u64,
    /// Delta rows folded into main stores so far.
    pub rows_compacted: u64,
    /// Rows currently waiting in the delta store.
    pub delta_rows: usize,
    /// Whether a background merge is running right now.
    pub merge_in_flight: bool,
    /// The error message of the most recent failed background merge.
    pub last_error: Option<String>,
}

/// Per-column immutable main store within one epoch.
#[derive(Debug, Clone)]
pub(crate) enum MainColumn {
    /// Encrypted dictionary + attribute vector (epoch-tagged).
    Encrypted(MainSnapshot),
    /// Plaintext dictionary + attribute vector.
    Plain {
        dict: Arc<PlainDictionary>,
        av: Arc<AttributeVector>,
    },
}

impl MainColumn {
    /// Whether the column is protected by an encrypted dictionary.
    pub(crate) fn is_encrypted(&self) -> bool {
        matches!(self, MainColumn::Encrypted(_))
    }

    /// The attribute-vector ValueIDs of the main store.
    pub(crate) fn av_slice(&self) -> &[u32] {
        match self {
            MainColumn::Encrypted(snap) => snap.av().as_slice(),
            MainColumn::Plain { av, .. } => av.as_slice(),
        }
    }

    /// The main dictionary length (= offset of the delta code space).
    pub(crate) fn main_len(&self) -> usize {
        match self {
            MainColumn::Encrypted(snap) => snap.dict().len(),
            MainColumn::Plain { dict, .. } => dict.len(),
        }
    }
}

/// The immutable main state of a table: one generation, swapped wholesale
/// when a compaction publishes.
#[derive(Debug)]
pub(crate) struct MainState {
    pub(crate) epoch: u64,
    pub(crate) columns: Vec<MainColumn>,
    pub(crate) rows: usize,
}

/// One column's delta store. `Clone` freezes it as a snapshot.
#[derive(Debug, Clone)]
pub(crate) enum ColumnDelta {
    Encrypted(EncryptedDeltaStore),
    Plain(DeltaStore),
}

impl ColumnDelta {
    fn prefix(&self, n: usize) -> ColumnDelta {
        match self {
            ColumnDelta::Encrypted(d) => ColumnDelta::Encrypted(d.prefix(n)),
            ColumnDelta::Plain(d) => ColumnDelta::Plain(d.prefix(n)),
        }
    }

    fn drain_prefix(&mut self, n: usize) {
        match self {
            ColumnDelta::Encrypted(d) => d.drain_prefix(n),
            ColumnDelta::Plain(d) => d.drain_prefix(n),
        }
    }
}

/// An owned, consistent view of one table: the Arc'd main generation plus
/// a frozen copy of the (small, threshold-bounded) delta side. Everything a
/// read query touches lives here, so queries never hold a lock while
/// searching, scanning or rendering.
#[derive(Debug)]
pub(crate) struct TableSnapshot {
    pub(crate) main: Arc<MainState>,
    pub(crate) main_validity: Arc<ValidityVector>,
    pub(crate) deltas: Vec<ColumnDelta>,
    pub(crate) delta_rows: usize,
    pub(crate) delta_validity: ValidityVector,
}

/// Mutable per-table state, guarded by a short-held mutex.
#[derive(Debug)]
struct TableState {
    main: Arc<MainState>,
    /// Copy-on-write: snapshots and merge jobs clone the `Arc`; deletes
    /// (the rare path) pay the copy via `Arc::make_mut`.
    main_validity: Arc<ValidityVector>,
    /// Invalidated main rows — keeps the compaction-policy check O(1)
    /// instead of a popcount scan per write.
    main_invalid: usize,
    deltas: Vec<ColumnDelta>,
    delta_rows: usize,
    delta_validity: ValidityVector,
    merge_in_flight: bool,
    /// Delta rows below this watermark are being folded by the in-flight
    /// merge.
    merge_watermark: usize,
    /// Set when a delete touched rows the in-flight merge already read;
    /// the publish is then aborted and retried.
    deletes_during_merge: bool,
}

#[derive(Debug)]
pub(crate) struct ServerTable {
    pub(crate) schema: TableSchema,
    state: Mutex<TableState>,
    worker: Mutex<Option<JoinHandle<()>>>,
    merges_completed: AtomicU64,
    merges_aborted: AtomicU64,
    merges_failed: AtomicU64,
    rows_compacted: AtomicU64,
    last_error: Mutex<Option<String>>,
}

impl ServerTable {
    /// Acquires a consistent read snapshot (one short lock).
    pub(crate) fn snapshot(&self) -> TableSnapshot {
        let state = lock(&self.state);
        TableSnapshot {
            main: Arc::clone(&state.main),
            main_validity: Arc::clone(&state.main_validity),
            deltas: state.deltas.clone(),
            delta_rows: state.delta_rows,
            delta_validity: state.delta_validity.clone(),
        }
    }
}

/// A deployed column as prepared by the data owner (step 3/4 of Fig. 5).
#[derive(Debug)]
pub enum DeployedColumn {
    /// Encrypted dictionary + attribute vector.
    Encrypted(EncryptedDictionary, AttributeVector),
    /// Plaintext dictionary + attribute vector.
    Plain(PlainDictionary, AttributeVector),
}

/// Shared, copy-on-read server configuration.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Config {
    pub(crate) parallelism: Parallelism,
    pub(crate) set_strategy: SetSearchStrategy,
    policy: Option<CompactionPolicy>,
    merge_throttle: Option<Duration>,
}

/// The outcome of one compaction attempt.
enum CompactionOutcome {
    /// A new epoch was published.
    Completed,
    /// Nothing to do: empty delta over a fully valid main store.
    Noop,
    /// A delete raced the rebuild; the result was discarded.
    Aborted,
    /// Another merge was already in flight.
    AlreadyRunning,
}

/// Everything a merge needs, captured at the watermark under one lock.
struct CompactionJob {
    epoch: u64,
    main: Arc<MainState>,
    main_validity: Arc<ValidityVector>,
    delta_prefixes: Vec<ColumnDelta>,
    delta_validity: ValidityVector,
    watermark: usize,
}

/// The DBaaS server — a cheaply clonable handle over shared state; see the
/// module docs for the concurrency model.
#[derive(Debug, Clone)]
pub struct DbaasServer {
    /// The enclave serving query-path ECALLs (search, re-encrypt,
    /// aggregate). Locked per ECALL.
    enclave: Arc<Mutex<DictEnclave>>,
    /// A second enclave instance (same measured code) dedicated to merges,
    /// so a long compaction ECALL never blocks the query path.
    merge_enclave: Arc<Mutex<DictEnclave>>,
    tables: Arc<RwLock<HashMap<String, Arc<ServerTable>>>>,
    config: Arc<Mutex<Config>>,
    last_stats: Arc<Mutex<QueryStats>>,
}

impl DbaasServer {
    /// Creates a server with fresh enclaves.
    pub fn new() -> Self {
        Self::with_enclaves(DictEnclave::new(), DictEnclave::new())
    }

    /// Creates a server around an existing query enclave (e.g.
    /// deterministic); the merge enclave is OS-seeded.
    pub fn with_enclave(enclave: DictEnclave) -> Self {
        Self::with_enclaves(enclave, DictEnclave::new())
    }

    /// Creates a server around explicit query and merge enclaves.
    pub fn with_enclaves(query: DictEnclave, merge: DictEnclave) -> Self {
        DbaasServer {
            enclave: Arc::new(Mutex::new(query)),
            merge_enclave: Arc::new(Mutex::new(merge)),
            tables: Arc::new(RwLock::new(HashMap::new())),
            config: Arc::new(Mutex::new(Config {
                parallelism: Parallelism::Serial,
                set_strategy: SetSearchStrategy::PaperLinear,
                // A bounded delta by default: snapshots copy the delta
                // side, so it must not grow without limit.
                policy: Some(CompactionPolicy::default()),
                merge_throttle: None,
            })),
            last_stats: Arc::new(Mutex::new(QueryStats::default())),
        }
    }

    /// Configures attribute-vector scan parallelism.
    pub fn set_parallelism(&self, parallelism: Parallelism) {
        lock(&self.config).parallelism = parallelism;
    }

    /// Configures the membership strategy for unsorted-kind results.
    pub fn set_set_strategy(&self, strategy: SetSearchStrategy) {
        lock(&self.config).set_strategy = strategy;
    }

    /// Installs (or removes) the threshold-driven compaction policy. The
    /// default is [`CompactionPolicy::default`] — read snapshots copy the
    /// delta side, so the delta must stay bounded. `None` disables
    /// automatic merges entirely (deterministic single-threaded
    /// deployments; the caller then owns keeping the delta small via
    /// [`DbaasServer::merge_table`]).
    pub fn set_compaction_policy(&self, policy: Option<CompactionPolicy>) {
        lock(&self.config).policy = policy;
    }

    /// Paces compaction: sleep this long after each column merge, bounding
    /// the rebuild's resource share (and, in tests, pinning a merge
    /// in-flight long enough to observe reader overlap).
    pub fn set_merge_throttle(&self, throttle: Option<Duration>) {
        lock(&self.config).merge_throttle = throttle;
    }

    /// Locks and returns the query enclave (attestation/provisioning and
    /// counter inspection pass-through).
    pub fn enclave(&self) -> MutexGuard<'_, DictEnclave> {
        lock(&self.enclave)
    }

    /// Locks and returns the merge enclave.
    pub fn merge_enclave(&self) -> MutexGuard<'_, DictEnclave> {
        lock(&self.merge_enclave)
    }

    /// Both enclave instances, for provisioning loops.
    pub(crate) fn enclave_handles(&self) -> [&Arc<Mutex<DictEnclave>>; 2] {
        [&self.enclave, &self.merge_enclave]
    }

    /// The query-path enclave handle (the `exec` engine's ECALL path).
    pub(crate) fn query_enclave_handle(&self) -> &Arc<Mutex<DictEnclave>> {
        &self.enclave
    }

    /// Installs `SK_DB` directly into both enclaves (trusted-setup
    /// variant, §4.2).
    pub fn provision_direct(&self, skdb: encdbdb_crypto::Key128) {
        self.enclave().provision_direct(skdb.clone());
        self.merge_enclave().provision_direct(skdb);
    }

    /// Latency breakdown of the most recent select on this handle's shared
    /// state. With concurrent readers, prefer per-query inspection through
    /// a single session at a time.
    pub fn last_stats(&self) -> QueryStats {
        *lock(&self.last_stats)
    }

    /// Deploys an encrypted table (Fig. 5 step 4).
    ///
    /// # Errors
    ///
    /// Returns [`DbError::TableExists`] on duplicates or
    /// [`DbError::ArityMismatch`] if columns don't match the schema.
    pub fn deploy_table(
        &self,
        schema: TableSchema,
        columns: Vec<DeployedColumn>,
    ) -> Result<(), DbError> {
        if columns.len() != schema.columns.len() {
            return Err(DbError::ArityMismatch {
                expected: schema.columns.len(),
                got: columns.len(),
            });
        }
        let mut rows = None;
        let mut main_columns = Vec::with_capacity(columns.len());
        let mut deltas = Vec::with_capacity(columns.len());
        for (spec, deployed) in schema.columns.iter().zip(columns) {
            let check_rows = |rows: &mut Option<usize>, got: usize| match *rows {
                None => {
                    *rows = Some(got);
                    Ok(())
                }
                Some(r) if r == got => Ok(()),
                Some(r) => Err(DbError::ArityMismatch { expected: r, got }),
            };
            match deployed {
                DeployedColumn::Encrypted(dict, av) => {
                    check_rows(&mut rows, av.len())?;
                    deltas.push(ColumnDelta::Encrypted(EncryptedDeltaStore::new(
                        schema.name.clone(),
                        spec.name.clone(),
                        spec.max_len,
                    )));
                    main_columns.push(MainColumn::Encrypted(MainSnapshot::new(0, dict, av)));
                }
                DeployedColumn::Plain(dict, av) => {
                    check_rows(&mut rows, av.len())?;
                    deltas.push(ColumnDelta::Plain(DeltaStore::new(spec.max_len)));
                    main_columns.push(MainColumn::Plain {
                        dict: Arc::new(dict),
                        av: Arc::new(av),
                    });
                }
            }
        }
        let main_rows = rows.unwrap_or(0);
        let table = ServerTable {
            schema: schema.clone(),
            state: Mutex::new(TableState {
                main: Arc::new(MainState {
                    epoch: 0,
                    columns: main_columns,
                    rows: main_rows,
                }),
                main_validity: Arc::new(ValidityVector::all_valid(main_rows)),
                main_invalid: 0,
                deltas,
                delta_rows: 0,
                delta_validity: ValidityVector::default(),
                merge_in_flight: false,
                merge_watermark: 0,
                deletes_during_merge: false,
            }),
            worker: Mutex::new(None),
            merges_completed: AtomicU64::new(0),
            merges_aborted: AtomicU64::new(0),
            merges_failed: AtomicU64::new(0),
            rows_compacted: AtomicU64::new(0),
            last_error: Mutex::new(None),
        };
        let mut tables = self.tables.write().unwrap_or_else(|e| e.into_inner());
        if tables.contains_key(&schema.name) {
            return Err(DbError::TableExists(schema.name));
        }
        tables.insert(schema.name, Arc::new(table));
        Ok(())
    }

    /// Registers an empty table (SQL `CREATE TABLE` path; all data arrives
    /// through inserts into the delta store).
    ///
    /// # Errors
    ///
    /// Returns [`DbError::TableExists`] on duplicates.
    pub fn create_table(&self, schema: TableSchema) -> Result<(), DbError> {
        let deployed = schema
            .columns
            .iter()
            .map(|spec| match spec.choice {
                DictChoice::Encrypted(kind) => {
                    let dict = empty_encrypted_dict(&schema.name, spec, kind);
                    DeployedColumn::Encrypted(dict, AttributeVector::new())
                }
                DictChoice::Plain => {
                    let dict = empty_plain_dict(spec.max_len);
                    DeployedColumn::Plain(dict, AttributeVector::new())
                }
            })
            .collect();
        self.deploy_table(schema, deployed)
    }

    /// The schema of a deployed table.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::TableNotFound`] if absent.
    pub fn schema(&self, table: &str) -> Result<TableSchema, DbError> {
        Ok(self.table_handle(table)?.schema.clone())
    }

    /// Total number of valid rows in a table.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::TableNotFound`] if absent.
    pub fn row_count(&self, table: &str) -> Result<usize, DbError> {
        let t = self.table_handle(table)?;
        let state = lock(&t.state);
        Ok(state.main_validity.count_valid() + state.delta_validity.count_valid())
    }

    /// Storage size in bytes of one column's main representation (Table 6).
    ///
    /// # Errors
    ///
    /// Returns [`DbError::TableNotFound`]/[`DbError::ColumnNotFound`].
    pub fn column_storage_size(&self, table: &str, column: &str) -> Result<usize, DbError> {
        let t = self.table_handle(table)?;
        let (idx, _) = t
            .schema
            .column(column)
            .ok_or_else(|| DbError::ColumnNotFound(column.to_string()))?;
        let snap = t.snapshot();
        Ok(match (&snap.main.columns[idx], &snap.deltas[idx]) {
            (MainColumn::Encrypted(main), ColumnDelta::Encrypted(delta)) => {
                main.dict().storage_size()
                    + main.av().packed_size(main.dict().len())
                    + delta.storage_size()
            }
            (MainColumn::Plain { dict, av }, _) => dict.storage_size() + av.packed_size(dict.len()),
            _ => unreachable!("schema/storage mismatch"),
        })
    }

    /// The current merge generation of a table's published main store.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::TableNotFound`] if absent.
    pub fn epoch(&self, table: &str) -> Result<u64, DbError> {
        let t = self.table_handle(table)?;
        let state = lock(&t.state);
        Ok(state.main.epoch)
    }

    /// Whether a compaction is currently rebuilding this table's main
    /// store.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::TableNotFound`] if absent.
    pub fn merge_in_flight(&self, table: &str) -> Result<bool, DbError> {
        let t = self.table_handle(table)?;
        let in_flight = lock(&t.state).merge_in_flight;
        Ok(in_flight)
    }

    /// Compaction counters and live state of one table.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::TableNotFound`] if absent.
    pub fn compaction_stats(&self, table: &str) -> Result<CompactionStats, DbError> {
        let t = self.table_handle(table)?;
        let (epoch, delta_rows, merge_in_flight) = {
            let state = lock(&t.state);
            (state.main.epoch, state.delta_rows, state.merge_in_flight)
        };
        let last_error = lock(&t.last_error).clone();
        Ok(CompactionStats {
            epoch,
            merges_completed: t.merges_completed.load(Ordering::SeqCst),
            merges_aborted: t.merges_aborted.load(Ordering::SeqCst),
            merges_failed: t.merges_failed.load(Ordering::SeqCst),
            rows_compacted: t.rows_compacted.load(Ordering::SeqCst),
            delta_rows,
            merge_in_flight,
            last_error,
        })
    }

    pub(crate) fn table_handle(&self, name: &str) -> Result<Arc<ServerTable>, DbError> {
        self.tables
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(name)
            .cloned()
            .ok_or_else(|| DbError::TableNotFound(name.to_string()))
    }

    pub(crate) fn config(&self) -> Config {
        *lock(&self.config)
    }

    pub(crate) fn store_stats(&self, stats: QueryStats) {
        *lock(&self.last_stats) = stats;
    }

    /// Executes a select (Fig. 5 steps 6–13).
    ///
    /// # Errors
    ///
    /// Propagates lookup and enclave failures.
    pub fn select(
        &self,
        table: &str,
        columns: &[String],
        filter: Option<&ServerFilter>,
    ) -> Result<SelectResponse, DbError> {
        self.select_multi(
            table,
            columns,
            filter.map(std::slice::from_ref).unwrap_or(&[]),
        )
    }

    /// Executes a select with a *conjunction* of single-column filters —
    /// the prefiltering the paper sketches in step 12 ("rid would be used
    /// to prefilter other columns in the same table"). Each filter runs its
    /// own dictionary + attribute-vector search; the RecordID lists are
    /// intersected. The whole query executes against one consistent
    /// snapshot.
    ///
    /// # Errors
    ///
    /// Propagates lookup and enclave failures.
    pub fn select_multi(
        &self,
        table: &str,
        columns: &[String],
        filters: &[ServerFilter],
    ) -> Result<SelectResponse, DbError> {
        let cfg = self.config();
        let t = self.table_handle(table)?;
        let snap = t.snapshot();
        let (main_rids, delta_rids, stats) =
            matching_rids_multi(&snap, &t.schema, &self.enclave, filters, &cfg)?;
        let render_start = std::time::Instant::now();
        let projected: Vec<String> = if columns.is_empty() {
            t.schema.columns.iter().map(|c| c.name.clone()).collect()
        } else {
            columns.to_vec()
        };
        let mut col_indices = Vec::with_capacity(projected.len());
        for name in &projected {
            let (idx, _) = t
                .schema
                .column(name)
                .ok_or_else(|| DbError::ColumnNotFound(name.clone()))?;
            col_indices.push(idx);
        }
        // Result rendering (step 12): undo the split per projected column.
        let mut rows = Vec::with_capacity(main_rids.len() + delta_rids.len());
        for &rid in &main_rids {
            let mut row = Vec::with_capacity(col_indices.len());
            for &idx in &col_indices {
                row.push(render_main_cell(&snap.main.columns[idx], rid));
            }
            rows.push(row);
        }
        for &rid in &delta_rids {
            let mut row = Vec::with_capacity(col_indices.len());
            for &idx in &col_indices {
                row.push(render_delta_cell(&snap.deltas[idx], rid));
            }
            rows.push(row);
        }
        self.store_stats(QueryStats {
            render_ns: render_start.elapsed().as_nanos() as u64,
            result_rows: rows.len(),
            snapshot_epoch: snap.main.epoch,
            ..stats
        });
        Ok(SelectResponse {
            columns: projected,
            rows,
        })
    }

    /// Counts matching valid rows without rendering result columns — a
    /// thin wrapper over [`DbaasServer::count_multi`] (the count
    /// aggregation the paper notes is easier than range search).
    ///
    /// # Errors
    ///
    /// Propagates lookup and enclave failures.
    pub fn count(&self, table: &str, filter: Option<&ServerFilter>) -> Result<usize, DbError> {
        self.count_multi(table, filter.map(std::slice::from_ref).unwrap_or(&[]))
    }

    /// Counts rows matching a conjunction of filters.
    ///
    /// # Errors
    ///
    /// Propagates lookup and enclave failures.
    pub fn count_multi(&self, table: &str, filters: &[ServerFilter]) -> Result<usize, DbError> {
        let cfg = self.config();
        let t = self.table_handle(table)?;
        let snap = t.snapshot();
        let (main, delta, _) = matching_rids_multi(&snap, &t.schema, &self.enclave, filters, &cfg)?;
        Ok(main.len() + delta.len())
    }

    /// Deletes rows matching a conjunction of filters.
    ///
    /// The matching RecordIDs are computed against a snapshot; if a
    /// compaction publishes a new epoch in between (renumbering rows), the
    /// delete retries against the fresh state.
    ///
    /// # Errors
    ///
    /// Propagates lookup and enclave failures; returns
    /// [`DbError::MergeConflict`] if compactions keep racing the delete.
    pub fn delete_multi(&self, table: &str, filters: &[ServerFilter]) -> Result<usize, DbError> {
        let cfg = self.config();
        let t = self.table_handle(table)?;
        for _attempt in 0..MERGE_RETRIES {
            let snap = t.snapshot();
            let (main_rids, delta_rids, _) =
                matching_rids_multi(&snap, &t.schema, &self.enclave, filters, &cfg)?;
            let deleted;
            {
                let mut state = lock(&t.state);
                if state.main.epoch != snap.main.epoch {
                    continue; // A merge published mid-delete; recompute.
                }
                // Count (and conflict-flag) only rows whose validity bit
                // actually flips: a racing delete of the same rows must
                // not double-report or abort a merge for nothing.
                let mut flipped_main = 0usize;
                if !main_rids.is_empty() {
                    let validity = Arc::make_mut(&mut state.main_validity);
                    for rid in &main_rids {
                        if validity.is_valid(rid.0 as usize) {
                            validity.invalidate(rid.0 as usize);
                            flipped_main += 1;
                        }
                    }
                    state.main_invalid += flipped_main;
                }
                let mut flipped_merged_delta = 0usize;
                let mut flipped_delta = 0usize;
                for rid in &delta_rids {
                    if state.delta_validity.is_valid(rid.0 as usize) {
                        state.delta_validity.invalidate(rid.0 as usize);
                        flipped_delta += 1;
                        if (rid.0 as usize) < state.merge_watermark {
                            flipped_merged_delta += 1;
                        }
                    }
                }
                if state.merge_in_flight && (flipped_main > 0 || flipped_merged_delta > 0) {
                    state.deletes_during_merge = true;
                }
                deleted = flipped_main + flipped_delta;
            }
            self.maybe_compact(&t, &cfg);
            return Ok(deleted);
        }
        Err(DbError::MergeConflict(format!(
            "delete on {table} kept racing compaction publishes"
        )))
    }

    /// Invalidates matching rows (§4.3: "deletions are realizable by an
    /// update on the validity bit") — a thin wrapper over
    /// [`DbaasServer::delete_multi`].
    ///
    /// # Errors
    ///
    /// Propagates lookup and enclave failures.
    pub fn delete(&self, table: &str, filter: Option<&ServerFilter>) -> Result<usize, DbError> {
        self.delete_multi(table, filter.map(std::slice::from_ref).unwrap_or(&[]))
    }

    /// Appends rows to a table's delta stores (§4.3). Encrypted cells are
    /// re-encrypted by the enclave *before* the storage lock is taken, so
    /// the append itself is atomic with respect to concurrent snapshots.
    ///
    /// # Errors
    ///
    /// Propagates lookup, arity and enclave failures.
    pub fn insert(&self, table: &str, rows: &[Vec<CellValue>]) -> Result<usize, DbError> {
        let cfg = self.config();
        let t = self.table_handle(table)?;
        // Step 1 (no storage lock): validate and re-encrypt every cell.
        let mut prepared: Vec<Vec<CellValue>> = Vec::with_capacity(rows.len());
        for row in rows {
            if row.len() != t.schema.columns.len() {
                return Err(DbError::ArityMismatch {
                    expected: t.schema.columns.len(),
                    got: row.len(),
                });
            }
            let mut out = Vec::with_capacity(row.len());
            for (spec, cell) in t.schema.columns.iter().zip(row) {
                match (&spec.choice, cell) {
                    (DictChoice::Encrypted(_), CellValue::Encrypted(ct)) => {
                        let fresh = self.enclave().reencrypt(&t.schema.name, &spec.name, ct)?;
                        out.push(CellValue::Encrypted(fresh.into_bytes()));
                    }
                    (DictChoice::Plain, CellValue::Plain(v)) => {
                        if v.len() > spec.max_len {
                            return Err(DbError::ValueTooLong {
                                got: v.len(),
                                max: spec.max_len,
                            });
                        }
                        out.push(CellValue::Plain(v.clone()));
                    }
                    _ => {
                        return Err(DbError::UnsupportedFilter(
                            "cell form does not match column protection".to_string(),
                        ))
                    }
                }
            }
            prepared.push(out);
        }
        // Step 2 (one short lock): append all rows.
        {
            let mut state = lock(&t.state);
            for row in prepared {
                for (delta, cell) in state.deltas.iter_mut().zip(row) {
                    match (delta, cell) {
                        (ColumnDelta::Encrypted(d), CellValue::Encrypted(ct)) => {
                            d.push_reencrypted(&ct);
                        }
                        (ColumnDelta::Plain(d), CellValue::Plain(v)) => {
                            d.insert(&v).map_err(|e| match e {
                                colstore::ColstoreError::ValueTooLong { got, max } => {
                                    DbError::ValueTooLong { got, max }
                                }
                                other => DbError::Storage(other),
                            })?;
                        }
                        _ => unreachable!("prepared cells match the schema"),
                    }
                }
                state.delta_rows += 1;
                state.delta_validity.push(true);
            }
        }
        self.maybe_compact(&t, &cfg);
        Ok(rows.len())
    }

    /// Executes a decomposed [`ServerQuery`] — the single entry point the
    /// proxy routes all data-path queries through, including aggregate
    /// plans.
    ///
    /// # Errors
    ///
    /// Propagates lookup, arity and enclave failures.
    pub fn execute_query(&self, query: ServerQuery) -> Result<QueryOutcome, DbError> {
        match query {
            ServerQuery::Select {
                table,
                columns,
                filters,
            } => Ok(QueryOutcome::Rows(
                self.select_multi(&table, &columns, &filters)?,
            )),
            ServerQuery::Aggregate {
                table,
                plan,
                filters,
            } => Ok(QueryOutcome::Rows(self.aggregate(&table, &plan, &filters)?)),
            ServerQuery::Insert { table, rows } => {
                Ok(QueryOutcome::Affected(self.insert(&table, &rows)?))
            }
            ServerQuery::Delete { table, filters } => {
                Ok(QueryOutcome::Affected(self.delete_multi(&table, &filters)?))
            }
        }
    }

    /// Synchronously merges every column's delta store into a freshly
    /// rebuilt main store and publishes the next epoch (§4.3). Encrypted
    /// columns are rebuilt inside the merge enclave with fresh randomness;
    /// PLAIN columns are rebuilt locally. A no-op (empty delta, no deleted
    /// rows) returns without entering the enclave or bumping the epoch.
    ///
    /// # Errors
    ///
    /// Propagates enclave and build failures; returns
    /// [`DbError::MergeConflict`] if concurrent deletes keep aborting the
    /// publish.
    pub fn merge_table(&self, table: &str) -> Result<(), DbError> {
        let t = self.table_handle(table)?;
        for _attempt in 0..MERGE_RETRIES {
            self.wait_for_table(&t);
            match self.run_compaction(&t)? {
                CompactionOutcome::Completed | CompactionOutcome::Noop => return Ok(()),
                CompactionOutcome::Aborted | CompactionOutcome::AlreadyRunning => continue,
            }
        }
        Err(DbError::MergeConflict(format!(
            "merge of {table} kept racing concurrent deletes"
        )))
    }

    /// Starts a background compaction of `table` if none is running and
    /// there is work to do. Returns whether a merge was started.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::TableNotFound`] if absent.
    pub fn spawn_compaction(&self, table: &str) -> Result<bool, DbError> {
        let t = self.table_handle(table)?;
        Ok(self.spawn_compaction_inner(&t))
    }

    /// Blocks until no compaction is running on `table` (joining the
    /// background worker if one exists).
    ///
    /// # Errors
    ///
    /// Returns [`DbError::TableNotFound`] if absent.
    pub fn wait_for_compaction(&self, table: &str) -> Result<(), DbError> {
        let t = self.table_handle(table)?;
        self.wait_for_table(&t);
        Ok(())
    }

    fn wait_for_table(&self, t: &Arc<ServerTable>) {
        if let Some(handle) = lock(&t.worker).take() {
            let _ = handle.join();
        }
        while lock(&t.state).merge_in_flight {
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    /// Fires a background merge when the policy's thresholds are crossed.
    fn maybe_compact(&self, t: &Arc<ServerTable>, cfg: &Config) {
        let Some(policy) = cfg.policy else {
            return;
        };
        let (delta_rows, rows, valid, in_flight) = {
            let state = lock(&t.state);
            (
                state.delta_rows,
                state.main.rows,
                state.main.rows - state.main_invalid,
                state.merge_in_flight,
            )
        };
        if !in_flight && policy.triggered(delta_rows, rows, valid) {
            self.spawn_compaction_inner(t);
        }
    }

    fn spawn_compaction_inner(&self, t: &Arc<ServerTable>) -> bool {
        // Hold the worker slot across begin + spawn + store: a concurrent
        // spawner serializes here, so the slot can never hand us the
        // handle of a *live* merge (which a reap-join would then block on
        // for the whole rebuild).
        let mut worker = lock(&t.worker);
        let Some(job) = begin_compaction(t) else {
            return false;
        };
        if let Some(old) = worker.take() {
            // `begin_compaction` succeeded, so no merge was in flight: the
            // stored worker has already cleared the flag and is (at most)
            // tearing down. Reap it.
            let _ = old.join();
        }
        let server = self.clone();
        let table = Arc::clone(t);
        let handle = std::thread::spawn(move || {
            let mut job = job;
            // An aborted publish (a delete raced the rebuild) retries in
            // place against the fresh state — bounded; if deletes keep
            // winning, the in-flight flag is already cleared by the
            // aborted publish and the policy re-triggers on later writes.
            let mut attempt = 0;
            loop {
                let cfg = server.config();
                match execute_compaction(&server.merge_enclave, &table.schema, &job, &cfg) {
                    Ok(columns) => {
                        if publish_compaction(&table, job, columns) {
                            return;
                        }
                        attempt += 1;
                        if attempt >= MERGE_RETRIES {
                            return;
                        }
                        match begin_compaction(&table) {
                            Some(next) => job = next,
                            None => return,
                        }
                    }
                    Err(e) => {
                        fail_compaction(&table, &e);
                        return;
                    }
                }
            }
        });
        *worker = Some(handle);
        true
    }

    /// One synchronous compaction attempt.
    fn run_compaction(&self, t: &Arc<ServerTable>) -> Result<CompactionOutcome, DbError> {
        let Some(job) = begin_compaction(t) else {
            // Either a merge is in flight or there is nothing to do;
            // disambiguate for the caller.
            let state = lock(&t.state);
            return Ok(if state.merge_in_flight {
                CompactionOutcome::AlreadyRunning
            } else {
                CompactionOutcome::Noop
            });
        };
        let cfg = self.config();
        match execute_compaction(&self.merge_enclave, &t.schema, &job, &cfg) {
            Ok(columns) => Ok(if publish_compaction(t, job, columns) {
                CompactionOutcome::Completed
            } else {
                CompactionOutcome::Aborted
            }),
            Err(e) => {
                fail_compaction(t, &e);
                Err(e)
            }
        }
    }
}

impl Default for DbaasServer {
    fn default() -> Self {
        Self::new()
    }
}

/// How often a merge or delete retries when compaction publishes race it.
const MERGE_RETRIES: usize = 8;

/// Phase 1 of a compaction: under one short lock, capture the merge input
/// at the current watermark and mark the merge in flight. Returns `None`
/// when a merge is already running or there is nothing to compact.
fn begin_compaction(t: &ServerTable) -> Option<CompactionJob> {
    let mut state = lock(&t.state);
    if state.merge_in_flight {
        return None;
    }
    let watermark = state.delta_rows;
    if watermark == 0 && state.main_invalid == 0 {
        // Empty delta over a fully valid main store: nothing to rebuild.
        return None;
    }
    state.merge_in_flight = true;
    state.merge_watermark = watermark;
    state.deletes_during_merge = false;
    Some(CompactionJob {
        epoch: state.main.epoch,
        main: Arc::clone(&state.main),
        main_validity: Arc::clone(&state.main_validity),
        delta_prefixes: state.deltas.iter().map(|d| d.prefix(watermark)).collect(),
        delta_validity: state.delta_validity.prefix(watermark),
        watermark,
    })
}

/// Phase 2: rebuild every column off the query path (no storage lock
/// held; the merge enclave is locked per column ECALL).
fn execute_compaction(
    merge_enclave: &Mutex<DictEnclave>,
    schema: &TableSchema,
    job: &CompactionJob,
    cfg: &Config,
) -> Result<(Vec<MainColumn>, usize), DbError> {
    let mut new_columns = Vec::with_capacity(job.main.columns.len());
    let mut new_rows = None;
    for ((spec, main_col), delta_col) in schema
        .columns
        .iter()
        .zip(&job.main.columns)
        .zip(&job.delta_prefixes)
    {
        match (main_col, delta_col) {
            (MainColumn::Encrypted(main), ColumnDelta::Encrypted(delta)) => {
                let kind = match spec.choice {
                    DictChoice::Encrypted(kind) => kind,
                    DictChoice::Plain => unreachable!("schema/storage mismatch"),
                };
                let dict = main.dict();
                let delta_seg = delta.segment_ref();
                let req = MergeRequest {
                    table_name: dict.table_name(),
                    col_name: dict.col_name(),
                    max_len: dict.max_len(),
                    kind,
                    bs_max: spec.bs_max,
                    main_head: dict.head_mem(),
                    main_tail: dict.tail_mem(),
                    main_len: dict.len(),
                    main_av: main.av().as_slice(),
                    main_valid: &job.main_validity,
                    delta_head: delta_seg.head,
                    delta_tail: delta_seg.tail,
                    delta_len: delta.len(),
                    delta_valid: &job.delta_validity,
                };
                let (new_dict, new_av) = lock(merge_enclave).merge(req)?;
                let rows = new_av.len();
                match new_rows {
                    None => new_rows = Some(rows),
                    Some(r) => debug_assert_eq!(r, rows, "columns must stay row-aligned"),
                }
                new_columns.push(MainColumn::Encrypted(
                    main.next_generation(new_dict, new_av),
                ));
            }
            (MainColumn::Plain { dict, av }, ColumnDelta::Plain(delta)) => {
                // Rebuild the plain column: valid main + valid delta rows.
                let mut column = colstore::column::Column::new(&spec.name, spec.max_len);
                for (j, &vid) in av.as_slice().iter().enumerate() {
                    if job.main_validity.is_valid(j) {
                        column.push(dict.value(vid as usize))?;
                    }
                }
                for (rid, v) in delta.iter_valid() {
                    if job.delta_validity.is_valid(rid.0 as usize) {
                        column.push(v)?;
                    }
                }
                let rows = column.len();
                match new_rows {
                    None => new_rows = Some(rows),
                    Some(r) => debug_assert_eq!(r, rows, "columns must stay row-aligned"),
                }
                let (new_dict, new_av) = rebuild_plain(&column)?;
                new_columns.push(MainColumn::Plain {
                    dict: Arc::new(new_dict),
                    av: Arc::new(new_av),
                });
            }
            _ => unreachable!("schema/storage mismatch"),
        }
        if let Some(throttle) = cfg.merge_throttle {
            std::thread::sleep(throttle);
        }
    }
    Ok((new_columns, new_rows.unwrap_or(0)))
}

/// Phase 3: atomically publish the rebuilt epoch, unless a delete raced
/// the rebuild (then the result is discarded and the attempt counts as
/// aborted). Returns whether the publish happened.
fn publish_compaction(
    t: &ServerTable,
    job: CompactionJob,
    (columns, rows): (Vec<MainColumn>, usize),
) -> bool {
    let mut state = lock(&t.state);
    state.merge_in_flight = false;
    if state.deletes_during_merge {
        // A delete invalidated rows this merge already folded in as valid;
        // publishing would resurrect them. Discard and let the caller (or
        // the next policy trigger) retry against the fresh state.
        state.deletes_during_merge = false;
        t.merges_aborted.fetch_add(1, Ordering::SeqCst);
        return false;
    }
    debug_assert_eq!(state.main.epoch, job.epoch, "merges are serialized");
    state.main = Arc::new(MainState {
        epoch: job.epoch + 1,
        columns,
        rows,
    });
    state.main_validity = Arc::new(ValidityVector::all_valid(rows));
    state.main_invalid = 0;
    for delta in &mut state.deltas {
        delta.drain_prefix(job.watermark);
    }
    state.delta_validity = state.delta_validity.suffix(job.watermark);
    state.delta_rows -= job.watermark;
    t.merges_completed.fetch_add(1, Ordering::SeqCst);
    t.rows_compacted
        .fetch_add(job.watermark as u64, Ordering::SeqCst);
    true
}

/// Error path shared by sync and background merges: clear the in-flight
/// flag, leaving the old store and the delta untouched and queryable.
fn fail_compaction(t: &ServerTable, e: &DbError) {
    let mut state = lock(&t.state);
    state.merge_in_flight = false;
    drop(state);
    t.merges_failed.fetch_add(1, Ordering::SeqCst);
    *lock(&t.last_error) = Some(e.to_string());
}

/// Conjunction of filters against one snapshot: intersects the per-filter
/// RecordID lists (all are ascending, so the intersection is a linear
/// merge).
pub(crate) fn matching_rids_multi(
    snap: &TableSnapshot,
    schema: &TableSchema,
    enclave: &Mutex<DictEnclave>,
    filters: &[ServerFilter],
    cfg: &Config,
) -> Result<(Vec<RecordId>, Vec<RecordId>, QueryStats), DbError> {
    if filters.len() <= 1 {
        return matching_rids(snap, schema, enclave, filters.first(), cfg);
    }
    let mut acc: Option<(Vec<RecordId>, Vec<RecordId>)> = None;
    let mut stats = QueryStats::default();
    for f in filters {
        let (main, delta, s) = matching_rids(snap, schema, enclave, Some(f), cfg)?;
        stats.dict_search_ns += s.dict_search_ns;
        stats.av_search_ns += s.av_search_ns;
        stats.enclave_calls += s.enclave_calls;
        acc = Some(match acc {
            None => (main, delta),
            Some((am, ad)) => (intersect_sorted(&am, &main), intersect_sorted(&ad, &delta)),
        });
    }
    let (main, delta) = acc.unwrap_or_default();
    Ok((main, delta, stats))
}

/// Computes the valid matching RecordIDs in main and delta stores of one
/// snapshot.
fn matching_rids(
    snap: &TableSnapshot,
    schema: &TableSchema,
    enclave: &Mutex<DictEnclave>,
    filter: Option<&ServerFilter>,
    cfg: &Config,
) -> Result<(Vec<RecordId>, Vec<RecordId>, QueryStats), DbError> {
    let mut stats = QueryStats::default();
    let Some(filter) = filter else {
        // Unfiltered: all valid rows.
        let main = (0..snap.main.rows as u32)
            .map(RecordId)
            .filter(|r| snap.main_validity.is_valid(r.0 as usize))
            .collect();
        let delta = (0..snap.delta_rows as u32)
            .map(RecordId)
            .filter(|r| snap.delta_validity.is_valid(r.0 as usize))
            .collect();
        return Ok((main, delta, stats));
    };

    let (idx, _) = schema
        .column(filter.column())
        .ok_or_else(|| DbError::ColumnNotFound(filter.column().to_string()))?;

    let (main_rids, delta_rids) = match (&snap.main.columns[idx], &snap.deltas[idx], filter) {
        (
            MainColumn::Encrypted(main),
            ColumnDelta::Encrypted(delta),
            ServerFilter::Encrypted { range, .. },
        ) => {
            let dict = main.dict();
            let dict_start = std::time::Instant::now();
            let result = lock(enclave).search(dict, range)?;
            stats.dict_search_ns = dict_start.elapsed().as_nanos() as u64;
            stats.enclave_calls += 1;
            let av_start = std::time::Instant::now();
            let main_rids = avsearch::search(
                main.av(),
                &result,
                dict.len(),
                cfg.set_strategy,
                cfg.parallelism,
            );
            stats.av_search_ns = av_start.elapsed().as_nanos() as u64;
            // The empty delta of a never-inserted table needs no ECALL.
            let delta_rids = if delta.is_empty() {
                Vec::new()
            } else {
                stats.enclave_calls += 1;
                delta.search(&mut lock(enclave), range)?
            };
            (main_rids, delta_rids)
        }
        (
            MainColumn::Plain { dict, av },
            ColumnDelta::Plain(delta),
            ServerFilter::Plain { range, .. },
        ) => {
            let dict_start = std::time::Instant::now();
            let result = search_plain(dict, range)?;
            stats.dict_search_ns = dict_start.elapsed().as_nanos() as u64;
            let av_start = std::time::Instant::now();
            let main_rids =
                avsearch::search(av, &result, dict.len(), cfg.set_strategy, cfg.parallelism);
            stats.av_search_ns = av_start.elapsed().as_nanos() as u64;
            let delta_rids = delta
                .iter_valid()
                .filter(|(_, v)| range.contains(v))
                .map(|(rid, _)| rid)
                .collect();
            (main_rids, delta_rids)
        }
        _ => {
            return Err(DbError::UnsupportedFilter(
                "filter form does not match column protection".to_string(),
            ))
        }
    };
    let main = main_rids
        .into_iter()
        .filter(|r| snap.main_validity.is_valid(r.0 as usize))
        .collect();
    let delta = delta_rids
        .into_iter()
        .filter(|r| snap.delta_validity.is_valid(r.0 as usize))
        .collect();
    Ok((main, delta, stats))
}

/// Linear-merge intersection of two ascending RecordID lists.
fn intersect_sorted(a: &[RecordId], b: &[RecordId]) -> Vec<RecordId> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].0.cmp(&b[j].0) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

fn render_main_cell(col: &MainColumn, rid: RecordId) -> CellValue {
    match col {
        MainColumn::Encrypted(main) => {
            let vid = main.av().value_id(rid);
            CellValue::Encrypted(main.dict().ciphertext(vid.0 as usize).to_vec())
        }
        MainColumn::Plain { dict, av } => {
            let vid = av.value_id(rid);
            CellValue::Plain(dict.value(vid.0 as usize).to_vec())
        }
    }
}

fn render_delta_cell(col: &ColumnDelta, rid: RecordId) -> CellValue {
    match col {
        ColumnDelta::Encrypted(delta) => CellValue::Encrypted(delta.ciphertext(rid).to_vec()),
        ColumnDelta::Plain(delta) => CellValue::Plain(delta.value(rid).to_vec()),
    }
}

/// Builds an empty encrypted dictionary placeholder for `CREATE TABLE`.
fn empty_encrypted_dict(
    table: &str,
    spec: &crate::schema::ColumnSpec,
    kind: encdict::EdKind,
) -> EncryptedDictionary {
    // An empty column encrypts to an empty dictionary; no key material is
    // needed since there are zero ciphertexts.
    let column = colstore::column::Column::new(&spec.name, spec.max_len);
    let params = encdict::build::BuildParams {
        table_name: table.to_string(),
        col_name: spec.name.clone(),
        bs_max: spec.bs_max.max(1),
    };
    let throwaway = encdbdb_crypto::Key128::from_bytes([0u8; 16]);
    let mut rng = rand::rngs::mock::StepRng::new(0, 1);
    let (dict, _) = encdict::build::build_encrypted(&column, kind, &params, &throwaway, &mut rng)
        .expect("empty column always builds");
    dict
}

fn empty_plain_dict(max_len: usize) -> PlainDictionary {
    let column = colstore::column::Column::new("c", max_len);
    let mut rng = rand::rngs::mock::StepRng::new(0, 1);
    let (dict, _) =
        encdict::build::build_plain(&column, encdict::EdKind::Ed1, &Default::default(), &mut rng)
            .expect("empty column always builds");
    dict
}

/// Rebuilds a plain (sorted) dictionary from a column.
fn rebuild_plain(
    column: &colstore::column::Column,
) -> Result<(PlainDictionary, AttributeVector), DbError> {
    let mut rng = rand::rngs::mock::StepRng::new(0, 1);
    Ok(encdict::build::build_plain(
        column,
        encdict::EdKind::Ed1,
        &Default::default(),
        &mut rng,
    )?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnSpec;
    use encdict::EdKind;

    fn schema() -> TableSchema {
        TableSchema::new(
            "t",
            vec![
                ColumnSpec::new("name", DictChoice::Encrypted(EdKind::Ed1), 12),
                ColumnSpec::new("city", DictChoice::Plain, 12),
            ],
        )
    }

    #[test]
    fn create_empty_table_and_count() {
        let server = DbaasServer::with_enclave(DictEnclave::with_seed(1));
        server.create_table(schema()).unwrap();
        assert_eq!(server.row_count("t").unwrap(), 0);
        assert!(server.create_table(schema()).is_err(), "duplicate rejected");
        assert!(server.row_count("missing").is_err());
        assert_eq!(server.epoch("t").unwrap(), 0);
        assert!(!server.merge_in_flight("t").unwrap());
    }

    #[test]
    fn insert_requires_matching_arity_and_forms() {
        let server = DbaasServer::with_enclave(DictEnclave::with_seed(2));
        server.provision_direct(encdbdb_crypto::Key128::from_bytes([1; 16]));
        server.create_table(schema()).unwrap();
        // Wrong arity.
        let err = server
            .insert("t", &[vec![CellValue::Plain(b"x".to_vec())]])
            .unwrap_err();
        assert!(matches!(err, DbError::ArityMismatch { .. }));
        // Wrong form (plain cell for encrypted column).
        let err = server
            .insert(
                "t",
                &[vec![
                    CellValue::Plain(b"x".to_vec()),
                    CellValue::Plain(b"y".to_vec()),
                ]],
            )
            .unwrap_err();
        assert!(matches!(err, DbError::UnsupportedFilter(_)));
    }

    #[test]
    fn compaction_policy_thresholds() {
        let policy = CompactionPolicy {
            max_delta_rows: 10,
            max_invalid_fraction: 0.5,
        };
        assert!(!policy.triggered(9, 100, 100));
        assert!(policy.triggered(10, 100, 100));
        assert!(!policy.triggered(0, 100, 51));
        assert!(policy.triggered(0, 100, 50));
        assert!(!policy.triggered(0, 0, 0), "empty table never triggers");
    }

    // Full end-to-end behaviour is covered by the proxy/session tests and
    // the concurrent stress suite, which exercise deploy → select →
    // insert → delete → merge, including background compactions.
}
