//! The untrusted DBaaS server: storage plus the query evaluation engine
//! (paper Fig. 5, steps 6–13).
//!
//! The server holds encrypted dictionaries, plaintext attribute vectors and
//! delta stores, hosts the dictionary enclave, and evaluates decomposed
//! queries: it passes the encrypted range filter to the enclave (step 8),
//! scans the attribute vector for the returned ValueIDs (step 11), applies
//! validity, and renders result columns by *undoing the split*:
//! `eC = (eD_j | j = AV_i ∧ i ∈ rid)` (step 12). The server never sees a
//! plaintext of an encrypted column — values enter and leave as PAE
//! ciphertexts.

use crate::error::DbError;
use crate::schema::{DictChoice, TableSchema};
use colstore::delta::{DeltaStore, ValidityVector};
use colstore::dictionary::{AttributeVector, RecordId};
use encdict::avsearch::{self, Parallelism, SetSearchStrategy};
use encdict::dynamic::EncryptedDeltaStore;
use encdict::enclave_ops::MergeRequest;
use encdict::plain::search_plain;
use encdict::{DictEnclave, EncryptedDictionary, EncryptedRange, PlainDictionary, RangeQuery};
use std::collections::HashMap;

/// One value cell crossing the server boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CellValue {
    /// A PAE ciphertext (encrypted column).
    Encrypted(Vec<u8>),
    /// A plaintext value (PLAIN column).
    Plain(Vec<u8>),
}

/// A filter as seen by the server: the filtered column plus the range in
/// the form matching the column's protection.
#[derive(Debug, Clone)]
pub enum ServerFilter {
    /// Encrypted range for an encrypted column.
    Encrypted {
        /// Filtered column name.
        column: String,
        /// Encrypted range τ.
        range: EncryptedRange,
    },
    /// Plaintext range for a PLAIN column.
    Plain {
        /// Filtered column name.
        column: String,
        /// Plaintext range.
        range: RangeQuery,
    },
}

impl ServerFilter {
    fn column(&self) -> &str {
        match self {
            ServerFilter::Encrypted { column, .. } | ServerFilter::Plain { column, .. } => column,
        }
    }
}

/// A decomposed query as produced by the proxy.
#[derive(Debug, Clone)]
pub enum ServerQuery {
    /// Range select over one table with a conjunction of filters.
    Select {
        /// Source table.
        table: String,
        /// Projected columns; empty means all.
        columns: Vec<String>,
        /// Per-column filters (conjunction; empty selects everything).
        filters: Vec<ServerFilter>,
    },
    /// Grouped aggregation (the `exec` engine).
    Aggregate {
        /// Source table.
        table: String,
        /// The compiled aggregate plan.
        plan: crate::exec::plan::AggregatePlan,
        /// Per-column filters (conjunction; empty aggregates everything).
        filters: Vec<ServerFilter>,
    },
    /// Append rows (delta store).
    Insert {
        /// Target table.
        table: String,
        /// Rows of cells, one cell per column in schema order.
        rows: Vec<Vec<CellValue>>,
    },
    /// Invalidate matching rows.
    Delete {
        /// Target table.
        table: String,
        /// Per-column filters (conjunction; empty deletes everything).
        filters: Vec<ServerFilter>,
    },
}

/// The server's reply to a [`ServerQuery`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryOutcome {
    /// Result rows of a select or aggregate.
    Rows(SelectResponse),
    /// Number of rows inserted or deleted.
    Affected(usize),
}

/// The server's reply to a select.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SelectResponse {
    /// Projected column names.
    pub columns: Vec<String>,
    /// One entry per result row; cells in `columns` order.
    pub rows: Vec<Vec<CellValue>>,
}

/// Execution statistics for one query (latency breakdowns for the
/// Figure 8 harness, plus the `exec` engine's boundary accounting).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Nanoseconds spent in the enclave dictionary search.
    pub dict_search_ns: u64,
    /// Nanoseconds spent scanning the attribute vector (including the
    /// histogram scan of aggregate queries).
    pub av_search_ns: u64,
    /// Nanoseconds spent in the enclave aggregation ECALL (or the local
    /// aggregation for all-PLAIN queries).
    pub aggregate_ns: u64,
    /// Nanoseconds spent rendering the result columns.
    pub render_ns: u64,
    /// Number of result rows (groups for aggregate queries).
    pub result_rows: usize,
    /// Number of [`CHUNK_ROWS`](crate::exec::aggregate::CHUNK_ROWS)-row
    /// chunks scanned by the vectorized histogram executor.
    pub chunks_scanned: usize,
    /// Number of enclave ECALLs issued while evaluating the query.
    pub enclave_calls: usize,
    /// Number of dictionary values decrypted inside the enclave — bounded
    /// by the distinct touched ValueIDs, never by the row count.
    pub values_decrypted: usize,
}

/// Storage of one column on the server.
#[derive(Debug)]
pub(crate) enum ServerColumn {
    Encrypted {
        dict: EncryptedDictionary,
        av: AttributeVector,
        delta: EncryptedDeltaStore,
    },
    Plain {
        dict: PlainDictionary,
        av: AttributeVector,
        delta: DeltaStore,
    },
}

impl ServerColumn {
    /// Whether the column is protected by an encrypted dictionary.
    pub(crate) fn is_encrypted(&self) -> bool {
        matches!(self, ServerColumn::Encrypted { .. })
    }

    /// The attribute-vector ValueIDs of the main store.
    pub(crate) fn av_slice(&self) -> &[u32] {
        match self {
            ServerColumn::Encrypted { av, .. } | ServerColumn::Plain { av, .. } => av.as_slice(),
        }
    }

    /// The main dictionary length (= offset of the delta code space).
    pub(crate) fn main_len(&self) -> usize {
        match self {
            ServerColumn::Encrypted { dict, .. } => dict.len(),
            ServerColumn::Plain { dict, .. } => dict.len(),
        }
    }
}

/// A deployed column as prepared by the data owner (step 3/4 of Fig. 5).
#[derive(Debug)]
pub enum DeployedColumn {
    /// Encrypted dictionary + attribute vector.
    Encrypted(EncryptedDictionary, AttributeVector),
    /// Plaintext dictionary + attribute vector.
    Plain(PlainDictionary, AttributeVector),
}

#[derive(Debug)]
pub(crate) struct ServerTable {
    pub(crate) schema: TableSchema,
    pub(crate) columns: Vec<ServerColumn>,
    main_rows: usize,
    main_validity: ValidityVector,
    delta_rows: usize,
    delta_validity: ValidityVector,
}

/// The DBaaS server.
#[derive(Debug)]
pub struct DbaasServer {
    pub(crate) enclave: DictEnclave,
    pub(crate) tables: HashMap<String, ServerTable>,
    pub(crate) parallelism: Parallelism,
    set_strategy: SetSearchStrategy,
    pub(crate) last_stats: QueryStats,
}

impl DbaasServer {
    /// Creates a server with a fresh enclave.
    pub fn new() -> Self {
        Self::with_enclave(DictEnclave::new())
    }

    /// Creates a server around an existing enclave (e.g. deterministic).
    pub fn with_enclave(enclave: DictEnclave) -> Self {
        DbaasServer {
            enclave,
            tables: HashMap::new(),
            parallelism: Parallelism::Serial,
            set_strategy: SetSearchStrategy::PaperLinear,
            last_stats: QueryStats::default(),
        }
    }

    /// Configures attribute-vector scan parallelism.
    pub fn set_parallelism(&mut self, parallelism: Parallelism) {
        self.parallelism = parallelism;
    }

    /// Configures the membership strategy for unsorted-kind results.
    pub fn set_set_strategy(&mut self, strategy: SetSearchStrategy) {
        self.set_strategy = strategy;
    }

    /// Access to the enclave (attestation/provisioning pass-through).
    pub fn enclave_mut(&mut self) -> &mut DictEnclave {
        &mut self.enclave
    }

    /// Latency breakdown of the most recent select.
    pub fn last_stats(&self) -> QueryStats {
        self.last_stats
    }

    /// Deploys an encrypted table (Fig. 5 step 4).
    ///
    /// # Errors
    ///
    /// Returns [`DbError::TableExists`] on duplicates or
    /// [`DbError::ArityMismatch`] if columns don't match the schema.
    pub fn deploy_table(
        &mut self,
        schema: TableSchema,
        columns: Vec<DeployedColumn>,
    ) -> Result<(), DbError> {
        if self.tables.contains_key(&schema.name) {
            return Err(DbError::TableExists(schema.name));
        }
        if columns.len() != schema.columns.len() {
            return Err(DbError::ArityMismatch {
                expected: schema.columns.len(),
                got: columns.len(),
            });
        }
        let mut rows = None;
        let mut server_columns = Vec::with_capacity(columns.len());
        for (spec, deployed) in schema.columns.iter().zip(columns) {
            let column = match deployed {
                DeployedColumn::Encrypted(dict, av) => {
                    let delta = EncryptedDeltaStore::new(
                        schema.name.clone(),
                        spec.name.clone(),
                        spec.max_len,
                    );
                    match rows {
                        None => rows = Some(av.len()),
                        Some(r) if r == av.len() => {}
                        Some(r) => {
                            return Err(DbError::ArityMismatch {
                                expected: r,
                                got: av.len(),
                            })
                        }
                    }
                    ServerColumn::Encrypted { dict, av, delta }
                }
                DeployedColumn::Plain(dict, av) => {
                    let delta = DeltaStore::new(spec.max_len);
                    match rows {
                        None => rows = Some(av.len()),
                        Some(r) if r == av.len() => {}
                        Some(r) => {
                            return Err(DbError::ArityMismatch {
                                expected: r,
                                got: av.len(),
                            })
                        }
                    }
                    ServerColumn::Plain { dict, av, delta }
                }
            };
            server_columns.push(column);
        }
        let main_rows = rows.unwrap_or(0);
        self.tables.insert(
            schema.name.clone(),
            ServerTable {
                schema,
                columns: server_columns,
                main_rows,
                main_validity: ValidityVector::all_valid(main_rows),
                delta_rows: 0,
                delta_validity: ValidityVector::default(),
            },
        );
        Ok(())
    }

    /// Registers an empty table (SQL `CREATE TABLE` path; all data arrives
    /// through inserts into the delta store).
    ///
    /// # Errors
    ///
    /// Returns [`DbError::TableExists`] on duplicates.
    pub fn create_table(&mut self, schema: TableSchema) -> Result<(), DbError> {
        let deployed = schema
            .columns
            .iter()
            .map(|spec| match spec.choice {
                DictChoice::Encrypted(kind) => {
                    let dict = empty_encrypted_dict(&schema.name, spec, kind);
                    DeployedColumn::Encrypted(dict, AttributeVector::new())
                }
                DictChoice::Plain => {
                    let dict = empty_plain_dict(spec.max_len);
                    DeployedColumn::Plain(dict, AttributeVector::new())
                }
            })
            .collect();
        self.deploy_table(schema, deployed)
    }

    /// The schema of a deployed table.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::TableNotFound`] if absent.
    pub fn schema(&self, table: &str) -> Result<&TableSchema, DbError> {
        Ok(&self.table(table)?.schema)
    }

    /// Total number of valid rows in a table.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::TableNotFound`] if absent.
    pub fn row_count(&self, table: &str) -> Result<usize, DbError> {
        let t = self.table(table)?;
        Ok(t.main_validity.count_valid() + t.delta_validity.count_valid())
    }

    /// Storage size in bytes of one column's main representation (Table 6).
    ///
    /// # Errors
    ///
    /// Returns [`DbError::TableNotFound`]/[`DbError::ColumnNotFound`].
    pub fn column_storage_size(&self, table: &str, column: &str) -> Result<usize, DbError> {
        let t = self.table(table)?;
        let (idx, _) = t
            .schema
            .column(column)
            .ok_or_else(|| DbError::ColumnNotFound(column.to_string()))?;
        Ok(match &t.columns[idx] {
            ServerColumn::Encrypted { dict, av, delta } => {
                dict.storage_size() + av.packed_size(dict.len()) + delta.storage_size()
            }
            ServerColumn::Plain { dict, av, .. } => {
                dict.storage_size() + av.packed_size(dict.len())
            }
        })
    }

    fn table(&self, name: &str) -> Result<&ServerTable, DbError> {
        self.tables
            .get(name)
            .ok_or_else(|| DbError::TableNotFound(name.to_string()))
    }

    fn table_mut(&mut self, name: &str) -> Result<&mut ServerTable, DbError> {
        self.tables
            .get_mut(name)
            .ok_or_else(|| DbError::TableNotFound(name.to_string()))
    }

    /// Executes a select (Fig. 5 steps 6–13).
    ///
    /// # Errors
    ///
    /// Propagates lookup and enclave failures.
    pub fn select(
        &mut self,
        table: &str,
        columns: &[String],
        filter: Option<&ServerFilter>,
    ) -> Result<SelectResponse, DbError> {
        self.select_multi(
            table,
            columns,
            filter.map(std::slice::from_ref).unwrap_or(&[]),
        )
    }

    /// Executes a select with a *conjunction* of single-column filters —
    /// the prefiltering the paper sketches in step 12 ("rid would be used
    /// to prefilter other columns in the same table"). Each filter runs its
    /// own dictionary + attribute-vector search; the RecordID lists are
    /// intersected.
    ///
    /// # Errors
    ///
    /// Propagates lookup and enclave failures.
    pub fn select_multi(
        &mut self,
        table: &str,
        columns: &[String],
        filters: &[ServerFilter],
    ) -> Result<SelectResponse, DbError> {
        let (main_rids, delta_rids, stats) = self.matching_rids_multi(table, filters)?;
        let render_start = std::time::Instant::now();
        let t = self.table(table)?;
        let projected: Vec<String> = if columns.is_empty() {
            t.schema.columns.iter().map(|c| c.name.clone()).collect()
        } else {
            columns.to_vec()
        };
        let mut col_indices = Vec::with_capacity(projected.len());
        for name in &projected {
            let (idx, _) = t
                .schema
                .column(name)
                .ok_or_else(|| DbError::ColumnNotFound(name.clone()))?;
            col_indices.push(idx);
        }
        // Result rendering (step 12): undo the split per projected column.
        let mut rows = Vec::with_capacity(main_rids.len() + delta_rids.len());
        for &rid in &main_rids {
            let mut row = Vec::with_capacity(col_indices.len());
            for &idx in &col_indices {
                row.push(render_main_cell(&t.columns[idx], rid));
            }
            rows.push(row);
        }
        for &rid in &delta_rids {
            let mut row = Vec::with_capacity(col_indices.len());
            for &idx in &col_indices {
                row.push(render_delta_cell(&t.columns[idx], rid));
            }
            rows.push(row);
        }
        self.last_stats = QueryStats {
            render_ns: render_start.elapsed().as_nanos() as u64,
            result_rows: rows.len(),
            ..stats
        };
        Ok(SelectResponse {
            columns: projected,
            rows,
        })
    }

    /// Conjunction of filters: intersects the per-filter RecordID lists
    /// (all are ascending, so the intersection is a linear merge).
    pub(crate) fn matching_rids_multi(
        &mut self,
        table: &str,
        filters: &[ServerFilter],
    ) -> Result<(Vec<RecordId>, Vec<RecordId>, QueryStats), DbError> {
        if filters.len() <= 1 {
            return self.matching_rids(table, filters.first());
        }
        let mut acc: Option<(Vec<RecordId>, Vec<RecordId>)> = None;
        let mut stats = QueryStats::default();
        for f in filters {
            let (main, delta, s) = self.matching_rids(table, Some(f))?;
            stats.dict_search_ns += s.dict_search_ns;
            stats.av_search_ns += s.av_search_ns;
            stats.enclave_calls += s.enclave_calls;
            acc = Some(match acc {
                None => (main, delta),
                Some((am, ad)) => (intersect_sorted(&am, &main), intersect_sorted(&ad, &delta)),
            });
        }
        let (main, delta) = acc.unwrap_or_default();
        Ok((main, delta, stats))
    }

    /// Computes the valid matching RecordIDs in main and delta stores.
    fn matching_rids(
        &mut self,
        table: &str,
        filter: Option<&ServerFilter>,
    ) -> Result<(Vec<RecordId>, Vec<RecordId>, QueryStats), DbError> {
        let parallelism = self.parallelism;
        let strategy = self.set_strategy;
        let mut stats = QueryStats::default();
        let Some(filter) = filter else {
            // Unfiltered: all valid rows.
            let t = self.table(table)?;
            let main = (0..t.main_rows as u32)
                .map(RecordId)
                .filter(|r| t.main_validity.is_valid(r.0 as usize))
                .collect();
            let delta = (0..t.delta_rows as u32)
                .map(RecordId)
                .filter(|r| t.delta_validity.is_valid(r.0 as usize))
                .collect();
            return Ok((main, delta, stats));
        };

        // Split borrows: enclave and tables are disjoint fields.
        let enclave = &mut self.enclave;
        let t = self
            .tables
            .get(table)
            .ok_or_else(|| DbError::TableNotFound(table.to_string()))?;
        let (idx, _) = t
            .schema
            .column(filter.column())
            .ok_or_else(|| DbError::ColumnNotFound(filter.column().to_string()))?;

        let (main_rids, delta_rids) = match (&t.columns[idx], filter) {
            (
                ServerColumn::Encrypted { dict, av, delta },
                ServerFilter::Encrypted { range, .. },
            ) => {
                let dict_start = std::time::Instant::now();
                let result = enclave.search(dict, range)?;
                stats.dict_search_ns = dict_start.elapsed().as_nanos() as u64;
                stats.enclave_calls += 1;
                let av_start = std::time::Instant::now();
                let main = avsearch::search(av, &result, dict.len(), strategy, parallelism);
                stats.av_search_ns = av_start.elapsed().as_nanos() as u64;
                // The empty delta of a never-inserted table needs no ECALL.
                let delta_rids = if delta.is_empty() {
                    Vec::new()
                } else {
                    stats.enclave_calls += 1;
                    delta.search(enclave, range)?
                };
                (main, delta_rids)
            }
            (ServerColumn::Plain { dict, av, delta }, ServerFilter::Plain { range, .. }) => {
                let dict_start = std::time::Instant::now();
                let result = search_plain(dict, range)?;
                stats.dict_search_ns = dict_start.elapsed().as_nanos() as u64;
                let av_start = std::time::Instant::now();
                let main = avsearch::search(av, &result, dict.len(), strategy, parallelism);
                stats.av_search_ns = av_start.elapsed().as_nanos() as u64;
                let delta_rids = delta
                    .iter_valid()
                    .filter(|(_, v)| range.contains(v))
                    .map(|(rid, _)| rid)
                    .collect();
                (main, delta_rids)
            }
            _ => {
                return Err(DbError::UnsupportedFilter(
                    "filter form does not match column protection".to_string(),
                ))
            }
        };
        let main = main_rids
            .into_iter()
            .filter(|r| t.main_validity.is_valid(r.0 as usize))
            .collect();
        let delta = delta_rids
            .into_iter()
            .filter(|r| t.delta_validity.is_valid(r.0 as usize))
            .collect();
        Ok((main, delta, stats))
    }

    /// Counts matching valid rows without rendering result columns — a
    /// thin wrapper over [`DbaasServer::count_multi`] (the count
    /// aggregation the paper notes is easier than range search).
    ///
    /// # Errors
    ///
    /// Propagates lookup and enclave failures.
    pub fn count(&mut self, table: &str, filter: Option<&ServerFilter>) -> Result<usize, DbError> {
        self.count_multi(table, filter.map(std::slice::from_ref).unwrap_or(&[]))
    }

    /// Counts rows matching a conjunction of filters.
    ///
    /// # Errors
    ///
    /// Propagates lookup and enclave failures.
    pub fn count_multi(&mut self, table: &str, filters: &[ServerFilter]) -> Result<usize, DbError> {
        let (main, delta, _) = self.matching_rids_multi(table, filters)?;
        Ok(main.len() + delta.len())
    }

    /// Deletes rows matching a conjunction of filters.
    ///
    /// # Errors
    ///
    /// Propagates lookup and enclave failures.
    pub fn delete_multi(
        &mut self,
        table: &str,
        filters: &[ServerFilter],
    ) -> Result<usize, DbError> {
        let (main_rids, delta_rids, _) = self.matching_rids_multi(table, filters)?;
        let t = self.table_mut(table)?;
        for rid in &main_rids {
            t.main_validity.invalidate(rid.0 as usize);
        }
        for rid in &delta_rids {
            t.delta_validity.invalidate(rid.0 as usize);
        }
        Ok(main_rids.len() + delta_rids.len())
    }

    /// Appends rows to a table's delta stores (§4.3).
    ///
    /// # Errors
    ///
    /// Propagates lookup, arity and enclave failures.
    pub fn insert(&mut self, table: &str, rows: &[Vec<CellValue>]) -> Result<usize, DbError> {
        let enclave = &mut self.enclave;
        let t = self
            .tables
            .get_mut(table)
            .ok_or_else(|| DbError::TableNotFound(table.to_string()))?;
        for row in rows {
            if row.len() != t.columns.len() {
                return Err(DbError::ArityMismatch {
                    expected: t.columns.len(),
                    got: row.len(),
                });
            }
            for (col, cell) in t.columns.iter_mut().zip(row) {
                match (col, cell) {
                    (ServerColumn::Encrypted { delta, .. }, CellValue::Encrypted(ct)) => {
                        delta.insert(enclave, ct)?;
                    }
                    (ServerColumn::Plain { delta, .. }, CellValue::Plain(v)) => {
                        delta.insert(v).map_err(|e| match e {
                            colstore::ColstoreError::ValueTooLong { got, max } => {
                                DbError::ValueTooLong { got, max }
                            }
                            other => DbError::Storage(other),
                        })?;
                    }
                    _ => {
                        return Err(DbError::UnsupportedFilter(
                            "cell form does not match column protection".to_string(),
                        ))
                    }
                }
            }
            t.delta_rows += 1;
            t.delta_validity.push(true);
        }
        Ok(rows.len())
    }

    /// Invalidates matching rows (§4.3: "deletions are realizable by an
    /// update on the validity bit") — a thin wrapper over
    /// [`DbaasServer::delete_multi`].
    ///
    /// # Errors
    ///
    /// Propagates lookup and enclave failures.
    pub fn delete(&mut self, table: &str, filter: Option<&ServerFilter>) -> Result<usize, DbError> {
        self.delete_multi(table, filter.map(std::slice::from_ref).unwrap_or(&[]))
    }

    /// Executes a decomposed [`ServerQuery`] — the single entry point the
    /// proxy routes all data-path queries through, including aggregate
    /// plans.
    ///
    /// # Errors
    ///
    /// Propagates lookup, arity and enclave failures.
    pub fn execute_query(&mut self, query: ServerQuery) -> Result<QueryOutcome, DbError> {
        match query {
            ServerQuery::Select {
                table,
                columns,
                filters,
            } => Ok(QueryOutcome::Rows(
                self.select_multi(&table, &columns, &filters)?,
            )),
            ServerQuery::Aggregate {
                table,
                plan,
                filters,
            } => Ok(QueryOutcome::Rows(self.aggregate(&table, &plan, &filters)?)),
            ServerQuery::Insert { table, rows } => {
                Ok(QueryOutcome::Affected(self.insert(&table, &rows)?))
            }
            ServerQuery::Delete { table, filters } => {
                Ok(QueryOutcome::Affected(self.delete_multi(&table, &filters)?))
            }
        }
    }

    /// Merges every column's delta store into a freshly rebuilt main store
    /// (§4.3). Encrypted columns are rebuilt inside the enclave with fresh
    /// randomness; PLAIN columns are rebuilt locally.
    ///
    /// # Errors
    ///
    /// Propagates enclave and build failures.
    pub fn merge_table(&mut self, table: &str) -> Result<(), DbError> {
        let enclave = &mut self.enclave;
        let t = self
            .tables
            .get_mut(table)
            .ok_or_else(|| DbError::TableNotFound(table.to_string()))?;
        let mut new_rows = None;
        for (spec, col) in t.schema.columns.iter().zip(t.columns.iter_mut()) {
            match col {
                ServerColumn::Encrypted { dict, av, delta } => {
                    let kind = match spec.choice {
                        DictChoice::Encrypted(kind) => kind,
                        DictChoice::Plain => unreachable!("schema/storage mismatch"),
                    };
                    let (delta_dict, _) = delta.as_dictionary()?;
                    let req = MergeRequest {
                        table_name: dict.table_name(),
                        col_name: dict.col_name(),
                        max_len: dict.max_len(),
                        kind,
                        bs_max: spec.bs_max,
                        main_head: dict.head_mem(),
                        main_tail: dict.tail_mem(),
                        main_len: dict.len(),
                        main_av: av.as_slice(),
                        main_valid: &t.main_validity,
                        delta_head: delta_dict.head_mem(),
                        delta_tail: delta_dict.tail_mem(),
                        delta_len: delta_dict.len(),
                        delta_valid: &t.delta_validity,
                    };
                    let (new_dict, new_av) = enclave.merge(req)?;
                    let rows = new_av.len();
                    match new_rows {
                        None => new_rows = Some(rows),
                        Some(r) => debug_assert_eq!(r, rows, "columns must stay row-aligned"),
                    }
                    *delta = EncryptedDeltaStore::new(
                        t.schema.name.clone(),
                        spec.name.clone(),
                        spec.max_len,
                    );
                    *dict = new_dict;
                    *av = new_av;
                }
                ServerColumn::Plain { dict, av, delta } => {
                    // Rebuild the plain column: valid main + valid delta.
                    let mut column = colstore::column::Column::new(&spec.name, spec.max_len);
                    for (j, &vid) in av.as_slice().iter().enumerate() {
                        if t.main_validity.is_valid(j) {
                            column.push(dict.value(vid as usize))?;
                        }
                    }
                    for (rid, v) in delta.iter_valid() {
                        if t.delta_validity.is_valid(rid.0 as usize) {
                            column.push(v)?;
                        }
                    }
                    let rows = column.len();
                    match new_rows {
                        None => new_rows = Some(rows),
                        Some(r) => debug_assert_eq!(r, rows, "columns must stay row-aligned"),
                    }
                    let (new_dict, new_av) = rebuild_plain(&column)?;
                    *dict = new_dict;
                    *av = new_av;
                    *delta = DeltaStore::new(spec.max_len);
                }
            }
        }
        let rows = new_rows.unwrap_or(0);
        t.main_rows = rows;
        t.main_validity = ValidityVector::all_valid(rows);
        t.delta_rows = 0;
        t.delta_validity = ValidityVector::default();
        Ok(())
    }
}

impl Default for DbaasServer {
    fn default() -> Self {
        Self::new()
    }
}

/// Linear-merge intersection of two ascending RecordID lists.
fn intersect_sorted(a: &[RecordId], b: &[RecordId]) -> Vec<RecordId> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].0.cmp(&b[j].0) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

fn render_main_cell(col: &ServerColumn, rid: RecordId) -> CellValue {
    match col {
        ServerColumn::Encrypted { dict, av, .. } => {
            let vid = av.value_id(rid);
            CellValue::Encrypted(dict.ciphertext(vid.0 as usize).to_vec())
        }
        ServerColumn::Plain { dict, av, .. } => {
            let vid = av.value_id(rid);
            CellValue::Plain(dict.value(vid.0 as usize).to_vec())
        }
    }
}

fn render_delta_cell(col: &ServerColumn, rid: RecordId) -> CellValue {
    match col {
        ServerColumn::Encrypted { delta, .. } => {
            CellValue::Encrypted(delta.ciphertext(rid).to_vec())
        }
        ServerColumn::Plain { delta, .. } => CellValue::Plain(delta.value(rid).to_vec()),
    }
}

/// Builds an empty encrypted dictionary placeholder for `CREATE TABLE`.
fn empty_encrypted_dict(
    table: &str,
    spec: &crate::schema::ColumnSpec,
    kind: encdict::EdKind,
) -> EncryptedDictionary {
    // An empty column encrypts to an empty dictionary; no key material is
    // needed since there are zero ciphertexts.
    let column = colstore::column::Column::new(&spec.name, spec.max_len);
    let params = encdict::build::BuildParams {
        table_name: table.to_string(),
        col_name: spec.name.clone(),
        bs_max: spec.bs_max.max(1),
    };
    let throwaway = encdbdb_crypto::Key128::from_bytes([0u8; 16]);
    let mut rng = rand::rngs::mock::StepRng::new(0, 1);
    let (dict, _) = encdict::build::build_encrypted(&column, kind, &params, &throwaway, &mut rng)
        .expect("empty column always builds");
    dict
}

fn empty_plain_dict(max_len: usize) -> PlainDictionary {
    let column = colstore::column::Column::new("c", max_len);
    let mut rng = rand::rngs::mock::StepRng::new(0, 1);
    let (dict, _) =
        encdict::build::build_plain(&column, encdict::EdKind::Ed1, &Default::default(), &mut rng)
            .expect("empty column always builds");
    dict
}

/// Rebuilds a plain (sorted) dictionary from a column.
fn rebuild_plain(
    column: &colstore::column::Column,
) -> Result<(PlainDictionary, AttributeVector), DbError> {
    let mut rng = rand::rngs::mock::StepRng::new(0, 1);
    Ok(encdict::build::build_plain(
        column,
        encdict::EdKind::Ed1,
        &Default::default(),
        &mut rng,
    )?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnSpec;
    use encdict::EdKind;

    fn schema() -> TableSchema {
        TableSchema::new(
            "t",
            vec![
                ColumnSpec::new("name", DictChoice::Encrypted(EdKind::Ed1), 12),
                ColumnSpec::new("city", DictChoice::Plain, 12),
            ],
        )
    }

    #[test]
    fn create_empty_table_and_count() {
        let mut server = DbaasServer::with_enclave(DictEnclave::with_seed(1));
        server.create_table(schema()).unwrap();
        assert_eq!(server.row_count("t").unwrap(), 0);
        assert!(server.create_table(schema()).is_err(), "duplicate rejected");
        assert!(server.row_count("missing").is_err());
    }

    #[test]
    fn insert_requires_matching_arity_and_forms() {
        let mut server = DbaasServer::with_enclave(DictEnclave::with_seed(2));
        server
            .enclave_mut()
            .provision_direct(encdbdb_crypto::Key128::from_bytes([1; 16]));
        server.create_table(schema()).unwrap();
        // Wrong arity.
        let err = server
            .insert("t", &[vec![CellValue::Plain(b"x".to_vec())]])
            .unwrap_err();
        assert!(matches!(err, DbError::ArityMismatch { .. }));
        // Wrong form (plain cell for encrypted column).
        let err = server
            .insert(
                "t",
                &[vec![
                    CellValue::Plain(b"x".to_vec()),
                    CellValue::Plain(b"y".to_vec()),
                ]],
            )
            .unwrap_err();
        assert!(matches!(err, DbError::UnsupportedFilter(_)));
    }

    // Full end-to-end behaviour is covered by the proxy/session tests,
    // which exercise deploy → select → insert → delete → merge.
}
