//! Ablation benchmarks for the design choices DESIGN.md calls out:
//!
//! 1. **One ECALL per query vs one per value** — the paper passes the whole
//!    dictionary reference into the enclave so a query costs one boundary
//!    crossing (§5). We model the alternative by adding the measured
//!    per-entry load count times a representative SGX transition cost.
//! 2. **Per-query key derivation vs cached PAE** — Algorithm 1 derives SK_D
//!    on every call; a cache would amortize the HKDF + key schedule.
//! 3. **Head/tail split vs padded fixed-width entries** — the §5 layout
//!    enables binary search over variable-length values; the alternative
//!    pads every ciphertext to the maximum length.

use criterion::{criterion_group, criterion_main, Criterion};
use encdbdb_bench::*;
use encdbdb_crypto::hkdf::derive_column_key;
use encdbdb_crypto::Pae;
use encdict::{DictEnclave, EdKind, EncryptedRange, RangeQuery};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_ablation(c: &mut Criterion) {
    let prepared = prepare_c2(20_000, 40);
    let (dict, _) = build_ed(&prepared, EdKind::Ed1, 10, 41);
    let mut enclave = DictEnclave::with_seed(42);
    enclave.provision_direct(master_key());
    let pae = column_pae(&prepared.spec.name);
    let mut rng = StdRng::seed_from_u64(43);
    let mid = prepared.sorted_uniques[prepared.sorted_uniques.len() / 2].clone();
    let tau = EncryptedRange::encrypt(&pae, &mut rng, &RangeQuery::equals(mid));

    // 1. ECALL granularity: measure loads per query once, then report the
    // modeled cost difference as two benchmark series (the simulator's
    // boundary is a function call; real SGX transitions cost ~8,000 cycles
    // ≈ 2.2 µs at 3.7 GHz, the paper's CPU).
    enclave.enclave_mut().reset_counters();
    let _ = enclave.search(&dict, &tau).unwrap();
    let loads = enclave.enclave().counters().untrusted_loads;
    const SGX_TRANSITION: std::time::Duration = std::time::Duration::from_nanos(2_200);
    c.bench_function("ecall_per_query_modeled", |b| {
        b.iter(|| {
            let r = enclave.search(&dict, &tau).unwrap();
            std::hint::black_box(&r);
            std::thread::sleep(SGX_TRANSITION) // one boundary crossing
        })
    });
    c.bench_function("ecall_per_value_modeled", |b| {
        b.iter(|| {
            let r = enclave.search(&dict, &tau).unwrap();
            std::hint::black_box(&r);
            // one crossing per entry loaded instead of one per query
            std::thread::sleep(SGX_TRANSITION * loads as u32)
        })
    });

    // 2. Key derivation per query vs cached PAE instance.
    let skdb = master_key();
    c.bench_function("derive_key_per_query", |b| {
        b.iter(|| Pae::new(&derive_column_key(&skdb, "bw", "C2")))
    });

    // 3. Head/tail split vs fixed-width padding: storage comparison
    // expressed as build throughput over the padded representation.
    let padded_overhead = prepared.spec.value_len * prepared.stats.unique_count()
        + 28 * prepared.stats.unique_count();
    let split_size = dict.storage_size();
    println!(
        "layout ablation: head/tail {} vs fixed-width padded {} ({:+.1} %)",
        fmt_bytes(split_size),
        fmt_bytes(padded_overhead),
        100.0 * (split_size as f64 - padded_overhead as f64) / padded_overhead as f64
    );
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_ablation
}
criterion_main!(benches);
